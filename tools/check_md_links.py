#!/usr/bin/env python3
"""Checks that relative links in the repository's markdown files resolve.

Scans every tracked ``*.md`` at the repository root and under ``docs/``
for inline links/images (``[text](target)``) and validates the ones that
point into the repository:

- relative file links must name an existing file or directory;
- fragment-only links (``#section``) and relative links with fragments
  must match a heading anchor in the target file (GitHub slug rules,
  simplified: lowercase, spaces to dashes, punctuation stripped).

External links (``http://``, ``https://``, ``mailto:``) are not fetched
— CI must not depend on the network — but obviously malformed ones
(empty targets) still fail.

Exit code 0 when every link resolves, 1 otherwise (each failure is
printed as ``file:line: message``).
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

# Inline links/images: [text](target) — stops at the first unbalanced
# ')' so "(see [x](y))" parses. Reference-style links are rare in this
# repo and intentionally out of scope.
LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING = re.compile(r"^#{1,6}\s+(.*)$")
CODE_FENCE = re.compile(r"^(```|~~~)")


def slugify(heading: str) -> str:
    """GitHub-style anchor slug (simplified but sufficient here)."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set[str]:
    anchors = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = HEADING.match(line)
        if m:
            anchors.add(slugify(m.group(1)))
    return anchors


def md_files() -> list[Path]:
    files = sorted(ROOT.glob("*.md"))
    docs = ROOT / "docs"
    if docs.is_dir():
        files.extend(sorted(docs.rglob("*.md")))
    return files


def main() -> int:
    failures = []
    for md in md_files():
        in_fence = False
        for lineno, line in enumerate(md.read_text(encoding="utf-8").splitlines(), 1):
            if CODE_FENCE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for m in LINK.finditer(line):
                target = m.group(1)
                where = f"{md.relative_to(ROOT)}:{lineno}"
                if not target:
                    failures.append(f"{where}: empty link target")
                    continue
                if target.startswith(("http://", "https://", "mailto:")):
                    continue
                path_part, _, fragment = target.partition("#")
                if path_part:
                    resolved = (md.parent / path_part).resolve()
                    if not resolved.exists():
                        failures.append(f"{where}: broken link {target!r}")
                        continue
                    if fragment and resolved.suffix == ".md":
                        if fragment not in anchors_of(resolved):
                            failures.append(
                                f"{where}: no heading {fragment!r} in {path_part!r}"
                            )
                elif fragment and fragment not in anchors_of(md):
                    failures.append(f"{where}: no heading {fragment!r} in this file")
    if failures:
        print("markdown link check FAILED:")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"markdown link check OK ({len(md_files())} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
