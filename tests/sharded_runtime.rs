//! Equivalence of the threaded sharded runtime with the single-threaded
//! seeded paths, and of latency-derived deadlines with an external
//! replay of the deadline policy.
//!
//! The acceptance bar for the threaded runtime is the same one every
//! driver in this workspace has had to clear: a seeded run must be
//! **bit-identical** however it is executed. The single-threaded
//! in-process [`FlJob`] run is the golden oracle; the serialized
//! lockstep driver and 1-, 2- and 4-shard threaded runs (with and
//! without scheduling jitter and hostile frames in flight) must all
//! reproduce it — per-round accepted-update sets to the element, every
//! `RoundRecord` field to the bit.
//!
//! On the latency-derived path no victim set is ever injected: the
//! suite replays the deadline policy outside the runtime (durations are
//! a pure function of the latency model) and checks the runtime's
//! stragglers are exactly the parties the policy predicts.

use flips::fl::message::{frame, AGGREGATOR_DEST};
use flips::fl::runtime::{run_sharded, RuntimeOptions, ShardedOutcome};
use flips::fl::{ObservedLatency, PartyPool, StreamTransport};
use flips::prelude::*;

/// The shared workload: 12 parties, 4 rounds, heterogeneous latency
/// (log-normal σ = 0.8 gives a solid fast/slow spread), and a deadline
/// at 1.1× the observed median round trip — tight enough that the slow
/// tail misses rounds once the warm-up round has seeded the samples.
fn latency_builder(seed: u64) -> SimulationBuilder {
    SimulationBuilder::new(DatasetProfile::femnist())
        .parties(12)
        .rounds(4)
        .participation(0.25)
        .alpha(0.3)
        .selector(SelectorKind::Random)
        .deadline(DeadlinePolicy::LatencyQuantile { q: 0.5, slack: 1.1 })
        .latency_sigma(0.8)
        .clustering_restarts(3)
        .test_per_class(8)
        .seed(seed)
}

/// The legacy injected-victims workload (the transport suites' shape).
fn injected_builder(seed: u64) -> SimulationBuilder {
    SimulationBuilder::new(DatasetProfile::femnist())
        .parties(12)
        .rounds(4)
        .participation(0.25)
        .alpha(0.3)
        .selector(SelectorKind::Random)
        .straggler_rate(0.25)
        .clustering_restarts(3)
        .test_per_class(8)
        .seed(seed)
}

fn sharded(builder: &SimulationBuilder, opts: &RuntimeOptions) -> (History, ShardedOutcome) {
    let (job, meta) = builder.build().unwrap();
    let mut outcome = run_sharded(vec![job.into_parts()], opts).unwrap();
    let history = outcome.histories.remove(&meta.job_id).unwrap();
    (history, outcome)
}

#[test]
fn sharded_runs_reproduce_the_single_thread_golden_bit_exactly() {
    // The tentpole acceptance criterion: 1, 2 and 4 shards, same
    // history as the seeded single-threaded in-process run — full
    // `RoundRecord` equality, which subsumes per-round accepted-update
    // (`completed`) set equality.
    let golden = latency_builder(11).run().unwrap().history;
    assert!(
        golden.total_stragglers() > 0,
        "the workload must exercise deadline pressure, or the test proves nothing"
    );
    for shards in [1, 2, 4] {
        let (history, outcome) = sharded(&latency_builder(11), &RuntimeOptions::new(shards));
        assert_eq!(history, golden, "{shards}-shard history diverged from the golden");
        assert_eq!(outcome.stats.corrupt_frames, 0);
        assert_eq!(outcome.stats.unknown_job_frames, 0);
        assert!(
            outcome.stats.late_updates > 0,
            "stragglers on this path must come from late updates, not injection"
        );
    }
}

#[test]
fn lockstep_serialized_driver_agrees_on_the_latency_deadline_path() {
    // The latency-derived deadline is a driver-layer policy; the
    // single-threaded serialized driver must implement it identically
    // to both the in-process job and the threaded runtime.
    let golden = latency_builder(11).run().unwrap().history;
    let (job, meta) = latency_builder(11).build().unwrap();
    let (agg_pipe, party_pipe) = duplex();
    let mut driver = MultiJobDriver::new(StreamTransport::new(agg_pipe));
    let (id, endpoints) = driver.add_parts(job.into_parts()).unwrap();
    assert_eq!(id, meta.job_id);
    let mut pool = PartyPool::new(StreamTransport::new(party_pipe));
    pool.add_job(id, endpoints);
    run_lockstep(&mut driver, &mut pool).unwrap();
    assert_eq!(driver.history(id).unwrap(), &golden);
    assert!(driver.stats().late_updates > 0);
}

#[test]
fn run_threaded_builder_entry_point_matches_run() {
    let golden = latency_builder(23).run().unwrap();
    let threaded = latency_builder(23).run_threaded(2).unwrap();
    assert_eq!(threaded.history, golden.history);
    assert_eq!(threaded.meta.job_id, golden.meta.job_id);
}

#[test]
fn stragglers_are_exactly_the_parties_the_deadline_policy_predicts() {
    // No injected victim set exists on this path, so who straggles must
    // be derivable outside the runtime: replay the policy against the
    // latency model (round-trip durations are a pure function of party
    // id — fixed samples, fixed epochs) and compare round by round.
    let policy = DeadlinePolicy::LatencyQuantile { q: 0.5, slack: 1.1 };
    let (job, _) = latency_builder(11).build().unwrap();
    let latency = job.latency_model().clone();
    let samples = job.sample_counts();
    let epochs = DatasetProfile::femnist().local_epochs;
    let duration = |p: usize| latency.duration(p, samples[p], epochs);

    let (history, _) = sharded(&latency_builder(11), &RuntimeOptions::new(2));
    let mut observed = ObservedLatency::new();
    let mut saw_straggler_round = false;
    for record in history.records() {
        let deadline = policy.deadline_secs(&mut observed);
        let expected: Vec<usize> = record
            .selected
            .iter()
            .copied()
            .filter(|&p| deadline.is_some_and(|d| duration(p) > d))
            .collect();
        assert_eq!(
            record.stragglers, expected,
            "round {}: stragglers must follow from the latency model (deadline {deadline:?})",
            record.round
        );
        saw_straggler_round |= !expected.is_empty();
        for &p in &record.selected {
            observed.record(duration(p));
        }
    }
    assert!(saw_straggler_round, "the replay never predicted a straggler — tighten the policy");
}

#[test]
fn late_update_count_equals_total_stragglers() {
    // Every straggler on the observed path is a party whose reply
    // arrived and was withheld — the two counters must agree exactly.
    let (history, outcome) = sharded(&latency_builder(11), &RuntimeOptions::new(4));
    assert_eq!(outcome.stats.late_updates as usize, history.total_stragglers());
}

#[test]
fn fixed_deadline_policy_runs_and_aborts_the_slow_tail() {
    // A hard SLA window: parties slower than 120 ms of simulated round
    // trip miss every round they are selected for, from round 0 (no
    // warm-up — the window is fixed).
    let builder = latency_builder(31).deadline(DeadlinePolicy::FixedSeconds { secs: 0.12 });
    let golden = builder.run().unwrap().history;
    let (history, _) = sharded(&builder, &RuntimeOptions::new(3));
    assert_eq!(history, golden);
}

#[test]
fn injected_victim_sets_also_shard_identically() {
    // The legacy path must survive the threading unchanged: the victim
    // draw happens on the coordinator thread at round open, so the
    // shard count cannot perturb the injector's RNG stream.
    let golden = injected_builder(11).run().unwrap().history;
    for shards in [1, 2, 4] {
        let (history, outcome) = sharded(&injected_builder(11), &RuntimeOptions::new(shards));
        assert_eq!(history, golden, "{shards}-shard injected run diverged");
        assert_eq!(outcome.stats.late_updates, 0, "no late updates on the injected path");
    }
}

#[test]
fn entropy_wire_replays_every_selector_golden_across_two_shards() {
    // The entropy-stage acceptance bar, sharded flavor: all five
    // selector goldens over a 2-shard wire with `DeltaEntropy`
    // negotiated on both links — bit-identical to the in-process run.
    for selector in SelectorKind::all() {
        let base = latency_builder(11).selector(selector);
        let golden = base.clone().run().unwrap().history;
        let (history, outcome) =
            sharded(&base.codec(ModelCodec::DeltaEntropy), &RuntimeOptions::new(2));
        assert_eq!(history, golden, "{selector:?} over the 2-shard entropy wire diverged");
        assert_eq!(outcome.stats.codec_mismatch_frames, 0, "{selector:?}");
        assert_eq!(outcome.stats.corrupt_frames, 0, "{selector:?}");
    }
}

#[test]
fn heterogeneous_link_codecs_on_one_job_replay_the_golden() {
    // Per-link negotiation end to end: one job, two shards, shard 0 on
    // the job-wide DeltaLossless and shard 1 overridden to DeltaEntropy
    // (both lossless, so the bit-identity oracle still applies). The
    // driver must rewrite shard 1's selection notices, each pool must
    // pin its own link's codec, and the history must not move.
    let base = latency_builder(11).codec(ModelCodec::DeltaLossless);
    let golden = base.clone().run().unwrap().history;
    let (_, meta) = base.clone().build().unwrap();
    let opts = RuntimeOptions::new(2).with_link_codec(meta.job_id, 1, ModelCodec::DeltaEntropy);
    let (history, outcome) = sharded(&base, &opts);
    assert_eq!(history, golden, "heterogeneous per-link codecs moved the history");
    assert_eq!(outcome.stats.codec_mismatch_frames, 0);
    assert_eq!(outcome.shard_codec_mismatch, vec![0, 0]);
    assert_eq!(outcome.shard_unroutable, vec![0, 0]);
}

#[test]
fn multiple_jobs_with_mixed_policies_and_codecs_share_the_sharded_wire() {
    // Three jobs — different seeds, codecs and deadline models — run
    // concurrently across the same shard set; each must finish with
    // exactly its solo history.
    let configs: Vec<SimulationBuilder> = vec![
        latency_builder(11).codec(ModelCodec::DeltaLossless),
        injected_builder(23),
        latency_builder(37).deadline(DeadlinePolicy::FixedSeconds { secs: 0.12 }),
    ];
    let solo: Vec<(u64, History)> = configs
        .iter()
        .map(|b| {
            let report = b.run().unwrap();
            (report.meta.job_id, report.history)
        })
        .collect();
    let jobs: Vec<_> = configs.iter().map(|b| b.build().unwrap().0.into_parts()).collect();
    let outcome = run_sharded(jobs, &RuntimeOptions::new(3)).unwrap();
    assert_eq!(outcome.histories.len(), 3);
    for (id, history) in &solo {
        assert_eq!(
            outcome.histories.get(id),
            Some(history),
            "job {id:#x} diverged under sharded multiplexing"
        );
    }
}

#[test]
fn ewma_deadline_policy_shards_identically_with_guards_enabled() {
    // The EWMA deadline is sealed per round open (order-independent
    // batch means), so it must shard exactly like the quantile policy —
    // here additionally with the default guard plane installed, which
    // must be invisible on a conformant run.
    let builder = latency_builder(11).deadline(DeadlinePolicy::Ewma { alpha: 0.3, slack: 1.1 });
    let golden = builder.run().unwrap().history;
    assert!(
        golden.total_stragglers() > 0,
        "the EWMA window must bite the slow tail, or the test proves nothing"
    );
    for shards in [1, 2, 4] {
        let opts = RuntimeOptions::new(shards).with_guard(GuardConfig::default());
        let (history, outcome) = sharded(&builder, &opts);
        assert_eq!(history, golden, "{shards}-shard EWMA history diverged from the golden");
        assert_eq!(outcome.stats.parties_ejected, 0);
        assert_eq!(outcome.stats.rate_limited_frames, 0);
        assert!(outcome.breaker_transitions.is_empty());
    }
}

#[test]
fn guards_and_seeded_chaos_leave_sharded_latency_histories_untouched() {
    // The latency-deadline flavor of the guard-plane acceptance bar:
    // seeded chaos schedules (duplicates, corrupt copies, delays and
    // floods at an unowned job) on the 2-shard uplink, default guards
    // installed — bit-identical histories, chaos visible in the log.
    let golden = latency_builder(11).run().unwrap().history;
    for chaos_seed in [5u64, 77, 4242] {
        let opts = RuntimeOptions::new(2)
            .with_guard(GuardConfig::default())
            .with_chaos(ChaosSchedule::seeded(chaos_seed));
        let (history, outcome) = sharded(&latency_builder(11), &opts);
        assert_eq!(history, golden, "chaos seed {chaos_seed} moved the 2-shard history");
        assert_eq!(outcome.stats.parties_ejected, 0, "seed {chaos_seed} tripped a breaker");
        assert!(outcome.breaker_transitions.is_empty());
        assert!(
            !outcome.chaos_events.is_empty(),
            "seed {chaos_seed} applied no chaos — the run proves nothing"
        );
    }
}

/// Hostile frames for the chaos thread: a truncated frame, a corrupt
/// magic, a well-formed frame for a job nobody owns, and a forged
/// duplicate heartbeat for a real job. All must be dropped, rejected or
/// deduplicated without moving any round's state.
fn chaos_frames(real_job: u64) -> Vec<bytes::Bytes> {
    let whole =
        frame(AGGREGATOR_DEST, &WireMessage::Heartbeat { job: real_job, round: 0, party: 1 });
    let mut corrupt = whole.to_vec();
    corrupt[8] ^= 0xFF;
    vec![
        whole.slice(0..5),
        bytes::Bytes::from(corrupt),
        frame(AGGREGATOR_DEST, &WireMessage::Heartbeat { job: 0xDEAD_BEEF, round: 0, party: 3 }),
        whole,
    ]
}

#[test]
fn scheduling_jitter_and_chaos_frames_never_move_the_histories() {
    // The randomized-schedule stress test: perturb every worker with
    // pseudo-random sleeps while a chaos thread slips hostile frames
    // onto both directions of the wire at unsynchronized times. The
    // fault kinds mirror `tests/transport_faults.rs`; the oracle is the
    // same — bit-identical histories, whatever the interleaving.
    let golden = latency_builder(11).run().unwrap().history;
    let (job, meta) = latency_builder(11).build().unwrap();
    drop(job);
    for (shards, jitter_seed) in [(2, 7u64), (3, 99), (4, 1234)] {
        let mut opts = RuntimeOptions::new(shards);
        opts.jitter_ns = 200_000;
        opts.jitter_seed = jitter_seed;
        opts.chaos_uplink = chaos_frames(meta.job_id);
        opts.chaos_downlink = vec![frame(
            1,
            &WireMessage::GlobalModel { job: 0xDEAD_BEEF, round: 0, params: vec![1.0; 4].into() },
        )];
        let (history, outcome) = sharded(&latency_builder(11), &opts);
        assert_eq!(
            history, golden,
            "jitter seed {jitter_seed} over {shards} shards moved the history"
        );
        // The chaos traffic must be visible in the counters (dropped,
        // not lost): 2 corrupt/truncated + 1 unknown job on the uplink,
        // 1 unroutable on some shard's downlink.
        assert_eq!(outcome.stats.corrupt_frames, 2);
        assert_eq!(outcome.stats.unknown_job_frames, 1);
        assert_eq!(outcome.shard_unroutable.iter().sum::<u64>(), 1);
    }
}
