//! The guard plane under seeded chaos: determinism, ejection
//! equivalence, drain semantics.
//!
//! Three oracles pin the guard plane's behavior:
//!
//! 1. **Transparency.** With the default (permissive) [`GuardConfig`]
//!    installed, every selector's seeded golden history replays
//!    bit-identically under ≥3 distinct seeded chaos schedules — over
//!    the single-threaded lockstep wire and the 2-shard threaded
//!    runtime alike. Guards must never move a protocol-conformant run.
//! 2. **Ejection ≡ victim injection.** A flooding party tripped by its
//!    breaker produces exactly the history of a run where the same
//!    party was scripted as a deadline victim in the same rounds — so
//!    ejecting a hostile party provably never moves any *other* party's
//!    history.
//! 3. **Purity.** Breaker transitions, guard counters and the applied
//!    chaos log are a pure function of the schedule: run the same
//!    seeded chaos twice, compare everything. Chaos scoped to one job
//!    leaves its wire-mates bit-identical to their solo runs.

use flips::fl::message::{frame, AGGREGATOR_DEST};
use flips::fl::runtime::{run_sharded, RuntimeOptions};
use flips::fl::{BreakerTransition, ChaosEvent, PartyPool};
use flips::prelude::*;
use proptest::prelude::*;

const CHAOS_SEEDS: [u64; 3] = [7, 101, 90210];

/// The sharded runtime splits the uplink across two links with their
/// own frame-index streams, so a seed that perturbs the single-link
/// lockstep wire can draw all-Deliver there; these seeds are verified
/// non-vacuous on the 2-shard layout for every selector.
const SHARDED_CHAOS_SEEDS: [u64; 3] = [13, 101, 90210];

/// The golden workload of `tests/protocol_equivalence.rs`: its solo
/// run is the oracle every guarded/chaotic variant must reproduce.
fn builder(kind: SelectorKind) -> SimulationBuilder {
    SimulationBuilder::new(DatasetProfile::femnist())
        .parties(12)
        .rounds(4)
        .participation(0.25)
        .alpha(0.3)
        .selector(kind)
        .straggler_rate(0.25)
        .clustering_restarts(3)
        .test_per_class(8)
        .seed(11)
}

fn solo(kind: SelectorKind) -> History {
    builder(kind).run().unwrap().history
}

/// Runs one golden job over the serialized lockstep wire with `guard`
/// installed and `schedule` perturbing the uplink.
fn run_guarded_lockstep(
    kind: SelectorKind,
    schedule: ChaosSchedule,
    guard: GuardConfig,
) -> (History, DriverStats, Vec<BreakerTransition>, Vec<ChaosEvent>) {
    let (job, meta) = builder(kind).build().unwrap();
    let (agg_end, party_end) = MemoryTransport::pair();
    let mut driver = MultiJobDriver::new(ChaosTransport::new(agg_end, schedule));
    driver.set_guard(guard).unwrap();
    let (id, endpoints) = driver.add_parts(job.into_parts()).unwrap();
    assert_eq!(id, meta.job_id);
    let mut pool = PartyPool::new(party_end);
    pool.add_job(id, endpoints);
    run_lockstep(&mut driver, &mut pool).unwrap();
    (
        driver.history(id).unwrap().clone(),
        driver.stats(),
        driver.guard().unwrap().transitions().to_vec(),
        driver.transport().log().to_vec(),
    )
}

#[test]
fn guarded_chaos_lockstep_replays_every_selector_golden() {
    // The tentpole acceptance bar, serialized mode: all five selector
    // goldens, three distinct chaos seeds, default guards — histories
    // to the bit, no breaker ever trips on conformant traffic.
    for kind in SelectorKind::all() {
        let clean = solo(kind);
        for seed in CHAOS_SEEDS {
            let (history, stats, transitions, log) =
                run_guarded_lockstep(kind, ChaosSchedule::seeded(seed), GuardConfig::default());
            assert_eq!(history, clean, "{kind}: chaos seed {seed} moved the guarded history");
            assert_eq!(stats.parties_ejected, 0, "{kind}: seed {seed} tripped a breaker");
            assert!(transitions.is_empty(), "{kind}: seed {seed} logged transitions");
            assert!(!log.is_empty(), "{kind}: seed {seed} applied no chaos — the test is vacuous");
        }
    }
}

#[test]
fn guarded_chaos_sharded_replays_every_selector_golden() {
    // Same bar, 2-shard threaded mode: schedule and guards ride in
    // through RuntimeOptions. Which frame draws which action depends on
    // thread interleaving, but every default-weight action is
    // non-destructive, so the histories cannot move.
    for kind in SelectorKind::all() {
        let clean = solo(kind);
        for seed in SHARDED_CHAOS_SEEDS {
            let (job, meta) = builder(kind).build().unwrap();
            let opts = RuntimeOptions::new(2)
                .with_guard(GuardConfig::default())
                .with_chaos(ChaosSchedule::seeded(seed));
            let outcome = run_sharded(vec![job.into_parts()], &opts).unwrap();
            assert_eq!(
                outcome.histories.get(&meta.job_id),
                Some(&clean),
                "{kind}: chaos seed {seed} moved the 2-shard guarded history"
            );
            assert_eq!(outcome.stats.parties_ejected, 0, "{kind}: seed {seed}");
            assert!(outcome.breaker_transitions.is_empty(), "{kind}: seed {seed}");
            assert!(!outcome.chaos_events.is_empty(), "{kind}: seed {seed} applied no chaos");
        }
    }
}

/// A strict breaker that isolates the circuit-breaker path: no rate
/// limit, no admission cap, a low strike threshold.
fn strict_breaker(threshold: u32) -> GuardConfig {
    GuardConfig {
        rate_limit: None,
        admission_factor: None,
        breaker: Some(BreakerConfig { strike_threshold: threshold, ..BreakerConfig::default() }),
        ..GuardConfig::default()
    }
}

#[test]
fn flooding_party_is_ejected_exactly_like_a_scripted_victim() {
    // A hostile party floods the aggregator with forged out-of-round
    // heartbeats; its breaker trips and the guard ejects it at the next
    // round open. The oracle: an UNGUARDED run of the same seeded job
    // where a `ScriptedClock` marks that party a deadline victim in
    // exactly the rounds the breaker held it out — full-history
    // equality, which proves no OTHER party's trajectory moved by more
    // or less than a legitimate straggler would have moved it.
    let hostile: u64 = 1;
    let build = || builder(SelectorKind::Random).straggler_rate(0.0).build().unwrap();

    // Guarded run with the flood on the wire.
    let (job, _) = build();
    let (agg_end, party_end) = MemoryTransport::pair();
    let mut to_driver = party_end.clone();
    let mut driver = MultiJobDriver::new(agg_end);
    driver.set_guard(strict_breaker(4)).unwrap();
    let (id, endpoints) = driver.add_parts(job.into_parts()).unwrap();
    let mut pool = PartyPool::new(party_end);
    pool.add_job(id, endpoints);

    driver.start().unwrap();
    let mut window = 0u64;
    loop {
        if window < 2 {
            // Five forged heartbeats per window, round u64::MAX: each
            // bounces with WrongRound and strikes the claimed sender.
            let forged = frame(
                AGGREGATOR_DEST,
                &WireMessage::Heartbeat { job: id, round: u64::MAX, party: hostile },
            );
            for _ in 0..5 {
                to_driver.send(&forged).unwrap();
            }
        }
        window += 1;
        loop {
            let drove = driver.pump().unwrap();
            let pooled = pool.pump().unwrap();
            if !drove && !pooled {
                break;
            }
        }
        if driver.is_finished() {
            break;
        }
        assert!(driver.advance_clock().unwrap(), "driver stalled");
    }

    let guarded = driver.history(id).unwrap().clone();
    let stats = driver.stats();
    assert!(stats.parties_ejected >= 1, "the flood must trip the hostile party's breaker");
    let transitions = driver.guard().unwrap().transitions();
    assert!(
        transitions.iter().any(|t| t.job == id && t.party == hostile && t.to == BreakerState::Open),
        "expected an Open transition for party {hostile}, got {transitions:?}"
    );
    let script: Vec<Vec<PartyId>> =
        guarded.records().iter().map(|r| r.stragglers.clone()).collect();
    assert!(
        script.iter().any(|v| v.contains(&(hostile as PartyId))),
        "the ejection never bit — the hostile party was never held out of a round it was \
         selected for: {script:?}"
    );
    assert!(
        script.iter().flatten().all(|&p| p as u64 == hostile),
        "with straggler injection off, only the ejected party may straggle: {script:?}"
    );

    // Reference run: no guard, no flood — the same rounds scripted as
    // injected victim sets.
    let (job, _) = build();
    let JobParts { coordinator, endpoints, latency, .. } = job.into_parts();
    let (agg_end, party_end) = MemoryTransport::pair();
    let mut reference = MultiJobDriver::new(agg_end);
    let ref_id =
        reference.add_job(coordinator, Box::new(ScriptedClock::new(script)), latency).unwrap();
    assert_eq!(ref_id, id);
    let mut ref_pool = PartyPool::new(party_end);
    ref_pool.add_job(ref_id, endpoints);
    run_lockstep(&mut reference, &mut ref_pool).unwrap();
    assert_eq!(
        reference.history(ref_id).unwrap(),
        &guarded,
        "breaker ejection must be indistinguishable from scripted victim injection"
    );
}

#[test]
fn drain_finishes_open_rounds_then_refuses_new_selections() {
    // Graceful drain: rounds already open run to their deadline and
    // close normally; every subsequent selection is refused; the driver
    // reports quiescence with a consistent final snapshot.
    let (agg_end, party_end) = MemoryTransport::pair();
    let mut driver = MultiJobDriver::new(agg_end);
    driver.set_guard(GuardConfig::default()).unwrap();
    let mut pool = PartyPool::new(party_end);
    let mut ids = Vec::new();
    for seed in [11u64, 23] {
        let (job, _) = builder(SelectorKind::Random).seed(seed).build().unwrap();
        let (id, endpoints) = driver.add_parts(job.into_parts()).unwrap();
        pool.add_job(id, endpoints);
        ids.push(id);
    }

    driver.start().unwrap();
    driver.begin_drain();
    assert!(driver.is_draining());
    loop {
        loop {
            let drove = driver.pump().unwrap();
            let pooled = pool.pump().unwrap();
            if !drove && !pooled {
                break;
            }
        }
        if driver.is_quiescent() {
            break;
        }
        assert!(driver.advance_clock().unwrap(), "drain stalled before quiescence");
    }

    assert!(!driver.is_finished(), "drain refuses the round budget, it does not finish it");
    assert_eq!(driver.stats().drain_refused_selections, 2, "one refused selection per job");
    for id in &ids {
        assert_eq!(
            driver.history(*id).unwrap().len(),
            1,
            "exactly the already-open round may close during drain"
        );
    }
    let report = driver.drain_report();
    assert!(report.open_rounds.is_empty(), "quiescence means no open rounds: {report:?}");
    assert_eq!(report.stats, driver.stats());
    let mut completed = report.rounds_completed.clone();
    completed.sort_unstable();
    let mut expected: Vec<(u64, usize)> = ids.iter().map(|&id| (id, 1)).collect();
    expected.sort_unstable();
    assert_eq!(completed, expected);
}

/// The smaller two-job workload of `tests/transport_faults.rs` — cheap
/// enough to run several times per proptest case.
fn small_builder(seed: u64) -> SimulationBuilder {
    SimulationBuilder::new(DatasetProfile::femnist())
        .parties(10)
        .rounds(3)
        .participation(0.3)
        .selector(SelectorKind::Random)
        .straggler_rate(0.25)
        .test_per_class(6)
        .seed(seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Random chaos schedules × breaker configs: (a) jobs the schedule
    /// does not target stay bit-identical to their solo runs, (b) the
    /// whole guarded outcome — histories, counters, breaker transitions,
    /// applied-chaos log — is a pure function of the schedule (replay
    /// the run, compare everything).
    #[test]
    fn chaos_outcomes_are_pure_and_scoped_to_the_targeted_job(
        chaos_seed in 0u64..(1 << 48),
        threshold in 6u32..24,
        cooldown in 1u64..4,
        flood_frames in 1u32..6,
        dup_w in 0u32..3,
        corrupt_w in 0u32..3,
        delay_w in 0u32..3,
        flood_w in 0u32..4,
    ) {
        let run = || {
            let (job0, m0) = small_builder(11).build().unwrap();
            let (job1, m1) = small_builder(23).build().unwrap();
            let schedule = ChaosSchedule::seeded(chaos_seed)
                .weights(ChaosWeights {
                    deliver: 10,
                    drop: 0,
                    duplicate: dup_w,
                    corrupt: corrupt_w,
                    delay: delay_w,
                    flood: flood_w,
                    disconnect: 0,
                })
                .target_job(m0.job_id)
                // Aim forged floods at a real party of the targeted job
                // so strict thresholds genuinely trip its breaker.
                .flood_target(m0.job_id, 2, flood_frames);
            let guard = GuardConfig {
                breaker: Some(BreakerConfig {
                    strike_threshold: threshold,
                    cooldown_rounds: cooldown,
                    ..BreakerConfig::default()
                }),
                ..GuardConfig::default()
            };
            let (agg_end, party_end) = MemoryTransport::pair();
            let mut driver = MultiJobDriver::new(ChaosTransport::new(agg_end, schedule));
            driver.set_guard(guard).unwrap();
            let mut pool = PartyPool::new(party_end);
            for job in [job0, job1] {
                let (id, endpoints) = driver.add_parts(job.into_parts()).unwrap();
                pool.add_job(id, endpoints);
            }
            run_lockstep(&mut driver, &mut pool).unwrap();
            (
                driver.history(m0.job_id).unwrap().clone(),
                driver.history(m1.job_id).unwrap().clone(),
                driver.stats(),
                driver.guard().unwrap().transitions().to_vec(),
                driver.transport().log().to_vec(),
            )
        };

        let first = run();
        let second = run();
        prop_assert_eq!(&first.0, &second.0, "targeted job's history must replay");
        prop_assert_eq!(&first.1, &second.1, "untargeted job's history must replay");
        prop_assert_eq!(first.2, second.2, "guard counters must replay");
        prop_assert_eq!(&first.3, &second.3, "breaker transitions must replay");
        prop_assert_eq!(&first.4, &second.4, "the applied-chaos log must replay");

        let (mut job1, _) = small_builder(23).build().unwrap();
        let solo1 = job1.run().unwrap();
        prop_assert_eq!(&first.1, &solo1, "chaos scoped to one job moved its wire-mate");
    }
}
