//! Information-flow tests of the FLIPS privacy architecture (paper §3.3):
//! attestation gates provisioning, sealed channels resist tampering, and
//! enclave destruction erases clustering state.

use flips::middleware::{FlipsMiddleware, MiddlewareConfig, CLUSTERING_CODE_ID};
use flips::prelude::*;
use flips::tee::attestation::PlatformKey;
use flips::tee::{AttestationServer, Enclave, Measurement, SecureChannel, TeeError};

fn sample_lds() -> Vec<LabelDistribution> {
    (0..12)
        .map(|i| {
            let mut counts = vec![1u64; 5];
            counts[i % 5] = 50;
            LabelDistribution::from_counts(counts)
        })
        .collect()
}

fn fast_config(seed: u64) -> MiddlewareConfig {
    MiddlewareConfig {
        restarts: 3,
        k_max: 6,
        overhead: OverheadModel::none(),
        seed,
        ..Default::default()
    }
}

#[test]
fn attestation_rejects_unregistered_clustering_code() {
    // A rogue aggregator swaps in different enclave code: parties'
    // verification against the shared attestation server must fail.
    let platform = PlatformKey::new(42);
    let mut server = AttestationServer::new(platform);
    server.register(Measurement::of_code(CLUSTERING_CODE_ID));

    let rogue = Enclave::load(b"rogue-exfiltration-code", (), platform, OverheadModel::none());
    let quote = rogue.quote(777);
    assert!(matches!(server.verify(&quote, 777), Err(TeeError::AttestationFailed(_))));

    // The genuine enclave passes.
    let genuine = Enclave::load(CLUSTERING_CODE_ID, (), platform, OverheadModel::none());
    assert!(server.verify(&genuine.quote(778), 778).is_ok());
}

#[test]
fn attestation_rejects_foreign_platforms() {
    // A quote signed by a different platform key (e.g. an emulated TEE)
    // must not verify, even with the right measurement.
    let real = PlatformKey::new(1);
    let fake = PlatformKey::new(2);
    let mut server = AttestationServer::new(real);
    let m = Measurement::of_code(CLUSTERING_CODE_ID);
    server.register(m);
    assert!(server.verify(&fake.quote(m, 5), 5).is_err());
}

#[test]
fn sealed_label_distributions_resist_tampering_in_transit() {
    let mut rng = flips::ml::rng::seeded(3);
    let (mut party, enclave_end) = SecureChannel::establish(&mut rng);
    let mut sealed = party.seal(b"\x05\x00\x00\x00label-distribution-payload");
    // A man-in-the-middle flips one ciphertext bit.
    sealed.ciphertext[3] ^= 0x01;
    assert_eq!(enclave_end.open(&sealed), Err(TeeError::IntegrityViolation));
}

#[test]
fn ceremony_produces_selector_and_destroy_erases_it() {
    let pc = FlipsMiddleware::cluster_privately(&sample_lds(), &fast_config(1)).unwrap();
    assert!(pc.k() >= 2);
    let mut selector = pc.into_selector();
    assert_eq!(selector.select(0, 4).unwrap().len(), 4);
    selector.destroy();
    assert!(selector.select(1, 4).is_err(), "selection must fail after enclave destruction");
}

#[test]
fn dropping_the_selector_wipes_enclave_state() {
    // Drop = end of FL job; the enclave erases itself (paper: "deletes
    // all information at the end of the FL job"). Verified indirectly:
    // a fresh ceremony over the same inputs works identically, and the
    // dropped selector cannot be observed — so assert the Drop impl runs
    // without leaking by constructing and dropping many.
    for seed in 0..5 {
        let pc = FlipsMiddleware::cluster_privately(&sample_lds(), &fast_config(seed)).unwrap();
        let _selector = pc.into_selector();
        // dropped here
    }
}

#[test]
fn aggregator_facing_api_never_exposes_label_distributions() {
    // Compile-time-ish check expressed at runtime: the public surface of
    // TeeBackedSelector yields only party ids and counts. What we *can*
    // assert: selection output contains ids only, and the only clustering
    // fact the report carries is k.
    let report = SimulationBuilder::new(DatasetProfile::ecg())
        .parties(16)
        .rounds(4)
        .participation(0.25)
        .selector(SelectorKind::Flips)
        .clustering_restarts(3)
        .test_per_class(5)
        .seed(2)
        .run()
        .unwrap();
    assert!(report.meta.k.is_some());
    for r in report.history.records() {
        for &p in &r.selected {
            assert!(p < 16);
        }
    }
}

#[test]
fn tee_overhead_is_accounted_when_enabled() {
    let cfg = MiddlewareConfig {
        restarts: 3,
        k_max: 6,
        overhead: OverheadModel::sev_like(),
        seed: 4,
        ..Default::default()
    };
    let pc = FlipsMiddleware::cluster_privately(&sample_lds(), &cfg).unwrap();
    assert!(pc.tee_overhead() > std::time::Duration::ZERO);
    assert!(pc.tee_entries() >= 13, "12 provisions + clustering");
}
