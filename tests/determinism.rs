//! Reproducibility: a single master seed pins every stream in the system
//! (data synthesis, partitioning, clustering restarts, selection,
//! mini-batch order, straggler injection), so entire experiments replay
//! bit-for-bit — the property the 6-run-averaged tables rely on.

use flips::prelude::*;

fn run(kind: SelectorKind, seed: u64, parallel: bool) -> SimulationReport {
    SimulationBuilder::new(DatasetProfile::femnist())
        .parties(18)
        .rounds(6)
        .participation(0.3)
        .alpha(0.3)
        .selector(kind)
        .straggler_rate(0.2)
        .clustering_restarts(3)
        .test_per_class(8)
        .parallel(parallel)
        .seed(seed)
        .run()
        .unwrap()
}

#[test]
fn identical_seeds_replay_identically_for_every_selector() {
    for kind in SelectorKind::all() {
        let a = run(kind, 11, false);
        let b = run(kind, 11, false);
        assert_eq!(a.history, b.history, "{kind} diverged under identical seeds");
        assert_eq!(a.meta.k, b.meta.k);
    }
}

#[test]
fn different_seeds_diverge() {
    let a = run(SelectorKind::Random, 1, false);
    let b = run(SelectorKind::Random, 2, false);
    assert_ne!(
        a.history.accuracy_series(),
        b.history.accuracy_series(),
        "different seeds should explore different trajectories"
    );
}

#[test]
fn parallel_training_matches_sequential() {
    // Thread scheduling must not leak into results: updates are
    // aggregated in party-id order regardless of completion order.
    for kind in [SelectorKind::Flips, SelectorKind::Random] {
        let seq = run(kind, 7, false);
        let par = run(kind, 7, true);
        assert_eq!(seq.history, par.history, "{kind}: parallel execution changed results");
    }
}

#[test]
fn selector_streams_are_independent_of_each_other() {
    // Running FLIPS first must not perturb a later Random run with the
    // same seed (no global RNG state).
    let first = run(SelectorKind::Random, 5, false);
    let _ = run(SelectorKind::Flips, 5, false);
    let second = run(SelectorKind::Random, 5, false);
    assert_eq!(first.history, second.history);
}
