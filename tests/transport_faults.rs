//! Transport fault injection: hostile and misrouted frames on a live
//! multiplexed link must be counted and dropped without disturbing any
//! job's round state.
//!
//! The suite runs two concurrent jobs over one [`MemoryTransport`] link
//! (frame boundaries are explicit there, so a "truncated frame" is a
//! well-defined artifact; on the stream transport a short frame simply
//! never completes) and slips faults onto the wire through cloned
//! handles while legitimate traffic is in flight. The oracle is always
//! the same: each job's final history equals its fault-free solo run,
//! bit for bit.

use flips::fl::message::{frame, AGGREGATOR_DEST};
use flips::prelude::*;
use proptest::prelude::*;
use std::sync::{Arc, Mutex};

const SEEDS: [u64; 2] = [11, 23];

fn builder(seed: u64) -> SimulationBuilder {
    SimulationBuilder::new(DatasetProfile::femnist())
        .parties(10)
        .rounds(3)
        .participation(0.3)
        .selector(SelectorKind::Random)
        .straggler_rate(0.25)
        .test_per_class(6)
        .seed(seed)
}

/// The same two jobs with `DeltaLossless` negotiated on the wire. The
/// histories are codec-independent, so the raw solo runs stay the
/// oracle.
fn delta_builder(seed: u64) -> SimulationBuilder {
    builder(seed).codec(ModelCodec::DeltaLossless)
}

fn solo_histories() -> Vec<History> {
    SEEDS
        .iter()
        .map(|&seed| {
            let (mut job, _) = builder(seed).build().unwrap();
            job.run().unwrap()
        })
        .collect()
}

/// A transport wrapper that records a copy of every frame it sends —
/// the duplicate-delivery tests replay captured uplink traffic.
struct Tap<T: Transport> {
    inner: T,
    sent: Arc<Mutex<Vec<bytes::Bytes>>>,
}

impl<T: Transport> Transport for Tap<T> {
    fn send(&mut self, frame: &[u8]) -> Result<(), flips::fl::FlError> {
        self.sent.lock().unwrap().push(bytes::Bytes::from(frame.to_vec()));
        self.inner.send(frame)
    }
    fn try_recv(&mut self) -> Result<Option<bytes::Bytes>, flips::fl::FlError> {
        self.inner.try_recv()
    }
}

struct Link {
    driver: MultiJobDriver<MemoryTransport>,
    pool: PartyPool<Tap<MemoryTransport>>,
    /// Extra handle whose sends land in the DRIVER's inbox.
    to_driver: MemoryTransport,
    /// Extra handle whose sends land in the POOL's inbox.
    to_pool: MemoryTransport,
    /// Copies of every uplink frame the pool sent.
    uplink: Arc<Mutex<Vec<bytes::Bytes>>>,
    ids: Vec<u64>,
}

fn two_job_link() -> Link {
    link_from(builder)
}

fn two_job_delta_link() -> Link {
    link_from(delta_builder)
}

fn link_from(make: fn(u64) -> SimulationBuilder) -> Link {
    let (agg_end, party_end) = MemoryTransport::pair();
    let to_driver = party_end.clone();
    let to_pool = agg_end.clone();
    let uplink = Arc::new(Mutex::new(Vec::new()));
    let mut driver = MultiJobDriver::new(agg_end);
    let mut pool = PartyPool::new(Tap { inner: party_end, sent: Arc::clone(&uplink) });
    let mut ids = Vec::new();
    for &seed in &SEEDS {
        let (job, _) = make(seed).build().unwrap();
        let JobParts { coordinator, endpoints, clock, latency, .. } = job.into_parts();
        let id = driver.add_job(coordinator, Box::new(clock), latency).unwrap();
        pool.add_job(id, endpoints);
        ids.push(id);
    }
    Link { driver, pool, to_driver, to_pool, uplink, ids }
}

/// Runs the link to completion, invoking `inject` once per round window
/// (while that window's frames are in flight).
fn run_with_faults(link: &mut Link, mut inject: impl FnMut(u64, &mut Link)) {
    link.driver.start().unwrap();
    let mut window = 0u64;
    loop {
        inject(window, link);
        window += 1;
        loop {
            let drove = link.driver.pump().unwrap();
            let pooled = link.pool.pump().unwrap();
            if !drove && !pooled {
                break;
            }
        }
        if link.driver.is_finished() {
            return;
        }
        assert!(link.driver.advance_clock().unwrap(), "driver stalled");
    }
}

fn assert_histories_clean(link: &Link, solo: &[History]) {
    for (id, clean) in link.ids.iter().zip(solo) {
        assert_eq!(
            link.driver.history(*id).unwrap(),
            clean,
            "job {id:#x} history disturbed by injected faults"
        );
    }
}

fn heartbeat_frame(job: u64) -> bytes::Bytes {
    frame(AGGREGATOR_DEST, &WireMessage::Heartbeat { job, round: 0, party: 3 })
}

#[test]
fn truncated_and_corrupt_frames_are_dropped_without_side_effects() {
    let solo = solo_histories();
    let mut link = two_job_link();
    let job0 = link.ids[0];
    run_with_faults(&mut link, |window, link| {
        if window > 2 {
            return;
        }
        // A frame cut mid-header, one cut mid-payload, and one with a
        // clobbered protocol magic.
        let whole = heartbeat_frame(job0);
        link.to_driver.send(&whole.slice(0..5)).unwrap();
        link.to_driver.send(&whole.slice(0..whole.len() - 3)).unwrap();
        let mut bad_magic = whole.to_vec();
        bad_magic[8] ^= 0xFF;
        link.to_driver.send(&bad_magic).unwrap();
    });
    assert_eq!(link.driver.stats().corrupt_frames, 9, "3 windows × 3 bad frames");
    assert_histories_clean(&link, &solo);
}

#[test]
fn unknown_job_id_mid_stream_is_counted_and_isolated() {
    let solo = solo_histories();
    let mut link = two_job_link();
    run_with_faults(&mut link, |window, link| {
        if window > 1 {
            return;
        }
        // Well-formed traffic for a job nobody registered, in both
        // directions: the driver counts it, the pool counts it, neither
        // routes it anywhere.
        link.to_driver.send(&heartbeat_frame(0xDEAD_BEEF)).unwrap();
        let foreign =
            WireMessage::GlobalModel { job: 0xDEAD_BEEF, round: 0, params: vec![1.0; 4].into() };
        link.to_pool.send(&frame(2, &foreign)).unwrap();
    });
    assert_eq!(link.driver.stats().unknown_job_frames, 2);
    assert_eq!(link.pool.unroutable(), 2);
    assert_histories_clean(&link, &solo);
}

#[test]
fn hostile_routable_downlink_is_rejected_by_the_pool_not_fatal() {
    // Frames that decode AND route to a real endpoint but violate the
    // protocol (wrong direction, wrong architecture) must be counted
    // and dropped by the pool — one such frame must not take down the
    // pump and with it every multiplexed job.
    let solo = solo_histories();
    let mut link = two_job_link();
    let job0 = link.ids[0];
    run_with_faults(&mut link, |window, link| {
        if window > 1 {
            return;
        }
        // Wrong direction: an aggregator-bound update sent down to a party.
        let wrong_direction = WireMessage::LocalUpdate {
            job: job0,
            round: 0,
            party: 3,
            num_samples: 1,
            mean_loss: 0.0,
            duration: 0.0,
            params: vec![],
        };
        link.to_pool.send(&frame(3, &wrong_direction)).unwrap();
        // Wrong architecture: a global model that matches no agreed spec.
        let wrong_arch =
            WireMessage::GlobalModel { job: job0, round: 9, params: vec![0.0; 3].into() };
        link.to_pool.send(&frame(3, &wrong_arch)).unwrap();
    });
    assert_eq!(link.pool.rejected(), 4, "2 windows × 2 hostile frames");
    assert_eq!(link.pool.unroutable(), 0);
    assert_histories_clean(&link, &solo);
}

#[test]
fn duplicate_delivery_is_rejected_not_double_aggregated() {
    let solo = solo_histories();
    let mut link = two_job_link();
    run_with_faults(&mut link, |window, link| {
        if window == 0 {
            return; // let round 0 produce real uplink traffic first
        }
        // Redeliver every update the pool has sent so far — classic
        // at-least-once transport behavior. Each replay must bounce
        // with `DuplicateUpdate`/`WrongRound`, never re-aggregate.
        let captured: Vec<bytes::Bytes> = link.uplink.lock().unwrap().clone();
        for dup in captured {
            link.to_driver.send(&dup).unwrap();
        }
    });
    assert!(
        link.driver.stats().rejected_messages > 0,
        "replayed frames must surface as rejections"
    );
    assert_eq!(link.driver.stats().corrupt_frames, 0);
    assert_histories_clean(&link, &solo);
}

#[test]
fn interleaved_uplink_frames_from_two_jobs_demultiplex_cleanly() {
    let solo = solo_histories();
    let mut link = two_job_link();
    // Per-pump interleaving already mixes the two jobs' frames on the
    // shared queue; additionally hold ALL uplink traffic back each
    // window and release it riffle-shuffled across jobs, so the driver
    // sees j0,j1,j0,j1,… in a single drain.
    link.driver.start().unwrap();
    loop {
        loop {
            let pooled = link.pool.pump().unwrap();
            // Capture the pool's pending uplink, reorder, re-send.
            let mut held = Vec::new();
            while let Some(f) = link.to_pool.try_recv().unwrap() {
                held.push(f);
            }
            let (evens, odds): (Vec<_>, Vec<_>) =
                held.into_iter().enumerate().partition(|(i, _)| i % 2 == 0);
            for (_, f) in odds.into_iter().chain(evens) {
                link.to_driver.send(&f).unwrap();
            }
            let drove = link.driver.pump().unwrap();
            if !drove && !pooled {
                break;
            }
        }
        if link.driver.is_finished() {
            break;
        }
        assert!(link.driver.advance_clock().unwrap(), "driver stalled");
    }
    assert_histories_clean(&link, &solo);
}

#[test]
fn corrupt_frames_strike_the_claimed_sender_and_trip_its_breaker() {
    // Guard attribution: a corrupt frame cannot be trusted, but its
    // header-claimed sender can be charged for it. Enough clobbered
    // frames all claiming one party must open that party's breaker —
    // and nobody else's.
    let mut link = two_job_link();
    link.driver
        .set_guard(GuardConfig {
            rate_limit: None,
            admission_factor: None,
            breaker: Some(BreakerConfig { strike_threshold: 3, ..BreakerConfig::default() }),
            ..GuardConfig::default()
        })
        .unwrap();
    let job0 = link.ids[0];
    run_with_faults(&mut link, |window, link| {
        if window != 0 {
            return;
        }
        for _ in 0..4 {
            // heartbeat_frame claims party 3; flip the message magic so
            // only the fixed-offset header peek can attribute it.
            let mut bad = heartbeat_frame(job0).to_vec();
            bad[8] ^= 0xFF;
            link.to_driver.send(&bad).unwrap();
        }
    });
    assert_eq!(link.driver.stats().corrupt_frames, 4);
    let transitions = link.driver.guard().unwrap().transitions();
    assert!(
        transitions.iter().any(|t| t.job == job0 && t.party == 3 && t.to == BreakerState::Open),
        "4 corrupt frames over a 3-strike threshold must open party 3's breaker: {transitions:?}"
    );
    assert!(
        transitions.iter().all(|t| t.party == 3),
        "no other party may be charged for the corruption: {transitions:?}"
    );
}

#[test]
fn pool_frame_cap_drops_oversized_downlink_frames() {
    // The pool side of the configurable frame cap: an 800KB frame
    // pushed down a 512KB-capped wire is dropped and counted before
    // any decode, and every job still reaches its clean history.
    let solo = solo_histories();
    let mut link = two_job_link();
    let guard = GuardConfig { max_frame_bytes: 1 << 19, ..GuardConfig::default() };
    link.pool.set_guard(&guard);
    let job0 = link.ids[0];
    run_with_faults(&mut link, |window, link| {
        if window > 1 {
            return;
        }
        let huge =
            WireMessage::GlobalModel { job: job0, round: 0, params: vec![1.0; 200_000].into() };
        link.to_pool.send(&frame(2, &huge)).unwrap();
    });
    assert_eq!(link.pool.oversized(), 2, "2 windows × 1 over-cap frame");
    assert_eq!(link.pool.unroutable(), 0);
    assert_histories_clean(&link, &solo);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Any schedule of truncations, corruptions, foreign-job frames and
    /// duplicate replays leaves every job's history bit-identical to its
    /// fault-free run.
    #[test]
    fn random_fault_schedules_never_disturb_round_state(
        fault_kinds in proptest::collection::vec(0usize..4, 1..6),
        cut in 1usize..20,
        flip_bit in 0usize..8,
        window_mask in 0u64..8,
    ) {
        let solo = solo_histories();
        let mut link = two_job_link();
        let job0 = link.ids[0];
        run_with_faults(&mut link, |window, link| {
            if window >= 3 || (window_mask >> window) & 1 == 0 {
                return;
            }
            for &kind in &fault_kinds {
                match kind {
                    0 => {
                        let whole = heartbeat_frame(job0);
                        let cut = cut.min(whole.len() - 1);
                        link.to_driver.send(&whole.slice(0..cut)).unwrap();
                    }
                    1 => {
                        let mut corrupt = heartbeat_frame(job0).to_vec();
                        let idx = 8 + cut % 5; // somewhere in the message header
                        corrupt[idx] ^= 1 << flip_bit;
                        link.to_driver.send(&corrupt).unwrap();
                    }
                    2 => link.to_driver.send(&heartbeat_frame(0xF0E1_D2C3)).unwrap(),
                    _ => {
                        let captured: Vec<bytes::Bytes> =
                            link.uplink.lock().unwrap().clone();
                        if let Some(f) = captured.last() {
                            link.to_driver.send(f).unwrap();
                        }
                    }
                }
            }
        });
        prop_assert!(link.driver.is_finished());
        for (id, clean) in link.ids.iter().zip(&solo) {
            prop_assert_eq!(link.driver.history(*id).unwrap(), clean);
        }
    }
}

// ---------------------------------------------------------------------
// Compressed-payload faults: the DeltaLossless wire under hostile bytes.
// ---------------------------------------------------------------------

/// A codec-tagged `LocalUpdate` frame for `job` built from a fresh
/// sender codec (no reference → inline mode), yielding bytes whose
/// params block the fault tests can corrupt surgically. The delta-family
/// codecs share the block head — tag at byte 61, count at 62..70, mode
/// at 70 — so the corruption offsets hold for every tag.
fn tagged_update_frame(job: u64, wire_codec: ModelCodec) -> Vec<u8> {
    use flips::fl::codec::{PayloadCodec, Role};
    use flips::fl::message::frame_into;
    let msg = WireMessage::LocalUpdate {
        job,
        round: 0,
        party: 3,
        num_samples: 5,
        mean_loss: 0.5,
        duration: 0.1,
        params: vec![1.0, 2.0, 3.0],
    };
    let mut codec = PayloadCodec::new(wire_codec, Role::Sender);
    let mut buf = bytes::BytesMut::new();
    frame_into(AGGREGATOR_DEST, &msg, &mut codec, &mut buf);
    buf.freeze().to_vec()
}

fn delta_update_frame(job: u64) -> Vec<u8> {
    tagged_update_frame(job, ModelCodec::DeltaLossless)
}

#[test]
fn delta_wire_survives_corrupt_truncated_and_mismatched_codec_frames() {
    // Both jobs negotiate DeltaLossless; the oracle stays the raw solo
    // runs (histories are codec-independent). Each window slips four
    // hostile frames onto the uplink:
    //   1. a raw-tagged update for a delta job  → codec mismatch
    //   2. a delta update with a corrupt mode byte → corrupt frame
    //   3. a truncated delta update             → corrupt frame
    //   4. a delta update whose codec tag byte is clobbered entirely
    //      → codec mismatch (corrupt tag)
    let solo = solo_histories();
    let mut link = two_job_delta_link();
    let job0 = link.ids[0];
    run_with_faults(&mut link, |window, link| {
        if window > 1 {
            return;
        }
        let raw_tagged = frame(
            AGGREGATOR_DEST,
            &WireMessage::LocalUpdate {
                job: job0,
                round: 0,
                party: 3,
                num_samples: 5,
                mean_loss: 0.5,
                duration: 0.1,
                params: vec![1.0, 2.0, 3.0],
            },
        );
        link.to_driver.send(&raw_tagged).unwrap();

        let clean = delta_update_frame(job0);
        // The params block starts after frame dest (8) + magic+tag (5) +
        // job/round/party/samples (32) + loss/duration (16) = 61; its
        // layout is codec tag (61), count u64 (62..70), mode (70).
        let mut bad_mode = clean.clone();
        bad_mode[70] = 0xEE;
        link.to_driver.send(&bad_mode).unwrap();

        link.to_driver.send(&clean[..clean.len() - 4]).unwrap();

        let mut bad_tag = clean.clone();
        bad_tag[61] = 0x66;
        link.to_driver.send(&bad_tag).unwrap();
    });
    let stats = link.driver.stats();
    assert_eq!(stats.codec_mismatch_frames, 4, "2 windows × (raw-tagged + corrupt-tag)");
    assert_eq!(stats.corrupt_frames, 4, "2 windows × (bad mode + truncation)");
    assert_histories_clean(&link, &solo);
}

#[test]
fn delta_downlink_rejects_mismatched_codec_models() {
    // A raw-tagged GlobalModel pushed down a delta-negotiated job's
    // wire must be dropped by the pool's codec layer — never handed to
    // an endpoint, never able to move the reference model.
    let solo = solo_histories();
    let mut link = two_job_delta_link();
    let job0 = link.ids[0];
    run_with_faults(&mut link, |window, link| {
        if window > 1 {
            return;
        }
        let raw_model =
            WireMessage::GlobalModel { job: job0, round: 0, params: vec![0.5; 8].into() };
        link.to_pool.send(&frame(3, &raw_model)).unwrap();
    });
    assert_eq!(link.pool.codec_mismatch(), 2);
    assert_eq!(link.pool.rejected(), 0, "the mismatch must be dropped before the endpoint");
    assert_histories_clean(&link, &solo);
}

#[test]
fn codec_renegotiation_notices_are_dropped_and_counted() {
    // A forged notice trying to flip an established delta job to raw
    // must bounce at the pool's negotiation layer and at most annoy the
    // counters — the pinned codec, and the histories, stay put.
    let solo = solo_histories();
    let mut link = two_job_delta_link();
    let job0 = link.ids[0];
    run_with_faults(&mut link, |window, link| {
        if window != 1 {
            return; // after round 0 established the codec
        }
        let forged =
            WireMessage::SelectionNotice { job: job0, round: 1, party: 3, codec: ModelCodec::F16 };
        link.to_pool.send(&frame(3, &forged)).unwrap();
    });
    assert_eq!(link.pool.renegotiations_rejected(), 1);
    assert_eq!(link.pool.negotiated_codec(link.ids[0]), Some(ModelCodec::DeltaLossless));
    assert_histories_clean(&link, &solo);
}

#[test]
fn duplicate_selection_notices_are_idempotent_on_the_delta_wire() {
    // Redelivered notice frames (same round, same codec) re-ack without
    // perturbing negotiation, byte accounting or round state — the
    // codec-negotiation twin of PR 3's duplicate-heartbeat fix.
    let solo = solo_histories();
    let mut link = two_job_delta_link();
    let job0 = link.ids[0];
    let dup = frame(
        3,
        &WireMessage::SelectionNotice {
            job: job0,
            round: 0,
            party: 3,
            codec: ModelCodec::DeltaLossless,
        },
    );
    run_with_faults(&mut link, |window, link| {
        if window != 0 {
            return;
        }
        // Redeliver party 3's round-0 notice twice while the round is
        // in flight. The endpoint re-acks each copy; the coordinator
        // accepts the heartbeat idempotently if 3 is in the cohort and
        // bounces it otherwise — in no case does round state move.
        link.to_pool.send(&dup).unwrap();
        link.to_pool.send(&dup).unwrap();
    });
    assert_eq!(link.pool.renegotiations_rejected(), 0);
    assert_histories_clean(&link, &solo);
}

#[test]
fn forged_inline_frame_cannot_poison_the_delta_reference() {
    // A self-contained MODE_INLINE GlobalModel forged with a fresh
    // sender codec decodes without needing any reference — but it must
    // not *become* the pool's reference: the pool pins the agreed
    // architecture size at add_job, so this wrong-length frame (with a
    // sky-high round that would otherwise pin ref_round forever) is
    // rejected by the endpoint and leaves the job's delta state — and
    // hence every later legitimate delta frame — untouched.
    use flips::fl::codec::{PayloadCodec, Role};
    use flips::fl::message::frame_into;
    let solo = solo_histories();
    let mut link = two_job_delta_link();
    let job0 = link.ids[0];
    run_with_faults(&mut link, |window, link| {
        if window > 1 {
            return;
        }
        let forged =
            WireMessage::GlobalModel { job: job0, round: u64::MAX, params: vec![0.0; 3].into() };
        let mut codec = PayloadCodec::new(ModelCodec::DeltaLossless, Role::Sender);
        let mut buf = bytes::BytesMut::new();
        frame_into(3, &forged, &mut codec, &mut buf);
        link.to_pool.send(buf.as_slice()).unwrap();
    });
    assert_eq!(link.pool.rejected(), 2, "the endpoint must reject the wrong architecture");
    assert_eq!(link.pool.codec_mismatch(), 0, "the frame itself decodes — it is delta-tagged");
    assert_histories_clean(&link, &solo);
}

#[test]
fn pre_pinned_codec_defeats_a_forged_first_notice() {
    // Trust-on-first-frame lets one forged notice (injected before the
    // job's real round-0 notice) wedge a delta job permanently. A pool
    // that pins each job's codec from out-of-band configuration is
    // immune: the forged Raw notice conflicts with the pin and drops,
    // the legitimate notices match, and the job runs to its clean
    // histories.
    let solo = solo_histories();
    let mut link = two_job_delta_link();
    for &id in &link.ids {
        link.pool.pin_codec(id, ModelCodec::DeltaLossless);
    }
    let job0 = link.ids[0];
    // Inject the forged notice BEFORE start() puts any legitimate
    // frame on the wire — the strongest position for the attacker.
    let forged =
        WireMessage::SelectionNotice { job: job0, round: 0, party: 3, codec: ModelCodec::Raw };
    link.to_pool.send(&frame(3, &forged)).unwrap();
    run_with_faults(&mut link, |_, _| {});
    assert_eq!(link.pool.renegotiations_rejected(), 1, "the forged notice must conflict");
    assert_eq!(link.pool.negotiated_codec(job0), Some(ModelCodec::DeltaLossless));
    assert_histories_clean(&link, &solo);
}

#[test]
fn compressed_frames_for_unknown_jobs_count_as_unknown_not_codec_mismatch() {
    // A well-formed delta-tagged frame whose job id no coordinator owns
    // cannot decode (no codec state exists for it) — but the operator
    // signal must say "unknown job", not "codec bug": the driver peeks
    // the fixed-offset job id to attribute the drop correctly.
    let solo = solo_histories();
    let mut link = two_job_delta_link();
    run_with_faults(&mut link, |window, link| {
        if window > 1 {
            return;
        }
        link.to_driver.send(&delta_update_frame(0xDEAD_BEEF)).unwrap();
    });
    let stats = link.driver.stats();
    assert_eq!(stats.unknown_job_frames, 2);
    assert_eq!(stats.codec_mismatch_frames, 0);
    assert_histories_clean(&link, &solo);
}

#[test]
fn corrupt_entropy_frames_on_one_link_leave_sibling_links_untouched() {
    // The mixed-codec wire under fire: a 2-shard run whose shard link 0
    // is overridden to `DeltaEntropy` while link 1 stays on the
    // job-wide `DeltaLossless`. Hostile frames aimed at the entropy
    // link — a corrupt entropy payload, a truncated one, and
    // lossless-tagged frames that would be legitimate on the sibling
    // link — must be dropped and counted on link 0 alone, and the
    // history must stay bit-identical to the fault-free solo run.
    use flips::fl::codec::{PayloadCodec, Role};
    use flips::fl::message::frame_into;
    use flips::fl::runtime::{run_sharded, RuntimeOptions};

    let (mut solo, _) = builder(11).build().unwrap();
    let golden = solo.run().unwrap();
    let (job, meta) = builder(11).codec(ModelCodec::DeltaLossless).build().unwrap();
    let job0 = meta.job_id;

    // Uplink faults, all landing on shard link 0 (the chaos seam): an
    // entropy update with a clobbered mode byte, a truncated entropy
    // update, and the sibling link's DeltaLossless dialect — a codec
    // mismatch on the entropy link even though link 1 would decode it.
    let entropy_update = tagged_update_frame(job0, ModelCodec::DeltaEntropy);
    let mut bad_mode = entropy_update.clone();
    bad_mode[70] = 0xEE;
    let truncated = entropy_update[..entropy_update.len() - 4].to_vec();
    let lossless_update = delta_update_frame(job0);

    // Downlink faults, landing in shard 0's inbox: a truncated entropy
    // model and a lossless-tagged model for the same job.
    let downlink_model = |wire_codec| {
        let msg = WireMessage::GlobalModel { job: job0, round: 0, params: vec![1.0; 8].into() };
        let mut codec = PayloadCodec::new(wire_codec, Role::Sender);
        let mut buf = bytes::BytesMut::new();
        frame_into(2, &msg, &mut codec, &mut buf);
        buf.freeze().to_vec()
    };
    let entropy_model = downlink_model(ModelCodec::DeltaEntropy);
    let truncated_model = entropy_model[..entropy_model.len() - 4].to_vec();
    let lossless_model = downlink_model(ModelCodec::DeltaLossless);

    let mut opts = RuntimeOptions::new(2).with_link_codec(job0, 0, ModelCodec::DeltaEntropy);
    opts.chaos_uplink = vec![bad_mode.into(), truncated.into(), lossless_update.into()];
    opts.chaos_downlink = vec![truncated_model.into(), lossless_model.into()];
    let outcome = run_sharded(vec![job.into_parts()], &opts).unwrap();

    assert_eq!(
        outcome.histories.get(&job0),
        Some(&golden),
        "faults on the entropy link disturbed the mixed-codec history"
    );
    assert_eq!(outcome.stats.corrupt_frames, 2, "bad mode byte + truncation on the uplink");
    assert_eq!(
        outcome.stats.codec_mismatch_frames, 1,
        "the sibling link's dialect must mismatch on the entropy link"
    );
    assert_eq!(
        outcome.shard_codec_mismatch,
        vec![1, 0],
        "only the entropy shard may count the lossless-tagged model"
    );
    assert_eq!(
        outcome.shard_unroutable,
        vec![1, 0],
        "the truncated entropy model must drop on shard 0 alone"
    );
    assert_eq!(outcome.shard_rejected, vec![0, 0]);
}
