//! Transport fault injection: hostile and misrouted frames on a live
//! multiplexed link must be counted and dropped without disturbing any
//! job's round state.
//!
//! The suite runs two concurrent jobs over one [`MemoryTransport`] link
//! (frame boundaries are explicit there, so a "truncated frame" is a
//! well-defined artifact; on the stream transport a short frame simply
//! never completes) and slips faults onto the wire through cloned
//! handles while legitimate traffic is in flight. The oracle is always
//! the same: each job's final history equals its fault-free solo run,
//! bit for bit.

use flips::fl::message::{frame, AGGREGATOR_DEST};
use flips::prelude::*;
use proptest::prelude::*;
use std::sync::{Arc, Mutex};

const SEEDS: [u64; 2] = [11, 23];

fn builder(seed: u64) -> SimulationBuilder {
    SimulationBuilder::new(DatasetProfile::femnist())
        .parties(10)
        .rounds(3)
        .participation(0.3)
        .selector(SelectorKind::Random)
        .straggler_rate(0.25)
        .test_per_class(6)
        .seed(seed)
}

fn solo_histories() -> Vec<History> {
    SEEDS
        .iter()
        .map(|&seed| {
            let (mut job, _) = builder(seed).build().unwrap();
            job.run().unwrap()
        })
        .collect()
}

/// A transport wrapper that records a copy of every frame it sends —
/// the duplicate-delivery tests replay captured uplink traffic.
struct Tap<T: Transport> {
    inner: T,
    sent: Arc<Mutex<Vec<bytes::Bytes>>>,
}

impl<T: Transport> Transport for Tap<T> {
    fn send(&mut self, frame: bytes::Bytes) -> Result<(), flips::fl::FlError> {
        self.sent.lock().unwrap().push(frame.clone());
        self.inner.send(frame)
    }
    fn try_recv(&mut self) -> Result<Option<bytes::Bytes>, flips::fl::FlError> {
        self.inner.try_recv()
    }
}

struct Link {
    driver: MultiJobDriver<MemoryTransport>,
    pool: PartyPool<Tap<MemoryTransport>>,
    /// Extra handle whose sends land in the DRIVER's inbox.
    to_driver: MemoryTransport,
    /// Extra handle whose sends land in the POOL's inbox.
    to_pool: MemoryTransport,
    /// Copies of every uplink frame the pool sent.
    uplink: Arc<Mutex<Vec<bytes::Bytes>>>,
    ids: Vec<u64>,
}

fn two_job_link() -> Link {
    let (agg_end, party_end) = MemoryTransport::pair();
    let to_driver = party_end.clone();
    let to_pool = agg_end.clone();
    let uplink = Arc::new(Mutex::new(Vec::new()));
    let mut driver = MultiJobDriver::new(agg_end);
    let mut pool = PartyPool::new(Tap { inner: party_end, sent: Arc::clone(&uplink) });
    let mut ids = Vec::new();
    for &seed in &SEEDS {
        let (job, _) = builder(seed).build().unwrap();
        let JobParts { coordinator, endpoints, clock, latency } = job.into_parts();
        let id = driver.add_job(coordinator, Box::new(clock), latency).unwrap();
        pool.add_job(id, endpoints);
        ids.push(id);
    }
    Link { driver, pool, to_driver, to_pool, uplink, ids }
}

/// Runs the link to completion, invoking `inject` once per round window
/// (while that window's frames are in flight).
fn run_with_faults(link: &mut Link, mut inject: impl FnMut(u64, &mut Link)) {
    link.driver.start().unwrap();
    let mut window = 0u64;
    loop {
        inject(window, link);
        window += 1;
        loop {
            let drove = link.driver.pump().unwrap();
            let pooled = link.pool.pump().unwrap();
            if !drove && !pooled {
                break;
            }
        }
        if link.driver.is_finished() {
            return;
        }
        assert!(link.driver.advance_clock().unwrap(), "driver stalled");
    }
}

fn assert_histories_clean(link: &Link, solo: &[History]) {
    for (id, clean) in link.ids.iter().zip(solo) {
        assert_eq!(
            link.driver.history(*id).unwrap(),
            clean,
            "job {id:#x} history disturbed by injected faults"
        );
    }
}

fn heartbeat_frame(job: u64) -> bytes::Bytes {
    frame(AGGREGATOR_DEST, &WireMessage::Heartbeat { job, round: 0, party: 3 })
}

#[test]
fn truncated_and_corrupt_frames_are_dropped_without_side_effects() {
    let solo = solo_histories();
    let mut link = two_job_link();
    let job0 = link.ids[0];
    run_with_faults(&mut link, |window, link| {
        if window > 2 {
            return;
        }
        // A frame cut mid-header, one cut mid-payload, and one with a
        // clobbered protocol magic.
        let whole = heartbeat_frame(job0);
        link.to_driver.send(whole.slice(0..5)).unwrap();
        link.to_driver.send(whole.slice(0..whole.len() - 3)).unwrap();
        let mut bad_magic = whole.to_vec();
        bad_magic[8] ^= 0xFF;
        link.to_driver.send(bytes::Bytes::from(bad_magic)).unwrap();
    });
    assert_eq!(link.driver.stats().corrupt_frames, 9, "3 windows × 3 bad frames");
    assert_histories_clean(&link, &solo);
}

#[test]
fn unknown_job_id_mid_stream_is_counted_and_isolated() {
    let solo = solo_histories();
    let mut link = two_job_link();
    run_with_faults(&mut link, |window, link| {
        if window > 1 {
            return;
        }
        // Well-formed traffic for a job nobody registered, in both
        // directions: the driver counts it, the pool counts it, neither
        // routes it anywhere.
        link.to_driver.send(heartbeat_frame(0xDEAD_BEEF)).unwrap();
        let foreign = WireMessage::GlobalModel { job: 0xDEAD_BEEF, round: 0, params: vec![1.0; 4] };
        link.to_pool.send(frame(2, &foreign)).unwrap();
    });
    assert_eq!(link.driver.stats().unknown_job_frames, 2);
    assert_eq!(link.pool.unroutable(), 2);
    assert_histories_clean(&link, &solo);
}

#[test]
fn hostile_routable_downlink_is_rejected_by_the_pool_not_fatal() {
    // Frames that decode AND route to a real endpoint but violate the
    // protocol (wrong direction, wrong architecture) must be counted
    // and dropped by the pool — one such frame must not take down the
    // pump and with it every multiplexed job.
    let solo = solo_histories();
    let mut link = two_job_link();
    let job0 = link.ids[0];
    run_with_faults(&mut link, |window, link| {
        if window > 1 {
            return;
        }
        // Wrong direction: an aggregator-bound update sent down to a party.
        let wrong_direction = WireMessage::LocalUpdate {
            job: job0,
            round: 0,
            party: 3,
            num_samples: 1,
            mean_loss: 0.0,
            duration: 0.0,
            params: vec![],
        };
        link.to_pool.send(frame(3, &wrong_direction)).unwrap();
        // Wrong architecture: a global model that matches no agreed spec.
        let wrong_arch = WireMessage::GlobalModel { job: job0, round: 9, params: vec![0.0; 3] };
        link.to_pool.send(frame(3, &wrong_arch)).unwrap();
    });
    assert_eq!(link.pool.rejected(), 4, "2 windows × 2 hostile frames");
    assert_eq!(link.pool.unroutable(), 0);
    assert_histories_clean(&link, &solo);
}

#[test]
fn duplicate_delivery_is_rejected_not_double_aggregated() {
    let solo = solo_histories();
    let mut link = two_job_link();
    run_with_faults(&mut link, |window, link| {
        if window == 0 {
            return; // let round 0 produce real uplink traffic first
        }
        // Redeliver every update the pool has sent so far — classic
        // at-least-once transport behavior. Each replay must bounce
        // with `DuplicateUpdate`/`WrongRound`, never re-aggregate.
        let captured: Vec<bytes::Bytes> = link.uplink.lock().unwrap().clone();
        for dup in captured {
            link.to_driver.send(dup).unwrap();
        }
    });
    assert!(
        link.driver.stats().rejected_messages > 0,
        "replayed frames must surface as rejections"
    );
    assert_eq!(link.driver.stats().corrupt_frames, 0);
    assert_histories_clean(&link, &solo);
}

#[test]
fn interleaved_uplink_frames_from_two_jobs_demultiplex_cleanly() {
    let solo = solo_histories();
    let mut link = two_job_link();
    // Per-pump interleaving already mixes the two jobs' frames on the
    // shared queue; additionally hold ALL uplink traffic back each
    // window and release it riffle-shuffled across jobs, so the driver
    // sees j0,j1,j0,j1,… in a single drain.
    link.driver.start().unwrap();
    loop {
        loop {
            let pooled = link.pool.pump().unwrap();
            // Capture the pool's pending uplink, reorder, re-send.
            let mut held = Vec::new();
            while let Some(f) = link.to_pool.try_recv().unwrap() {
                held.push(f);
            }
            let (evens, odds): (Vec<_>, Vec<_>) =
                held.into_iter().enumerate().partition(|(i, _)| i % 2 == 0);
            for (_, f) in odds.into_iter().chain(evens) {
                link.to_driver.send(f).unwrap();
            }
            let drove = link.driver.pump().unwrap();
            if !drove && !pooled {
                break;
            }
        }
        if link.driver.is_finished() {
            break;
        }
        assert!(link.driver.advance_clock().unwrap(), "driver stalled");
    }
    assert_histories_clean(&link, &solo);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Any schedule of truncations, corruptions, foreign-job frames and
    /// duplicate replays leaves every job's history bit-identical to its
    /// fault-free run.
    #[test]
    fn random_fault_schedules_never_disturb_round_state(
        fault_kinds in proptest::collection::vec(0usize..4, 1..6),
        cut in 1usize..20,
        flip_bit in 0usize..8,
        window_mask in 0u64..8,
    ) {
        let solo = solo_histories();
        let mut link = two_job_link();
        let job0 = link.ids[0];
        run_with_faults(&mut link, |window, link| {
            if window >= 3 || (window_mask >> window) & 1 == 0 {
                return;
            }
            for &kind in &fault_kinds {
                match kind {
                    0 => {
                        let whole = heartbeat_frame(job0);
                        let cut = cut.min(whole.len() - 1);
                        link.to_driver.send(whole.slice(0..cut)).unwrap();
                    }
                    1 => {
                        let mut corrupt = heartbeat_frame(job0).to_vec();
                        let idx = 8 + cut % 5; // somewhere in the message header
                        corrupt[idx] ^= 1 << flip_bit;
                        link.to_driver.send(bytes::Bytes::from(corrupt)).unwrap();
                    }
                    2 => link.to_driver.send(heartbeat_frame(0xF0E1_D2C3)).unwrap(),
                    _ => {
                        let captured: Vec<bytes::Bytes> =
                            link.uplink.lock().unwrap().clone();
                        if let Some(f) = captured.last() {
                            link.to_driver.send(f.clone()).unwrap();
                        }
                    }
                }
            }
        });
        prop_assert!(link.driver.is_finished());
        for (id, clean) in link.ids.iter().zip(&solo) {
            prop_assert_eq!(link.driver.history(*id).unwrap(), clean);
        }
    }
}
