//! Equivalence of the sans-IO protocol driver with the pre-refactor
//! monolithic round loop.
//!
//! The golden values below were captured from the repository state
//! *before* the coordinator redesign (the `FlJob::step` god-loop), per
//! selector kind, on a seeded 12-party / 4-round / 25%-straggler
//! simulation. The message-driven driver must replay the exact same
//! trajectories: accuracy and loss to the bit (hence `f64::to_bits`
//! comparisons), cohorts and stragglers to the element.
//!
//! Byte counters are deliberately not pinned: the protocol now also
//! carries selection notices, heartbeats and aborts, so per-round wire
//! bytes legitimately grew. They are checked for self-consistency
//! against the codec instead.

use flips::fl::message::{
    global_model_bytes, heartbeat_bytes, local_update_bytes, selection_notice_bytes,
};
use flips::prelude::*;

/// One golden round: accuracy bits, mean-train-loss bits, duration bits,
/// selected, completed, stragglers.
type GoldenRound = (u64, u64, u64, &'static [usize], &'static [usize], &'static [usize]);

fn golden(kind: SelectorKind) -> &'static [GoldenRound] {
    match kind {
        SelectorKind::Random => &[
            (0x3fc999999999999a, 0x400075c4dd555555, 0x3fb7cbb2fc103b7a, &[2, 1, 4], &[1, 2], &[4]),
            (0x3fd2666666666666, 0x3ff6601f3bd27d28, 0x3fb6c2f6c5564444, &[5, 1, 0], &[0, 1], &[5]),
            (
                0x3fd0cccccccccccd,
                0x400a50f5e1b6db6e,
                0x3fb30856c9ed9208,
                &[6, 11, 8],
                &[6, 8],
                &[11],
            ),
            (0x3fd4cccccccccccd, 0x3ff5e8688071c71c, 0x3fb6c2f6c5564444, &[2, 1, 5], &[1, 5], &[2]),
        ],
        SelectorKind::Flips => &[
            (0x3fc999999999999a, 0x400075c4dd555555, 0x3fb7cbb2fc103b7a, &[1, 2, 3], &[1, 2], &[3]),
            (
                0x3fd0000000000000,
                0x3ff999fc8c3e4e90,
                0x3fb6c2f6c5564444,
                &[0, 1, 10, 8],
                &[1, 8, 10],
                &[0],
            ),
            (0x3fd7333333333333, 0x3ff7847be8555556, 0x3fbdccbd1dbc0820, &[4, 1, 2], &[2, 4], &[1]),
            (0x3fd999999999999a, 0x3ff1ffa301555555, 0x3fb6c2f6c5564444, &[3, 5, 1], &[1, 5], &[3]),
        ],
        SelectorKind::Oort => &[
            (
                0x3fc999999999999a,
                0x400128c8378e38e3,
                0x3fbdccbd1dbc0820,
                &[2, 1, 4, 6],
                &[1, 2, 4],
                &[6],
            ),
            (
                0x3fd599999999999a,
                0x3ff736ec8fe38e39,
                0x3fc16cde88e8ead0,
                &[0, 7, 9, 11],
                &[7, 9, 11],
                &[0],
            ),
            (
                0x3fdc000000000000,
                0x3ff94cab392e52e5,
                0x3fbdccbd1dbc0820,
                &[4, 8, 5, 3],
                &[3, 4, 8],
                &[5],
            ),
            (
                0x3fe0000000000000,
                0x3fef627cf53cf3d0,
                0x3fb6c2f6c5564444,
                &[1, 7, 8, 10],
                &[1, 8, 10],
                &[7],
            ),
        ],
        SelectorKind::GradClus => &[
            (0x3fce666666666666, 0x4000b15456aaaaaa, 0x3fc16cde88e8ead0, &[7, 3, 6], &[3, 7], &[6]),
            (0x3fd4000000000000, 0x3ffa785db0000000, 0x3fc16cde88e8ead0, &[0, 7, 2], &[2, 7], &[0]),
            (
                0x3fd7333333333333,
                0x3fff2bcee5666666,
                0x3fbdccbd1dbc0820,
                &[4, 10, 9],
                &[4, 9],
                &[10],
            ),
            (
                0x3fdd99999999999a,
                0x3ff1f64b2ceeeeef,
                0x3fbdccbd1dbc0820,
                &[8, 4, 11],
                &[4, 11],
                &[8],
            ),
        ],
        SelectorKind::Tifl => &[
            (
                0x3fc3333333333333,
                0x40060906fc000000,
                0x3fb122f22e1da45d,
                &[6, 10, 8],
                &[6, 10],
                &[8],
            ),
            (
                0x3fd0000000000000,
                0x3ff7328d9c249249,
                0x3fb30856c9ed9208,
                &[6, 8, 10],
                &[8, 10],
                &[6],
            ),
            (
                0x3fd199999999999a,
                0x400040a05e000000,
                0x3fb6f45993f7f742,
                &[1, 11, 9],
                &[1, 9],
                &[11],
            ),
            (0x3fd8cccccccccccd, 0x3fffa49d9ac16c16, 0x3fc16cde88e8ead0, &[2, 4, 7], &[4, 7], &[2]),
        ],
    }
}

fn builder(kind: SelectorKind) -> SimulationBuilder {
    SimulationBuilder::new(DatasetProfile::femnist())
        .parties(12)
        .rounds(4)
        .participation(0.25)
        .alpha(0.3)
        .selector(kind)
        .straggler_rate(0.25)
        .clustering_restarts(3)
        .test_per_class(8)
        .seed(11)
}

fn run(kind: SelectorKind) -> SimulationReport {
    builder(kind).run().unwrap()
}

/// Runs the same seeded job through the serialized stream transport:
/// every message encoded, framed, length-prefixed onto a byte pipe,
/// reassembled and decoded on the far side. Returns the history plus
/// the driver's wire counters (actual bytes under `codec`).
fn run_over_stream_transport_with(kind: SelectorKind, codec: ModelCodec) -> (History, DriverStats) {
    let (job, meta) = builder(kind).codec(codec).build().unwrap();
    let JobParts { coordinator, endpoints, clock, latency, .. } = job.into_parts();
    let (agg_pipe, party_pipe) = duplex();
    let mut driver = MultiJobDriver::new(StreamTransport::new(agg_pipe));
    let job_id = driver.add_job(coordinator, Box::new(clock), latency).unwrap();
    assert_eq!(job_id, meta.job_id);
    assert_eq!(driver.codec_of(job_id), Some(codec));
    let mut pool = PartyPool::new(StreamTransport::new(party_pipe));
    pool.add_job(job_id, endpoints);
    run_lockstep(&mut driver, &mut pool).unwrap();
    assert_eq!(pool.negotiated_codec(job_id), Some(codec), "notice handshake must pin the codec");
    (driver.history(job_id).unwrap().clone(), driver.stats())
}

fn run_over_stream_transport(kind: SelectorKind) -> History {
    run_over_stream_transport_with(kind, ModelCodec::Raw).0
}

#[test]
fn new_driver_replays_pre_refactor_histories_bit_exactly() {
    for kind in SelectorKind::all() {
        let report = run(kind);
        let records = report.history.records();
        let expected = golden(kind);
        assert_eq!(records.len(), expected.len(), "{kind}: round count");
        for (r, (acc, loss, dur, selected, completed, stragglers)) in records.iter().zip(expected) {
            assert_eq!(
                r.accuracy.to_bits(),
                *acc,
                "{kind} round {}: accuracy {} diverged from the pre-refactor path",
                r.round,
                r.accuracy
            );
            assert_eq!(r.mean_train_loss.to_bits(), *loss, "{kind} round {}: loss", r.round);
            assert_eq!(r.round_duration.to_bits(), *dur, "{kind} round {}: duration", r.round);
            assert_eq!(r.selected, *selected, "{kind} round {}: cohort", r.round);
            assert_eq!(r.completed, *completed, "{kind} round {}: completions", r.round);
            assert_eq!(r.stragglers, *stragglers, "{kind} round {}: stragglers", r.round);
        }
    }
}

#[test]
fn serialized_stream_transport_replays_the_goldens_bit_exactly() {
    // The acceptance bar for the transport layer: a seeded single-job
    // run in which every message crosses a length-prefix-framed byte
    // stream (encode → frame → pipe → reassemble → decode) reproduces
    // the pinned pre-refactor histories bit-for-bit, per selector kind.
    for kind in SelectorKind::all() {
        let history = run_over_stream_transport(kind);
        let records = history.records();
        let expected = golden(kind);
        assert_eq!(records.len(), expected.len(), "{kind}: round count over the wire");
        for (r, (acc, loss, dur, selected, completed, stragglers)) in records.iter().zip(expected) {
            assert_eq!(r.accuracy.to_bits(), *acc, "{kind} round {}: accuracy", r.round);
            assert_eq!(r.mean_train_loss.to_bits(), *loss, "{kind} round {}: loss", r.round);
            assert_eq!(r.round_duration.to_bits(), *dur, "{kind} round {}: duration", r.round);
            assert_eq!(r.selected, *selected, "{kind} round {}: cohort", r.round);
            assert_eq!(r.completed, *completed, "{kind} round {}: completions", r.round);
            assert_eq!(r.stragglers, *stragglers, "{kind} round {}: stragglers", r.round);
        }
    }
}

#[test]
fn delta_compressed_wire_replays_the_goldens_bit_exactly() {
    // The codec acceptance bar: `DeltaLossless` is bit-exact, so the
    // same seeded runs over the *compressed* wire must still reproduce
    // the pre-refactor goldens — accuracy, loss and duration to the
    // bit, cohorts to the element — while moving measurably fewer
    // bytes than the raw wire.
    for kind in SelectorKind::all() {
        let (history, stats) = run_over_stream_transport_with(kind, ModelCodec::DeltaLossless);
        let records = history.records();
        let expected = golden(kind);
        assert_eq!(records.len(), expected.len(), "{kind}: round count over the delta wire");
        for (r, (acc, loss, dur, selected, completed, stragglers)) in records.iter().zip(expected) {
            assert_eq!(r.accuracy.to_bits(), *acc, "{kind} round {}: accuracy", r.round);
            assert_eq!(r.mean_train_loss.to_bits(), *loss, "{kind} round {}: loss", r.round);
            assert_eq!(r.round_duration.to_bits(), *dur, "{kind} round {}: duration", r.round);
            assert_eq!(r.selected, *selected, "{kind} round {}: cohort", r.round);
            assert_eq!(r.completed, *completed, "{kind} round {}: completions", r.round);
            assert_eq!(r.stragglers, *stragglers, "{kind} round {}: stragglers", r.round);
        }
        assert_eq!(stats.codec_mismatch_frames, 0, "{kind}");
        assert_eq!(stats.corrupt_frames, 0, "{kind}");
    }
}

#[test]
fn delta_codec_moves_fewer_bytes_than_raw() {
    // Same seeded workload, both codecs: identical histories (checked
    // above), different wire bills. The raw accounting in the records
    // is codec-independent; the DriverStats byte counters measure what
    // actually crossed the pipe.
    let (raw_history, raw) = run_over_stream_transport_with(SelectorKind::Random, ModelCodec::Raw);
    let (delta_history, delta) =
        run_over_stream_transport_with(SelectorKind::Random, ModelCodec::DeltaLossless);
    assert_eq!(raw_history, delta_history, "codecs must not change round outcomes");
    // Downlink: within a round the 2nd..Nth copies of the broadcast
    // XOR to zero and collapse, so the model-bearing downlink roughly
    // halves even on this tiny model. Uplink: each trained update is a
    // distinct high-entropy delta, so the win there is thinner — the
    // realistic mlp-16×256×192×10 numbers are tracked in
    // BENCH_fl_round.json (`transport_bytes_per_round`).
    assert!(
        (delta.bytes_sent as f64) < 0.55 * raw.bytes_sent as f64,
        "delta downlink should collapse rebroadcasts: {} vs {}",
        delta.bytes_sent,
        raw.bytes_sent
    );
    let raw_bytes = raw.bytes_sent + raw.bytes_received;
    let delta_bytes = delta.bytes_sent + delta.bytes_received;
    assert!(
        (delta_bytes as f64) < 0.8 * raw_bytes as f64,
        "DeltaLossless must cut total wire bytes: {delta_bytes} vs {raw_bytes}"
    );
}

#[test]
fn entropy_coded_wire_replays_the_goldens_bit_exactly() {
    // The entropy-stage acceptance bar: `DeltaEntropy` adds a rANS
    // coder over the shuffled delta planes but stays bit-exact, so all
    // five selector goldens must replay unchanged over the
    // entropy-coded wire — accuracy, loss and duration to the bit,
    // cohorts to the element.
    for kind in SelectorKind::all() {
        let (history, stats) = run_over_stream_transport_with(kind, ModelCodec::DeltaEntropy);
        let records = history.records();
        let expected = golden(kind);
        assert_eq!(records.len(), expected.len(), "{kind}: round count over the entropy wire");
        for (r, (acc, loss, dur, selected, completed, stragglers)) in records.iter().zip(expected) {
            assert_eq!(r.accuracy.to_bits(), *acc, "{kind} round {}: accuracy", r.round);
            assert_eq!(r.mean_train_loss.to_bits(), *loss, "{kind} round {}: loss", r.round);
            assert_eq!(r.round_duration.to_bits(), *dur, "{kind} round {}: duration", r.round);
            assert_eq!(r.selected, *selected, "{kind} round {}: cohort", r.round);
            assert_eq!(r.completed, *completed, "{kind} round {}: completions", r.round);
            assert_eq!(r.stragglers, *stragglers, "{kind} round {}: stragglers", r.round);
        }
        assert_eq!(stats.codec_mismatch_frames, 0, "{kind}");
        assert_eq!(stats.corrupt_frames, 0, "{kind}");
    }
}

#[test]
fn entropy_codec_moves_fewer_bytes_than_delta_lossless() {
    // The point of the entropy stage: same histories (checked above),
    // strictly smaller wire bill than the RLE-only delta wire, in both
    // directions combined and on the downlink alone.
    let (delta_history, delta) =
        run_over_stream_transport_with(SelectorKind::Random, ModelCodec::DeltaLossless);
    let (entropy_history, entropy) =
        run_over_stream_transport_with(SelectorKind::Random, ModelCodec::DeltaEntropy);
    assert_eq!(delta_history, entropy_history, "codecs must not change round outcomes");
    assert!(
        entropy.bytes_sent < delta.bytes_sent,
        "entropy downlink must beat delta: {} vs {}",
        entropy.bytes_sent,
        delta.bytes_sent
    );
    let delta_bytes = delta.bytes_sent + delta.bytes_received;
    let entropy_bytes = entropy.bytes_sent + entropy.bytes_received;
    assert!(
        entropy_bytes < delta_bytes,
        "DeltaEntropy must cut total wire bytes below DeltaLossless: {entropy_bytes} vs {delta_bytes}"
    );
}

#[test]
fn topk_wire_completes_with_sparse_model_frames() {
    // TopK is lossy — histories are NOT pinned to the goldens — but the
    // protocol must run to completion, deterministically, and a small k
    // must collapse the downlink model frames to a fraction of raw.
    let (raw_history, raw) = run_over_stream_transport_with(SelectorKind::Random, ModelCodec::Raw);
    let (topk_history, topk) =
        run_over_stream_transport_with(SelectorKind::Random, ModelCodec::TopK { k: 64 });
    assert_eq!(topk_history.len(), raw_history.len(), "every round must close under top-k");
    let (replay_history, _) =
        run_over_stream_transport_with(SelectorKind::Random, ModelCodec::TopK { k: 64 });
    assert_eq!(topk_history, replay_history, "a seeded top-k run must replay bit-identically");
    let raw_bytes = raw.bytes_sent + raw.bytes_received;
    let topk_bytes = topk.bytes_sent + topk.bytes_received;
    assert!(
        (topk_bytes as f64) < 0.6 * raw_bytes as f64,
        "top-k should collapse model frames: {topk_bytes} vs {raw_bytes}"
    );
}

#[test]
fn f16_wire_completes_with_halved_model_frames() {
    // F16 is lossy — histories are NOT pinned to the goldens — but the
    // protocol must run to completion and the wire bill must drop to
    // roughly half the raw model bytes.
    let (raw_history, raw) = run_over_stream_transport_with(SelectorKind::Random, ModelCodec::Raw);
    let (f16_history, f16) = run_over_stream_transport_with(SelectorKind::Random, ModelCodec::F16);
    assert_eq!(f16_history.len(), raw_history.len(), "every round must close under f16");
    let raw_bytes = raw.bytes_sent + raw.bytes_received;
    let f16_bytes = f16.bytes_sent + f16.bytes_received;
    assert!(
        (f16_bytes as f64) < 0.6 * raw_bytes as f64,
        "f16 should halve model frames: {f16_bytes} vs {raw_bytes}"
    );
}

#[test]
fn transport_and_in_process_drivers_agree_on_every_field() {
    // Beyond the golden fields: the full `RoundRecord`s (byte counters,
    // per-label recalls, everything `PartialEq` sees) must be identical
    // between the in-process driver and the serialized transport.
    let in_process = run(SelectorKind::Oort).history;
    let over_wire = run_over_stream_transport(SelectorKind::Oort);
    assert_eq!(in_process, over_wire);
}

#[test]
fn three_multiplexed_jobs_complete_with_isolated_deterministic_histories() {
    // Three differently-seeded jobs share ONE serialized stream — their
    // frames interleave on the same byte pipe — and each must finish
    // with exactly the history it produces when it runs alone.
    let seeds = [11u64, 23, 37];
    let solo: Vec<History> = seeds
        .iter()
        .map(|&seed| {
            let (mut job, _) = builder(SelectorKind::Random).seed(seed).build().unwrap();
            job.run().unwrap()
        })
        .collect();

    let (agg_pipe, party_pipe) = duplex();
    let mut driver = MultiJobDriver::new(StreamTransport::new(agg_pipe));
    let mut pool = PartyPool::new(StreamTransport::new(party_pipe));
    let mut ids = Vec::new();
    for &seed in &seeds {
        let (job, _) = builder(SelectorKind::Random).seed(seed).build().unwrap();
        let JobParts { coordinator, endpoints, clock, latency, .. } = job.into_parts();
        let id = driver.add_job(coordinator, Box::new(clock), latency).unwrap();
        pool.add_job(id, endpoints);
        ids.push(id);
    }
    run_lockstep(&mut driver, &mut pool).unwrap();

    assert!(driver.is_finished());
    for (id, solo_history) in ids.iter().zip(&solo) {
        let multiplexed = driver.history(*id).unwrap();
        assert_eq!(multiplexed, solo_history, "job {id:#x} diverged under multiplexing");
    }
    let stats = driver.stats();
    assert_eq!(stats.corrupt_frames, 0);
    assert_eq!(stats.unknown_job_frames, 0);
    assert_eq!(stats.rejected_messages, 0);
}

#[test]
fn byte_accounting_is_self_consistent_with_the_extended_codec() {
    // Bytes are not pinned to the pre-refactor values (the protocol
    // gained notices/heartbeats/aborts); they must instead be exactly
    // derivable from the codec's per-message sizes.
    let report = run(SelectorKind::Random);
    for r in report.history.records() {
        // Recover the parameter count from the down-link equation:
        // bytes_down = |selected|·(notice + model(p)) + |stragglers|·abort.
        // The abort reason is fixed ("deadline expired", 16 bytes), so
        // solve and cross-check both directions.
        let abort_size = flips::fl::WireMessage::Abort {
            job: 0,
            round: 0,
            party: 0,
            reason: "deadline expired".into(),
        }
        .wire_size() as u64;
        let n_sel = r.selected.len() as u64;
        let n_str = r.stragglers.len() as u64;
        let n_com = r.completed.len() as u64;
        let fixed = n_sel * selection_notice_bytes() as u64 + n_str * abort_size;
        assert!(r.bytes_down > fixed, "round {}: down bytes too small", r.round);
        let per_model = (r.bytes_down - fixed) / n_sel;
        let params = (per_model as usize - global_model_bytes(0)) / 4;
        assert_eq!(
            r.bytes_down,
            n_sel * (selection_notice_bytes() + global_model_bytes(params)) as u64
                + n_str * abort_size,
            "round {}: down bytes",
            r.round
        );
        assert_eq!(
            r.bytes_up,
            n_sel * heartbeat_bytes() as u64 + n_com * local_update_bytes(params) as u64,
            "round {}: up bytes",
            r.round
        );
    }
}
