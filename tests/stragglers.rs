//! End-to-end straggler behaviour (paper §5.3): overprovisioning engages,
//! FLIPS keeps converging under 10–20% drop rates, and the ablation
//! switch isolates the mechanism.

use flips::prelude::*;

fn builder(kind: SelectorKind, rate: f64) -> SimulationBuilder {
    SimulationBuilder::new(DatasetProfile::ecg())
        .parties(30)
        .rounds(12)
        .participation(0.3)
        .alpha(0.3)
        .selector(kind)
        .straggler_rate(rate)
        .clustering_restarts(3)
        .test_per_class(8)
        .seed(13)
}

#[test]
fn flips_overprovisions_while_stragglers_are_outstanding() {
    let report = builder(SelectorKind::Flips, 0.2).run().unwrap();
    let nr = report.meta.parties_per_round;
    let overprovisioned = report
        .history
        .records()
        .iter()
        .skip(1) // round 0 has no straggler history yet
        .filter(|r| r.selected.len() > nr)
        .count();
    assert!(
        overprovisioned > 0,
        "FLIPS never overprovisioned across {} straggler-laden rounds",
        report.history.len()
    );
}

#[test]
fn ablation_switch_suppresses_overprovisioning() {
    let report = builder(SelectorKind::Flips, 0.2).without_overprovisioning().run().unwrap();
    let nr = report.meta.parties_per_round;
    assert!(
        report.history.records().iter().all(|r| r.selected.len() == nr),
        "ablated FLIPS must select exactly Nr parties"
    );
}

#[test]
fn oort_selects_1_3x_under_stragglers() {
    let report = builder(SelectorKind::Oort, 0.1).run().unwrap();
    let nr = report.meta.parties_per_round;
    let expected = ((nr as f64) * 1.3).ceil() as usize;
    for r in report.history.records() {
        assert_eq!(r.selected.len(), expected, "round {}", r.round);
    }
}

#[test]
fn no_stragglers_without_injection() {
    let report = builder(SelectorKind::Flips, 0.0).run().unwrap();
    assert_eq!(report.history.total_stragglers(), 0);
    let nr = report.meta.parties_per_round;
    assert!(report.history.records().iter().all(|r| r.selected.len() == nr));
}

#[test]
fn stragglers_scale_with_the_configured_rate() {
    let low = builder(SelectorKind::Random, 0.1).run().unwrap();
    let high = builder(SelectorKind::Random, 0.3).run().unwrap();
    assert!(
        high.history.total_stragglers() > low.history.total_stragglers(),
        "30% rate ({}) must strike more than 10% ({})",
        high.history.total_stragglers(),
        low.history.total_stragglers()
    );
}

#[test]
fn flips_still_learns_under_heavy_stragglers() {
    let report = SimulationBuilder::new(DatasetProfile::femnist())
        .parties(24)
        .rounds(20)
        .participation(0.3)
        .alpha(0.5)
        .selector(SelectorKind::Flips)
        .straggler_rate(0.2)
        .clustering_restarts(3)
        .test_per_class(10)
        .parallel(true)
        .seed(21)
        .run()
        .unwrap();
    let first = report.history.records()[0].accuracy;
    assert!(
        report.peak_accuracy() > first + 0.1,
        "no learning under stragglers: {} -> {}",
        first,
        report.peak_accuracy()
    );
}
