//! The scale-equivalence plane: every scale mechanism this workspace
//! grows — streaming selection off a (possibly disk-spilled)
//! [`RosterStore`], shard-level aggregation trees, bounded-memory
//! roster state — is pinned against the flat-roster paths with the same
//! oracle every other driver had to clear: a seeded run must be
//! **bit-identical** however its roster is materialized and however its
//! updates are folded.
//!
//! Three claims, three test groups:
//!
//! 1. **Streaming selection**: selectors built from a streamed
//!    [`flips_selection::CandidateSource`] (in-memory or sealed to disk
//!    segments) make the *same seeded choices* as the flat-vector
//!    constructors, so the five selector goldens replay bit-identically
//!    in-process, over the 2-shard threaded wire, and over epoll TCP.
//! 2. **Aggregation trees**: a run whose `PartyPool` inner nodes fold
//!    their parties' updates into one exact integer partial per round
//!    equals the flat run under the same exact-fold arithmetic — full
//!    `RoundRecord` equality (byte accounting included) — while moving
//!    measurably fewer uplink frames.
//! 3. **Bounded memory**: a million-registered-party roster streams
//!    through selection with only a budgeted number of segments
//!    resident, and the spill/load counters surface through
//!    [`DriverStats`].

use flips::prelude::*;
use flips_net::{run_socket, SocketOptions};
use std::sync::Arc;

/// The golden workload (the protocol-equivalence suite's shape): the
/// pre-refactor histories pinned in `tests/protocol_equivalence.rs`
/// were captured from exactly this builder.
fn golden_builder(kind: SelectorKind) -> SimulationBuilder {
    SimulationBuilder::new(DatasetProfile::femnist())
        .parties(12)
        .rounds(4)
        .participation(0.25)
        .alpha(0.3)
        .selector(kind)
        .straggler_rate(0.25)
        .clustering_restarts(3)
        .test_per_class(8)
        .seed(11)
}

/// A unique, self-cleaning spill directory per test.
struct SpillDir(std::path::PathBuf);

impl SpillDir {
    fn new(name: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("flips-scale-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        SpillDir(dir)
    }
}

impl Drop for SpillDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

// ---------------------------------------------------------------------
// 1. Streaming selection ≡ flat selection
// ---------------------------------------------------------------------

#[test]
fn streaming_selection_replays_every_selector_golden_in_process() {
    // The tentpole oracle, leg one: the same seeded 12-party job built
    // with selectors streaming a RosterStore — in-memory AND sealed to
    // disk — must reproduce the flat-vector history bit-for-bit, for
    // all five selector kinds.
    for kind in SelectorKind::all() {
        let flat = golden_builder(kind).run().unwrap().history;
        let streamed = golden_builder(kind).streaming_roster().run().unwrap().history;
        assert_eq!(streamed, flat, "{kind}: streamed roster moved the history");
        let dir = SpillDir::new(&format!("inproc-{kind}"));
        let spilled = golden_builder(kind).spill_roster(&dir.0, 1).run().unwrap().history;
        assert_eq!(spilled, flat, "{kind}: disk-spilled roster moved the history");
    }
}

#[test]
fn streaming_selection_replays_the_goldens_across_two_shards() {
    // Leg one over the threaded wire: streaming-roster jobs on the
    // 2-shard runtime against the flat in-process golden.
    for kind in SelectorKind::all() {
        let flat = golden_builder(kind).run().unwrap().history;
        let (job, meta) = golden_builder(kind).streaming_roster().build().unwrap();
        let mut outcome = run_sharded(vec![job.into_parts()], &RuntimeOptions::new(2)).unwrap();
        let history = outcome.histories.remove(&meta.job_id).unwrap();
        assert_eq!(history, flat, "{kind}: streamed roster diverged on the 2-shard wire");
        assert_eq!(outcome.stats.corrupt_frames, 0, "{kind}");
    }
}

#[test]
fn streaming_selection_replays_the_goldens_over_tcp() {
    // Leg one over real sockets: streaming-roster jobs on the epoll
    // runtime, two TCP links, against the flat in-process golden.
    for kind in SelectorKind::all() {
        let flat = golden_builder(kind).run().unwrap().history;
        let (job, meta) = golden_builder(kind).streaming_roster().build().unwrap();
        let mut outcome = run_socket(vec![job.into_parts()], &SocketOptions::new(2)).unwrap();
        let history = outcome.histories.remove(&meta.job_id).unwrap();
        assert_eq!(history, flat, "{kind}: streamed roster diverged over TCP");
    }
}

/// A small deterministic roster with distinct per-party attributes.
fn synthetic_records(n: usize) -> Vec<PartyRecord> {
    (0..n)
        .map(|i| PartyRecord {
            data_size: (i as u64 * 31) % 97 + 5,
            latency_hint: 0.05 + (i as f64 * 0.37) % 1.0,
            label_counts: vec![(i as u64 * 7) % 13, (i as u64 * 11) % 17, 3],
        })
        .collect()
}

#[test]
fn multi_segment_spill_streams_the_same_candidates_as_memory() {
    // Paging must be invisible to selection: the same 26 parties split
    // across 7 sealed segments with a single-segment cache make every
    // selector draw the same seeded cohorts as the in-memory store.
    let records = synthetic_records(26);
    let memory = RosterStore::from_records(records.clone());
    let dir = SpillDir::new("multi-seg");
    let mut rb = RosterBuilder::spilling(&dir.0, 1).unwrap().segment_cap(4);
    for r in records {
        rb.push(r).unwrap();
    }
    let spilled = rb.finish().unwrap();
    assert_eq!(spilled.spilled(), 7, "26 parties over cap-4 segments");

    use flips::selection::oort::OortConfig;
    use flips::selection::tifl::TiflConfig;
    use flips::selection::{GradClusSelector, OortSelector, RandomSelector, TiflSelector};
    let mut pairs: Vec<(Box<dyn ParticipantSelector>, Box<dyn ParticipantSelector>)> = vec![
        (
            Box::new(RandomSelector::from_source(&memory, 11)),
            Box::new(RandomSelector::from_source(&spilled, 11)),
        ),
        (
            Box::new(OortSelector::from_source(&memory, OortConfig::default(), 11)),
            Box::new(OortSelector::from_source(&spilled, OortConfig::default(), 11)),
        ),
        (
            Box::new(GradClusSelector::from_source(&memory, 8, 11).unwrap()),
            Box::new(GradClusSelector::from_source(&spilled, 8, 11).unwrap()),
        ),
        (
            Box::new(TiflSelector::from_source(&memory, TiflConfig::default(), 11).unwrap()),
            Box::new(TiflSelector::from_source(&spilled, TiflConfig::default(), 11).unwrap()),
        ),
    ];
    for (from_memory, from_spill) in &mut pairs {
        for round in 0..4 {
            let a = from_memory.select(round, 5).unwrap();
            let b = from_spill.select(round, 5).unwrap();
            assert_eq!(a, b, "{}: round {round} cohort moved under paging", from_memory.name());
        }
    }
    assert!(spilled.loaded() > 0, "a single-segment cache must have paged");
}

#[test]
fn roster_counters_surface_through_driver_stats() {
    // The observability leg: a spill-backed roster attached to a driver
    // reports its sealed/paged segment counts through `DriverStats` —
    // live values, summed across attached rosters.
    let dir = SpillDir::new("driver-stats");
    let mut rb = RosterBuilder::spilling(&dir.0, 1).unwrap().segment_cap(4);
    for r in synthetic_records(12) {
        rb.push(r).unwrap();
    }
    let store = Arc::new(rb.finish().unwrap());
    // Touch two different segments through the budget-1 cache.
    store.record(0).unwrap();
    store.record(8).unwrap();
    let loaded_before = store.loaded();
    assert!(loaded_before >= 2);

    let (agg_pipe, _party_pipe) = duplex();
    let mut driver = MultiJobDriver::new(StreamTransport::new(agg_pipe));
    driver.attach_roster(Arc::clone(&store));
    let stats = driver.stats();
    assert_eq!(stats.roster_spilled, 3, "12 parties over cap-4 segments");
    assert_eq!(stats.roster_loaded, loaded_before);
    // The counters are live, not snapshotted at attach time: party 1
    // lives in segment 0, which the budget-1 cache evicted when party 8
    // paged segment 2 in, so this read pages again.
    store.record(1).unwrap();
    assert!(driver.stats().roster_loaded > loaded_before);
}

// ---------------------------------------------------------------------
// 2. Aggregation trees ≡ flat exact fold
// ---------------------------------------------------------------------

/// Drives `builder`'s job on the lockstep serialized driver with the
/// coordinator in exact-fold mode; `tree` additionally makes the party
/// pool an aggregation-tree inner node.
fn exact_lockstep(builder: &SimulationBuilder, tree: bool) -> (History, DriverStats) {
    let (job, meta) = builder.build().unwrap();
    let mut parts = job.into_parts();
    parts.coordinator.set_exact_fold(true);
    let sketch_dim = parts.coordinator.sketch_dim();
    let (agg_pipe, party_pipe) = duplex();
    let mut driver = MultiJobDriver::new(StreamTransport::new(agg_pipe));
    let (id, endpoints) = driver.add_parts(parts).unwrap();
    assert_eq!(id, meta.job_id);
    let mut pool = PartyPool::new(StreamTransport::new(party_pipe));
    pool.add_job(id, endpoints);
    if tree {
        pool.enable_tree(id, sketch_dim);
    }
    run_lockstep(&mut driver, &mut pool).unwrap();
    (driver.history(id).unwrap().clone(), driver.stats())
}

#[test]
fn tree_aggregation_equals_flat_exact_fold_for_every_selector() {
    // The tentpole oracle, leg two: folding updates at the pool and
    // merging the 256-bit integer partial at the coordinator produces
    // the same bits as folding every update flat at the coordinator —
    // full RoundRecord equality, byte accounting included, for all five
    // selectors — while the uplink moves fewer frames (one partial per
    // pool per round instead of one frame per party update).
    for kind in SelectorKind::all() {
        let (flat, flat_stats) = exact_lockstep(&golden_builder(kind), false);
        let (tree, tree_stats) = exact_lockstep(&golden_builder(kind), true);
        assert_eq!(tree, flat, "{kind}: tree aggregation moved the history");
        assert!(
            tree_stats.frames_received < flat_stats.frames_received,
            "{kind}: the tree must shrink uplink fan-in ({} vs {})",
            tree_stats.frames_received,
            flat_stats.frames_received
        );
        // Raw-canonical byte accounting means the RoundRecord byte
        // columns agree even though the wire moved fewer frames.
        for (t, f) in tree.records().iter().zip(flat.records()) {
            assert_eq!(t.bytes_up, f.bytes_up, "{kind} round {}", t.round);
            assert_eq!(t.bytes_down, f.bytes_down, "{kind} round {}", t.round);
        }
    }
}

#[test]
fn tree_aggregation_matches_flat_exact_fold_across_two_shards() {
    // Leg two on the threaded runtime: `RuntimeOptions::with_tree`
    // turns every shard's pool into an inner node and every coordinator
    // into an exact-fold merger; the histories must equal the lockstep
    // flat exact fold for all five selectors.
    for kind in SelectorKind::all() {
        let (flat, _) = exact_lockstep(&golden_builder(kind), false);
        let (job, meta) = golden_builder(kind).build().unwrap();
        let opts = RuntimeOptions::new(2).with_tree();
        let mut outcome = run_sharded(vec![job.into_parts()], &opts).unwrap();
        let history = outcome.histories.remove(&meta.job_id).unwrap();
        assert_eq!(history, flat, "{kind}: 2-shard tree diverged from flat exact fold");
    }
}

#[test]
fn tree_aggregation_matches_flat_exact_fold_over_tcp() {
    // Leg two over real sockets: `SocketOptions::with_tree` folds at
    // every link worker; partial frames cross kernel TCP buffers and
    // must merge into the same bits as the lockstep flat exact fold.
    for kind in [SelectorKind::Random, SelectorKind::Flips, SelectorKind::Oort] {
        let (flat, _) = exact_lockstep(&golden_builder(kind), false);
        let (job, meta) = golden_builder(kind).build().unwrap();
        let opts = SocketOptions::new(2).with_tree();
        let mut outcome = run_socket(vec![job.into_parts()], &opts).unwrap();
        let history = outcome.histories.remove(&meta.job_id).unwrap();
        assert_eq!(history, flat, "{kind}: TCP tree diverged from flat exact fold");
    }
}

#[test]
fn default_mode_coordinator_rejects_tree_partials() {
    // Safety rail: a pool folding for a coordinator that was never put
    // in exact-fold mode must not corrupt the run — the partial bounces
    // as a wrong-direction frame and the round closes out its parties
    // as stragglers rather than folding unverifiable bits.
    let (job, meta) = golden_builder(SelectorKind::Random).build().unwrap();
    let parts = job.into_parts();
    let sketch_dim = parts.coordinator.sketch_dim();
    let (agg_pipe, party_pipe) = duplex();
    let mut driver = MultiJobDriver::new(StreamTransport::new(agg_pipe));
    let (id, endpoints) = driver.add_parts(parts).unwrap();
    assert_eq!(id, meta.job_id);
    let mut pool = PartyPool::new(StreamTransport::new(party_pipe));
    pool.add_job(id, endpoints);
    pool.enable_tree(id, sketch_dim);
    run_lockstep(&mut driver, &mut pool).unwrap();
    let stats = driver.stats();
    assert!(stats.rejected_messages > 0, "partials must bounce off a default-mode coordinator");
    // Every round still closes (by deadline), so the history is full
    // length even though no update was ever accepted.
    assert_eq!(driver.history(id).unwrap().len(), 4);
}

// ---------------------------------------------------------------------
// 3. Bounded-memory roster state
// ---------------------------------------------------------------------

#[test]
fn hundred_thousand_party_roster_selects_under_a_bounded_cache() {
    // The bounded-memory claim at test scale (the full 10⁶ smoke rides
    // the bench harness): 100k registered parties sealed to disk, a
    // 4-segment cache, and a seeded selection pass that touches the
    // whole roster — never more than `budget` segments resident.
    let dir = SpillDir::new("100k");
    let budget = 4;
    let mut rb = RosterBuilder::spilling(&dir.0, budget).unwrap();
    let n = 100_000usize;
    for i in 0..n {
        rb.push(PartyRecord {
            data_size: (i as u64 * 31) % 997 + 1,
            latency_hint: 0.01 + (i as f64 * 0.61) % 2.0,
            label_counts: vec![(i as u64) % 5, (i as u64) % 3],
        })
        .unwrap();
    }
    let store = rb.finish().unwrap();
    assert_eq!(store.num_parties(), n);
    assert_eq!(store.spilled() as usize, n.div_ceil(4096));
    assert!(store.resident_segments() <= budget);

    use flips::selection::tifl::TiflConfig;
    use flips::selection::{RandomSelector, TiflSelector};
    let mut random = RandomSelector::from_source(&store, 7);
    let cohort = random.select(0, 64).unwrap();
    assert_eq!(cohort.len(), 64);
    assert!(cohort.iter().all(|&p| p < n));
    // TiFL tiers the full roster by streamed latency — a complete pass
    // over every sealed segment.
    let mut tifl = TiflSelector::from_source(&store, TiflConfig::default(), 7).unwrap();
    assert_eq!(tifl.select(0, 64).unwrap().len(), 64);
    assert!(
        store.resident_segments() <= budget,
        "selection paged {} segments resident (budget {budget})",
        store.resident_segments()
    );
    assert!(store.loaded() > 0, "the pass must actually have paged");
}
