//! Cross-crate property tests: invariants of whole simulations under
//! randomized configurations (kept tiny — each case runs a full FL job).

use flips::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn simulations_satisfy_round_invariants(
        seed in 0u64..100,
        selector_idx in 0usize..5,
        straggler_pct in 0usize..3,
        alpha_idx in 0usize..2,
    ) {
        let kind = SelectorKind::all()[selector_idx];
        let alpha = [0.3, 0.6][alpha_idx];
        let rate = [0.0, 0.1, 0.2][straggler_pct];
        let report = SimulationBuilder::new(DatasetProfile::femnist())
            .parties(15)
            .rounds(4)
            .participation(0.3)
            .alpha(alpha)
            .selector(kind)
            .straggler_rate(rate)
            .clustering_restarts(2)
            .test_per_class(5)
            .seed(seed)
            .run()
            .unwrap();

        prop_assert_eq!(report.history.len(), 4);
        let nr = report.meta.parties_per_round;
        for r in report.history.records() {
            // Cohort at least Nr, all ids valid and distinct.
            prop_assert!(r.selected.len() >= nr);
            let mut ids = r.selected.clone();
            ids.sort_unstable();
            ids.dedup();
            prop_assert_eq!(ids.len(), r.selected.len());
            prop_assert!(r.selected.iter().all(|&p| p < 15));
            // Outcome partition.
            prop_assert_eq!(
                r.completed.len() + r.stragglers.len(),
                r.selected.len()
            );
            // Metrics in range.
            prop_assert!((0.0..=1.0).contains(&r.accuracy));
            prop_assert!(r.mean_train_loss >= 0.0);
            // Monotone byte accounting.
            prop_assert!(r.bytes_down >= r.bytes_up || r.stragglers.is_empty());
        }
        // Peak accuracy dominates every round's accuracy.
        let peak = report.peak_accuracy();
        prop_assert!(report
            .history
            .records()
            .iter()
            .all(|r| r.accuracy <= peak + 1e-12));
    }

    #[test]
    fn rounds_to_target_is_consistent_with_the_series(
        seed in 0u64..50,
        target_pct in 10u32..95,
    ) {
        let report = SimulationBuilder::new(DatasetProfile::fashion_mnist())
            .parties(12)
            .rounds(5)
            .participation(0.3)
            .selector(SelectorKind::Random)
            .test_per_class(5)
            .seed(seed)
            .run()
            .unwrap();
        let target = target_pct as f64 / 100.0;
        match report.history.rounds_to_target(target) {
            Some(r) => {
                let series = report.history.accuracy_series();
                prop_assert!(series[r - 1] >= target);
                prop_assert!(series[..r - 1].iter().all(|&a| a < target));
            }
            None => {
                prop_assert!(report
                    .history
                    .accuracy_series()
                    .iter()
                    .all(|&a| a < target));
            }
        }
    }
}
