//! Cross-crate end-to-end tests: the full pipeline (synthetic data →
//! Dirichlet partition → TEE clustering → selection → FL rounds →
//! metrics) on scaled-down versions of the paper's experiments.

use flips::prelude::*;

fn builder(profile: DatasetProfile, selector: SelectorKind) -> SimulationBuilder {
    SimulationBuilder::new(profile)
        .parties(24)
        .rounds(10)
        .participation(0.25)
        .alpha(0.3)
        .selector(selector)
        .clustering_restarts(3)
        .test_per_class(10)
        .seed(17)
}

#[test]
fn all_selectors_complete_on_all_profiles() {
    for profile in DatasetProfile::all() {
        for kind in SelectorKind::all() {
            let report = builder(profile.clone(), kind)
                .run()
                .unwrap_or_else(|e| panic!("{} / {kind}: {e}", profile.name));
            assert_eq!(report.history.len(), 10, "{} / {kind}", profile.name);
            for record in report.history.records() {
                assert!(record.selected.len() >= report.meta.parties_per_round);
                assert!((0.0..=1.0).contains(&record.accuracy));
            }
        }
    }
}

#[test]
fn round_records_are_internally_consistent() {
    let report =
        builder(DatasetProfile::ecg(), SelectorKind::Flips).straggler_rate(0.2).run().unwrap();
    for r in report.history.records() {
        // completed ∪ stragglers == selected (as sets).
        let mut resolved: Vec<_> = r.completed.iter().chain(&r.stragglers).copied().collect();
        resolved.sort_unstable();
        let mut selected = r.selected.clone();
        selected.sort_unstable();
        assert_eq!(resolved, selected, "round {} loses parties", r.round);
        // No party both completes and straggles.
        assert!(r.completed.iter().all(|p| !r.stragglers.contains(p)));
        // Byte accounting present whenever anyone completed.
        if !r.completed.is_empty() {
            assert!(r.bytes_up > 0);
            assert!(r.round_duration > 0.0);
        }
        assert!(r.bytes_down > 0);
        // Recalls are probabilities.
        for recall in r.per_label_recall.iter().flatten() {
            assert!((0.0..=1.0).contains(recall));
        }
    }
}

#[test]
fn flips_beats_random_on_imbalanced_non_iid_data() {
    // The paper's headline claim (Tables 1–4), scaled down: on the
    // ECG-shaped, heavily label-imbalanced dataset with Dirichlet(0.3)
    // partitioning, FLIPS converges to a higher balanced accuracy than
    // random selection. Averaged over 2 seeds to damp run noise.
    let run = |kind: SelectorKind, seed: u64| {
        SimulationBuilder::new(DatasetProfile::ecg())
            .parties(40)
            .rounds(35)
            .participation(0.2)
            .alpha(0.3)
            .selector(kind)
            .clustering_restarts(4)
            .test_per_class(20)
            .parallel(true)
            .seed(seed)
            .run()
            .unwrap()
            .peak_accuracy()
    };
    let flips: f64 = [3u64, 4].iter().map(|&s| run(SelectorKind::Flips, s)).sum::<f64>() / 2.0;
    let random: f64 = [3u64, 4].iter().map(|&s| run(SelectorKind::Random, s)).sum::<f64>() / 2.0;
    assert!(flips > random + 0.03, "flips {flips:.3} must clearly beat random {random:.3}");
}

#[test]
fn flips_lifts_rare_label_recall() {
    // Figure 13's mechanism: the rarest label's recall under FLIPS
    // exceeds its recall under random selection.
    let run = |kind: SelectorKind| {
        SimulationBuilder::new(DatasetProfile::ecg())
            .parties(40)
            .rounds(35)
            .participation(0.2)
            .alpha(0.3)
            .selector(kind)
            .clustering_restarts(4)
            .test_per_class(20)
            .parallel(true)
            .seed(5)
            .run()
            .unwrap()
    };
    let rare_labels = [1usize, 2, 3, 4]; // every non-majority ECG class
    let mean_peak_rare = |r: &SimulationReport| {
        rare_labels
            .iter()
            .map(|&l| r.history.label_recall_series(l).into_iter().flatten().fold(0.0f64, f64::max))
            .sum::<f64>()
            / rare_labels.len() as f64
    };
    let flips = run(SelectorKind::Flips);
    let random = run(SelectorKind::Random);
    assert!(
        mean_peak_rare(&flips) > mean_peak_rare(&random),
        "flips rare-recall {:.3} vs random {:.3}",
        mean_peak_rare(&flips),
        mean_peak_rare(&random)
    );
}

#[test]
fn higher_alpha_is_easier_for_random_selection() {
    // §4.3: α ≥ 1 approaches IID, where random selection suffices. The
    // random-selection gap between α = 5 and α = 0.1 should be positive.
    let run = |alpha: f64| {
        SimulationBuilder::new(DatasetProfile::femnist())
            .parties(30)
            .rounds(25)
            .participation(0.2)
            .alpha(alpha)
            .selector(SelectorKind::Random)
            .test_per_class(15)
            .parallel(true)
            .seed(9)
            .run()
            .unwrap()
            .peak_accuracy()
    };
    let iid_ish = run(5.0);
    let pathological = run(0.1);
    assert!(
        iid_ish > pathological,
        "α=5 ({iid_ish:.3}) should beat α=0.1 ({pathological:.3}) under random selection"
    );
}

#[test]
fn communication_accounting_scales_with_model_and_cohort() {
    let small =
        builder(DatasetProfile::femnist(), SelectorKind::Random).participation(0.2).run().unwrap();
    let large =
        builder(DatasetProfile::femnist(), SelectorKind::Random).participation(0.5).run().unwrap();
    assert!(
        large.history.total_bytes() > small.history.total_bytes(),
        "more participants per round must cost more bytes"
    );
}
