//! The failure-recovery plane: checkpoint/restore bit-equality, party
//! churn, and `Disconnect` as a seeded replayable fault.
//!
//! Three oracles pin the recovery plane's behavior:
//!
//! 1. **Restore ≡ uninterrupted.** A run snapshotted at *every* round
//!    boundary and restored from *any* of those snapshots into a fresh
//!    driver + party pool finishes with the exact history AND the exact
//!    final wire counters of the uninterrupted run — for all five
//!    selectors, and with the delta-entropy codec re-keyed from the
//!    snapshot's reference (so encoded byte counts match to the byte).
//! 2. **Churn is a roster edit, not a perturbation.** A party retired
//!    through [`MultiJobDriver::party_left`] is never selected again
//!    until [`MultiJobDriver::party_joined`] readmits it; the
//!    availability mask rides through checkpoints, so a restore mid-churn
//!    continues exactly the churned run.
//! 3. **Disconnect replays.** With the `Disconnect` chaos action drawn
//!    from a seeded schedule — severing a link and backlogging its
//!    traffic until the wire runs dry — every selector golden is
//!    bit-identical on the lockstep wire and the 2-shard runtime alike.
//! 4. **The scale plane composes.** A run whose selectors stream a
//!    spill-backed [`RosterStore`] restores from every boundary onto the
//!    flat golden, and the roster spill/load counters are live gauges of
//!    the attached store — never checkpoint state.

use flips::fl::runtime::{run_sharded, RuntimeOptions};
use flips::fl::{ChaosEvent, Checkpoint};
use flips::prelude::*;

const CHAOS_SEEDS: [u64; 3] = [7, 101, 90210];
const SHARDED_CHAOS_SEEDS: [u64; 3] = [13, 101, 90210];

/// The golden workload shared with `tests/guard_plane.rs`: its solo run
/// is the oracle every recovered variant must reproduce.
fn builder(kind: SelectorKind) -> SimulationBuilder {
    SimulationBuilder::new(DatasetProfile::femnist())
        .parties(12)
        .rounds(4)
        .participation(0.25)
        .alpha(0.3)
        .selector(kind)
        .straggler_rate(0.25)
        .clustering_restarts(3)
        .test_per_class(8)
        .seed(11)
}

/// Chaos weights with the link-severing action live (drops stay off:
/// `Disconnect` must be the only new perturbation under test).
fn disconnect_weights() -> ChaosWeights {
    ChaosWeights { disconnect: 2, ..ChaosWeights::default() }
}

fn disconnects(log: &[ChaosEvent]) -> usize {
    log.iter().filter(|e| matches!(e.action, ChaosAction::Disconnect)).count()
}

/// Builds a fresh lockstep driver + pool pair for `builder`'s job.
fn fresh_pair(
    builder: &SimulationBuilder,
) -> (MultiJobDriver<MemoryTransport>, PartyPool<MemoryTransport>, u64) {
    let (job, meta) = builder.build().unwrap();
    let (agg_end, party_end) = MemoryTransport::pair();
    let mut driver = MultiJobDriver::new(agg_end);
    let (id, endpoints) = driver.add_parts(job.into_parts()).unwrap();
    assert_eq!(id, meta.job_id);
    let mut pool = PartyPool::new(party_end);
    pool.add_job(id, endpoints);
    (driver, pool, id)
}

/// [`run_lockstep`] with the checkpoint seam opened: deferred round
/// opens expose every round boundary, and a [`Checkpoint`] is captured
/// at each one (the final boundary included) — exactly the loop the
/// socket server runs when `--checkpoint-dir` is set.
fn run_lockstep_checkpointing(
    driver: &mut MultiJobDriver<MemoryTransport>,
    pool: &mut PartyPool<MemoryTransport>,
) -> Vec<Checkpoint> {
    driver.set_deferred_opens(true).unwrap();
    driver.start().unwrap();
    let mut snapshots = Vec::new();
    loop {
        loop {
            let drove = driver.pump().unwrap();
            let pooled = pool.pump().unwrap();
            if !drove && !pooled {
                break;
            }
        }
        if driver.has_pending_opens() {
            assert!(driver.at_round_boundary(), "pending open away from a round boundary");
            snapshots.push(driver.checkpoint().unwrap());
            driver.open_pending().unwrap();
            continue;
        }
        if driver.is_finished() || driver.is_quiescent() {
            assert!(driver.at_round_boundary());
            // The final round's close already queued (and snapshotted) a
            // pending open that turned out to be a no-op; only record the
            // terminal boundary when it actually differs.
            let cp = driver.checkpoint().unwrap();
            if snapshots.last().map(Checkpoint::encode) != Some(cp.encode()) {
                snapshots.push(cp);
            }
            return snapshots;
        }
        assert!(driver.advance_clock().unwrap(), "driver stalled at a quiet wire");
    }
}

/// Restores `cp` into a fresh driver + pool for `builder`'s job, seeds
/// the pool-side delta references the way the socket server's
/// `RefSync` frames would, and runs the remainder to completion.
fn restore_and_finish(
    builder: &SimulationBuilder,
    cp: &Checkpoint,
    codec: Option<ModelCodec>,
) -> (History, DriverStats, u64) {
    let (mut driver, mut pool, id) = fresh_pair(builder);
    driver.restore(cp).unwrap();
    // A restored run re-enters mid-job, past the round-0 negotiation
    // notice — pin the wire codec the way `flips-party` pins it from
    // its config before the server's `RefSync` frames land.
    if let Some(codec) = codec {
        pool.pin_codec(id, codec);
    }
    for r in &cp.codec_refs {
        assert!(
            pool.seed_reference(r.job, r.ref_round, &r.params),
            "pool refused a checkpointed delta reference (job {:#x}, round {})",
            r.job,
            r.ref_round
        );
    }
    run_lockstep(&mut driver, &mut pool).unwrap();
    (driver.history(id).unwrap().clone(), driver.stats(), id)
}

#[test]
fn deferred_opens_leave_every_selector_golden_unmoved() {
    // The checkpoint seam itself must be invisible: a run whose round
    // opens are deferred to the boundary hook replays the inline-open
    // golden bit-identically and snapshots once per boundary.
    for kind in SelectorKind::all() {
        let golden = builder(kind).run().unwrap().history;
        let (mut driver, mut pool, id) = fresh_pair(&builder(kind));
        let snapshots = run_lockstep_checkpointing(&mut driver, &mut pool);
        assert_eq!(
            driver.history(id).unwrap(),
            &golden,
            "{kind}: deferred round opens moved the history"
        );
        // 4 rounds → boundaries after rounds 1..3 plus the final one.
        assert_eq!(snapshots.len(), 4, "{kind}: wrong boundary count");
        for (i, cp) in snapshots.iter().enumerate() {
            assert_eq!(cp.jobs.len(), 1);
            assert_eq!(cp.jobs[0].history.len(), i + 1, "{kind}: snapshot {i} captured early");
        }
    }
}

#[test]
fn restore_from_every_boundary_replays_the_golden() {
    // The tentpole oracle: restore-then-run is indistinguishable from
    // never having stopped — full history equality AND full
    // `DriverStats` equality (frame and byte counters included) from
    // every capturable boundary, for every selector.
    for kind in SelectorKind::all() {
        let golden = builder(kind).run().unwrap().history;
        let (mut driver, mut pool, id) = fresh_pair(&builder(kind));
        let snapshots = run_lockstep_checkpointing(&mut driver, &mut pool);
        assert_eq!(driver.history(id).unwrap(), &golden);
        let final_stats = driver.stats();
        for (i, cp) in snapshots.iter().enumerate() {
            let (history, stats, _) = restore_and_finish(&builder(kind), cp, None);
            assert_eq!(history, golden, "{kind}: restore from boundary {i} moved the history");
            assert_eq!(stats, final_stats, "{kind}: restore from boundary {i} moved the counters");
        }
    }
}

#[test]
fn restore_rekeys_the_delta_codec_to_the_exact_byte_stream() {
    // The delta-entropy wire makes restore hard: every encoded global
    // is a delta against the previous reference, so a restored server
    // must re-key from the snapshot or every byte count drifts. History
    // rows carry bytes_down/bytes_up and DriverStats carries bytes_sent,
    // so equality here pins the re-keyed byte stream exactly.
    let shape = builder(SelectorKind::Flips).codec(ModelCodec::DeltaEntropy);
    let golden = shape.clone().run().unwrap().history;
    let (mut driver, mut pool, id) = fresh_pair(&shape);
    let snapshots = run_lockstep_checkpointing(&mut driver, &mut pool);
    assert_eq!(driver.history(id).unwrap(), &golden);
    let final_stats = driver.stats();
    assert!(
        snapshots.iter().skip(1).any(|cp| !cp.codec_refs.is_empty()),
        "no snapshot carried a delta reference — the re-key path is untested"
    );
    for (i, cp) in snapshots.iter().enumerate() {
        let (history, stats, _) = restore_and_finish(&shape, cp, Some(ModelCodec::DeltaEntropy));
        assert_eq!(history, golden, "delta wire: restore from boundary {i} moved the history");
        assert_eq!(stats, final_stats, "delta wire: boundary {i} drifted the byte counters");
    }
}

/// Drives a churn scenario: retire `leaver` at the first round
/// boundary, readmit at the third. Returns the history, the snapshot
/// captured at the boundary right after the leave, and the final stats.
fn run_churned(shape: &SimulationBuilder, leaver: PartyId) -> (History, Checkpoint, DriverStats) {
    let (mut driver, mut pool, id) = fresh_pair(shape);
    driver.set_deferred_opens(true).unwrap();
    driver.start().unwrap();
    let mut boundary = 0usize;
    let mut left_snapshot = None;
    loop {
        loop {
            let drove = driver.pump().unwrap();
            let pooled = pool.pump().unwrap();
            if !drove && !pooled {
                break;
            }
        }
        if driver.has_pending_opens() {
            boundary += 1;
            if boundary == 1 {
                driver.party_left(id, leaver).unwrap();
                left_snapshot = Some(driver.checkpoint().unwrap());
            } else if boundary == 3 {
                driver.party_joined(id, leaver).unwrap();
            }
            driver.open_pending().unwrap();
            continue;
        }
        if driver.is_finished() || driver.is_quiescent() {
            let history = driver.history(id).unwrap().clone();
            return (history, left_snapshot.unwrap(), driver.stats());
        }
        assert!(driver.advance_clock().unwrap());
    }
}

#[test]
fn a_departed_party_is_never_selected_until_it_rejoins() {
    // Retire a party at the first boundary: rounds 1 and 2 must select
    // from the 11-party roster without it; after the readmission at the
    // third boundary it is eligible again. The availability mask in the
    // leave-boundary snapshot records the retirement.
    for kind in SelectorKind::all() {
        let leaver: PartyId = 5;
        let (history, cp, _) = run_churned(&builder(kind), leaver);
        assert_eq!(history.len(), 4, "{kind}: churn broke round completion");
        for round in 1..3 {
            assert!(
                !history.records()[round].selected.contains(&leaver),
                "{kind}: round {round} selected the departed party {leaver}"
            );
        }
        let mask = &cp.jobs[0].active;
        assert!(!mask[leaver as usize], "{kind}: snapshot mask kept the leaver active");
        assert_eq!(mask.iter().filter(|&&a| a).count(), 11, "{kind}: wrong active count");
    }
}

#[test]
fn churn_state_survives_checkpoint_restore() {
    // Restore from the snapshot taken right after the leave — WITHOUT
    // re-issuing the churn calls on the fresh driver. The mask restored
    // off the wire format must keep the leaver out of rounds 1 and 2,
    // and (since the rejoin happened after the snapshot) the restored
    // continuation diverges from the churned original only where the
    // readmission would land — so we replay the rejoin at the same
    // boundary and demand full-history equality.
    for kind in [SelectorKind::Random, SelectorKind::Flips] {
        let leaver: PartyId = 5;
        let (churned, cp, churned_stats) = run_churned(&builder(kind), leaver);

        let (mut driver, mut pool, id) = fresh_pair(&builder(kind));
        driver.restore(&cp).unwrap();
        for r in &cp.codec_refs {
            assert!(pool.seed_reference(r.job, r.ref_round, &r.params));
        }
        driver.set_deferred_opens(true).unwrap();
        driver.start().unwrap();
        // The snapshot sits at boundary 1; the rejoin lands at 3.
        let mut boundary = 1usize;
        loop {
            loop {
                let drove = driver.pump().unwrap();
                let pooled = pool.pump().unwrap();
                if !drove && !pooled {
                    break;
                }
            }
            if driver.has_pending_opens() {
                boundary += 1;
                if boundary == 3 {
                    driver.party_joined(id, leaver).unwrap();
                }
                driver.open_pending().unwrap();
                continue;
            }
            if driver.is_finished() || driver.is_quiescent() {
                break;
            }
            assert!(driver.advance_clock().unwrap());
        }
        assert_eq!(
            driver.history(id).unwrap(),
            &churned,
            "{kind}: the restored continuation diverged from the churned run"
        );
        assert_eq!(driver.stats(), churned_stats, "{kind}: churned counters drifted");
    }
}

#[test]
fn disconnect_chaos_replays_every_selector_golden_lockstep() {
    // A seeded Disconnect severs the uplink mid-round and backlogs its
    // frames until the wire runs dry — whole-link FIFO order holds, so
    // the histories cannot move. Three seeds, five selectors, default
    // guards watching.
    for kind in SelectorKind::all() {
        let clean = builder(kind).run().unwrap().history;
        let mut severed = 0usize;
        for seed in CHAOS_SEEDS {
            let schedule = ChaosSchedule::seeded(seed).weights(disconnect_weights());
            let (job, meta) = builder(kind).build().unwrap();
            let (agg_end, party_end) = MemoryTransport::pair();
            let mut driver = MultiJobDriver::new(ChaosTransport::new(agg_end, schedule));
            driver.set_guard(GuardConfig::default()).unwrap();
            let (id, endpoints) = driver.add_parts(job.into_parts()).unwrap();
            assert_eq!(id, meta.job_id);
            let mut pool = PartyPool::new(party_end);
            pool.add_job(id, endpoints);
            run_lockstep(&mut driver, &mut pool).unwrap();
            assert_eq!(
                driver.history(id).unwrap(),
                &clean,
                "{kind}: disconnect seed {seed} moved the lockstep history"
            );
            assert_eq!(driver.stats().parties_ejected, 0, "{kind}: seed {seed} tripped a breaker");
            assert!(!driver.transport().log().is_empty(), "{kind}: seed {seed} applied no chaos");
            severed += disconnects(driver.transport().log());
        }
        assert!(severed > 0, "{kind}: no seed ever severed the link — the suite is vacuous");
    }
}

#[test]
fn disconnect_chaos_replays_every_selector_golden_sharded() {
    // Same bar on the 2-shard threaded runtime: each link severs and
    // reconnects independently under its own frame-index stream.
    for kind in SelectorKind::all() {
        let clean = builder(kind).run().unwrap().history;
        let mut severed = 0usize;
        for seed in SHARDED_CHAOS_SEEDS {
            let (job, meta) = builder(kind).build().unwrap();
            let opts = RuntimeOptions::new(2)
                .with_guard(GuardConfig::default())
                .with_chaos(ChaosSchedule::seeded(seed).weights(disconnect_weights()));
            let outcome = run_sharded(vec![job.into_parts()], &opts).unwrap();
            assert_eq!(
                outcome.histories.get(&meta.job_id),
                Some(&clean),
                "{kind}: disconnect seed {seed} moved the 2-shard history"
            );
            assert_eq!(outcome.stats.parties_ejected, 0, "{kind}: seed {seed}");
            assert!(!outcome.chaos_events.is_empty(), "{kind}: seed {seed} applied no chaos");
            severed += disconnects(&outcome.chaos_events);
        }
        assert!(severed > 0, "{kind}: no 2-shard seed severed a link — the suite is vacuous");
    }
}

/// A 12-party spilling roster with a 4-record segment cap — three
/// sealed segments behind a single-segment cache, so every cross-segment
/// read pages from disk.
fn spilled_store(dir: &std::path::Path) -> std::sync::Arc<RosterStore> {
    let mut rb = RosterBuilder::spilling(dir, 1).unwrap().segment_cap(4);
    for i in 0..12u64 {
        rb.push(PartyRecord {
            data_size: 5 + i,
            latency_hint: 0.1 + i as f64 * 0.01,
            label_counts: vec![i, 2 * i, 3],
        })
        .unwrap();
    }
    std::sync::Arc::new(rb.finish().unwrap())
}

#[test]
fn restore_composes_with_a_spilled_roster() {
    // The scale plane under the recovery plane: when the builder seals
    // its roster to disk segments and streams selection through a
    // single-segment cache, the checkpoint seam still captures every
    // boundary, and a restore from any of them finishes on the flat
    // golden with the flat run's exact wire counters.
    let base = std::env::temp_dir().join(format!("flips-recovery-spill-{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();
    for kind in SelectorKind::all() {
        let golden = builder(kind).run().unwrap().history;
        let dir = base.join(kind.to_string());
        let shape = || builder(kind).spill_roster(&dir, 1);
        let (mut driver, mut pool, id) = fresh_pair(&shape());
        let snapshots = run_lockstep_checkpointing(&mut driver, &mut pool);
        assert_eq!(
            driver.history(id).unwrap(),
            &golden,
            "{kind}: the spilled roster moved the history"
        );
        let final_stats = driver.stats();
        for (i, cp) in snapshots.iter().enumerate() {
            let (history, stats, _) = restore_and_finish(&shape(), cp, None);
            assert_eq!(
                history, golden,
                "{kind}: restore from boundary {i} over a spilled roster moved the history"
            );
            assert_eq!(
                stats, final_stats,
                "{kind}: restore from boundary {i} over a spilled roster moved the counters"
            );
        }
    }
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn roster_counters_are_live_gauges_not_checkpoint_state() {
    // `DriverStats::{roster_spilled, roster_loaded}` report on the
    // stores attached to *this* driver. A checkpoint carries none of
    // that: a restored driver reads zero until a store is attached, and
    // afterwards reports exactly the fresh store's own activity — the
    // Prometheus gauges restart with the process, by design.
    let base = std::env::temp_dir().join(format!("flips-recovery-gauge-{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();
    let kind = SelectorKind::Random;
    let golden = builder(kind).run().unwrap().history;

    let (mut driver, mut pool, id) = fresh_pair(&builder(kind));
    let store = spilled_store(&base.join("before"));
    store.record(0).unwrap();
    store.record(8).unwrap(); // cross-segment read: forces a page-in
    driver.attach_roster(std::sync::Arc::clone(&store));
    let snapshots = run_lockstep_checkpointing(&mut driver, &mut pool);
    assert_eq!(driver.history(id).unwrap(), &golden);
    let live = driver.stats();
    assert_eq!(live.roster_spilled, 3, "three sealed segments should be visible");
    assert!(live.roster_loaded > 0, "the cross-segment read never paged");

    // Restore into a fresh driver: the counters are gone with the store.
    let (mut restored, mut rpool, rid) = fresh_pair(&builder(kind));
    restored.restore(snapshots.first().unwrap()).unwrap();
    assert_eq!(restored.stats().roster_spilled, 0, "spill count leaked through the checkpoint");
    assert_eq!(restored.stats().roster_loaded, 0, "load count leaked through the checkpoint");

    // Attaching a fresh store re-counts from that store's activity only.
    let fresh = spilled_store(&base.join("after"));
    restored.attach_roster(std::sync::Arc::clone(&fresh));
    run_lockstep(&mut restored, &mut rpool).unwrap();
    assert_eq!(restored.history(rid).unwrap(), &golden);
    let stats = restored.stats();
    assert_eq!(stats.roster_spilled, fresh.spilled());
    assert_eq!(stats.roster_loaded, fresh.loaded());
    std::fs::remove_dir_all(&base).ok();
}
