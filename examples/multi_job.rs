//! Multi-job multiplexing: three concurrent FL jobs over one serialized
//! byte stream.
//!
//! ```text
//! cargo run --release --example multi_job
//! ```
//!
//! Where `quickstart` runs one job through the in-process driver, this
//! example stands up the transport stack: three differently-seeded jobs
//! (with different selection policies and straggler regimes) are
//! registered with one `MultiJobDriver`, their parties live in one
//! `PartyPool`, and every message of every round crosses a single
//! length-prefix-framed duplex pipe as encoded bytes — the frames of all
//! three jobs interleaved on the same wire, demultiplexed by the job id
//! each message carries. A deterministic timer wheel fires each job's
//! round deadlines; jobs with different deadline spacing drift in and
//! out of phase, which is exactly the traffic pattern a real aggregator
//! serving many federations sees.

use flips::prelude::*;

/// Wraps a job's straggler injector to stretch its round deadline on
/// the timer wheel — jobs with different spacing interleave instead of
/// marching in lock-step.
struct PacedClock {
    injector: StragglerInjector,
    ticks: u64,
}

impl Clock for PacedClock {
    fn missed_deadline(&mut self, cohort: &[PartyId], latency: &LatencyModel) -> Vec<usize> {
        self.injector.missed_deadline(cohort, latency)
    }
    fn deadline_ticks(&self) -> u64 {
        self.ticks
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Each job negotiates its own model-payload codec on the shared
    // wire: alpha stays on the raw default, bravo entropy-codes its
    // deltas, carol opts into lossy top-k sparsification.
    let configs = [
        ("alpha", SelectorKind::Flips, 0.00, 43u64, 1u64, ModelCodec::Raw),
        ("bravo", SelectorKind::Oort, 0.25, 44, 2, ModelCodec::DeltaEntropy),
        ("carol", SelectorKind::Random, 0.25, 45, 3, ModelCodec::TopK { k: 512 }),
    ];

    let (agg_pipe, party_pipe) = duplex();
    let mut driver = MultiJobDriver::new(StreamTransport::new(agg_pipe));
    let mut pool = PartyPool::new(StreamTransport::new(party_pipe));

    println!("registering jobs on one serialized link:");
    let mut ids = Vec::new();
    for (name, selector, straggler_rate, seed, ticks, codec) in configs {
        let (job, meta) = SimulationBuilder::new(DatasetProfile::femnist())
            .parties(15)
            .rounds(8)
            .participation(0.25)
            .selector(selector)
            .straggler_rate(straggler_rate)
            .clustering_restarts(4)
            .test_per_class(10)
            .codec(codec)
            .seed(seed)
            .build()?;
        let JobParts { coordinator, endpoints, clock, latency, .. } = job.into_parts();
        let id = driver.add_job(
            coordinator,
            Box::new(PacedClock { injector: clock, ticks }),
            latency,
        )?;
        pool.add_job(id, endpoints);
        println!(
            "  job {name}: id {id:#018x}, {} parties, {:?} selection, {}% stragglers, \
             deadline every {ticks} tick(s), {codec} payloads",
            meta.num_parties,
            selector,
            (straggler_rate * 100.0) as u32,
        );
        ids.push((name, id));
    }

    // The guard plane rides between the wire and the coordinators; on a
    // clean link its permissive defaults are pure observation.
    driver.set_guard(GuardConfig::default())?;

    println!("\nrunning all jobs to completion over the shared wire ...");
    run_lockstep(&mut driver, &mut pool)?;

    let stats = driver.stats();
    println!(
        "done at virtual tick {}: {} frames down ({:.2} MiB), {} frames up ({:.2} MiB), \
         {} rejected",
        driver.tick(),
        stats.frames_sent,
        stats.bytes_sent as f64 / (1024.0 * 1024.0),
        stats.frames_received,
        stats.bytes_received as f64 / (1024.0 * 1024.0),
        stats.rejected_messages
    );
    println!(
        "guard plane: {} rate-limited, {} breaker-dropped, {} admission-refused, \
         {} oversized, {} parties ejected\n",
        stats.rate_limited_frames,
        stats.breaker_dropped_frames,
        stats.admission_refused_frames,
        stats.oversized_frames,
        stats.parties_ejected
    );

    println!("job    codec           rounds  peak-acc  stragglers  accounted-MiB");
    for (name, id) in &ids {
        let history = driver.history(*id).expect("job ran");
        let codec = driver.codec_of(*id).expect("registered");
        println!(
            "{name:6} {:14} {:6}  {:8.4}  {:10}  {:13.2}",
            codec.label(),
            history.len(),
            history.peak_accuracy(),
            history.total_stragglers(),
            history.total_bytes() as f64 / (1024.0 * 1024.0)
        );
    }

    // Per-link negotiation: one federation split across two shard
    // links can speak a *different* codec on each — here link 0 stays
    // on the job-wide lossless delta while link 1 is entropy-coded.
    // Both are lossless, so the history must match the in-process run
    // bit for bit.
    use flips::fl::runtime::{run_sharded, RuntimeOptions};
    println!("\nper-link negotiation: splitting bravo's shape across two links ...");
    let base = SimulationBuilder::new(DatasetProfile::femnist())
        .parties(15)
        .rounds(8)
        .participation(0.25)
        .selector(SelectorKind::Oort)
        .straggler_rate(0.25)
        .clustering_restarts(4)
        .test_per_class(10)
        .codec(ModelCodec::DeltaLossless)
        .seed(44);
    let golden = base.clone().run()?.history;
    let (job, meta) = base.build()?;
    let opts = RuntimeOptions::new(2).with_link_codec(meta.job_id, 1, ModelCodec::DeltaEntropy);
    let outcome = run_sharded(vec![job.into_parts()], &opts)?;
    let history = outcome.histories.get(&meta.job_id).expect("job ran");
    println!(
        "  link 0 {} / link 1 {} -> {} rounds, histories {} the single-codec run",
        ModelCodec::DeltaLossless.label(),
        ModelCodec::DeltaEntropy.label(),
        history.len(),
        if *history == golden { "bit-identical to" } else { "DIVERGED from" }
    );
    assert_eq!(*history, golden, "lossless per-link codecs must not move the history");
    Ok(())
}
