//! Skin-lesion triage across clinics — the HAM10000-shaped workload.
//!
//! ```text
//! cargo run --release --example skin_lesions
//! ```
//!
//! Dermatoscopy archives are dominated by benign nevi (`nv` ≈ 67%), while
//! diagnostically critical categories (`bcc`, `df`, `vasc`) are rare and
//! unevenly spread across clinics. This example runs the full selector
//! comparison of the paper's §5 on the HAM10000 profile — Random, FLIPS,
//! Oort, GradClus and TiFL under one seed — and prints a Table 3/4-style
//! summary row for each.

use flips::prelude::*;

fn main() -> Result<(), FlipsError> {
    let profile = DatasetProfile::ham10000();
    println!(
        "HAM10000-profile federation: {} classes, dominant 'nv' prior {:.0}%",
        profile.classes,
        profile.class_priors[5] * 100.0
    );
    println!();
    println!(
        "{:<10} {:>14} {:>10} {:>12} {:>14}",
        "selector", "rounds-to-60%", "peak acc", "MiB-to-60%", "clusters (k)"
    );

    for kind in SelectorKind::all() {
        let report = SimulationBuilder::new(profile.clone())
            .parties(80)
            .rounds(100)
            .participation(0.20)
            .alpha(0.3)
            .algorithm(FlAlgorithm::fedyogi())
            .selector(kind)
            .clustering_restarts(10)
            .parallel(true)
            .seed(11)
            .run()?;

        let rtt = report
            .rounds_to_target()
            .map(|r| r.to_string())
            .unwrap_or_else(|| format!(">{}", report.meta.rounds));
        let mib = report
            .history
            .bytes_to_target(report.meta.target_accuracy)
            .map(|b| format!("{:.1}", b as f64 / (1024.0 * 1024.0)))
            .unwrap_or_else(|| "-".into());
        let k = report.meta.k.map(|k| k.to_string()).unwrap_or_else(|| "-".into());
        println!(
            "{:<10} {:>14} {:>10.3} {:>12} {:>14}",
            kind.label(),
            rtt,
            report.peak_accuracy(),
            mib,
            k
        );
    }

    println!();
    println!("(lower rounds/MiB to target and higher peak accuracy are better)");
    Ok(())
}
