//! Arrhythmia detection — the paper's motivating senior-care workload
//! (§2.2, §7).
//!
//! ```text
//! cargo run --release --example arrhythmia
//! ```
//!
//! ECG wearables record overwhelmingly normal (`N`) heartbeats; abnormal
//! rhythms live on the few devices worn by people with heart ailments.
//! Random participant selection keeps picking majority-`N` parties, so
//! the global model drifts toward "everything is normal" — exactly the
//! failure mode that makes arrhythmia detection miss the patients it
//! exists for. This example compares Random and FLIPS selection on the
//! MIT-BIH-shaped profile and prints the recall trajectory of the
//! *rarest* beat class, reproducing the Figure 13 (left) effect.

use flips::prelude::*;

fn run(selector: SelectorKind) -> Result<SimulationReport, FlipsError> {
    SimulationBuilder::new(DatasetProfile::ecg())
        .parties(80)
        .rounds(80)
        .participation(0.20)
        .alpha(0.3)
        .algorithm(FlAlgorithm::fedyogi())
        .selector(selector)
        .clustering_restarts(10)
        .parallel(true)
        .seed(7)
        .run()
}

fn main() -> Result<(), FlipsError> {
    let profile = DatasetProfile::ecg();
    let rare = profile.rarest_label();
    println!(
        "Rarest beat class: '{}' (prior {:.1}% of all heartbeats)",
        profile.label_names[rare],
        profile.class_priors[rare] * 100.0
    );
    println!();

    let random = run(SelectorKind::Random)?;
    let flips = run(SelectorKind::Flips)?;

    println!("round | balanced accuracy      | recall of '{}'", profile.label_names[rare]);
    println!("      | random    flips        | random    flips");
    let ra = random.history.accuracy_series();
    let fa = flips.history.accuracy_series();
    let rr = random.history.label_recall_series(rare);
    let fr = flips.history.label_recall_series(rare);
    for i in (9..ra.len()).step_by(10) {
        println!(
            "{:5} | {:.3}     {:.3}        | {:.3}     {:.3}",
            i + 1,
            ra[i],
            fa[i],
            rr[i].unwrap_or(0.0),
            fr[i].unwrap_or(0.0),
        );
    }

    println!();
    println!(
        "peak balanced accuracy: random {:.3} vs flips {:.3}",
        random.peak_accuracy(),
        flips.peak_accuracy()
    );
    let peak_rare = |r: &SimulationReport| {
        r.history.label_recall_series(rare).into_iter().flatten().fold(0.0f64, f64::max)
    };
    println!(
        "peak '{}' recall      : random {:.3} vs flips {:.3}",
        profile.label_names[rare],
        peak_rare(&random),
        peak_rare(&flips)
    );
    println!();
    println!(
        "FLIPS clustered the {} wearables into k = {:?} label-distribution groups",
        flips.meta.num_parties, flips.meta.k
    );
    Ok(())
}
