//! The guard plane live: a flooding party tripped and ejected, a
//! latency-bound job counting late updates, and the determinism oracle
//! holding through all of it.
//!
//! ```text
//! cargo run --release --example guarded_runtime
//! ```
//!
//! Two jobs share one serialized link. Job `alpha` runs the paper's
//! injected-deadline path with straggler injection off; a hostile
//! handle floods the aggregator with forged out-of-round heartbeats
//! claiming one of alpha's parties, until that party's circuit breaker
//! opens and the guard ejects it from the rounds it would have joined.
//! Job `bravo` runs a latency-derived deadline, so its slow tail
//! legitimately misses rounds (late updates — pressure, not hostility).
//!
//! The punchline is the reference run: the same two seeded jobs,
//! **no guard, no flood**, with alpha's clock scripted to mark the
//! ejected party a deadline victim in exactly the rounds the breaker
//! held it out. Both histories must match bit-for-bit — ejecting a
//! hostile party is provably indistinguishable from that party
//! straggling, and no other party's trajectory moves at all. The
//! example exits nonzero if any of that fails, so CI can smoke-run it.

use flips::fl::message::{frame, AGGREGATOR_DEST};
use flips::prelude::*;

const HOSTILE: u64 = 1;

fn alpha() -> SimulationBuilder {
    SimulationBuilder::new(DatasetProfile::femnist())
        .parties(12)
        .rounds(4)
        .participation(0.25)
        .alpha(0.3)
        .selector(SelectorKind::Random)
        .straggler_rate(0.0)
        .clustering_restarts(3)
        .test_per_class(8)
        .seed(11)
}

fn bravo() -> SimulationBuilder {
    SimulationBuilder::new(DatasetProfile::femnist())
        .parties(12)
        .rounds(4)
        .participation(0.25)
        .selector(SelectorKind::Oort)
        .deadline(DeadlinePolicy::LatencyQuantile { q: 0.5, slack: 1.1 })
        .latency_sigma(0.8)
        .clustering_restarts(3)
        .test_per_class(8)
        .seed(23)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Guarded run, flood on the wire -----------------------------
    let (agg_pipe, party_pipe) = MemoryTransport::pair();
    let mut hostile_handle = party_pipe.clone();
    let mut driver = MultiJobDriver::new(agg_pipe);
    driver.set_guard(GuardConfig {
        rate_limit: Some(RateLimit::default()),
        breaker: Some(BreakerConfig { strike_threshold: 4, ..BreakerConfig::default() }),
        admission_factor: None,
        ..GuardConfig::default()
    })?;
    let mut pool = PartyPool::new(party_pipe);

    let (job_a, meta_a) = alpha().build()?;
    let (id_a, endpoints) = driver.add_parts(job_a.into_parts())?;
    pool.add_job(id_a, endpoints);
    let (job_b, meta_b) = bravo().build()?;
    let (id_b, endpoints) = driver.add_parts(job_b.into_parts())?;
    pool.add_job(id_b, endpoints);
    println!("job alpha: id {id_a:#018x}, injected deadlines, flood target = party {HOSTILE}");
    println!("job bravo: id {id_b:#018x}, p50×1.1 latency deadline, honest slow tail");
    assert_eq!((id_a, id_b), (meta_a.job_id, meta_b.job_id));

    println!("\nrunning guarded, with forged heartbeats flooding the uplink ...");
    driver.start()?;
    let forged = frame(
        AGGREGATOR_DEST,
        &WireMessage::Heartbeat { job: id_a, round: u64::MAX, party: HOSTILE },
    );
    let mut window = 0u64;
    loop {
        if window < 2 {
            // Each forged frame bounces with WrongRound and strikes the
            // claimed sender; threshold 4 opens its breaker.
            for _ in 0..6 {
                hostile_handle.send(&forged)?;
            }
        }
        window += 1;
        while driver.pump()? | pool.pump()? {}
        if driver.is_finished() {
            break;
        }
        assert!(driver.advance_clock()?, "driver stalled");
    }

    let stats = driver.stats();
    let transitions = driver.guard().expect("guard installed").transitions().to_vec();
    let guarded_a = driver.history(id_a).expect("alpha ran").clone();
    let guarded_b = driver.history(id_b).expect("bravo ran").clone();
    println!(
        "guard plane: {} rejected, {} parties ejected, {} late updates (bravo's tail)",
        stats.rejected_messages, stats.parties_ejected, stats.late_updates
    );
    for t in &transitions {
        println!(
            "  breaker: job {:#018x} party {} -> {} (round open #{})",
            t.job, t.party, t.to, t.open_index
        );
    }
    assert!(stats.parties_ejected >= 1, "the flood must trip the hostile party's breaker");
    assert!(stats.late_updates > 0, "bravo's latency deadline must bite its slow tail");
    assert!(
        transitions.iter().any(|t| t.job == id_a && t.party == HOSTILE),
        "only the flooded party may transition"
    );

    let script: Vec<Vec<PartyId>> =
        guarded_a.records().iter().map(|r| r.stragglers.clone()).collect();
    let ejected_rounds: Vec<_> =
        guarded_a.records().iter().filter(|r| !r.stragglers.is_empty()).map(|r| r.round).collect();
    println!("party {HOSTILE} held out of round(s) {ejected_rounds:?} while its breaker was open");
    assert!(!ejected_rounds.is_empty(), "the ejection never bit a round");

    // ---- Reference run: no guard, no flood, scripted victims --------
    println!("\nreplaying unguarded with party {HOSTILE} scripted as a deadline victim ...");
    let (agg_pipe, party_pipe) = MemoryTransport::pair();
    let mut reference = MultiJobDriver::new(agg_pipe);
    let mut ref_pool = PartyPool::new(party_pipe);
    let (job_a, _) = alpha().build()?;
    let JobParts { coordinator, endpoints, latency, .. } = job_a.into_parts();
    let ref_a = reference.add_job(coordinator, Box::new(ScriptedClock::new(script)), latency)?;
    ref_pool.add_job(ref_a, endpoints);
    let (job_b, _) = bravo().build()?;
    let (ref_b, endpoints) = reference.add_parts(job_b.into_parts())?;
    ref_pool.add_job(ref_b, endpoints);
    run_lockstep(&mut reference, &mut ref_pool)?;

    assert_eq!(
        reference.history(ref_a).expect("alpha replayed"),
        &guarded_a,
        "ejection must be bit-identical to scripted victim injection"
    );
    assert_eq!(
        reference.history(ref_b).expect("bravo replayed"),
        &guarded_b,
        "the flood must not move the other job's history"
    );
    println!(
        "ok: breaker ejection replayed bit-identically as victim injection; \
         bravo untouched by the flood"
    );
    Ok(())
}
