//! The threaded sharded runtime with latency-derived deadlines.
//!
//! ```text
//! cargo run --release --example sharded_runtime
//! ```
//!
//! Where `multi_job` multiplexes jobs over one serialized link on a
//! single thread, this example runs the full concurrent stack: the
//! party roster is sharded across worker threads (each shard training
//! its parties in parallel and speaking to the aggregator over its own
//! transport link), the `MultiJobDriver` runs on a dedicated
//! coordinator thread, and — instead of the paper's injected victim
//! sets — each job's round deadline is **derived from the round-trip
//! latencies the driver actually observes**: the warm-up round is
//! unbounded, then every round's collection window is
//! `slack × quantile_q(observed durations)`, so the heavy tail of the
//! device population misses rounds exactly as the latency model says it
//! should.
//!
//! The example runs the same seeded workload single-threaded first and
//! asserts the sharded histories are bit-identical — the determinism
//! contract the equivalence suite pins, demonstrated live.

use flips::prelude::*;

fn builder(seed: u64, policy: DeadlinePolicy, codec: ModelCodec) -> SimulationBuilder {
    SimulationBuilder::new(DatasetProfile::femnist())
        .parties(16)
        .rounds(6)
        .participation(0.25)
        .selector(SelectorKind::Random)
        .deadline(policy)
        .latency_sigma(0.8)
        .clustering_restarts(4)
        .test_per_class(10)
        .codec(codec)
        .seed(seed)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let configs = [
        ("alpha", DeadlinePolicy::LatencyQuantile { q: 0.5, slack: 1.1 }, ModelCodec::Raw, 43u64),
        ("bravo", DeadlinePolicy::latency_default(), ModelCodec::DeltaLossless, 44),
        ("carol", DeadlinePolicy::FixedSeconds { secs: 0.15 }, ModelCodec::Raw, 45),
    ];

    // The golden oracle: the same three seeded jobs, single-threaded.
    println!("running the single-threaded goldens ...");
    let goldens: Vec<(u64, History)> = configs
        .iter()
        .map(|(_, policy, codec, seed)| {
            let report = builder(*seed, *policy, *codec).run()?;
            Ok::<_, FlipsError>((report.meta.job_id, report.history))
        })
        .collect::<Result<_, _>>()?;

    for shards in [2, 4] {
        println!("\nrunning the same jobs across {shards} worker shards ...");
        let jobs: Vec<JobParts> = configs
            .iter()
            .map(|(_, policy, codec, seed)| {
                Ok::<_, FlipsError>(builder(*seed, *policy, *codec).build()?.0.into_parts())
            })
            .collect::<Result<_, _>>()?;
        let outcome = run_sharded(jobs, &RuntimeOptions::new(shards))?;

        println!("job    deadline policy            rounds  peak-acc  stragglers");
        for ((name, policy, _, _), (id, golden)) in configs.iter().zip(&goldens) {
            let history = outcome.histories.get(id).expect("job ran");
            assert_eq!(
                history, golden,
                "{name}: the {shards}-shard history diverged from the single-threaded golden"
            );
            let label = match policy {
                DeadlinePolicy::LatencyQuantile { q, slack } => {
                    format!("p{:02.0} quantile x {slack}", q * 100.0)
                }
                DeadlinePolicy::FixedSeconds { secs } => format!("fixed {} ms", secs * 1e3),
                DeadlinePolicy::Ewma { alpha, slack } => format!("ewma a={alpha} x {slack}"),
                DeadlinePolicy::Injected => "injected victims".into(),
            };
            println!(
                "{name:6} {label:26} {:6}  {:8.4}  {:10}",
                history.len(),
                history.peak_accuracy(),
                history.total_stragglers(),
            );
        }
        println!(
            "{} updates arrived past their latency-derived deadline and were closed out \
             as stragglers; histories are bit-identical to the single-threaded run.",
            outcome.stats.late_updates
        );
    }

    println!("\nok: 2- and 4-shard runs reproduced the single-threaded histories bit-exactly");
    Ok(())
}
