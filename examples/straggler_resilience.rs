//! Straggler resilience — FLIPS's overprovisioning under platform
//! heterogeneity (paper §5.3, Figures 6/8).
//!
//! ```text
//! cargo run --release --example straggler_resilience
//! ```
//!
//! Drops 0% / 10% / 20% of each round's participants and compares FLIPS
//! with and without its straggler-overprovisioning mechanism (the
//! ablation DESIGN.md calls out), plus Oort with its 1.3× rule. FLIPS
//! replaces stragglers with parties from the *same label-distribution
//! cluster*, so the round's label mix stays intact.
//!
//! Under the sans-IO protocol, "dropping" a party means its `LocalUpdate`
//! misses the round deadline: the driver withholds the message, the
//! coordinator closes the round on `DeadlineExpired`, and whoever has
//! not delivered closes out as a straggler (and is sent an `Abort`).
//! Selectors observe exactly what a real deployment would — selected,
//! completed, stragglers — via the round-close feedback.

use flips::prelude::*;

fn build(
    rate: f64,
    kind: SelectorKind,
    overprovision: bool,
) -> Result<SimulationReport, FlipsError> {
    let mut b = SimulationBuilder::new(DatasetProfile::ecg())
        .parties(60)
        .rounds(60)
        .participation(0.20)
        .alpha(0.3)
        .selector(kind)
        .straggler_rate(rate)
        .clustering_restarts(8)
        .parallel(true)
        .seed(23);
    if !overprovision {
        b = b.without_overprovisioning();
    }
    b.run()
}

fn main() -> Result<(), FlipsError> {
    println!("{:<28} {:>8} {:>10} {:>12}", "configuration", "peak", "final", "stragglers");
    for rate in [0.0, 0.10, 0.20] {
        for (label, kind, overprovision) in [
            ("flips", SelectorKind::Flips, true),
            ("flips (no overprovision)", SelectorKind::Flips, false),
            ("oort", SelectorKind::Oort, true),
        ] {
            let report = build(rate, kind, overprovision)?;
            println!(
                "{:<28} {:>8.3} {:>10.3} {:>12}",
                format!("{label} @ {:.0}% drop", rate * 100.0),
                report.peak_accuracy(),
                report.history.final_accuracy(),
                report.history.total_stragglers(),
            );
        }
        println!();
    }
    println!("FLIPS's benefits should endure as the drop rate rises (paper §5.3);");
    println!("disabling overprovisioning shows the mechanism's contribution.");
    Ok(())
}
