//! FL-algorithm comparison under FLIPS selection (paper §2.1 / Tables
//! 1–24 across their FedYogi / FedProx / FedAvg blocks).
//!
//! ```text
//! cargo run --release --example fed_algorithms
//! ```
//!
//! Runs the same non-IID federation under all five supported algorithms
//! — the paper's three evaluated ones plus FedAdam and FedAdagrad, which
//! FLIPS also supports — and prints a per-algorithm summary. The paper's
//! expectation: adaptive server optimizers (FedYogi) handle non-IID
//! updates best; FedProx's proximal term helps over plain FedAvg.

use flips::prelude::*;

fn main() -> Result<(), FlipsError> {
    let algorithms = [
        FlAlgorithm::fedyogi(),
        FlAlgorithm::fedprox(),
        FlAlgorithm::FedAvg,
        FlAlgorithm::fedadam(),
        FlAlgorithm::fedadagrad(),
    ];
    println!("{:<12} {:>10} {:>14} {:>12}", "algorithm", "peak acc", "rounds-to-80%", "final acc");
    for algorithm in algorithms {
        let report = SimulationBuilder::new(DatasetProfile::femnist())
            .parties(60)
            .rounds(60)
            .participation(0.2)
            .alpha(0.3)
            .algorithm(algorithm)
            .selector(SelectorKind::Flips)
            .clustering_restarts(8)
            .parallel(true)
            .seed(31)
            .run()?;
        let rtt = report
            .rounds_to_target()
            .map(|r| r.to_string())
            .unwrap_or_else(|| format!(">{}", report.meta.rounds));
        println!(
            "{:<12} {:>10.3} {:>14} {:>12.3}",
            algorithm.label(),
            report.peak_accuracy(),
            rtt,
            report.history.final_accuracy()
        );
    }
    Ok(())
}
