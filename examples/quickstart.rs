//! Quickstart: run one FLIPS-selected federated-learning job end to end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a small FEMNIST-profile federation (40 parties, Dirichlet
//! α = 0.3), clusters label distributions privately inside the simulated
//! TEE, and trains with FedYogi for 40 rounds, printing the convergence
//! trajectory.

use flips::prelude::*;

fn main() -> Result<(), FlipsError> {
    let report = SimulationBuilder::new(DatasetProfile::femnist())
        .parties(40)
        .rounds(40)
        .participation(0.20)
        .alpha(0.3)
        .algorithm(FlAlgorithm::fedyogi())
        .selector(SelectorKind::Flips)
        .clustering_restarts(10)
        .parallel(true)
        .seed(42)
        .run()?;

    println!("dataset        : {}", report.meta.profile_name);
    println!("parties        : {}", report.meta.num_parties);
    println!("parties/round  : {}", report.meta.parties_per_round);
    println!("clusters (k)   : {:?}", report.meta.k);
    println!("TEE overhead   : {:?} (clustering ceremony)", report.meta.clustering_tee_overhead);
    println!();
    println!("round  balanced-accuracy");
    for (i, acc) in report.history.accuracy_series().iter().enumerate() {
        if i % 5 == 4 || i == 0 {
            println!("{:5}  {:.4}", i + 1, acc);
        }
    }
    println!();
    println!("peak accuracy  : {:.4}", report.peak_accuracy());
    match report.rounds_to_target() {
        Some(r) => println!("target {:.0}% hit : round {r}", report.meta.target_accuracy * 100.0),
        None => println!(
            "target {:.0}%     : not reached in budget",
            report.meta.target_accuracy * 100.0
        ),
    }
    println!(
        "communication  : {:.2} MiB total",
        report.history.total_bytes() as f64 / (1024.0 * 1024.0)
    );
    Ok(())
}
