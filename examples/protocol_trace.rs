//! Protocol trace — drive the sans-IO `Coordinator`/`PartyEndpoint` pair
//! by hand and print every message on the (virtual) wire.
//!
//! ```text
//! cargo run --release --example protocol_trace
//! ```
//!
//! This is the message-driven API underneath `FlJob`/`SimulationBuilder`:
//! a pure state machine consuming events (`UpdateReceived`,
//! `DeadlineExpired`, `PartyDropped`) and emitting effects (`Send`,
//! `RoundClosed`, `JobFinished`). Here *we* are the driver: we move the
//! messages, we decide when the deadline fires, and we even misbehave —
//! replaying a duplicate update to show the coordinator reject it — all
//! without a thread, socket or clock in sight.

use flips::fl::config::LocalTrainingConfig;
use flips::prelude::*;
use flips::selection::RandomSelector;
use std::sync::Arc;

fn label(msg: &WireMessage) -> String {
    match msg {
        WireMessage::SelectionNotice { round, party, .. } => {
            format!("SelectionNotice(round {round}, party {party})")
        }
        WireMessage::GlobalModel { round, params, .. } => {
            format!("GlobalModel(round {round}, {} params)", params.len())
        }
        WireMessage::LocalUpdate { round, party, mean_loss, .. } => {
            format!("LocalUpdate(round {round}, party {party}, loss {mean_loss:.3})")
        }
        WireMessage::Heartbeat { round, party, .. } => {
            format!("Heartbeat(round {round}, party {party})")
        }
        WireMessage::Abort { round, party, reason, .. } => {
            format!("Abort(round {round}, party {party}, {reason:?})")
        }
        WireMessage::PartialUpdate { round, total_weight, entries, .. } => {
            format!(
                "PartialUpdate(round {round}, {} parties, weight {total_weight})",
                entries.len()
            )
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small federation, assembled by hand (no SimulationBuilder).
    let parties = 6;
    let seed = 17;
    let profile = DatasetProfile::femnist().scaled(parties, 3);
    let population = generate_population(&profile, profile.default_total_samples, seed);
    let parts =
        partition(&population, parties, PartitionStrategy::Dirichlet { alpha: 0.5 }, 5, seed)?;
    let test = balanced_test_set(&profile, 10, seed);
    let latency = Arc::new(LatencyModel::sample(parties, 0.4, seed));

    let job_id = 0xD00D;
    let mut coordinator = Coordinator::new(
        CoordinatorConfig {
            job_id,
            model: profile.model.clone(),
            algorithm: FlAlgorithm::FedAvg,
            rounds: 3,
            parties_per_round: 3,
            sketch_dim: 16,
            codec: ModelCodec::Raw,
            seed,
        },
        parties,
        test,
        Box::new(RandomSelector::new(parties, seed)),
    )?;

    let local = LocalTrainingConfig { epochs: 1, ..Default::default() };
    let mut endpoints: Vec<PartyEndpoint> = parts
        .parties
        .into_iter()
        .enumerate()
        .map(|(id, ds)| {
            PartyEndpoint::new(
                id,
                ds,
                &profile.model,
                job_id,
                local,
                0.0,
                Arc::clone(&latency),
                seed,
            )
        })
        .collect();

    while !coordinator.is_finished() {
        println!("── open round {} ──", coordinator.round());
        let mut inbound: Vec<WireMessage> = Vec::new();
        for effect in coordinator.open_round()? {
            if let Effect::Send { to, msg } = effect {
                println!("  agg ─▶ p{to}: {}", label(&msg));
                // In round 1 we play a flaky network: party replies to the
                // notice but its trained update never arrives in time.
                let drop_update = coordinator.round() == 1 && inbound.len() < 2;
                for reply in endpoints[to].handle(&msg)? {
                    let is_update = matches!(reply, WireMessage::LocalUpdate { .. });
                    if is_update && drop_update {
                        println!("  p{to} ─▶ agg: {} … lost in transit", label(&reply));
                    } else {
                        println!("  p{to} ─▶ agg: {}", label(&reply));
                        inbound.push(reply);
                    }
                }
            }
        }

        // Replay the first update to demonstrate duplicate rejection.
        if let Some(dup) =
            inbound.iter().find(|m| matches!(m, WireMessage::LocalUpdate { .. })).cloned()
        {
            println!("  (replaying {} — a duplicate)", label(&dup));
            inbound.push(dup);
        }

        let mut effects = Vec::new();
        for msg in inbound {
            effects.extend(coordinator.handle(Event::UpdateReceived(msg))?);
        }
        if coordinator.open_cohort().is_some() {
            println!("  ⏰ deadline expires");
            effects.extend(coordinator.handle(Event::DeadlineExpired)?);
        }
        for effect in effects {
            match effect {
                Effect::Send { to, msg } => {
                    println!("  agg ─▶ p{to}: {}", label(&msg));
                    endpoints[to].handle(&msg)?;
                }
                Effect::Rejected { party, reason, .. } => {
                    let who = party.map_or("?".into(), |p| p.to_string());
                    println!("  ✗ rejected update from p{who}: {reason}");
                }
                Effect::RoundClosed(record) => {
                    println!(
                        "  ✔ round {} closed: completed {:?}, stragglers {:?}, accuracy {:.3}",
                        record.round, record.completed, record.stragglers, record.accuracy
                    );
                }
                Effect::JobFinished(history) => {
                    println!(
                        "  ■ job {job_id:#x} finished: peak accuracy {:.3}, {:.1} KiB on the wire",
                        history.peak_accuracy(),
                        history.total_bytes() as f64 / 1024.0
                    );
                }
            }
        }
    }
    Ok(())
}
