//! One-stop construction of paper-style experiments.
//!
//! [`SimulationBuilder`] stands up the full pipeline the paper's
//! evaluation uses: synthetic population with a dataset profile's label
//! imbalance → Dirichlet(α) partition across parties → balanced global
//! test set → a selection policy (FLIPS via the private TEE ceremony, or
//! any baseline) → an [`flips_fl::FlJob`]. Every knob of the evaluation
//! grid (dataset, algorithm, α, participation %, straggler rate, seed) is
//! a builder method.

use crate::middleware::{FlipsMiddleware, LdTransform, MiddlewareConfig};
use crate::FlipsError;
use flips_data::dataset::{balanced_test_set, generate_population};
use flips_data::{partition, DatasetProfile, PartitionStrategy};
use flips_fl::runtime::{run_sharded, RuntimeOptions};
use flips_fl::straggler::StragglerBias;
use flips_fl::{
    DeadlinePolicy, FlAlgorithm, FlJob, FlJobConfig, History, LatencyModel, LocalTrainingConfig,
    ModelCodec,
};
use flips_selection::oort::OortConfig;
use flips_selection::tifl::TiflConfig;
use flips_selection::{
    GradClusSelector, OortSelector, ParticipantSelector, RandomSelector, SelectorKind, TiflSelector,
};
use flips_tee::OverheadModel;
use std::time::Duration;

/// Minimum samples each party is guaranteed after partitioning.
const MIN_SAMPLES_PER_PARTY: usize = 5;

/// How the builder materializes the candidate roster when it constructs
/// the selection policy (see [`SimulationBuilder::streaming_roster`]).
#[derive(Debug, Clone)]
enum RosterMode {
    /// Selector constructors receive flat in-memory vectors (default).
    Flat,
    /// Selectors are built by streaming an in-memory
    /// [`flips_fl::RosterStore`] through the
    /// [`flips_selection::CandidateSource`] constructors. Seeded
    /// selections are bit-identical to [`RosterMode::Flat`].
    Streaming,
    /// As [`RosterMode::Streaming`], with the store sealed to disk
    /// segments under `dir` and at most `budget` segments resident in
    /// memory at once.
    Spill { dir: std::path::PathBuf, budget: usize },
}

/// Builder for one end-to-end FL simulation.
///
/// # Example
///
/// Every knob of the paper's evaluation grid is a method; `run()`
/// returns the per-round history plus the metadata that produced it:
///
/// ```
/// use flips_core::builder::SimulationBuilder;
/// use flips_data::DatasetProfile;
/// use flips_selection::SelectorKind;
///
/// let report = SimulationBuilder::new(DatasetProfile::femnist())
///     .parties(8)
///     .rounds(2)
///     .participation(0.25)
///     .selector(SelectorKind::Random)
///     .test_per_class(5)
///     .seed(7)
///     .run()
///     .unwrap();
/// assert_eq!(report.history.len(), 2);
/// assert_eq!(report.meta.parties_per_round, 2);
/// ```
#[derive(Debug, Clone)]
pub struct SimulationBuilder {
    profile: DatasetProfile,
    parties: Option<usize>,
    rounds: Option<usize>,
    participation: f64,
    strategy: PartitionStrategy,
    algorithm: FlAlgorithm,
    selector: SelectorKind,
    straggler_rate: f64,
    straggler_bias: StragglerBias,
    deadline: DeadlinePolicy,
    latency_sigma: f64,
    test_per_class: usize,
    clustering_restarts: usize,
    fixed_k: Option<usize>,
    ld_transform: LdTransform,
    overprovision: bool,
    tee_overhead: OverheadModel,
    local: Option<LocalTrainingConfig>,
    codec: ModelCodec,
    parallel: bool,
    roster: RosterMode,
    seed: u64,
}

impl SimulationBuilder {
    /// Starts a builder from a dataset profile (paper defaults apply:
    /// 20% participation, α = 0.3, FedYogi, FLIPS selection, no
    /// stragglers).
    pub fn new(profile: DatasetProfile) -> Self {
        SimulationBuilder {
            profile,
            parties: None,
            rounds: None,
            participation: 0.20,
            strategy: PartitionStrategy::Dirichlet { alpha: 0.3 },
            algorithm: FlAlgorithm::fedyogi(),
            selector: SelectorKind::Flips,
            straggler_rate: 0.0,
            straggler_bias: StragglerBias::Uniform,
            deadline: DeadlinePolicy::Injected,
            latency_sigma: 0.4,
            test_per_class: 50,
            clustering_restarts: 20,
            fixed_k: None,
            ld_transform: LdTransform::None,
            overprovision: true,
            tee_overhead: OverheadModel::sev_like(),
            local: None,
            codec: ModelCodec::Raw,
            parallel: false,
            roster: RosterMode::Flat,
            seed: 0,
        }
    }

    /// Builds the selection policy from a streamed in-memory
    /// [`flips_fl::RosterStore`] instead of flat vectors: candidate
    /// attributes reach the selector constructors one party at a time
    /// through [`flips_selection::CandidateSource`], exactly as a
    /// million-party roster would. Seeded runs are bit-identical to the
    /// flat path — the scale-equivalence suite pins this.
    #[must_use]
    pub fn streaming_roster(mut self) -> Self {
        self.roster = RosterMode::Streaming;
        self
    }

    /// As [`SimulationBuilder::streaming_roster`], with the roster
    /// sealed to disk segments under `dir` and at most `budget` segments
    /// resident in memory while the selectors stream it.
    #[must_use]
    pub fn spill_roster(mut self, dir: impl Into<std::path::PathBuf>, budget: usize) -> Self {
        self.roster = RosterMode::Spill { dir: dir.into(), budget };
        self
    }

    /// Overrides the number of parties (scales the population with it).
    #[must_use]
    pub fn parties(mut self, parties: usize) -> Self {
        self.parties = Some(parties);
        self
    }

    /// Overrides the round budget.
    #[must_use]
    pub fn rounds(mut self, rounds: usize) -> Self {
        self.rounds = Some(rounds);
        self
    }

    /// Sets the per-round participation fraction (paper: 0.15 / 0.20).
    #[must_use]
    pub fn participation(mut self, fraction: f64) -> Self {
        self.participation = fraction;
        self
    }

    /// Sets Dirichlet non-IID concentration α (paper: 0.3 / 0.6).
    #[must_use]
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.strategy = PartitionStrategy::Dirichlet { alpha };
        self
    }

    /// Uses an explicit partition strategy instead of Dirichlet(α).
    #[must_use]
    pub fn partition_strategy(mut self, strategy: PartitionStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the FL algorithm.
    #[must_use]
    pub fn algorithm(mut self, algorithm: FlAlgorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Sets the participant-selection policy.
    #[must_use]
    pub fn selector(mut self, selector: SelectorKind) -> Self {
        self.selector = selector;
        self
    }

    /// Sets the straggler drop rate (paper: 0, 0.10, 0.20).
    #[must_use]
    pub fn straggler_rate(mut self, rate: f64) -> Self {
        self.straggler_rate = rate;
        self
    }

    /// Sets how straggler victims are chosen.
    #[must_use]
    pub fn straggler_bias(mut self, bias: StragglerBias) -> Self {
        self.straggler_bias = bias;
        self
    }

    /// Sets the round-deadline policy: the paper's injected victim sets
    /// (default), or a deadline derived from observed round-trip
    /// latency ([`DeadlinePolicy::LatencyQuantile`] /
    /// [`DeadlinePolicy::FixedSeconds`]) under which who straggles
    /// follows from the platform-heterogeneity model instead of a coin
    /// flip. Latency-derived policies are mutually exclusive with a
    /// non-zero [`SimulationBuilder::straggler_rate`].
    #[must_use]
    pub fn deadline(mut self, policy: DeadlinePolicy) -> Self {
        self.deadline = policy;
        self
    }

    /// Sets the platform-heterogeneity spread (log-normal σ).
    #[must_use]
    pub fn latency_sigma(mut self, sigma: f64) -> Self {
        self.latency_sigma = sigma;
        self
    }

    /// Test-set size per class (default 50).
    #[must_use]
    pub fn test_per_class(mut self, per_class: usize) -> Self {
        self.test_per_class = per_class;
        self
    }

    /// K-Means restarts per elbow candidate (default 20; lower for speed).
    #[must_use]
    pub fn clustering_restarts(mut self, restarts: usize) -> Self {
        self.clustering_restarts = restarts;
        self
    }

    /// Forces the FLIPS cluster count (k-sensitivity ablation).
    #[must_use]
    pub fn fixed_k(mut self, k: usize) -> Self {
        self.fixed_k = Some(k);
        self
    }

    /// Sets the label-distribution transform used before clustering
    /// (distance-metric ablation).
    #[must_use]
    pub fn ld_transform(mut self, transform: LdTransform) -> Self {
        self.ld_transform = transform;
        self
    }

    /// Disables FLIPS straggler overprovisioning (ablation).
    #[must_use]
    pub fn without_overprovisioning(mut self) -> Self {
        self.overprovision = false;
        self
    }

    /// Overrides the TEE overhead model.
    #[must_use]
    pub fn tee_overhead(mut self, overhead: OverheadModel) -> Self {
        self.tee_overhead = overhead;
        self
    }

    /// Overrides local-training hyper-parameters (defaults come from the
    /// profile).
    #[must_use]
    pub fn local_training(mut self, local: LocalTrainingConfig) -> Self {
        self.local = Some(local);
        self
    }

    /// Sets the model-payload wire codec the job's serialized drivers
    /// use (`Raw` by default; `DeltaLossless` is bit-exact, `F16` is
    /// lossy and opt-in only). Histories and byte *accounting* are
    /// codec-independent.
    #[must_use]
    pub fn codec(mut self, codec: ModelCodec) -> Self {
        self.codec = codec;
        self
    }

    /// Trains completing parties across threads.
    #[must_use]
    pub fn parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// Sets the master seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the FL job and its metadata without running it (step-wise
    /// control, used by examples and the figure harness).
    ///
    /// # Errors
    ///
    /// Surfaces any substrate construction failure.
    pub fn build(&self) -> Result<(FlJob, SimulationMeta), FlipsError> {
        if !(0.0 < self.participation && self.participation <= 1.0) {
            return Err(FlipsError::InvalidConfig(format!(
                "participation {} must be in (0, 1]",
                self.participation
            )));
        }
        let profile = match (self.parties, self.rounds) {
            (None, None) => self.profile.clone(),
            (p, r) => self.profile.scaled(
                p.unwrap_or(self.profile.default_parties),
                r.unwrap_or(self.profile.max_rounds),
            ),
        };
        profile.validate()?;
        let n = profile.default_parties;

        let population = generate_population(&profile, profile.default_total_samples, self.seed);
        let parts = partition(&population, n, self.strategy, MIN_SAMPLES_PER_PARTY, self.seed)?;
        let test = balanced_test_set(&profile, self.test_per_class, self.seed);
        let latency = LatencyModel::sample(n, self.latency_sigma, self.seed);

        let parties_per_round = ((self.participation * n as f64).round() as usize).clamp(1, n);

        let mut meta = SimulationMeta {
            profile_name: profile.name.clone(),
            num_parties: n,
            parties_per_round,
            rounds: profile.max_rounds,
            target_accuracy: profile.target_accuracy,
            selector: self.selector,
            algorithm: self.algorithm,
            straggler_rate: self.straggler_rate,
            partition: self.strategy,
            k: None,
            clustering_tee_overhead: None,
            seed: self.seed,
            job_id: 0,
        };

        let sample_counts = parts.sample_counts();
        let profile_times = latency.profile(&sample_counts, profile.local_epochs);
        let mw_cfg = MiddlewareConfig {
            restarts: self.clustering_restarts,
            fixed_k: self.fixed_k,
            k_floor: Some((2 * profile.classes).min(parties_per_round)),
            transform: self.ld_transform,
            overprovision: self.overprovision,
            overhead: self.tee_overhead,
            seed: self.seed,
            ..Default::default()
        };
        let oort_cfg = || {
            let mut cfg = if self.straggler_rate > 0.0 {
                OortConfig::with_straggler_overprovisioning()
            } else {
                OortConfig::default()
            };
            // The developer-preferred duration: 1.5× the median
            // profiled round time.
            let mut sorted = profile_times.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            cfg.preferred_duration = sorted[sorted.len() / 2] * 1.5;
            cfg
        };

        // The roster the selectors stream, when the builder is asked to
        // exercise the scale path instead of flat vectors.
        let store = match &self.roster {
            RosterMode::Flat => None,
            RosterMode::Streaming | RosterMode::Spill { .. } => {
                let mut rb = match &self.roster {
                    RosterMode::Spill { dir, budget } => {
                        flips_fl::RosterBuilder::spilling(dir.clone(), *budget)?
                    }
                    _ => flips_fl::RosterBuilder::in_memory(),
                };
                let lds = parts.label_distributions();
                for i in 0..n {
                    rb.push(flips_fl::PartyRecord {
                        data_size: sample_counts[i] as u64,
                        latency_hint: profile_times[i],
                        label_counts: lds[i].counts().to_vec(),
                    })?;
                }
                Some(rb.finish()?)
            }
        };

        let selector: Box<dyn ParticipantSelector> = if let Some(store) = &store {
            match self.selector {
                SelectorKind::Random => Box::new(RandomSelector::from_source(store, self.seed)),
                SelectorKind::Flips => {
                    let pc = FlipsMiddleware::cluster_from_source(store, n, &mw_cfg)?;
                    meta.k = Some(pc.k());
                    meta.clustering_tee_overhead = Some(pc.tee_overhead());
                    Box::new(pc.into_selector())
                }
                SelectorKind::Oort => {
                    Box::new(OortSelector::from_source(store, oort_cfg(), self.seed))
                }
                SelectorKind::GradClus => {
                    Box::new(GradClusSelector::from_source(store, 32, self.seed)?)
                }
                SelectorKind::Tifl => {
                    Box::new(TiflSelector::from_source(store, TiflConfig::default(), self.seed)?)
                }
            }
        } else {
            match self.selector {
                SelectorKind::Random => Box::new(RandomSelector::new(n, self.seed)),
                SelectorKind::Flips => {
                    let pc =
                        FlipsMiddleware::cluster_privately(&parts.label_distributions(), &mw_cfg)?;
                    meta.k = Some(pc.k());
                    meta.clustering_tee_overhead = Some(pc.tee_overhead());
                    Box::new(pc.into_selector())
                }
                SelectorKind::Oort => {
                    Box::new(OortSelector::new(sample_counts.clone(), oort_cfg(), self.seed))
                }
                SelectorKind::GradClus => Box::new(GradClusSelector::new(n, 32, self.seed)?),
                SelectorKind::Tifl => Box::new(TiflSelector::new(
                    profile_times.clone(),
                    TiflConfig::default(),
                    self.seed,
                )?),
            }
        };

        let local = self.local.unwrap_or(LocalTrainingConfig {
            epochs: profile.local_epochs,
            batch_size: profile.batch_size,
            lr_schedule: profile.lr_schedule,
            momentum: 0.0,
        });

        let config = FlJobConfig {
            model: profile.model.clone(),
            algorithm: self.algorithm,
            rounds: profile.max_rounds,
            parties_per_round,
            local,
            straggler_rate: self.straggler_rate,
            straggler_bias: self.straggler_bias,
            deadline: self.deadline,
            latency_sigma: self.latency_sigma,
            latency_override: Some(latency),
            sketch_dim: 32,
            codec: self.codec,
            parallel: self.parallel,
            seed: self.seed,
        };
        let job = FlJob::new(parts.parties, test, config, selector)?;
        meta.job_id = job.coordinator().job_id();
        Ok((job, meta))
    }

    /// Builds and runs the job to completion.
    ///
    /// # Errors
    ///
    /// Surfaces construction or round failures.
    pub fn run(&self) -> Result<SimulationReport, FlipsError> {
        let (mut job, meta) = self.build()?;
        let history = job.run()?;
        Ok(SimulationReport { history, meta })
    }

    /// Builds the job and runs it on the threaded sharded runtime
    /// ([`flips_fl::runtime`]): the roster is split across `shards`
    /// worker threads training in parallel, with the multiplexed driver
    /// on a dedicated coordinator thread. The resulting history is
    /// bit-identical to [`SimulationBuilder::run`]'s when the builder
    /// uses a latency-derived [`SimulationBuilder::deadline`], and to a
    /// serialized single-threaded run in every case.
    ///
    /// # Errors
    ///
    /// Surfaces construction, transport and round failures.
    pub fn run_threaded(&self, shards: usize) -> Result<SimulationReport, FlipsError> {
        let (job, meta) = self.build()?;
        let mut outcome = run_sharded(vec![job.into_parts()], &RuntimeOptions::new(shards))?;
        let history = outcome
            .histories
            .remove(&meta.job_id)
            .expect("the driver ran exactly the job the builder registered");
        Ok(SimulationReport { history, meta })
    }
}

/// Metadata describing a built simulation.
#[derive(Debug, Clone)]
pub struct SimulationMeta {
    /// Dataset profile name.
    pub profile_name: String,
    /// Total parties.
    pub num_parties: usize,
    /// Parties per round (`Nr`).
    pub parties_per_round: usize,
    /// Round budget.
    pub rounds: usize,
    /// The profile's target accuracy for rounds-to-target reporting.
    pub target_accuracy: f64,
    /// Selection policy.
    pub selector: SelectorKind,
    /// FL algorithm.
    pub algorithm: FlAlgorithm,
    /// Straggler drop rate.
    pub straggler_rate: f64,
    /// Partition strategy.
    pub partition: PartitionStrategy,
    /// FLIPS cluster count (None for baselines).
    pub k: Option<usize>,
    /// Simulated TEE overhead of the clustering ceremony (FLIPS only).
    pub clustering_tee_overhead: Option<Duration>,
    /// Master seed.
    pub seed: u64,
    /// Protocol job identifier stamped on every wire message (derived
    /// from the seed by the runtime).
    pub job_id: u64,
}

/// The outcome of a completed simulation.
#[derive(Debug, Clone)]
pub struct SimulationReport {
    /// Per-round history.
    pub history: History,
    /// The configuration that produced it.
    pub meta: SimulationMeta,
}

impl SimulationReport {
    /// Rounds to the profile's target accuracy (`None` = "> budget").
    pub fn rounds_to_target(&self) -> Option<usize> {
        self.history.rounds_to_target(self.meta.target_accuracy)
    }

    /// Peak accuracy within the budget.
    pub fn peak_accuracy(&self) -> f64 {
        self.history.peak_accuracy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(selector: SelectorKind) -> SimulationBuilder {
        SimulationBuilder::new(DatasetProfile::femnist())
            .parties(12)
            .rounds(5)
            .participation(0.25)
            .selector(selector)
            .clustering_restarts(3)
            .test_per_class(10)
            .seed(3)
    }

    #[test]
    fn every_selector_builds_and_runs() {
        for kind in SelectorKind::all() {
            let report = tiny(kind).run().unwrap_or_else(|e| panic!("{kind}: {e}"));
            assert_eq!(report.history.len(), 5, "{kind}");
            assert_eq!(report.meta.selector, kind);
            assert_eq!(report.meta.parties_per_round, 3);
        }
    }

    #[test]
    fn flips_report_carries_clustering_metadata() {
        let report = tiny(SelectorKind::Flips).run().unwrap();
        assert!(report.meta.k.is_some());
        assert!(report.meta.clustering_tee_overhead.is_some());
    }

    #[test]
    fn baselines_have_no_clustering_metadata() {
        let report = tiny(SelectorKind::Random).run().unwrap();
        assert!(report.meta.k.is_none());
        assert!(report.meta.clustering_tee_overhead.is_none());
    }

    #[test]
    fn straggler_rate_propagates() {
        let report = tiny(SelectorKind::Random).straggler_rate(0.25).run().unwrap();
        assert!(report.history.total_stragglers() > 0);
    }

    #[test]
    fn runs_are_reproducible() {
        let a = tiny(SelectorKind::Flips).run().unwrap();
        let b = tiny(SelectorKind::Flips).run().unwrap();
        assert_eq!(a.history, b.history);
        assert_eq!(a.meta.k, b.meta.k);
    }

    #[test]
    fn meta_carries_the_protocol_job_id() {
        let a = tiny(SelectorKind::Random).run().unwrap();
        let b = tiny(SelectorKind::Random).run().unwrap();
        assert_ne!(a.meta.job_id, 0);
        assert_eq!(a.meta.job_id, b.meta.job_id, "derived from the seed");
        let c = tiny(SelectorKind::Random).seed(9).run().unwrap();
        assert_ne!(a.meta.job_id, c.meta.job_id);
    }

    #[test]
    fn rejects_bad_participation() {
        assert!(tiny(SelectorKind::Random).participation(0.0).run().is_err());
        assert!(tiny(SelectorKind::Random).participation(1.5).run().is_err());
    }

    #[test]
    fn fixed_k_is_respected() {
        let report = tiny(SelectorKind::Flips).fixed_k(2).run().unwrap();
        assert_eq!(report.meta.k, Some(2));
    }

    #[test]
    fn report_helpers_delegate_to_history() {
        let report = tiny(SelectorKind::Random).run().unwrap();
        assert_eq!(
            report.rounds_to_target(),
            report.history.rounds_to_target(report.meta.target_accuracy)
        );
        assert_eq!(report.peak_accuracy(), report.history.peak_accuracy());
    }
}
