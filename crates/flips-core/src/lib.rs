//! # flips-core — the FLIPS middleware
//!
//! This crate is the paper's contribution proper: it wires the substrates
//! into the end-to-end system of Figures 3 and 4.
//!
//! - [`middleware`] — **private label-distribution clustering**: parties
//!   attest the aggregator's enclave, provision their label distributions
//!   over secure channels, K-Means++ with the Davies-Bouldin elbow runs
//!   *inside* the enclave, and participant selection (Algorithm 1) is
//!   served from enclave state. The aggregator never observes raw label
//!   distributions or cluster membership.
//! - [`builder`] — a one-stop [`builder::SimulationBuilder`] that stands
//!   up the full evaluation pipeline (synthetic dataset → Dirichlet
//!   partition → selector → FL job) the way the paper's experiments do.
//!
//! The substrates are re-exported under stable module names so downstream
//! users depend on one crate:
//!
//! | module | crate |
//! |---|---|
//! | [`ml`] | `flips-ml` |
//! | [`data`] | `flips-data` |
//! | [`clustering`] | `flips-clustering` |
//! | [`tee`] | `flips-tee` |
//! | [`selection`] | `flips-selection` |
//! | [`fl`] | `flips-fl` |

pub use flips_clustering as clustering;
pub use flips_data as data;
pub use flips_fl as fl;
pub use flips_ml as ml;
pub use flips_selection as selection;
pub use flips_tee as tee;

pub mod builder;
pub mod middleware;
pub mod prelude;

pub use builder::{SimulationBuilder, SimulationReport};
pub use middleware::{FlipsMiddleware, MiddlewareConfig, PrivateClustering};

/// Errors produced by the FLIPS middleware.
#[derive(Debug)]
pub enum FlipsError {
    /// A substrate failed during setup or a round.
    Data(flips_data::DataError),
    /// Clustering failed.
    Clustering(flips_clustering::ClusteringError),
    /// TEE attestation, sealing or lifecycle failed.
    Tee(flips_tee::TeeError),
    /// Selection failed.
    Selection(flips_selection::SelectionError),
    /// The FL runtime failed.
    Fl(flips_fl::FlError),
    /// The middleware was configured inconsistently.
    InvalidConfig(String),
}

impl std::fmt::Display for FlipsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlipsError::Data(e) => write!(f, "data substrate: {e}"),
            FlipsError::Clustering(e) => write!(f, "clustering substrate: {e}"),
            FlipsError::Tee(e) => write!(f, "tee substrate: {e}"),
            FlipsError::Selection(e) => write!(f, "selection: {e}"),
            FlipsError::Fl(e) => write!(f, "fl runtime: {e}"),
            FlipsError::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
        }
    }
}

impl std::error::Error for FlipsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FlipsError::Data(e) => Some(e),
            FlipsError::Clustering(e) => Some(e),
            FlipsError::Tee(e) => Some(e),
            FlipsError::Selection(e) => Some(e),
            FlipsError::Fl(e) => Some(e),
            FlipsError::InvalidConfig(_) => None,
        }
    }
}

impl From<flips_data::DataError> for FlipsError {
    fn from(e: flips_data::DataError) -> Self {
        FlipsError::Data(e)
    }
}

impl From<flips_clustering::ClusteringError> for FlipsError {
    fn from(e: flips_clustering::ClusteringError) -> Self {
        FlipsError::Clustering(e)
    }
}

impl From<flips_tee::TeeError> for FlipsError {
    fn from(e: flips_tee::TeeError) -> Self {
        FlipsError::Tee(e)
    }
}

impl From<flips_selection::SelectionError> for FlipsError {
    fn from(e: flips_selection::SelectionError) -> Self {
        FlipsError::Selection(e)
    }
}

impl From<flips_fl::FlError> for FlipsError {
    fn from(e: flips_fl::FlError) -> Self {
        FlipsError::Fl(e)
    }
}
