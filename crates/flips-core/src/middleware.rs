//! Private label-distribution clustering and TEE-backed selection — the
//! end-to-end flow of the paper's Figures 3 and 4.
//!
//! The ceremony implemented by [`FlipsMiddleware::cluster_privately`]:
//!
//! 1. the job operator loads the clustering code into an enclave on the
//!    aggregator and registers its measurement with the shared
//!    attestation server;
//! 2. every party challenges the enclave with a fresh nonce, sends the
//!    quote to the attestation server, and proceeds only on success;
//! 3. every party seals its (normalized) label distribution over its own
//!    secure channel; the ciphertext is opened *inside* the enclave;
//! 4. inside the enclave, the Davies-Bouldin elbow picks `k` and
//!    K-Means++ clusters the distributions (paper §3.1);
//! 5. the resulting [`flips_selection::FlipsSelector`] lives in enclave
//!    state; the aggregator interacts with it only through the
//!    [`TeeBackedSelector`] facade, which answers "who participates this
//!    round" without ever revealing label distributions or cluster
//!    membership (§3.3: "A party simply needs to know whether it is
//!    selected for a round").

use crate::FlipsError;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use flips_clustering::{kmeans, optimal_k, ElbowConfig, KMeansConfig};
use flips_data::LabelDistribution;
use flips_ml::rng::{derive_seed, seeded};
use flips_selection::{
    CandidateSource, FlipsSelector, ParticipantSelector, PartyId, RoundFeedback, SelectionError,
};
use flips_tee::attestation::PlatformKey;
use flips_tee::{AttestationServer, Enclave, OverheadModel, SecureChannel, TeeError};
use rand::Rng;

/// The identity string measured as the enclave's code (stands in for the
/// enclave binary).
pub const CLUSTERING_CODE_ID: &[u8] = b"flips-label-distribution-clustering-v1";

/// How a party transforms its normalized label distribution before
/// provisioning it for clustering (the distance-metric ablation: K-Means
/// with Euclidean distance on transformed vectors).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LdTransform {
    /// Raw proportions — Euclidean distance on probability vectors (the
    /// paper's metric).
    #[default]
    None,
    /// Element-wise square root — Euclidean becomes the Hellinger
    /// distance, which upweights rare-label differences.
    Hellinger,
    /// L2 unit normalization — Euclidean becomes a monotone function of
    /// cosine distance.
    UnitNorm,
}

impl LdTransform {
    /// Applies the transform to a normalized distribution.
    pub fn apply(&self, normalized: &[f32]) -> Vec<f32> {
        match self {
            LdTransform::None => normalized.to_vec(),
            LdTransform::Hellinger => normalized.iter().map(|p| p.sqrt()).collect(),
            LdTransform::UnitNorm => {
                let norm = flips_ml::matrix::l2_norm(normalized).max(1e-9);
                normalized.iter().map(|p| p / norm).collect()
            }
        }
    }
}

/// Configuration of the private-clustering ceremony.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MiddlewareConfig {
    /// Upper bound of the elbow scan (clamped to `parties − 1`).
    pub k_max: usize,
    /// K-Means restarts per candidate `k` (paper: T = 20).
    pub restarts: usize,
    /// Force a specific `k` instead of the elbow criterion (the
    /// k-sensitivity ablation).
    pub fixed_k: Option<usize>,
    /// Clamp the elbow's chosen `k` to at least this value (capped at
    /// `parties − 1`). On continuous Dirichlet-partitioned label
    /// distributions the DBI curve is shallow and the elbow tends to
    /// under-cluster — the paper's small-`k` failure mode ("the clusters
    /// cannot accurately represent the unique label distributions",
    /// §3.1). The simulation builder floors `k` at
    /// `min(2·labels, Nr)`; `None` disables the clamp.
    pub k_floor: Option<usize>,
    /// Enable Algorithm 1's straggler overprovisioning.
    pub overprovision: bool,
    /// TEE overhead model (§5.1 measures ≈5% under AMD SEV).
    pub overhead: OverheadModel,
    /// Seed for clustering restarts and channel establishment.
    pub seed: u64,
    /// Pre-clustering transform of the label distributions (distance
    /// ablation).
    pub transform: LdTransform,
}

impl Default for MiddlewareConfig {
    fn default() -> Self {
        MiddlewareConfig {
            k_max: 30,
            restarts: 20,
            fixed_k: None,
            k_floor: None,
            overprovision: true,
            overhead: OverheadModel::sev_like(),
            seed: 0,
            transform: LdTransform::None,
        }
    }
}

/// Enclave-guarded state: the provisioned distributions and, after
/// clustering, the live selector.
struct EnclaveState {
    /// Normalized label distributions, indexed by party; `None` until the
    /// party provisions.
    distributions: Vec<Option<Vec<f32>>>,
    /// The Algorithm 1 selector, built after clustering.
    selector: Option<FlipsSelector>,
    /// Chosen number of clusters.
    k: usize,
}

/// The FLIPS middleware entry points.
#[derive(Debug, Clone, Copy)]
pub struct FlipsMiddleware;

impl FlipsMiddleware {
    /// Runs the full private-clustering ceremony over the parties' label
    /// distributions and returns the enclave-backed clustering.
    ///
    /// # Errors
    ///
    /// Fails if attestation fails, a sealed message is tampered with, or
    /// clustering cannot run (fewer than two parties, bad `fixed_k`).
    pub fn cluster_privately(
        label_distributions: &[LabelDistribution],
        config: &MiddlewareConfig,
    ) -> Result<PrivateClustering, FlipsError> {
        let n = label_distributions.len();
        if n < 2 {
            return Err(FlipsError::InvalidConfig(format!(
                "private clustering needs at least 2 parties, got {n}"
            )));
        }
        if let Some(k) = config.fixed_k {
            if k == 0 || k > n {
                return Err(FlipsError::InvalidConfig(format!("fixed_k = {k} must be in 1..={n}")));
            }
        }

        let mut rng = seeded(derive_seed(config.seed, 0x7EE0));

        // (1) Load the enclave; register its measurement.
        let platform =
            PlatformKey::new(((rng.random::<u64>() as u128) << 64) | rng.random::<u64>() as u128);
        let enclave = Enclave::load(
            CLUSTERING_CODE_ID,
            EnclaveState { distributions: vec![None; n], selector: None, k: 0 },
            platform,
            config.overhead,
        );
        let mut attestation = AttestationServer::new(platform);
        attestation.register(enclave.measurement());

        // (2)+(3) every party attests, then provisions over its channel.
        for (party, ld) in label_distributions.iter().enumerate() {
            let nonce: u64 = rng.random();
            let quote = enclave.quote(nonce);
            attestation.verify(&quote, nonce)?;

            let (mut party_end, enclave_end) = SecureChannel::establish(&mut rng);
            let point = config.transform.apply(&ld.normalized());
            let sealed = party_end.seal(&encode_distribution(&point));
            enclave
                .enter(|state| -> Result<(), TeeError> {
                    let plain = enclave_end.open(&sealed)?;
                    state.distributions[party] =
                        Some(decode_distribution(plain).map_err(|_| TeeError::IntegrityViolation)?);
                    Ok(())
                })
                .map_err(FlipsError::Tee)??;
        }

        // (4)+(5) cluster inside the enclave and stand up the selector.
        let cluster_seed = derive_seed(config.seed, 0xC1F5);
        let cfg = *config;
        let k = enclave
            .enter(move |state| -> Result<usize, FlipsError> {
                let points: Vec<Vec<f32>> = state
                    .distributions
                    .iter()
                    .map(|d| d.clone().expect("all parties provisioned"))
                    .collect();
                let k = match cfg.fixed_k {
                    Some(k) => k,
                    None => {
                        let k_max = cfg.k_max.clamp(2, n - 1);
                        let elbow_cfg = ElbowConfig {
                            restarts: cfg.restarts.max(1),
                            ..ElbowConfig::new(k_max, cluster_seed)
                        };
                        let elbow_k = optimal_k(&points, elbow_cfg)?.k;
                        match cfg.k_floor {
                            Some(floor) => elbow_k.max(floor.min(n - 1)),
                            None => elbow_k,
                        }
                    }
                };
                let mut krng = seeded(derive_seed(cluster_seed, k as u64));
                let clustering = kmeans(&mut krng, &points, KMeansConfig::new(k))?;
                let clusters: Vec<Vec<PartyId>> =
                    clustering.members().into_iter().filter(|m| !m.is_empty()).collect();
                let mut selector = FlipsSelector::new(clusters)?;
                if !cfg.overprovision {
                    selector = selector.without_overprovisioning();
                }
                state.k = k;
                state.selector = Some(selector);
                Ok(k)
            })
            .map_err(FlipsError::Tee)??;

        Ok(PrivateClustering { enclave, k, num_parties: n })
    }

    /// Runs the private-clustering ceremony over a *streamed* roster.
    ///
    /// When the roster fits the clustering pool (`n <= pool_cap`) the
    /// label distributions are collected in party order and the result
    /// is bit-identical to [`FlipsMiddleware::cluster_privately`] over
    /// the same distributions — the scale-equivalence suite pins this.
    ///
    /// Above the cap, every party still attests and provisions its
    /// sealed distribution (the privacy protocol is unchanged and
    /// streams in O(1) per party), but the elbow scan and K-Means — the
    /// O(n·k²·restarts) part — run on a seeded reservoir subsample of
    /// `pool_cap` parties inside the enclave; every party is then
    /// assigned to its nearest centroid, so the clusters still
    /// partition the full roster. A documented approximation, never
    /// silently taken below the cap.
    ///
    /// A party whose source reports no label counts clusters as an
    /// empty-data party (uniform over one pseudo-label).
    ///
    /// # Errors
    ///
    /// As [`FlipsMiddleware::cluster_privately`], plus a configuration
    /// error for a zero `pool_cap`.
    pub fn cluster_from_source(
        source: &dyn CandidateSource,
        pool_cap: usize,
        config: &MiddlewareConfig,
    ) -> Result<PrivateClustering, FlipsError> {
        if pool_cap == 0 {
            return Err(FlipsError::InvalidConfig("pool_cap must be positive".into()));
        }
        let n = source.num_parties();
        if n <= pool_cap {
            let mut lds = Vec::with_capacity(n);
            source.visit_label_distributions(&mut |_p, counts| {
                let counts = if counts.is_empty() { vec![0] } else { counts.to_vec() };
                lds.push(LabelDistribution::from_counts(counts));
            });
            return Self::cluster_privately(&lds, config);
        }

        let mut rng = seeded(derive_seed(config.seed, 0x7EE0));

        // (1) Same enclave bring-up as the flat ceremony.
        let platform =
            PlatformKey::new(((rng.random::<u64>() as u128) << 64) | rng.random::<u64>() as u128);
        let enclave = Enclave::load(
            CLUSTERING_CODE_ID,
            EnclaveState { distributions: vec![None; n], selector: None, k: 0 },
            platform,
            config.overhead,
        );
        let mut attestation = AttestationServer::new(platform);
        attestation.register(enclave.measurement());

        // (2)+(3) every party attests and provisions, streamed off the
        // source; the reservoir concurrently picks which parties will
        // shape the centroids.
        let mut sample = flips_selection::streaming::Reservoir::new(
            pool_cap,
            derive_seed(config.seed, 0x05EE_DCA9),
        );
        let mut provision_err: Option<FlipsError> = None;
        source.visit_label_distributions(&mut |party, counts| {
            if provision_err.is_some() {
                return;
            }
            sample.push(party);
            let nonce: u64 = rng.random();
            let quote = enclave.quote(nonce);
            if let Err(e) = attestation.verify(&quote, nonce) {
                provision_err = Some(e.into());
                return;
            }
            let (mut party_end, enclave_end) = SecureChannel::establish(&mut rng);
            let counts = if counts.is_empty() { vec![0] } else { counts.to_vec() };
            let ld = LabelDistribution::from_counts(counts);
            let point = config.transform.apply(&ld.normalized());
            let sealed = party_end.seal(&encode_distribution(&point));
            let entered = enclave.enter(|state| -> Result<(), TeeError> {
                let plain = enclave_end.open(&sealed)?;
                state.distributions[party] =
                    Some(decode_distribution(plain).map_err(|_| TeeError::IntegrityViolation)?);
                Ok(())
            });
            match entered {
                Ok(Ok(())) => {}
                Ok(Err(e)) => provision_err = Some(e.into()),
                Err(e) => provision_err = Some(FlipsError::Tee(e)),
            }
        });
        if let Some(e) = provision_err {
            return Err(e);
        }
        let mut sampled = sample.into_kept();
        sampled.sort_unstable();

        // (4)+(5) elbow + K-Means over the subsample, nearest-centroid
        // assignment over the full roster — all inside the enclave.
        let cluster_seed = derive_seed(config.seed, 0xC1F5);
        let cfg = *config;
        let k = enclave
            .enter(move |state| -> Result<usize, FlipsError> {
                let m = sampled.len();
                let points: Vec<Vec<f32>> = sampled
                    .iter()
                    .map(|&p| state.distributions[p].clone().expect("all parties provisioned"))
                    .collect();
                let k = match cfg.fixed_k {
                    Some(k) => k,
                    None => {
                        let k_max = cfg.k_max.clamp(2, m - 1);
                        let elbow_cfg = ElbowConfig {
                            restarts: cfg.restarts.max(1),
                            ..ElbowConfig::new(k_max, cluster_seed)
                        };
                        let elbow_k = optimal_k(&points, elbow_cfg)?.k;
                        match cfg.k_floor {
                            Some(floor) => elbow_k.max(floor.min(m - 1)),
                            None => elbow_k,
                        }
                    }
                };
                let mut krng = seeded(derive_seed(cluster_seed, k as u64));
                let clustering = kmeans(&mut krng, &points, KMeansConfig::new(k))?;
                // Every party — sampled or not — goes to its nearest
                // centroid (ties → lowest cluster id), so the partition
                // covers the whole roster under one deterministic rule.
                let mut clusters: Vec<Vec<PartyId>> = vec![Vec::new(); clustering.k()];
                for (party, dist) in state.distributions.iter().enumerate() {
                    let point = dist.as_ref().expect("all parties provisioned");
                    let mut best = 0usize;
                    let mut best_d = f32::INFINITY;
                    for (c, centroid) in clustering.centroids.iter().enumerate() {
                        let d = flips_ml::matrix::euclidean_distance(point, centroid);
                        if d < best_d {
                            best_d = d;
                            best = c;
                        }
                    }
                    clusters[best].push(party);
                }
                clusters.retain(|c| !c.is_empty());
                let mut selector = FlipsSelector::new(clusters)?;
                if !cfg.overprovision {
                    selector = selector.without_overprovisioning();
                }
                state.k = k;
                state.selector = Some(selector);
                Ok(k)
            })
            .map_err(FlipsError::Tee)??;

        Ok(PrivateClustering { enclave, k, num_parties: n })
    }
}

/// The outcome of the private-clustering ceremony: an enclave holding the
/// clusters and the Algorithm 1 selector.
pub struct PrivateClustering {
    enclave: Enclave<EnclaveState>,
    k: usize,
    num_parties: usize,
}

impl std::fmt::Debug for PrivateClustering {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrivateClustering")
            .field("k", &self.k)
            .field("parties", &self.num_parties)
            .finish()
    }
}

impl PrivateClustering {
    /// The number of clusters chosen (the only clustering fact the
    /// aggregator learns; membership stays sealed).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of parties clustered.
    pub fn num_parties(&self) -> usize {
        self.num_parties
    }

    /// Total simulated TEE overhead incurred so far.
    pub fn tee_overhead(&self) -> std::time::Duration {
        self.enclave.total_overhead()
    }

    /// Enclave ECALL count (diagnostics).
    pub fn tee_entries(&self) -> u64 {
        self.enclave.entry_count()
    }

    /// Converts into a selector facade the FL runtime can drive. The
    /// enclave moves with it; destroying happens on drop, erasing all
    /// clustering state as the paper requires at job end.
    pub fn into_selector(self) -> TeeBackedSelector {
        TeeBackedSelector { enclave: self.enclave, num_parties: self.num_parties }
    }

    /// **Diagnostics only — leaks grouping structure.** Cluster sizes,
    /// used by tests and the benchmark harness to validate clustering
    /// quality. A production deployment would not expose this.
    pub fn debug_cluster_sizes(&self) -> Vec<usize> {
        self.enclave
            .enter(|state| {
                state
                    .selector
                    .as_ref()
                    .map(|s| s.clusters().iter().map(Vec::len).collect())
                    .unwrap_or_default()
            })
            .unwrap_or_default()
    }
}

/// A [`ParticipantSelector`] whose entire state lives inside the TEE.
pub struct TeeBackedSelector {
    enclave: Enclave<EnclaveState>,
    num_parties: usize,
}

impl std::fmt::Debug for TeeBackedSelector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TeeBackedSelector").field("parties", &self.num_parties).finish()
    }
}

impl TeeBackedSelector {
    /// Destroys the enclave, erasing clusters and selection state.
    pub fn destroy(&self) {
        self.enclave.destroy();
    }

    /// Total simulated TEE overhead incurred so far.
    pub fn tee_overhead(&self) -> std::time::Duration {
        self.enclave.total_overhead()
    }
}

impl ParticipantSelector for TeeBackedSelector {
    fn name(&self) -> &'static str {
        "flips"
    }

    fn select(&mut self, round: usize, target: usize) -> Result<Vec<PartyId>, SelectionError> {
        self.enclave
            .enter(|state| {
                state
                    .selector
                    .as_mut()
                    .expect("clustering ran before selection")
                    .select(round, target)
            })
            .map_err(|e| SelectionError::InvalidConfiguration(e.to_string()))?
    }

    fn report(&mut self, feedback: &RoundFeedback) {
        let _ = self.enclave.enter(|state| {
            if let Some(selector) = state.selector.as_mut() {
                selector.report(feedback);
            }
        });
    }

    fn num_parties(&self) -> usize {
        self.num_parties
    }
}

fn encode_distribution(normalized: &[f32]) -> Bytes {
    let mut buf = BytesMut::with_capacity(4 + normalized.len() * 4);
    buf.put_u32_le(normalized.len() as u32);
    for &p in normalized {
        buf.put_f32_le(p);
    }
    buf.freeze()
}

fn decode_distribution(mut bytes: Bytes) -> Result<Vec<f32>, ()> {
    if bytes.remaining() < 4 {
        return Err(());
    }
    let len = bytes.get_u32_le() as usize;
    if bytes.remaining() != len * 4 {
        return Err(());
    }
    Ok((0..len).map(|_| bytes.get_f32_le()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Label distributions with `archetypes` clear groups.
    fn archetype_lds(archetypes: usize, labels: usize, per: usize) -> Vec<LabelDistribution> {
        let mut out = Vec::new();
        for a in 0..archetypes {
            for j in 0..per {
                let mut counts = vec![1u64; labels];
                counts[a % labels] = 100 + (j as u64 % 3);
                out.push(LabelDistribution::from_counts(counts));
            }
        }
        out
    }

    fn fast_config(seed: u64) -> MiddlewareConfig {
        MiddlewareConfig {
            restarts: 5,
            k_max: 12,
            overhead: OverheadModel::none(),
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn ceremony_discovers_the_archetype_count() {
        let lds = archetype_lds(5, 10, 8);
        let pc = FlipsMiddleware::cluster_privately(&lds, &fast_config(1)).unwrap();
        assert!(
            (4..=6).contains(&pc.k()),
            "expected k near 5, got {} (sizes {:?})",
            pc.k(),
            pc.debug_cluster_sizes()
        );
        assert_eq!(pc.num_parties(), 40);
    }

    #[test]
    fn clusters_group_same_archetype_parties() {
        let lds = archetype_lds(4, 8, 5);
        let cfg = MiddlewareConfig { fixed_k: Some(4), ..fast_config(2) };
        let pc = FlipsMiddleware::cluster_privately(&lds, &cfg).unwrap();
        let mut sizes = pc.debug_cluster_sizes();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![5, 5, 5, 5]);
    }

    #[test]
    fn selector_serves_rounds_from_the_enclave() {
        let lds = archetype_lds(4, 8, 5);
        let cfg = MiddlewareConfig { fixed_k: Some(4), ..fast_config(3) };
        let pc = FlipsMiddleware::cluster_privately(&lds, &cfg).unwrap();
        let mut sel = pc.into_selector();
        let picks = sel.select(0, 8).unwrap();
        assert_eq!(picks.len(), 8);
        sel.report(&RoundFeedback {
            round: 0,
            selected: picks.clone(),
            completed: picks,
            ..Default::default()
        });
        assert_eq!(sel.select(1, 8).unwrap().len(), 8);
    }

    #[test]
    fn destroying_the_enclave_stops_selection() {
        let lds = archetype_lds(3, 6, 4);
        let cfg = MiddlewareConfig { fixed_k: Some(3), ..fast_config(4) };
        let mut sel = FlipsMiddleware::cluster_privately(&lds, &cfg).unwrap().into_selector();
        sel.destroy();
        assert!(sel.select(0, 3).is_err(), "destroyed enclave must refuse selection");
    }

    #[test]
    fn rejects_degenerate_inputs() {
        let one = archetype_lds(1, 4, 1);
        assert!(FlipsMiddleware::cluster_privately(&one, &fast_config(5)).is_err());
        let lds = archetype_lds(2, 4, 3);
        let cfg = MiddlewareConfig { fixed_k: Some(0), ..fast_config(6) };
        assert!(FlipsMiddleware::cluster_privately(&lds, &cfg).is_err());
        let cfg = MiddlewareConfig { fixed_k: Some(99), ..fast_config(7) };
        assert!(FlipsMiddleware::cluster_privately(&lds, &cfg).is_err());
    }

    #[test]
    fn ceremony_is_seed_deterministic() {
        let lds = archetype_lds(4, 8, 6);
        let a = FlipsMiddleware::cluster_privately(&lds, &fast_config(8)).unwrap();
        let b = FlipsMiddleware::cluster_privately(&lds, &fast_config(8)).unwrap();
        assert_eq!(a.k(), b.k());
        assert_eq!(a.debug_cluster_sizes(), b.debug_cluster_sizes());
    }

    #[test]
    fn tee_accounting_reflects_provisioning() {
        let lds = archetype_lds(3, 6, 4);
        let cfg = MiddlewareConfig { fixed_k: Some(3), ..fast_config(9) };
        let pc = FlipsMiddleware::cluster_privately(&lds, &cfg).unwrap();
        // One ECALL per party provision + one clustering ECALL.
        assert_eq!(pc.tee_entries(), 12 + 1);
    }

    #[test]
    fn distribution_codec_round_trips() {
        let d = vec![0.25f32, 0.5, 0.125, 0.125];
        assert_eq!(decode_distribution(encode_distribution(&d)).unwrap(), d);
        assert!(decode_distribution(Bytes::from_static(&[1, 2])).is_err());
        // Length prefix lying about the payload.
        let mut bad = BytesMut::new();
        bad.put_u32_le(10);
        bad.put_f32_le(0.5);
        assert!(decode_distribution(bad.freeze()).is_err());
    }
}
