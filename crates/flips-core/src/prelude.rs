//! Convenience re-exports for examples, tests and downstream users.
//!
//! ```
//! use flips_core::prelude::*;
//! let profile = DatasetProfile::fashion_mnist();
//! assert_eq!(profile.classes, 10);
//! ```

pub use crate::builder::{SimulationBuilder, SimulationMeta, SimulationReport};
pub use crate::middleware::{
    FlipsMiddleware, MiddlewareConfig, PrivateClustering, TeeBackedSelector,
};
pub use crate::FlipsError;

pub use flips_data::{
    dataset::{balanced_test_set, generate_population},
    partition, Dataset, DatasetProfile, LabelDistribution, PartitionStrategy,
};
pub use flips_fl::{
    run_lockstep, run_sharded, straggler::StragglerBias, transport::duplex, BreakerConfig,
    BreakerState, ChaosAction, ChaosSchedule, ChaosTransport, ChaosWeights, Clock, Coordinator,
    CoordinatorConfig, DeadlinePolicy, DriverStats, Effect, Event, FlAlgorithm, FlJob, FlJobConfig,
    GuardConfig, GuardPlane, History, JobParts, LatencyModel, LocalTrainingConfig, MemoryTransport,
    ModelCodec, MultiJobDriver, ObservedLatency, PartyEndpoint, PartyPool, PartyRecord, RateLimit,
    RejectReason, RosterBuilder, RosterStore, RoundRecord, RuntimeOptions, ScriptedClock,
    ShardedOutcome, StragglerInjector, StreamTransport, TimerWheel, Transport, WireMessage,
};
pub use flips_ml::{metrics::ConfusionMatrix, model::ModelSpec, Matrix, Model};
pub use flips_selection::{ParticipantSelector, PartyId, RoundFeedback, SelectorKind};
pub use flips_tee::OverheadModel;
