//! Code measurements — enclave identity.
//!
//! A real TEE derives a launch measurement by hashing the enclave's initial
//! memory contents; attestation then proves "this exact code is running".
//! Here the measurement is a 128-bit FNV-1a digest of the code bytes — a
//! *simulation stand-in*, not a cryptographic hash (see the crate-level
//! disclaimer).

use serde::{Deserialize, Serialize};

/// A 128-bit enclave code measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Measurement(pub u128);

const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

/// FNV-1a over a byte slice (simulation-grade digest).
pub fn fnv1a_128(bytes: &[u8]) -> u128 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= b as u128;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

impl Measurement {
    /// Measures a code artifact (any byte representation of the enclave's
    /// logic — here, typically a descriptive identifier string).
    pub fn of_code(code: &[u8]) -> Self {
        Measurement(fnv1a_128(code))
    }

    /// Renders the measurement as lowercase hex, as attestation reports do.
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }
}

impl std::fmt::Display for Measurement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "mrenclave:{}", self.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_is_deterministic() {
        assert_eq!(Measurement::of_code(b"clustering-v1"), Measurement::of_code(b"clustering-v1"));
    }

    #[test]
    fn different_code_different_measurement() {
        assert_ne!(Measurement::of_code(b"clustering-v1"), Measurement::of_code(b"clustering-v2"));
    }

    #[test]
    fn single_byte_flip_avalanches() {
        let a = Measurement::of_code(b"aaaaaaaa").0;
        let b = Measurement::of_code(b"baaaaaaa").0;
        let differing = (a ^ b).count_ones();
        assert!(differing > 20, "only {differing} bits differ");
    }

    #[test]
    fn hex_rendering_is_32_chars() {
        let m = Measurement::of_code(b"x");
        assert_eq!(m.to_hex().len(), 32);
        assert!(m.to_string().starts_with("mrenclave:"));
    }

    #[test]
    fn empty_code_hashes_to_offset() {
        assert_eq!(fnv1a_128(&[]), FNV_OFFSET);
    }
}
