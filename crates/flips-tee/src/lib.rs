//! # flips-tee — simulated trusted-execution-environment substrate
//!
//! FLIPS treats two pieces of information as private beyond standard FL:
//! each party's **label distribution** and each party's **cluster
//! membership** (paper §3.3). The paper secures both by running the
//! clustering code inside a TEE (AMD SEV) on the aggregator, attested by a
//! shared attestation server, with each party provisioning its label
//! distribution over a secure channel (Figure 3).
//!
//! This crate simulates that trust architecture faithfully at the API and
//! information-flow level:
//!
//! - [`measurement`] — code identity hashes and the launch measurement;
//! - [`attestation`] — an attestation service that signs quotes over
//!   enclave measurements and verifies them for parties;
//! - [`channel`] — party↔enclave secure channels (session-keyed sealing
//!   with integrity tags);
//! - [`enclave`] — the enclave container: guarded entry points, sealed
//!   state invisible to the host, a calibrated compute-overhead model
//!   (the paper measures ≈5% — §5.1), and guaranteed state erasure on
//!   destruction.
//!
//! # Security disclaimer
//!
//! **This is a simulation substrate, not a security boundary.** The
//! "cipher" is a seeded-PRNG keystream and the "MAC" is a keyed FNV hash —
//! chosen so the workspace stays within its permitted dependencies. They
//! model the *shape* of the trust relationships (who can read what, what
//! must verify before what) so the middleware's information flow can be
//! tested; they provide no real confidentiality or integrity against an
//! adversary.
//!
//! # Example
//!
//! The overhead model is the knob the paper's ≈5% TEE cost hangs on —
//! accounting-only by default, never busy-waiting:
//!
//! ```
//! use flips_tee::OverheadModel;
//! use std::time::Duration;
//!
//! let sev = OverheadModel::sev_like();
//! assert!(!sev.simulate, "accounting-only: overhead is recorded, not spun");
//! assert_eq!(sev.compute_factor, 0.05, "the paper's measured ~5%");
//! assert_eq!(sev.entry_cost, Duration::from_micros(2));
//! ```

pub mod attestation;
pub mod channel;
pub mod enclave;
pub mod measurement;

pub use attestation::{AttestationServer, Quote};
pub use channel::{SealedMessage, SecureChannel};
pub use enclave::{Enclave, EnclaveEvent, OverheadModel};
pub use measurement::Measurement;

/// Errors produced by the TEE substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TeeError {
    /// A quote failed verification (unknown measurement or bad signature).
    AttestationFailed(String),
    /// A sealed message failed its integrity check.
    IntegrityViolation,
    /// An operation was attempted on a destroyed enclave.
    EnclaveDestroyed,
    /// A channel was used before its handshake completed.
    ChannelNotEstablished,
}

impl std::fmt::Display for TeeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TeeError::AttestationFailed(m) => write!(f, "attestation failed: {m}"),
            TeeError::IntegrityViolation => write!(f, "sealed message integrity violation"),
            TeeError::EnclaveDestroyed => write!(f, "enclave has been destroyed"),
            TeeError::ChannelNotEstablished => write!(f, "secure channel not established"),
        }
    }
}

impl std::error::Error for TeeError {}
