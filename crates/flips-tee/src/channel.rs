//! Party ↔ enclave secure channels (simulated TLS).
//!
//! After attestation succeeds, each party opens a channel to the enclave
//! for transmitting its label distribution (paper Figure 3: "each party
//! establishes a secure channel (eg: TLS channel) with the TEE for
//! transmitting secrets"). The simulation seals payloads with a
//! session-keyed PRNG keystream plus a keyed integrity tag — structurally
//! TLS-shaped, cryptographically toy (see the crate disclaimer).

use crate::measurement::fnv1a_128;
use crate::TeeError;
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A sealed (encrypted + authenticated) message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SealedMessage {
    /// Per-message nonce (counter).
    pub nonce: u64,
    /// Keystream-masked payload.
    pub ciphertext: Vec<u8>,
    /// Integrity tag over (key, nonce, ciphertext).
    pub tag: u128,
}

impl SealedMessage {
    /// Total wire size in bytes (for communication accounting).
    pub fn wire_size(&self) -> usize {
        8 + self.ciphertext.len() + 16
    }
}

/// One endpoint of an established secure channel.
///
/// Both endpoints are constructed with the same session key by
/// [`SecureChannel::establish`]; sealing on one side opens on the other.
#[derive(Debug, Clone)]
pub struct SecureChannel {
    session_key: u128,
    send_nonce: u64,
}

impl SecureChannel {
    /// Performs the (simulated) handshake, returning the party-side and
    /// enclave-side endpoints sharing a fresh session key.
    pub fn establish<R: Rng + ?Sized>(rng: &mut R) -> (SecureChannel, SecureChannel) {
        let session_key = ((rng.random::<u64>() as u128) << 64) | rng.random::<u64>() as u128;
        (SecureChannel { session_key, send_nonce: 0 }, SecureChannel { session_key, send_nonce: 0 })
    }

    /// Seals a payload for the peer.
    pub fn seal(&mut self, plaintext: &[u8]) -> SealedMessage {
        let nonce = self.send_nonce;
        self.send_nonce += 1;
        let mut ciphertext = plaintext.to_vec();
        self.apply_keystream(nonce, &mut ciphertext);
        let tag = self.compute_tag(nonce, &ciphertext);
        SealedMessage { nonce, ciphertext, tag }
    }

    /// Opens a sealed message from the peer.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::IntegrityViolation`] if the tag does not verify
    /// (payload or nonce tampered, or wrong session key).
    pub fn open(&self, msg: &SealedMessage) -> Result<Bytes, TeeError> {
        if self.compute_tag(msg.nonce, &msg.ciphertext) != msg.tag {
            return Err(TeeError::IntegrityViolation);
        }
        let mut plaintext = msg.ciphertext.clone();
        self.apply_keystream(msg.nonce, &mut plaintext);
        Ok(Bytes::from(plaintext))
    }

    fn apply_keystream(&self, nonce: u64, buf: &mut [u8]) {
        // Simulation cipher: XOR with a PRNG stream keyed by
        // (session_key, nonce). Symmetric, so seal == open.
        let seed = (self.session_key as u64)
            ^ ((self.session_key >> 64) as u64).rotate_left(17)
            ^ nonce.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut stream = StdRng::seed_from_u64(seed);
        for chunk in buf.chunks_mut(8) {
            let ks = stream.random::<u64>().to_le_bytes();
            for (b, k) in chunk.iter_mut().zip(ks) {
                *b ^= k;
            }
        }
    }

    fn compute_tag(&self, nonce: u64, ciphertext: &[u8]) -> u128 {
        let mut bytes = Vec::with_capacity(24 + ciphertext.len());
        bytes.extend_from_slice(&self.session_key.to_le_bytes());
        bytes.extend_from_slice(&nonce.to_le_bytes());
        bytes.extend_from_slice(ciphertext);
        fnv1a_128(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn pair() -> (SecureChannel, SecureChannel) {
        let mut rng = StdRng::seed_from_u64(7);
        SecureChannel::establish(&mut rng)
    }

    #[test]
    fn seal_open_round_trip() {
        let (mut party, enclave) = pair();
        let msg = party.seal(b"label distribution: [120, 3, 40, 0, 1]");
        let opened = enclave.open(&msg).unwrap();
        assert_eq!(&opened[..], b"label distribution: [120, 3, 40, 0, 1]");
    }

    #[test]
    fn ciphertext_differs_from_plaintext() {
        let (mut party, _) = pair();
        let msg = party.seal(b"secret");
        assert_ne!(&msg.ciphertext[..], b"secret");
    }

    #[test]
    fn nonce_advances_and_identical_plaintexts_differ_on_wire() {
        let (mut party, enclave) = pair();
        let a = party.seal(b"same");
        let b = party.seal(b"same");
        assert_eq!(a.nonce + 1, b.nonce);
        assert_ne!(a.ciphertext, b.ciphertext, "keystream must differ per nonce");
        assert_eq!(&enclave.open(&a).unwrap()[..], b"same");
        assert_eq!(&enclave.open(&b).unwrap()[..], b"same");
    }

    #[test]
    fn tampered_ciphertext_is_rejected() {
        let (mut party, enclave) = pair();
        let mut msg = party.seal(b"secret");
        msg.ciphertext[0] ^= 0xFF;
        assert_eq!(enclave.open(&msg), Err(TeeError::IntegrityViolation));
    }

    #[test]
    fn replayed_nonce_with_altered_payload_is_rejected() {
        let (mut party, enclave) = pair();
        let a = party.seal(b"aaaa");
        let b = party.seal(b"bbbb");
        let spliced = SealedMessage { nonce: a.nonce, ciphertext: b.ciphertext, tag: b.tag };
        assert_eq!(enclave.open(&spliced), Err(TeeError::IntegrityViolation));
    }

    #[test]
    fn cross_session_messages_are_rejected() {
        let (mut party_a, _) = pair();
        let mut rng = StdRng::seed_from_u64(8);
        let (_, enclave_b) = SecureChannel::establish(&mut rng);
        let msg = party_a.seal(b"secret");
        assert_eq!(enclave_b.open(&msg), Err(TeeError::IntegrityViolation));
    }

    #[test]
    fn empty_payload_round_trips() {
        let (mut party, enclave) = pair();
        let msg = party.seal(b"");
        assert_eq!(enclave.open(&msg).unwrap().len(), 0);
    }

    #[test]
    fn wire_size_accounts_for_framing() {
        let (mut party, _) = pair();
        let msg = party.seal(&[0u8; 100]);
        assert_eq!(msg.wire_size(), 100 + 24);
    }
}
