//! The enclave container: guarded state, calibrated overhead, erasure.
//!
//! An [`Enclave`] hosts private state `S` that the host can only touch
//! through [`Enclave::enter`] — the analog of an ECALL. Each entry applies
//! a configurable compute-overhead model; the paper measures ≈5% slowdown
//! for clustering under AMD SEV (105.4 ms vs 100.5 ms, §5.1), and the
//! `tee_overhead` bench reproduces that ratio against this model. On
//! destruction (explicit or drop) the state is wiped, matching the paper's
//! "the TEE ... deletes all information at the end of the FL job".

use crate::attestation::{PlatformKey, Quote};
use crate::measurement::Measurement;
use crate::TeeError;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Multiplicative compute-overhead model for enclave entries.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverheadModel {
    /// Extra time per entry as a fraction of the guarded computation
    /// (0.05 ≈ the paper's measured AMD SEV overhead).
    pub compute_factor: f64,
    /// Fixed per-entry cost (world-switch analog).
    pub entry_cost: Duration,
    /// When set, each entry actually spins for the modeled penalty so
    /// wall-clock measurements reproduce the paper's overhead ratio.
    /// Off by default: the penalty is *accounted* (see
    /// [`Enclave::total_overhead`]) without burning a core — tests and CI
    /// must never busy-wait.
    pub simulate: bool,
}

impl OverheadModel {
    /// The paper-calibrated model: 5% compute overhead, 2 µs entry cost.
    /// Accounting-only; chain [`OverheadModel::realtime`] to spin.
    pub fn sev_like() -> Self {
        OverheadModel {
            compute_factor: 0.05,
            entry_cost: Duration::from_micros(2),
            simulate: false,
        }
    }

    /// No overhead (for tests and non-TEE baselines).
    pub fn none() -> Self {
        OverheadModel { compute_factor: 0.0, entry_cost: Duration::ZERO, simulate: false }
    }

    /// Enables wall-clock simulation of the modeled penalty (benchmarks
    /// reproducing the paper's §5.1 measurement).
    #[must_use]
    pub fn realtime(mut self) -> Self {
        self.simulate = true;
        self
    }
}

/// Lifecycle events recorded by an enclave (auditable, as attestation
/// services can audit enclave software — paper §2.4).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum EnclaveEvent {
    /// The enclave was created with the given measurement (hex).
    Loaded(String),
    /// A quote was produced for a verifier nonce.
    Quoted(u64),
    /// The guarded state was entered (ECALL count so far).
    Entered(u64),
    /// The enclave was destroyed and its state erased.
    Destroyed,
}

/// A simulated secure enclave holding private state `S`.
///
/// The host-visible surface is deliberately narrow: quote generation,
/// guarded entry, destruction, and the audit log. There is no accessor
/// that returns `&S` to the host.
#[derive(Debug)]
pub struct Enclave<S> {
    measurement: Measurement,
    platform: PlatformKey,
    overhead: OverheadModel,
    state: Mutex<Option<S>>,
    entries: Mutex<u64>,
    overhead_applied: Mutex<Duration>,
    events: Mutex<Vec<EnclaveEvent>>,
}

impl<S> Enclave<S> {
    /// Loads an enclave: measures `code_identity`, installs the initial
    /// state, and binds the platform quoting key.
    pub fn load(
        code_identity: &[u8],
        initial_state: S,
        platform: PlatformKey,
        overhead: OverheadModel,
    ) -> Self {
        let measurement = Measurement::of_code(code_identity);
        let enclave = Enclave {
            measurement,
            platform,
            overhead,
            state: Mutex::new(Some(initial_state)),
            entries: Mutex::new(0),
            overhead_applied: Mutex::new(Duration::ZERO),
            events: Mutex::new(Vec::new()),
        };
        enclave.events.lock().push(EnclaveEvent::Loaded(measurement.to_hex()));
        enclave
    }

    /// The enclave's launch measurement (public — it is what attestation
    /// proves).
    pub fn measurement(&self) -> Measurement {
        self.measurement
    }

    /// Produces an attestation quote bound to a verifier nonce.
    pub fn quote(&self, nonce: u64) -> Quote {
        self.events.lock().push(EnclaveEvent::Quoted(nonce));
        self.platform.quote(self.measurement, nonce)
    }

    /// Enters the enclave and runs `f` against the guarded state,
    /// applying the overhead model.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::EnclaveDestroyed`] after destruction.
    pub fn enter<R>(&self, f: impl FnOnce(&mut S) -> R) -> Result<R, TeeError> {
        let mut guard = self.state.lock();
        let state = guard.as_mut().ok_or(TeeError::EnclaveDestroyed)?;
        let start = Instant::now();
        let result = f(state);
        let elapsed = start.elapsed();
        let penalty = self.overhead.entry_cost + elapsed.mul_f64(self.overhead.compute_factor);
        if self.overhead.simulate {
            busy_wait(penalty);
        }
        *self.overhead_applied.lock() += penalty;
        let mut entries = self.entries.lock();
        *entries += 1;
        self.events.lock().push(EnclaveEvent::Entered(*entries));
        Ok(result)
    }

    /// Destroys the enclave, erasing all guarded state. Idempotent.
    pub fn destroy(&self) {
        let mut guard = self.state.lock();
        if guard.take().is_some() {
            self.events.lock().push(EnclaveEvent::Destroyed);
        }
    }

    /// Whether the enclave is still alive.
    pub fn is_alive(&self) -> bool {
        self.state.lock().is_some()
    }

    /// Number of guarded entries so far.
    pub fn entry_count(&self) -> u64 {
        *self.entries.lock()
    }

    /// Total overhead the model has injected (diagnostics/benches).
    pub fn total_overhead(&self) -> Duration {
        *self.overhead_applied.lock()
    }

    /// A copy of the audit log.
    pub fn audit_log(&self) -> Vec<EnclaveEvent> {
        self.events.lock().clone()
    }
}

impl<S> Drop for Enclave<S> {
    fn drop(&mut self) {
        self.destroy();
    }
}

/// Spin until `d` has elapsed. `thread::sleep` is far too coarse for the
/// microsecond-scale penalties the overhead model injects.
fn busy_wait(d: Duration) {
    if d.is_zero() {
        return;
    }
    let start = Instant::now();
    while start.elapsed() < d {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attestation::AttestationServer;

    fn enclave() -> Enclave<Vec<u32>> {
        Enclave::load(
            b"clustering-code-v1",
            Vec::new(),
            PlatformKey::new(0xFEED),
            OverheadModel::none(),
        )
    }

    #[test]
    fn enter_mutates_guarded_state() {
        let e = enclave();
        e.enter(|s| s.push(7)).unwrap();
        let len = e.enter(|s| s.len()).unwrap();
        assert_eq!(len, 1);
        assert_eq!(e.entry_count(), 2);
    }

    #[test]
    fn destroy_erases_state_and_blocks_entry() {
        let e = enclave();
        e.enter(|s| s.push(1)).unwrap();
        e.destroy();
        assert!(!e.is_alive());
        assert_eq!(e.enter(|s| s.len()).unwrap_err(), TeeError::EnclaveDestroyed);
    }

    #[test]
    fn destroy_is_idempotent() {
        let e = enclave();
        e.destroy();
        e.destroy();
        let destroyed =
            e.audit_log().iter().filter(|ev| matches!(ev, EnclaveEvent::Destroyed)).count();
        assert_eq!(destroyed, 1);
    }

    #[test]
    fn quotes_verify_end_to_end() {
        let platform = PlatformKey::new(0xFEED);
        let e = Enclave::load(b"code", 0u8, platform, OverheadModel::none());
        let mut server = AttestationServer::new(platform);
        server.register(e.measurement());
        let quote = e.quote(42);
        assert!(server.verify(&quote, 42).is_ok());
    }

    #[test]
    fn audit_log_records_lifecycle() {
        let e = enclave();
        e.quote(1);
        e.enter(|_| ()).unwrap();
        e.destroy();
        let log = e.audit_log();
        assert!(matches!(log[0], EnclaveEvent::Loaded(_)));
        assert!(log.contains(&EnclaveEvent::Quoted(1)));
        assert!(log.contains(&EnclaveEvent::Entered(1)));
        assert_eq!(log.last(), Some(&EnclaveEvent::Destroyed));
    }

    #[test]
    fn overhead_model_injects_measurable_delay() {
        let e = Enclave::load(
            b"code",
            (),
            PlatformKey::new(1),
            OverheadModel {
                compute_factor: 1.0,
                entry_cost: Duration::from_micros(50),
                simulate: true,
            },
        );
        let start = Instant::now();
        e.enter(|_| busy_wait(Duration::from_micros(200))).unwrap();
        let wall = start.elapsed();
        // factor 1.0 ⇒ overhead ≈ 200µs + 50µs fixed, actually spun.
        let overhead = e.total_overhead();
        assert!(overhead >= Duration::from_micros(240), "overhead {overhead:?}");
        assert!(wall >= Duration::from_micros(440), "simulate must spin ({wall:?})");
    }

    #[test]
    fn accounting_only_model_does_not_spin() {
        let e = Enclave::load(
            b"code",
            (),
            PlatformKey::new(2),
            OverheadModel {
                compute_factor: 1000.0,
                entry_cost: Duration::from_secs(5),
                simulate: false,
            },
        );
        let start = Instant::now();
        e.enter(|_| ()).unwrap();
        // A 5 s modeled penalty must be recorded without being paid.
        assert!(start.elapsed() < Duration::from_secs(1));
        assert!(e.total_overhead() >= Duration::from_secs(5));
    }

    #[test]
    fn zero_overhead_model_records_nothing() {
        let e = enclave();
        e.enter(|_| ()).unwrap();
        assert!(e.total_overhead() < Duration::from_micros(50));
    }
}
