//! Remote attestation (simulated).
//!
//! All parties in a FLIPS job share one attestation server (paper Figure
//! 3). The flow modeled here:
//!
//! 1. the job operator **registers** the expected clustering-code
//!    measurement with the server;
//! 2. the enclave platform produces a [`Quote`] over its measurement and a
//!    party-supplied nonce, keyed by a platform secret shared with the
//!    attestation server (the analog of the hardware endorsement key);
//! 3. each party submits the quote + its nonce to the server for
//!    **verification** before provisioning any secrets.

use crate::measurement::{fnv1a_128, Measurement};
use crate::TeeError;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// An attestation quote: the enclave's measurement bound to a freshness
/// nonce under the platform key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Quote {
    /// The enclave's launch measurement.
    pub measurement: Measurement,
    /// The verifier-chosen nonce the quote is bound to.
    pub nonce: u64,
    /// Simulated platform signature over (measurement, nonce).
    pub signature: u128,
}

/// The platform's quoting identity. Held by the enclave host hardware;
/// its secret is shared out-of-band with the attestation server (the
/// simulation analog of a manufacturer-provisioned endorsement key).
#[derive(Debug, Clone, Copy)]
pub struct PlatformKey {
    secret: u128,
}

impl PlatformKey {
    /// Derives a platform key from a provisioning secret.
    pub fn new(secret: u128) -> Self {
        PlatformKey { secret }
    }

    /// Produces a quote binding `measurement` to `nonce`.
    pub fn quote(&self, measurement: Measurement, nonce: u64) -> Quote {
        Quote { measurement, nonce, signature: self.sign(measurement, nonce) }
    }

    fn sign(&self, measurement: Measurement, nonce: u64) -> u128 {
        let mut bytes = Vec::with_capacity(40);
        bytes.extend_from_slice(&self.secret.to_le_bytes());
        bytes.extend_from_slice(&measurement.0.to_le_bytes());
        bytes.extend_from_slice(&nonce.to_le_bytes());
        fnv1a_128(&bytes)
    }
}

/// The shared attestation server: verifies quotes against registered
/// (trusted) measurements.
#[derive(Debug, Clone)]
pub struct AttestationServer {
    platform: PlatformKey,
    trusted: HashSet<Measurement>,
    verifications: u64,
}

impl AttestationServer {
    /// Creates a server trusting the given platform key.
    pub fn new(platform: PlatformKey) -> Self {
        AttestationServer { platform, trusted: HashSet::new(), verifications: 0 }
    }

    /// Registers a code measurement as trusted (job setup).
    pub fn register(&mut self, measurement: Measurement) {
        self.trusted.insert(measurement);
    }

    /// Revokes a previously trusted measurement.
    pub fn revoke(&mut self, measurement: &Measurement) -> bool {
        self.trusted.remove(measurement)
    }

    /// Verifies a quote for a verifier who supplied `expected_nonce`.
    ///
    /// # Errors
    ///
    /// Fails when the nonce is stale, the signature is invalid (wrong
    /// platform), or the measurement is not registered (unexpected code).
    pub fn verify(&mut self, quote: &Quote, expected_nonce: u64) -> Result<(), TeeError> {
        self.verifications += 1;
        if quote.nonce != expected_nonce {
            return Err(TeeError::AttestationFailed(format!(
                "nonce mismatch: quote has {}, verifier expected {}",
                quote.nonce, expected_nonce
            )));
        }
        if self.platform.sign(quote.measurement, quote.nonce) != quote.signature {
            return Err(TeeError::AttestationFailed("invalid platform signature".into()));
        }
        if !self.trusted.contains(&quote.measurement) {
            return Err(TeeError::AttestationFailed(format!(
                "measurement {} is not registered",
                quote.measurement
            )));
        }
        Ok(())
    }

    /// Number of verification requests served (diagnostics).
    pub fn verifications(&self) -> u64 {
        self.verifications
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (PlatformKey, AttestationServer, Measurement) {
        let platform = PlatformKey::new(0xDEAD_BEEF);
        let mut server = AttestationServer::new(platform);
        let m = Measurement::of_code(b"flips-clustering-enclave-v1");
        server.register(m);
        (platform, server, m)
    }

    #[test]
    fn valid_quote_verifies() {
        let (platform, mut server, m) = setup();
        let quote = platform.quote(m, 12345);
        assert!(server.verify(&quote, 12345).is_ok());
        assert_eq!(server.verifications(), 1);
    }

    #[test]
    fn stale_nonce_is_rejected() {
        let (platform, mut server, m) = setup();
        let quote = platform.quote(m, 1);
        let err = server.verify(&quote, 2).unwrap_err();
        assert!(matches!(err, TeeError::AttestationFailed(_)));
    }

    #[test]
    fn unregistered_measurement_is_rejected() {
        let (platform, mut server, _) = setup();
        let rogue = Measurement::of_code(b"malicious-code");
        let quote = platform.quote(rogue, 7);
        assert!(server.verify(&quote, 7).is_err());
    }

    #[test]
    fn forged_signature_is_rejected() {
        let (_, mut server, m) = setup();
        let other_platform = PlatformKey::new(0xBAD);
        let quote = other_platform.quote(m, 7);
        assert!(server.verify(&quote, 7).is_err());
    }

    #[test]
    fn tampered_measurement_breaks_signature() {
        let (platform, mut server, m) = setup();
        let mut quote = platform.quote(m, 7);
        quote.measurement = Measurement(quote.measurement.0 ^ 1);
        assert!(server.verify(&quote, 7).is_err());
    }

    #[test]
    fn revocation_takes_effect() {
        let (platform, mut server, m) = setup();
        assert!(server.revoke(&m));
        let quote = platform.quote(m, 9);
        assert!(server.verify(&quote, 9).is_err());
        assert!(!server.revoke(&m), "double revoke reports absence");
    }
}
