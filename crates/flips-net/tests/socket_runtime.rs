//! Equivalence of the epoll socket runtime with the single-threaded
//! seeded goldens.
//!
//! The acceptance bar is the one every driver in this workspace has had
//! to clear, now over real TCP: a seeded run must be **bit-identical**
//! however it is executed. The single-threaded in-process run is the
//! golden oracle; 1-, 2- and 4-link socket topologies — kernel socket
//! buffers, epoll wakeup order, quiescence probes and all — must
//! reproduce it for every selector, and seeded chaos under the default
//! guard plane must leave the histories untouched exactly as it does on
//! the sharded wire.

use flips_core::prelude::*;
use flips_net::{run_socket, SocketOptions};

/// The shared workload (the sharded suite's latency shape): 12 parties,
/// 4 rounds, heterogeneous latency, deadline at 1.1× the observed
/// median round trip — tight enough that the slow tail misses rounds.
fn latency_builder(selector: SelectorKind, seed: u64) -> SimulationBuilder {
    SimulationBuilder::new(DatasetProfile::femnist())
        .parties(12)
        .rounds(4)
        .participation(0.25)
        .alpha(0.3)
        .selector(selector)
        .deadline(DeadlinePolicy::LatencyQuantile { q: 0.5, slack: 1.1 })
        .latency_sigma(0.8)
        .clustering_restarts(3)
        .test_per_class(8)
        .seed(seed)
}

/// The legacy injected-victims workload (the sharded suite's shape).
fn injected_builder(seed: u64) -> SimulationBuilder {
    SimulationBuilder::new(DatasetProfile::femnist())
        .parties(12)
        .rounds(4)
        .participation(0.25)
        .alpha(0.3)
        .selector(SelectorKind::Random)
        .straggler_rate(0.25)
        .clustering_restarts(3)
        .test_per_class(8)
        .seed(seed)
}

fn socket_history(builder: &SimulationBuilder, opts: &SocketOptions) -> History {
    let (job, meta) = builder.build().unwrap();
    let mut outcome = run_socket(vec![job.into_parts()], opts).unwrap();
    outcome.histories.remove(&meta.job_id).unwrap()
}

#[test]
fn every_selector_golden_replays_bit_exactly_over_tcp() {
    // The tentpole acceptance criterion: all five selector goldens,
    // 1, 2 and 4 TCP links — full `RoundRecord` equality against the
    // seeded in-process run.
    for selector in SelectorKind::all() {
        let golden = latency_builder(selector, 11).run().unwrap().history;
        for links in [1usize, 2, 4] {
            let history =
                socket_history(&latency_builder(selector, 11), &SocketOptions::new(links));
            assert_eq!(
                history, golden,
                "{selector:?} over {links} TCP link(s) diverged from the golden"
            );
        }
    }
}

#[test]
fn entropy_wire_replays_every_selector_golden_over_tcp() {
    // The entropy-stage acceptance bar, epoll flavor: all five selector
    // goldens over a 2-link TCP topology with `DeltaEntropy` negotiated
    // on both links — bit-identical to the seeded in-process run.
    for selector in SelectorKind::all() {
        let golden = latency_builder(selector, 11).run().unwrap().history;
        let history = socket_history(
            &latency_builder(selector, 11).codec(ModelCodec::DeltaEntropy),
            &SocketOptions::new(2),
        );
        assert_eq!(history, golden, "{selector:?} over the 2-link TCP entropy wire diverged");
    }
}

#[test]
fn heterogeneous_link_codecs_replay_the_golden_over_tcp() {
    // Per-link negotiation over real sockets: one job, two TCP links,
    // link 0 on the job-wide DeltaLossless and link 1 overridden to
    // DeltaEntropy (both lossless). The server rewrites link 1's
    // notices, the link worker pins the overridden codec, and the
    // history must not move.
    let base = latency_builder(SelectorKind::Random, 11).codec(ModelCodec::DeltaLossless);
    let golden = base.clone().run().unwrap().history;
    let (job, meta) = base.build().unwrap();
    let opts = SocketOptions::new(2).with_link_codec(meta.job_id, 1, ModelCodec::DeltaEntropy);
    let mut outcome = run_socket(vec![job.into_parts()], &opts).unwrap();
    let history = outcome.histories.remove(&meta.job_id).unwrap();
    assert_eq!(history, golden, "heterogeneous per-link codecs moved the TCP history");
    assert_eq!(outcome.stats.codec_mismatch_frames, 0);
    assert_eq!(outcome.link_unroutable, vec![0, 0]);
}

#[test]
fn socket_wire_counters_match_the_protocol_not_the_transport() {
    // Control traffic (hellos, probes, shutdowns) must be invisible in
    // the driver's counters: a socket run reports the same late-update
    // pressure and zero corruption, like any in-memory drive of the
    // same seed.
    let (job, _) = latency_builder(SelectorKind::Random, 11).build().unwrap();
    let outcome = run_socket(vec![job.into_parts()], &SocketOptions::new(2)).unwrap();
    assert_eq!(outcome.stats.corrupt_frames, 0);
    assert_eq!(outcome.stats.unknown_job_frames, 0);
    assert!(outcome.stats.late_updates > 0, "the workload must exercise deadline pressure");
    assert_eq!(outcome.link_unroutable, vec![0, 0]);
    assert_eq!(outcome.link_rejected, vec![0, 0]);
    assert_eq!(outcome.link_oversized, vec![0, 0]);
    assert!(outcome.breaker_transitions.is_empty());
    assert!(outcome.chaos_events.is_empty());
}

#[test]
fn guards_and_seeded_chaos_leave_socket_histories_untouched() {
    // The guard-plane acceptance bar over TCP: seeded chaos schedules
    // (duplicates, corrupt copies, delays, floods at an unowned job) on
    // the 2-link uplink with the default guards installed — the exact
    // suite the sharded runtime clears, so the chaos seam provably sees
    // the same frame sequence over sockets as over channels.
    let golden = latency_builder(SelectorKind::Random, 11).run().unwrap().history;
    for chaos_seed in [5u64, 77, 4242] {
        let opts = SocketOptions::new(2)
            .with_guard(GuardConfig::default())
            .with_chaos(ChaosSchedule::seeded(chaos_seed));
        let (job, meta) = latency_builder(SelectorKind::Random, 11).build().unwrap();
        let mut outcome = run_socket(vec![job.into_parts()], &opts).unwrap();
        let history = outcome.histories.remove(&meta.job_id).unwrap();
        assert_eq!(history, golden, "chaos seed {chaos_seed} moved the 2-link history");
        assert_eq!(outcome.stats.parties_ejected, 0, "seed {chaos_seed} tripped a breaker");
        assert!(outcome.breaker_transitions.is_empty());
        assert!(
            !outcome.chaos_events.is_empty(),
            "seed {chaos_seed} applied no chaos — the run proves nothing"
        );
    }
}

#[test]
fn multiple_jobs_share_the_socket_wire() {
    // Three jobs — different seeds, codecs and deadline models (the
    // sharded suite's exact mix) — run concurrently across the same
    // 2-link topology; each must finish with exactly its solo history.
    let configs: Vec<SimulationBuilder> = vec![
        latency_builder(SelectorKind::Random, 11).codec(ModelCodec::DeltaLossless),
        injected_builder(23),
        latency_builder(SelectorKind::Random, 37)
            .deadline(DeadlinePolicy::FixedSeconds { secs: 0.12 }),
    ];
    let solo: Vec<(u64, History)> = configs
        .iter()
        .map(|b| {
            let report = b.run().unwrap();
            (report.meta.job_id, report.history)
        })
        .collect();
    let jobs: Vec<_> = configs.iter().map(|b| b.build().unwrap().0.into_parts()).collect();
    let outcome = run_socket(jobs, &SocketOptions::new(2)).unwrap();
    assert_eq!(outcome.histories.len(), 3);
    for (id, history) in &solo {
        assert_eq!(
            outcome.histories.get(id),
            Some(history),
            "job {id:#x} diverged under socket multiplexing"
        );
    }
}

#[test]
fn a_severed_link_resumes_its_session_and_replays_the_golden() {
    // The link-loss tentpole over real TCP: worker 1 hard-severs its
    // connection mid-run (after 2 received data frames), reconnects
    // through the seeded backoff and resumes its session — retained
    // frames retransmit from the last acknowledged counters, so the
    // history is bit-identical to the never-dropped run and the
    // driver accounts exactly one loss and one resume.
    for selector in [SelectorKind::Random, SelectorKind::Flips] {
        let golden = latency_builder(selector, 11).run().unwrap().history;
        let (job, meta) = latency_builder(selector, 11).build().unwrap();
        let opts = SocketOptions::new(2).with_party_drop(1, 2);
        let mut outcome = run_socket(vec![job.into_parts()], &opts).unwrap();
        let history = outcome.histories.remove(&meta.job_id).unwrap();
        assert_eq!(history, golden, "{selector:?}: the resumed link moved the TCP history");
        assert_eq!(outcome.stats.links_lost, 1, "{selector:?}: wrong loss count");
        assert_eq!(outcome.stats.links_resumed, 1, "{selector:?}: wrong resume count");
        assert_eq!(outcome.stats.corrupt_frames, 0);
        assert_eq!(outcome.link_unroutable, vec![0, 0]);
    }
}

#[test]
fn a_severed_link_resumes_under_the_delta_entropy_codec() {
    // The hard case: the severed link speaks the stateful delta-entropy
    // wire. Retransmit-on-resume must preserve the exact frame sequence
    // (and thus the delta references on both ends) or decode breaks.
    let golden = latency_builder(SelectorKind::Random, 11).run().unwrap().history;
    let (job, meta) =
        latency_builder(SelectorKind::Random, 11).codec(ModelCodec::DeltaEntropy).build().unwrap();
    let opts = SocketOptions::new(2).with_party_drop(0, 3);
    let mut outcome = run_socket(vec![job.into_parts()], &opts).unwrap();
    let history = outcome.histories.remove(&meta.job_id).unwrap();
    assert_eq!(history, golden, "the resumed delta-entropy link moved the TCP history");
    assert_eq!(outcome.stats.links_lost, 1);
    assert_eq!(outcome.stats.links_resumed, 1);
    assert_eq!(outcome.stats.codec_mismatch_frames, 0);
}

#[test]
fn disconnect_chaos_replays_every_selector_golden_over_tcp() {
    // The seeded `Disconnect` fault at the chaos seam, epoll flavor:
    // the schedule severs the uplink and backlogs its frames until the
    // wire runs dry, on top of kernel socket buffers — every selector
    // golden must still replay bit-identically for three seeds.
    for selector in SelectorKind::all() {
        let golden = latency_builder(selector, 11).run().unwrap().history;
        let mut severed = 0usize;
        for chaos_seed in [5u64, 77, 4242] {
            let weights = ChaosWeights { disconnect: 2, ..ChaosWeights::default() };
            let opts = SocketOptions::new(2)
                .with_guard(GuardConfig::default())
                .with_chaos(ChaosSchedule::seeded(chaos_seed).weights(weights));
            let (job, meta) = latency_builder(selector, 11).build().unwrap();
            let mut outcome = run_socket(vec![job.into_parts()], &opts).unwrap();
            let history = outcome.histories.remove(&meta.job_id).unwrap();
            assert_eq!(
                history, golden,
                "{selector:?}: disconnect seed {chaos_seed} moved the TCP history"
            );
            assert_eq!(outcome.stats.parties_ejected, 0, "{selector:?}: seed {chaos_seed}");
            assert!(!outcome.chaos_events.is_empty(), "{selector:?}: seed {chaos_seed} was idle");
            severed += outcome
                .chaos_events
                .iter()
                .filter(|e| matches!(e.action, ChaosAction::Disconnect))
                .count();
        }
        assert!(severed > 0, "{selector:?}: no TCP seed severed a link — the suite is vacuous");
    }
}
