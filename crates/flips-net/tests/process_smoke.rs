//! End-to-end smoke test of the deployable binaries: a real
//! `flips-server` process and two real `flips-party` processes on TCP
//! loopback, driven exactly as a deployment would be — one shared TOML
//! config, separate OS processes, a Prometheus scrape over HTTP — and
//! checked against the seeded in-process golden.

use flips_core::prelude::*;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Reserves a loopback port (bind :0, read the assignment, release).
/// The tiny race against another process grabbing it is acceptable in a
/// test.
fn free_port() -> u16 {
    TcpListener::bind("127.0.0.1:0").unwrap().local_addr().unwrap().port()
}

/// Reads lines from a child's stdout until one starts with `prefix`,
/// with a deadline (the harness would otherwise hang on a wedged
/// child). Returns the full matching line.
fn await_line(reader: &mut impl BufRead, prefix: &str, timeout: Duration) -> String {
    let deadline = Instant::now() + timeout;
    let mut line = String::new();
    loop {
        assert!(Instant::now() < deadline, "timed out waiting for a {prefix:?} line");
        line.clear();
        let n = reader.read_line(&mut line).expect("child stdout readable");
        assert!(n > 0, "child closed stdout before printing {prefix:?}");
        if line.starts_with(prefix) {
            return line.trim_end().to_string();
        }
    }
}

fn scrape(addr: &str, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("health endpoint reachable");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    write!(stream, "GET {path} HTTP/1.0\r\nHost: {addr}\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("health endpoint answers");
    response
}

struct KillOnDrop(Child);
impl Drop for KillOnDrop {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

#[test]
fn server_and_party_processes_complete_a_run_and_expose_metrics() {
    let data_port = free_port();
    let health_port = free_port();
    let party_health_port = free_port();
    let config = format!(
        r#"
links = 2

[server]
listen = "127.0.0.1:{data_port}"
health = "127.0.0.1:{health_port}"

[party]
health = "127.0.0.1:{party_health_port}"

[guard]
max_frame_bytes = 1048576

[[job]]
dataset = "femnist"
seed = 11
parties = 12
rounds = 3
participation = 0.25
alpha = 0.3
selector = "random"
deadline = "latency-quantile"
deadline_q = 0.5
deadline_slack = 1.1
latency_sigma = 0.8
test_per_class = 8
clustering_restarts = 3
codec = "delta-lossless"
link_codecs = "delta-lossless,delta-entropy"
"#
    );
    let config_path = format!("{}/process_smoke.toml", env!("CARGO_TARGET_TMPDIR"));
    std::fs::write(&config_path, &config).unwrap();

    // The golden: the same [[job]] block, run in-process.
    let golden = SimulationBuilder::new(DatasetProfile::femnist())
        .parties(12)
        .rounds(3)
        .participation(0.25)
        .alpha(0.3)
        .selector(SelectorKind::Random)
        .deadline(DeadlinePolicy::LatencyQuantile { q: 0.5, slack: 1.1 })
        .latency_sigma(0.8)
        .test_per_class(8)
        .clustering_restarts(3)
        .seed(11)
        .run()
        .unwrap()
        .history;

    let mut server = KillOnDrop(
        Command::new(env!("CARGO_BIN_EXE_flips-server"))
            .arg(&config_path)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("flips-server spawns"),
    );
    let mut server_out = BufReader::new(server.0.stdout.take().unwrap());
    await_line(&mut server_out, "LISTENING ", Duration::from_secs(30));

    let spawn_party = |slot: usize| {
        KillOnDrop(
            Command::new(env!("CARGO_BIN_EXE_flips-party"))
                .arg(&config_path)
                .arg(slot.to_string())
                .stdout(Stdio::piped())
                .stderr(Stdio::inherit())
                .spawn()
                .expect("flips-party spawns"),
        )
    };

    // Per-process party health: slot `s` serves on the configured base
    // port + s, every process, not only slot 0. Party 0 is scraped
    // before party 1 even exists — the run cannot start with a link
    // missing, so its health plane is provably live mid-wait.
    let mut party0 = spawn_party(0);
    let mut party0_out = BufReader::new(party0.0.stdout.take().unwrap());
    let health0 = await_line(&mut party0_out, "PARTY HEALTH ", Duration::from_secs(30));
    let health0_addr = health0.trim_start_matches("PARTY HEALTH ").to_string();
    assert!(
        health0_addr.ends_with(&format!(":{party_health_port}")),
        "slot 0 must bind the base party-health port: {health0}"
    );
    let healthz0 = scrape(&health0_addr, "/healthz");
    assert!(healthz0.contains("ok"), "party 0 healthz: {healthz0}");
    let metrics0 = scrape(&health0_addr, "/metrics");
    assert!(
        metrics0.contains("flips_party_endpoints") && metrics0.contains("flips_party_shard 0"),
        "party 0 metrics miss the party gauges:\n{metrics0}"
    );

    let mut party1 = spawn_party(1);
    let mut party1_out = BufReader::new(party1.0.stdout.take().unwrap());
    let health1 = await_line(&mut party1_out, "PARTY HEALTH ", Duration::from_secs(30));
    let health1_addr = health1.trim_start_matches("PARTY HEALTH ").to_string();
    assert!(
        health1_addr.ends_with(&format!(":{}", party_health_port + 1)),
        "slot 1 must bind base + 1, its own endpoint: {health1}"
    );
    let healthz1 = scrape(&health1_addr, "/healthz");
    assert!(healthz1.contains("ok"), "party 1 healthz: {healthz1}");

    let parties = vec![(party0, party0_out), (party1, party1_out)];

    // The run completes and reports the golden trajectory.
    let job_line = await_line(&mut server_out, "JOB ", Duration::from_secs(120));
    assert!(job_line.contains("rounds=3"), "server reported an unexpected round count: {job_line}");
    let expected_acc = format!("accuracy={:.4}", golden.final_accuracy());
    assert!(
        job_line.contains(&expected_acc),
        "server's final accuracy diverged from the in-process golden \
         ({job_line} vs {expected_acc})"
    );
    await_line(&mut server_out, "RUN COMPLETE", Duration::from_secs(30));

    // One Prometheus scrape against the finished server.
    let health_addr = format!("127.0.0.1:{health_port}");
    let metrics = scrape(&health_addr, "/metrics");
    assert!(metrics.starts_with("HTTP/1.0 200 OK"), "scrape failed: {metrics}");
    for needle in [
        "# TYPE flips_frames_received_total counter",
        "flips_run_complete 1",
        "flips_jobs 1",
        "flips_parties_ejected_total 0",
    ] {
        assert!(metrics.contains(needle), "metrics miss {needle:?}:\n{metrics}");
    }
    let healthz = scrape(&health_addr, "/healthz");
    assert!(healthz.contains("ok"), "healthz: {healthz}");

    // Both parties exit zero after the shutdown handshake.
    for (mut party, out) in parties {
        let status = party.0.wait().expect("party waited");
        assert!(status.success(), "flips-party exited {status}");
        let lines: Vec<String> = out.lines().map(|l| l.unwrap()).collect();
        assert!(
            lines.iter().any(|l| l.starts_with("PARTY COMPLETE")),
            "party never reported completion: {lines:?}"
        );
    }
}
