//! End-to-end smoke test of the deployable binaries: a real
//! `flips-server` process and two real `flips-party` processes on TCP
//! loopback, driven exactly as a deployment would be — one shared TOML
//! config, separate OS processes, a Prometheus scrape over HTTP — and
//! checked against the seeded in-process golden.

use flips_core::prelude::*;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Reserves a loopback port (bind :0, read the assignment, release).
/// The tiny race against another process grabbing it is acceptable in a
/// test.
fn free_port() -> u16 {
    TcpListener::bind("127.0.0.1:0").unwrap().local_addr().unwrap().port()
}

/// Reads lines from a child's stdout until one starts with `prefix`,
/// with a deadline (the harness would otherwise hang on a wedged
/// child). Returns the full matching line.
fn await_line(reader: &mut impl BufRead, prefix: &str, timeout: Duration) -> String {
    let deadline = Instant::now() + timeout;
    let mut line = String::new();
    loop {
        assert!(Instant::now() < deadline, "timed out waiting for a {prefix:?} line");
        line.clear();
        let n = reader.read_line(&mut line).expect("child stdout readable");
        assert!(n > 0, "child closed stdout before printing {prefix:?}");
        if line.starts_with(prefix) {
            return line.trim_end().to_string();
        }
    }
}

fn scrape(addr: &str, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("health endpoint reachable");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    write!(stream, "GET {path} HTTP/1.0\r\nHost: {addr}\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("health endpoint answers");
    response
}

struct KillOnDrop(Child);
impl Drop for KillOnDrop {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

#[test]
fn server_and_party_processes_complete_a_run_and_expose_metrics() {
    let data_port = free_port();
    let health_port = free_port();
    let party_health_port = free_port();
    let config = format!(
        r#"
links = 2

[server]
listen = "127.0.0.1:{data_port}"
health = "127.0.0.1:{health_port}"

[party]
health = "127.0.0.1:{party_health_port}"

[guard]
max_frame_bytes = 1048576

[[job]]
dataset = "femnist"
seed = 11
parties = 12
rounds = 3
participation = 0.25
alpha = 0.3
selector = "random"
deadline = "latency-quantile"
deadline_q = 0.5
deadline_slack = 1.1
latency_sigma = 0.8
test_per_class = 8
clustering_restarts = 3
codec = "delta-lossless"
link_codecs = "delta-lossless,delta-entropy"
"#
    );
    let config_path = format!("{}/process_smoke.toml", env!("CARGO_TARGET_TMPDIR"));
    std::fs::write(&config_path, &config).unwrap();

    // The golden: the same [[job]] block, run in-process.
    let golden = SimulationBuilder::new(DatasetProfile::femnist())
        .parties(12)
        .rounds(3)
        .participation(0.25)
        .alpha(0.3)
        .selector(SelectorKind::Random)
        .deadline(DeadlinePolicy::LatencyQuantile { q: 0.5, slack: 1.1 })
        .latency_sigma(0.8)
        .test_per_class(8)
        .clustering_restarts(3)
        .seed(11)
        .run()
        .unwrap()
        .history;

    let mut server = KillOnDrop(
        Command::new(env!("CARGO_BIN_EXE_flips-server"))
            .arg(&config_path)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("flips-server spawns"),
    );
    let mut server_out = BufReader::new(server.0.stdout.take().unwrap());
    await_line(&mut server_out, "LISTENING ", Duration::from_secs(30));

    let spawn_party = |slot: usize| {
        KillOnDrop(
            Command::new(env!("CARGO_BIN_EXE_flips-party"))
                .arg(&config_path)
                .arg(slot.to_string())
                .stdout(Stdio::piped())
                .stderr(Stdio::inherit())
                .spawn()
                .expect("flips-party spawns"),
        )
    };

    // Per-process party health: slot `s` serves on the configured base
    // port + s, every process, not only slot 0. Party 0 is scraped
    // before party 1 even exists — the run cannot start with a link
    // missing, so its health plane is provably live mid-wait.
    let mut party0 = spawn_party(0);
    let mut party0_out = BufReader::new(party0.0.stdout.take().unwrap());
    let health0 = await_line(&mut party0_out, "PARTY HEALTH ", Duration::from_secs(30));
    let health0_addr = health0.trim_start_matches("PARTY HEALTH ").to_string();
    assert!(
        health0_addr.ends_with(&format!(":{party_health_port}")),
        "slot 0 must bind the base party-health port: {health0}"
    );
    let healthz0 = scrape(&health0_addr, "/healthz");
    assert!(healthz0.contains("ok"), "party 0 healthz: {healthz0}");
    let metrics0 = scrape(&health0_addr, "/metrics");
    assert!(
        metrics0.contains("flips_party_endpoints") && metrics0.contains("flips_party_shard 0"),
        "party 0 metrics miss the party gauges:\n{metrics0}"
    );

    let mut party1 = spawn_party(1);
    let mut party1_out = BufReader::new(party1.0.stdout.take().unwrap());
    let health1 = await_line(&mut party1_out, "PARTY HEALTH ", Duration::from_secs(30));
    let health1_addr = health1.trim_start_matches("PARTY HEALTH ").to_string();
    assert!(
        health1_addr.ends_with(&format!(":{}", party_health_port + 1)),
        "slot 1 must bind base + 1, its own endpoint: {health1}"
    );
    let healthz1 = scrape(&health1_addr, "/healthz");
    assert!(healthz1.contains("ok"), "party 1 healthz: {healthz1}");

    let parties = vec![(party0, party0_out), (party1, party1_out)];

    // The run completes and reports the golden trajectory.
    let job_line = await_line(&mut server_out, "JOB ", Duration::from_secs(120));
    assert!(job_line.contains("rounds=3"), "server reported an unexpected round count: {job_line}");
    let expected_acc = format!("accuracy={:.4}", golden.final_accuracy());
    assert!(
        job_line.contains(&expected_acc),
        "server's final accuracy diverged from the in-process golden \
         ({job_line} vs {expected_acc})"
    );
    await_line(&mut server_out, "RUN COMPLETE", Duration::from_secs(30));

    // One Prometheus scrape against the finished server.
    let health_addr = format!("127.0.0.1:{health_port}");
    let metrics = scrape(&health_addr, "/metrics");
    assert!(metrics.starts_with("HTTP/1.0 200 OK"), "scrape failed: {metrics}");
    for needle in [
        "# TYPE flips_frames_received_total counter",
        "flips_run_complete 1",
        "flips_jobs 1",
        "flips_parties_ejected_total 0",
    ] {
        assert!(metrics.contains(needle), "metrics miss {needle:?}:\n{metrics}");
    }
    let healthz = scrape(&health_addr, "/healthz");
    assert!(healthz.contains("ok"), "healthz: {healthz}");

    // Both parties exit zero after the shutdown handshake.
    for (mut party, out) in parties {
        let status = party.0.wait().expect("party waited");
        assert!(status.success(), "flips-party exited {status}");
        let lines: Vec<String> = out.lines().map(|l| l.unwrap()).collect();
        assert!(
            lines.iter().any(|l| l.starts_with("PARTY COMPLETE")),
            "party never reported completion: {lines:?}"
        );
    }
}

/// The shared recovery-suite config: 12 parties over 2 links, 3 seeded
/// rounds, guard installed — the exact `[[job]]` the main smoke runs.
fn recovery_config(data_port: u16, health_port: u16) -> String {
    format!(
        r#"
links = 2

[server]
listen = "127.0.0.1:{data_port}"
health = "127.0.0.1:{health_port}"

[guard]
max_frame_bytes = 1048576

[[job]]
dataset = "femnist"
seed = 11
parties = 12
rounds = 3
participation = 0.25
alpha = 0.3
selector = "random"
deadline = "latency-quantile"
deadline_q = 0.5
deadline_slack = 1.1
latency_sigma = 0.8
test_per_class = 8
clustering_restarts = 3
"#
    )
}

/// The same `[[job]]` block, run in-process: the golden trajectory.
fn recovery_golden() -> History {
    SimulationBuilder::new(DatasetProfile::femnist())
        .parties(12)
        .rounds(3)
        .participation(0.25)
        .alpha(0.3)
        .selector(SelectorKind::Random)
        .deadline(DeadlinePolicy::LatencyQuantile { q: 0.5, slack: 1.1 })
        .latency_sigma(0.8)
        .test_per_class(8)
        .clustering_restarts(3)
        .seed(11)
        .run()
        .unwrap()
        .history
}

fn assert_golden_job_line(server_out: &mut impl BufRead, golden: &History, context: &str) {
    let job_line = await_line(server_out, "JOB ", Duration::from_secs(120));
    assert!(job_line.contains("rounds=3"), "{context}: unexpected round count: {job_line}");
    let expected_acc = format!("accuracy={:.4}", golden.final_accuracy());
    assert!(
        job_line.contains(&expected_acc),
        "{context}: accuracy diverged from the golden ({job_line} vs {expected_acc})"
    );
    await_line(server_out, "RUN COMPLETE", Duration::from_secs(30));
}

#[test]
fn a_party_process_drops_its_link_and_resumes_against_the_live_server() {
    // The link-loss tentpole at full deployment fidelity: party 1
    // severs its TCP connection after two data frames, reconnects
    // through the seeded backoff and resumes its session. The run must
    // finish on the golden trajectory and the server must account the
    // loss, the resume and its boundary checkpoints in /metrics.
    let data_port = free_port();
    let health_port = free_port();
    let config = recovery_config(data_port, health_port);
    let config_path = format!("{}/process_resume.toml", env!("CARGO_TARGET_TMPDIR"));
    std::fs::write(&config_path, &config).unwrap();
    let checkpoint_dir = format!("{}/process_resume_ckpt", env!("CARGO_TARGET_TMPDIR"));
    let _ = std::fs::remove_dir_all(&checkpoint_dir);
    let golden = recovery_golden();

    let mut server = KillOnDrop(
        Command::new(env!("CARGO_BIN_EXE_flips-server"))
            .arg(&config_path)
            .arg("--checkpoint-dir")
            .arg(&checkpoint_dir)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("flips-server spawns"),
    );
    let mut server_out = BufReader::new(server.0.stdout.take().unwrap());
    await_line(&mut server_out, "LISTENING ", Duration::from_secs(30));

    let mut party0 = KillOnDrop(
        Command::new(env!("CARGO_BIN_EXE_flips-party"))
            .arg(&config_path)
            .arg("0")
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("flips-party 0 spawns"),
    );
    let mut party1 = KillOnDrop(
        Command::new(env!("CARGO_BIN_EXE_flips-party"))
            .arg(&config_path)
            .arg("1")
            .arg("--drop-after")
            .arg("2")
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("flips-party 1 spawns"),
    );

    assert_golden_job_line(&mut server_out, &golden, "drop-resume run");

    let metrics = scrape(&format!("127.0.0.1:{health_port}"), "/metrics");
    assert!(metrics.contains("flips_links_lost_total 1"), "missing loss count:\n{metrics}");
    assert!(metrics.contains("flips_link_resumes_total 1"), "missing resume count:\n{metrics}");
    // One write per round close plus the final drain boundary.
    assert!(
        metrics.contains("flips_checkpoint_rounds_total 4"),
        "missing checkpoint count:\n{metrics}"
    );

    for (name, party) in [("party 0", &mut party0), ("party 1", &mut party1)] {
        let status = party.0.wait().expect("party waited");
        assert!(status.success(), "{name} exited {status}");
    }
}

#[test]
fn a_killed_server_restores_its_checkpoint_and_finishes_the_golden_run() {
    // Checkpoint/restore at full deployment fidelity: the coordinator
    // process is killed mid-job, restarted with `--restore`, and the
    // finished run must report exactly the uninterrupted golden.
    let data_port = free_port();
    let health_port = free_port();
    let config = recovery_config(data_port, health_port);
    let config_path = format!("{}/process_restore.toml", env!("CARGO_TARGET_TMPDIR"));
    std::fs::write(&config_path, &config).unwrap();
    let checkpoint_dir = format!("{}/process_restore_ckpt", env!("CARGO_TARGET_TMPDIR"));
    let _ = std::fs::remove_dir_all(&checkpoint_dir);
    let checkpoint_file = format!("{checkpoint_dir}/checkpoint.bin");
    let golden = recovery_golden();

    let spawn_server = |restore: bool| {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_flips-server"));
        cmd.arg(&config_path).arg("--checkpoint-dir").arg(&checkpoint_dir);
        if restore {
            cmd.arg("--restore");
        }
        KillOnDrop(
            cmd.stdout(Stdio::piped())
                .stderr(Stdio::inherit())
                .spawn()
                .expect("flips-server spawns"),
        )
    };
    let spawn_party = |slot: usize| {
        KillOnDrop(
            Command::new(env!("CARGO_BIN_EXE_flips-party"))
                .arg(&config_path)
                .arg(slot.to_string())
                .stdout(Stdio::piped())
                .stderr(Stdio::inherit())
                .spawn()
                .expect("flips-party spawns"),
        )
    };

    // Phase 1: run until the first boundary snapshot lands on disk,
    // then kill the whole deployment, parties first.
    {
        let mut server = spawn_server(false);
        let mut server_out = BufReader::new(server.0.stdout.take().unwrap());
        await_line(&mut server_out, "LISTENING ", Duration::from_secs(30));
        let _party0 = spawn_party(0);
        let _party1 = spawn_party(1);
        let deadline = Instant::now() + Duration::from_secs(120);
        while !std::path::Path::new(&checkpoint_file).exists() {
            assert!(Instant::now() < deadline, "no checkpoint was ever written");
            std::thread::sleep(Duration::from_millis(2));
        }
        // KillOnDrop tears everything down here — mid-run with high
        // probability, after the final boundary in the worst case.
    }

    // Phase 2: restore and finish with a fresh set of processes.
    let mut server = spawn_server(true);
    let mut server_out = BufReader::new(server.0.stdout.take().unwrap());
    await_line(&mut server_out, "LISTENING ", Duration::from_secs(30));
    let mut party0 = spawn_party(0);
    let mut party1 = spawn_party(1);

    assert_golden_job_line(&mut server_out, &golden, "restored run");

    let metrics = scrape(&format!("127.0.0.1:{health_port}"), "/metrics");
    assert!(
        metrics.contains("flips_checkpoint_rounds_total"),
        "missing checkpoint counter:\n{metrics}"
    );
    assert!(metrics.contains("flips_run_complete 1"), "missing completion gauge:\n{metrics}");

    for (name, party) in [("party 0", &mut party0), ("party 1", &mut party1)] {
        let status = party.0.wait().expect("party waited");
        assert!(status.success(), "{name} exited {status}");
    }
}
