//! The party worker's readiness-driven event loop.
//!
//! [`party_loop`] serves one link slot of the socket wire: a
//! [`PartyPool`] — the same unmodified pool the lockstep and sharded
//! drivers use — pumped whenever the connection reads ready, with the
//! [control protocol](crate::control) answered in between pumps. The
//! ordering is the load-bearing part: a quiescence probe is answered
//! only *after* a full pool pump has processed every pending downlink
//! frame and put every reply on the wire (or in the outbox), so the
//! answer is a FIFO barrier the coordinator's quiet check can trust.
//! The same ordering rule protects codec state: a `RefSync` reference
//! seed pauses the data plane (see [`crate::link::PartyLink`]) until
//! this loop has applied it to the pool, so no frame encoded against a
//! restored reference is ever decoded without it.
//!
//! [`party_loop_with`] adds the failure-recovery behaviours behind
//! [`PartyOptions`]: reconnect-and-resume after a dead connection
//! (under the seeded [backoff](crate::backoff) schedule), and a
//! deliberate link-death knob for chaos tests.

use crate::link::{net_err, Fd, PartyLink};
use crate::metrics::{render_party_metrics, HealthPlane, PartySnapshot};
use flips_fl::{FlError, GuardConfig, ModelCodec, PartyEndpoint, PartyPool};
use mio::{Events, Interest, Poll, Token};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

/// The worker loop's safety-net wakeup (all real work is event-driven).
const POLL_TIMEOUT: Duration = Duration::from_millis(20);

/// The epoll token of the data link (health tokens live far above).
const LINK_TOKEN: Token = Token(0);

/// One job's party-side share: id, negotiated codec (pinned
/// out-of-band, as a real deployment would), and the endpoints this
/// link slot owns.
pub type PartyJob = (u64, ModelCodec, Vec<PartyEndpoint>);

/// Failure-recovery options of one party worker.
#[derive(Debug, Clone)]
pub struct PartyOptions {
    /// Where to reconnect when the server connection dies mid-run.
    /// `None` keeps the old contract: a dead connection is fatal.
    pub resume_addr: Option<SocketAddr>,
    /// The total budget one reconnect attempt may spend dialing (the
    /// per-attempt pacing comes from [`crate::backoff`]).
    pub reconnect_budget: Duration,
    /// How long to wait for the server's hello-ack after a Hello.
    pub hello_timeout: Duration,
    /// Test knob: deliberately sever the connection (both directions,
    /// as a crash would) once this many data frames have been
    /// received. One-shot; requires `resume_addr`.
    pub drop_after: Option<u64>,
    /// Jobs this worker folds as an aggregation-tree inner node, as
    /// `(job, sketch_dim)` pairs ([`PartyPool::enable_tree`]): one
    /// partial-aggregate frame per round goes up the wire instead of
    /// per-party updates. The server must run its coordinators in
    /// exact-fold mode (the socket runtime's tree flag does both ends).
    pub tree_jobs: Vec<(u64, usize)>,
}

impl Default for PartyOptions {
    fn default() -> Self {
        PartyOptions {
            resume_addr: None,
            reconnect_budget: Duration::from_secs(30),
            hello_timeout: Duration::from_secs(60),
            drop_after: None,
            tree_jobs: Vec::new(),
        }
    }
}

/// Serves link slot `shard` over `stream` until the coordinator's
/// shutdown notice, then returns the finished pool (its observability
/// counters outlive the run). `health`, when given, serves `/metrics`
/// and `/healthz` from the same event loop. Equivalent to
/// [`party_loop_with`] under default [`PartyOptions`] — no reconnects.
///
/// # Errors
///
/// Socket failures, protocol violations and training failures
/// propagate; a server that disappears without a shutdown notice is a
/// [`FlError::Transport`].
pub fn party_loop(
    stream: TcpStream,
    shard: u32,
    jobs: Vec<PartyJob>,
    guard: Option<&GuardConfig>,
    health: Option<TcpListener>,
) -> Result<PartyPool<PartyLink>, FlError> {
    party_loop_with(stream, shard, jobs, guard, health, &PartyOptions::default())
}

/// [`party_loop`] with explicit failure-recovery options.
///
/// The connection is switched to nonblocking + `TCP_NODELAY` and a
/// Hello naming `shard` is the first frame out — accept order at the
/// server is nondeterministic, so the slot must be announced, not
/// assumed. The server's hello-ack is awaited before the loop starts;
/// it carries the session token a later reconnect presents, and any
/// restored codec references ride directly behind it.
///
/// # Errors
///
/// As [`party_loop`]; with `opts.resume_addr` set, a dead connection
/// is only fatal once a reconnect exhausts its budget (or the server
/// answers it with a fresh session — the run state is gone).
pub fn party_loop_with(
    stream: TcpStream,
    shard: u32,
    jobs: Vec<PartyJob>,
    guard: Option<&GuardConfig>,
    health: Option<TcpListener>,
    opts: &PartyOptions,
) -> Result<PartyPool<PartyLink>, FlError> {
    crate::link::prepare_stream(&stream)?;
    let mut link = PartyLink::new(stream);
    link.set_resumable(opts.resume_addr.is_some());
    link.send_hello(shard)?;
    link.await_hello_ack(opts.hello_timeout)?;
    let mut fd = Fd(link.raw_fd());
    let parties: u64 = jobs.iter().map(|(_, _, eps)| eps.len() as u64).sum();

    let mut pool = PartyPool::new(link);
    if let Some(guard) = guard {
        pool.set_guard(guard);
    }
    for (job, codec, endpoints) in jobs {
        pool.pin_codec(job, codec);
        pool.add_job(job, endpoints);
    }
    for &(job, sketch_dim) in &opts.tree_jobs {
        pool.enable_tree(job, sketch_dim);
    }

    let mut poll = Poll::new().map_err(net_err)?;
    let mut events = Events::with_capacity(16);
    poll.registry().register(&fd, LINK_TOKEN, Interest::READABLE).map_err(net_err)?;
    let mut write_registered = false;
    let mut health_plane = HealthPlane::new(health)?;
    health_plane.register(poll.registry())?;
    let mut dropped = false;

    loop {
        poll.poll(&mut events, Some(POLL_TIMEOUT)).map_err(net_err)?;
        let health_tokens: Vec<usize> =
            events.iter().map(|e| e.token().0).filter(|t| health_plane.owns(*t)).collect();
        for token in health_tokens {
            let snap = PartySnapshot {
                shard,
                parties,
                unroutable: pool.unroutable(),
                rejected: pool.rejected(),
                codec_mismatch: pool.codec_mismatch(),
                renegotiations_rejected: pool.renegotiations_rejected(),
                oversized: pool.oversized(),
            };
            health_plane.handle(poll.registry(), token, &mut || render_party_metrics(&snap))?;
        }

        // Pump to exhaustion — local training for every delivered model
        // happens inside — and only then answer any quiescence probes:
        // the probe answer must sit behind every reply in the stream.
        // Reference seeds are applied *before* every pump: the link
        // pauses its data plane at each RefSync, and no frame encoded
        // against a seeded reference may decode before the seed lands.
        loop {
            let mut seeded = false;
            while let Some((job, round, params)) = pool.transport_mut().take_ref_sync() {
                if !pool.seed_reference(job, round, &params) {
                    return Err(FlError::Protocol(format!(
                        "server re-keyed job {job:#x} round {round}, but this pool's codec \
                         keeps no reference of that shape"
                    )));
                }
                seeded = true;
            }
            if !pool.pump()? && !seeded {
                break;
            }
        }
        if let Some(after) = opts.drop_after {
            let link = pool.transport_mut();
            if !dropped && link.data_received() >= after {
                // The chaos knob: die like a crashed process would.
                link.sever();
                dropped = true;
            }
        }
        let link = pool.transport_mut();
        if link.is_shutdown() {
            // The coordinator has stopped listening for quiescence;
            // answering now would race its socket teardown.
            while link.take_status_req().is_some() {}
        } else {
            while let Some(seq) = link.take_status_req() {
                link.send_status(seq)?;
            }
        }
        if link.wants_write() {
            link.flush()?;
        }
        let wants = link.wants_write();
        if wants != write_registered {
            let interest =
                if wants { Interest::READABLE | Interest::WRITABLE } else { Interest::READABLE };
            poll.registry().reregister(&fd, LINK_TOKEN, interest).map_err(net_err)?;
            write_registered = wants;
        }
        if link.is_shutdown() && !wants {
            // FIN now: the pool (and the socket inside it) outlives
            // this loop, and the coordinator lingers until it sees EOF.
            link.close();
            return Ok(pool);
        }
        if link.is_broken() || (link.is_eof() && !link.is_shutdown()) {
            let Some(addr) = opts.resume_addr else {
                return Err(FlError::Transport(
                    "server closed the link without a shutdown notice".into(),
                ));
            };
            // Reconnect-and-resume: dial under the seeded backoff
            // schedule, present the session token and our counters,
            // and retransmit what the ack says the server never saw.
            let _ = poll.registry().deregister(&fd);
            let stream = crate::runtime::connect_with_retry(addr, opts.reconnect_budget)?;
            crate::link::prepare_stream(&stream)?;
            let link = pool.transport_mut();
            link.resume_with(stream);
            link.send_hello(shard)?;
            let (received, _sent, fresh) = link.await_hello_ack(opts.hello_timeout)?;
            if fresh {
                return Err(FlError::Protocol(
                    "reconnect was answered with a fresh session: the server lost this \
                     run's state"
                        .into(),
                ));
            }
            link.retransmit_from(received)?;
            fd = Fd(link.raw_fd());
            poll.registry().register(&fd, LINK_TOKEN, Interest::READABLE).map_err(net_err)?;
            write_registered = false;
        }
    }
}
