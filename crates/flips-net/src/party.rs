//! The party worker's readiness-driven event loop.
//!
//! [`party_loop`] serves one link slot of the socket wire: a
//! [`PartyPool`] — the same unmodified pool the lockstep and sharded
//! drivers use — pumped whenever the connection reads ready, with the
//! [control protocol](crate::control) answered in between pumps. The
//! ordering is the load-bearing part: a quiescence probe is answered
//! only *after* a full pool pump has processed every pending downlink
//! frame and put every reply on the wire (or in the outbox), so the
//! answer is a FIFO barrier the coordinator's quiet check can trust.

use crate::link::{net_err, Fd, PartyLink};
use crate::metrics::{render_party_metrics, HealthPlane, PartySnapshot};
use flips_fl::{FlError, GuardConfig, ModelCodec, PartyEndpoint, PartyPool};
use mio::{Events, Interest, Poll, Token};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

/// The worker loop's safety-net wakeup (all real work is event-driven).
const POLL_TIMEOUT: Duration = Duration::from_millis(20);

/// The epoll token of the data link (health tokens live far above).
const LINK_TOKEN: Token = Token(0);

/// One job's party-side share: id, negotiated codec (pinned
/// out-of-band, as a real deployment would), and the endpoints this
/// link slot owns.
pub type PartyJob = (u64, ModelCodec, Vec<PartyEndpoint>);

/// Serves link slot `shard` over `stream` until the coordinator's
/// shutdown notice, then returns the finished pool (its observability
/// counters outlive the run). `health`, when given, serves `/metrics`
/// and `/healthz` from the same event loop.
///
/// The connection is switched to nonblocking + `TCP_NODELAY` and a
/// Hello naming `shard` is the first frame out — accept order at the
/// server is nondeterministic, so the slot must be announced, not
/// assumed.
///
/// # Errors
///
/// Socket failures, protocol violations and training failures
/// propagate; a server that disappears without a shutdown notice is a
/// [`FlError::Transport`].
pub fn party_loop(
    stream: TcpStream,
    shard: u32,
    jobs: Vec<PartyJob>,
    guard: Option<&GuardConfig>,
    health: Option<TcpListener>,
) -> Result<PartyPool<PartyLink>, FlError> {
    crate::link::prepare_stream(&stream)?;
    let mut link = PartyLink::new(stream);
    link.send_hello(shard)?;
    let fd = Fd(link.raw_fd());
    let parties: u64 = jobs.iter().map(|(_, _, eps)| eps.len() as u64).sum();

    let mut pool = PartyPool::new(link);
    if let Some(guard) = guard {
        pool.set_guard(guard);
    }
    for (job, codec, endpoints) in jobs {
        pool.pin_codec(job, codec);
        pool.add_job(job, endpoints);
    }

    let mut poll = Poll::new().map_err(net_err)?;
    let mut events = Events::with_capacity(16);
    poll.registry().register(&fd, LINK_TOKEN, Interest::READABLE).map_err(net_err)?;
    let mut write_registered = false;
    let mut health_plane = HealthPlane::new(health)?;
    health_plane.register(poll.registry())?;

    loop {
        poll.poll(&mut events, Some(POLL_TIMEOUT)).map_err(net_err)?;
        let health_tokens: Vec<usize> =
            events.iter().map(|e| e.token().0).filter(|t| health_plane.owns(*t)).collect();
        for token in health_tokens {
            let snap = PartySnapshot {
                shard,
                parties,
                unroutable: pool.unroutable(),
                rejected: pool.rejected(),
                codec_mismatch: pool.codec_mismatch(),
                renegotiations_rejected: pool.renegotiations_rejected(),
                oversized: pool.oversized(),
            };
            health_plane.handle(poll.registry(), token, &mut || render_party_metrics(&snap))?;
        }

        // Pump to exhaustion — local training for every delivered model
        // happens inside — and only then answer any quiescence probes:
        // the probe answer must sit behind every reply in the stream.
        while pool.pump()? {}
        let link = pool.transport_mut();
        if link.is_shutdown() {
            // The coordinator has stopped listening for quiescence;
            // answering now would race its socket teardown.
            while link.take_status_req().is_some() {}
        } else {
            while let Some(seq) = link.take_status_req() {
                link.send_status(seq)?;
            }
        }
        if link.wants_write() {
            link.flush()?;
        }
        let wants = link.wants_write();
        if wants != write_registered {
            let interest =
                if wants { Interest::READABLE | Interest::WRITABLE } else { Interest::READABLE };
            poll.registry().reregister(&fd, LINK_TOKEN, interest).map_err(net_err)?;
            write_registered = wants;
        }
        if link.is_shutdown() && !wants {
            // FIN now: the pool (and the socket inside it) outlives
            // this loop, and the coordinator lingers until it sees EOF.
            link.close();
            return Ok(pool);
        }
        if link.is_eof() {
            return Err(FlError::Transport(
                "server closed the link without a shutdown notice".into(),
            ));
        }
    }
}
