//! The in-process socket harness: coordinator and party workers as
//! threads of one process, wired over real TCP loopback sockets.
//!
//! [`run_socket`] is to [`crate::serve`]/[`crate::party_loop`] what
//! [`flips_fl::run_sharded`] is to its worker loops: the same code the
//! deployable binaries run, arranged so a test can drive a complete
//! multi-process topology — epoll event loops, length-prefixed TCP
//! framing, quiescence probes and all — in one call and compare the
//! resulting histories bit-for-bit against the single-threaded goldens.

use crate::backoff::{retry, Backoff, SystemClock};
use crate::link::{net_err, PartyLink};
use crate::party::{party_loop_with, PartyJob, PartyOptions};
use crate::server::{serve, ServerOptions, ServerOutcome};
use flips_fl::chaos::ChaosEvent;
use flips_fl::guard::BreakerTransition;
use flips_fl::{
    ChaosSchedule, DriverStats, FlError, GuardConfig, History, JobParts, PartyEndpoint, PartyPool,
};
use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

/// Options of one loopback socket run.
#[derive(Debug, Clone)]
pub struct SocketOptions {
    /// TCP links (= party worker threads) the roster is split across
    /// (≥ 1). Party `p` of every job is served over link `p % links` —
    /// the same pure assignment the sharded runtime uses.
    pub links: usize,
    /// Inbound guard plane installed on the driver (and, for the
    /// frame-size stage, on every party pool). `None` runs unguarded.
    pub guard: Option<GuardConfig>,
    /// Seeded chaos schedule applied at the driver's uplink seam.
    /// `None` runs the wire untouched.
    pub chaos: Option<ChaosSchedule>,
    /// Per-link codec overrides, `(job, link slot, codec)`, applied to
    /// both wire ends out-of-band: the server's per-link negotiation
    /// table and the owning link worker's pinned codec (the socket
    /// sibling of [`flips_fl::RuntimeOptions::with_link_codec`]).
    pub link_codecs: Vec<(u64, usize, flips_fl::ModelCodec)>,
    /// Run the session-resume plane: the server parks dead links and
    /// every worker reconnects and resumes instead of failing.
    pub resume: bool,
    /// Test knob: worker `slot` severs its connection after receiving
    /// `after` data frames (one-shot), exercising a real mid-run TCP
    /// link death. Implies [`SocketOptions::resume`].
    pub party_drop: Option<(usize, u64)>,
    /// Run every job as an aggregation tree: each link worker folds its
    /// parties' updates into one exact partial aggregate per round
    /// ([`PartyPool::enable_tree`]) and every coordinator merges the
    /// partials in exact-fold mode — uplink update traffic drops from
    /// O(parties) to O(links) frames per round, bit-identically to the
    /// flat exact-fold run.
    pub tree: bool,
}

impl SocketOptions {
    /// Options for `links` TCP links, no guard, no chaos.
    pub fn new(links: usize) -> Self {
        SocketOptions {
            links,
            guard: None,
            chaos: None,
            link_codecs: Vec::new(),
            resume: false,
            party_drop: None,
            tree: false,
        }
    }

    /// Runs every job as an aggregation tree (see
    /// [`SocketOptions::tree`]).
    #[must_use]
    pub fn with_tree(mut self) -> Self {
        self.tree = true;
        self
    }

    /// Runs the session-resume plane (see [`SocketOptions::resume`]).
    #[must_use]
    pub fn with_resume(mut self) -> Self {
        self.resume = true;
        self
    }

    /// Severs worker `slot`'s connection after `after` received data
    /// frames and lets the resume plane recover it.
    #[must_use]
    pub fn with_party_drop(mut self, slot: usize, after: u64) -> Self {
        self.party_drop = Some((slot, after));
        self.resume = true;
        self
    }

    /// Overrides the codec one link speaks for `job` (see
    /// [`SocketOptions::link_codecs`]).
    #[must_use]
    pub fn with_link_codec(mut self, job: u64, link: usize, codec: flips_fl::ModelCodec) -> Self {
        self.link_codecs.push((job, link, codec));
        self
    }

    /// Installs an inbound guard plane on the run's driver and pools.
    #[must_use]
    pub fn with_guard(mut self, guard: GuardConfig) -> Self {
        self.guard = Some(guard);
        self
    }

    /// Applies a seeded chaos schedule to the run's uplink.
    #[must_use]
    pub fn with_chaos(mut self, chaos: ChaosSchedule) -> Self {
        self.chaos = Some(chaos);
        self
    }
}

/// The outcome of a completed socket run (the socket sibling of
/// [`flips_fl::ShardedOutcome`]).
#[derive(Debug)]
pub struct SocketOutcome {
    /// Final per-job histories, keyed by job id.
    pub histories: BTreeMap<u64, History>,
    /// The coordinator-side wire counters.
    pub stats: DriverStats,
    /// Per-link counts of frames the worker could not route.
    pub link_unroutable: Vec<u64>,
    /// Per-link counts of routable frames an endpoint refused.
    pub link_rejected: Vec<u64>,
    /// Per-link counts of downlink frames dropped by the guard's size
    /// cap (all zero when no guard was installed).
    pub link_oversized: Vec<u64>,
    /// The guard plane's breaker transition log (empty when no guard
    /// was installed).
    pub breaker_transitions: Vec<BreakerTransition>,
    /// The chaos actions actually applied, in application order (empty
    /// when no schedule was installed).
    pub chaos_events: Vec<ChaosEvent>,
}

/// Connects to `addr` under the [`crate::backoff`] schedule — a peer
/// process may still be on its way to `listen(2)` (the deployable
/// party binary races the server's startup; in-process harness
/// connects land first try), and a reconnecting party must not hammer
/// a server that is still restarting. The jitter seed is derived from
/// the target port, so a fleet of parties dialing one address spreads
/// its retries while each party's own schedule stays replayable.
///
/// # Errors
///
/// The last connect error once `timeout` elapses.
pub fn connect_with_retry(addr: SocketAddr, timeout: Duration) -> Result<TcpStream, FlError> {
    let mut backoff = Backoff::new(
        Duration::from_millis(10),
        Duration::from_millis(500),
        0xC0_4EC7 ^ u64::from(addr.port()),
    );
    let mut clock = SystemClock::start();
    retry(timeout, &mut backoff, &mut clock, || TcpStream::connect(addr).map_err(net_err))
}

/// Runs every job to completion over `opts.links` loopback TCP links,
/// one party worker thread per link, returning each job's final history
/// and the wire counters. Histories are bit-identical to the same jobs
/// under every other driver in the workspace — see [`crate::server`]'s
/// module docs for the quiescence argument.
///
/// # Errors
///
/// [`FlError::InvalidConfig`] for zero links or an empty job set;
/// socket, protocol and aggregation failures propagate (the
/// coordinator's error wins when both sides fail).
///
/// # Panics
///
/// Panics if a worker thread panics (a training bug, not an I/O
/// condition).
pub fn run_socket(jobs: Vec<JobParts>, opts: &SocketOptions) -> Result<SocketOutcome, FlError> {
    if opts.links == 0 {
        return Err(FlError::InvalidConfig("link count must be at least 1".into()));
    }
    if jobs.is_empty() {
        return Err(FlError::InvalidConfig("no jobs to run".into()));
    }
    let links = opts.links;
    let listener = TcpListener::bind("127.0.0.1:0").map_err(net_err)?;
    let addr = listener.local_addr().map_err(net_err)?;

    // Split every job: the coordinator-side pieces stay in the server's
    // JobParts, the endpoints go to their link's worker (party
    // `p` → link `p % links`, matching the router).
    let mut per_link: Vec<Vec<PartyJob>> = (0..links).map(|_| Vec::new()).collect();
    let mut server_jobs = Vec::with_capacity(jobs.len());
    let mut tree_jobs: Vec<(u64, usize)> = Vec::new();
    for mut parts in jobs {
        let endpoints = std::mem::take(&mut parts.endpoints);
        if opts.tree {
            // Tree mode is a two-ended contract: the coordinator folds
            // in exact integer arithmetic so link-level partials merge
            // bit-identically, and every worker folds its share.
            parts.coordinator.set_exact_fold(true);
            tree_jobs.push((parts.coordinator.job_id(), parts.coordinator.sketch_dim()));
        }
        let job_id = parts.coordinator.job_id();
        let codec = parts.coordinator.codec();
        let mut split: Vec<Vec<PartyEndpoint>> = (0..links).map(|_| Vec::new()).collect();
        for ep in endpoints {
            split[ep.id() % links].push(ep);
        }
        for (slot, eps) in split.into_iter().enumerate() {
            if !eps.is_empty() {
                // The worker pins the codec *its link* speaks — the
                // override when one names this `(job, slot)`.
                let pinned = opts
                    .link_codecs
                    .iter()
                    .rev()
                    .find(|&&(j, l, _)| j == job_id && l == slot)
                    .map_or(codec, |&(_, _, c)| c);
                per_link[slot].push((job_id, pinned, eps));
            }
        }
        server_jobs.push(parts);
    }

    let resume = opts.resume || opts.party_drop.is_some();
    let server_opts = ServerOptions {
        guard: opts.guard,
        chaos: opts.chaos.clone(),
        link_codecs: opts.link_codecs.clone(),
        resume,
        ..ServerOptions::new(links)
    };

    let (server_result, worker_results) = std::thread::scope(|scope| {
        let workers: Vec<_> = per_link
            .into_iter()
            .enumerate()
            .map(|(slot, link_jobs)| {
                let guard = opts.guard;
                let party_opts = PartyOptions {
                    resume_addr: resume.then_some(addr),
                    drop_after: opts.party_drop.and_then(|(s, after)| (s == slot).then_some(after)),
                    tree_jobs: tree_jobs.clone(),
                    ..PartyOptions::default()
                };
                scope.spawn(move || -> Result<PartyPool<PartyLink>, FlError> {
                    let stream = connect_with_retry(addr, Duration::from_secs(30))?;
                    party_loop_with(
                        stream,
                        slot as u32,
                        link_jobs,
                        guard.as_ref(),
                        None,
                        &party_opts,
                    )
                })
            })
            .collect();
        let server_result = serve(&listener, server_jobs, &server_opts, None);
        let worker_results: Vec<_> =
            workers.into_iter().map(|h| h.join().expect("party worker panicked")).collect();
        (server_result, worker_results)
    });

    let ServerOutcome { histories, stats, breaker_transitions, chaos_events, .. } = server_result?;
    let mut pools = Vec::with_capacity(worker_results.len());
    for result in worker_results {
        pools.push(result?);
    }
    Ok(SocketOutcome {
        histories,
        stats,
        link_unroutable: pools.iter().map(PartyPool::unroutable).collect(),
        link_oversized: pools.iter().map(PartyPool::oversized).collect(),
        link_rejected: pools.iter().map(|p| p.rejected()).collect(),
        breaker_transitions,
        chaos_events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_links_is_rejected() {
        assert!(matches!(
            run_socket(Vec::new(), &SocketOptions::new(0)),
            Err(FlError::InvalidConfig(_))
        ));
    }

    #[test]
    fn empty_job_set_is_rejected() {
        assert!(matches!(
            run_socket(Vec::new(), &SocketOptions::new(2)),
            Err(FlError::InvalidConfig(_))
        ));
    }
}
