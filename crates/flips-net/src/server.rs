//! The coordinator's readiness-driven event loop.
//!
//! [`serve`] runs one [`MultiJobDriver`] — guard plane, chaos seam and
//! all — behind an epoll selector: every party connection, plus the
//! optional health listener, registers with one [`mio::Poll`], and the
//! loop sleeps in `epoll_wait` until a frame, a probe answer or a
//! metrics scrape arrives. Write interest is registered per link only
//! while its outbox holds staged bytes, so backpressure costs no
//! spinning: a full kernel buffer parks the frames in the
//! [`StreamTransport`](flips_fl::StreamTransport) outbox and the next
//! `EPOLLOUT` resumes them.
//!
//! # Quiescence over real sockets
//!
//! Simulated time may only advance when the wire is provably quiet —
//! the same invariant the sharded runtime enforces with in-memory inbox
//! probes and busy flags. Sockets offer neither, so quiet is
//! established with a counting protocol over per-link TCP FIFO (frame
//! formats in [`crate::control`]):
//!
//! 1. When a pump makes no progress, the loop probes every non-quiet
//!    link with `StatusReq(seq)` (one probe in flight per link).
//! 2. A party answers only after fully pumping its pool, so by FIFO the
//!    coordinator has already processed every data frame the party sent
//!    before the answer when it reads the answer.
//! 3. A link is quiet iff its newest probe is answered **and** the
//!    answer's counters match the coordinator's *current* counters in
//!    both directions (`party.received == sent_here`, `party.sent ==
//!    received_here`) **and** its outbox is empty. Frames that moved
//!    after the probe left make the answer stale, which re-arms the
//!    probe — the protocol converges because in-flight frames land.
//! 4. All links quiet → one defensive pump → the timer wheel fires the
//!    next deadline, exactly as in the lockstep and sharded drivers.
//!
//! The destination-modulo-links routing is the same pure assignment the
//! sharded runtime uses, so a socket run and a shard run carry
//! identical per-link data-frame sequences — which is what lets the
//! chaos schedule's per-`(link, index)` actions, and therefore entire
//! seeded guarded runs, replay bit-identically over TCP.
//!
//! # Failure recovery
//!
//! With [`ServerOptions::resume`] on, a dead party connection **parks**
//! its link instead of aborting the run: the slot's counters, retained
//! frames and codec references stay alive, a parked link is never
//! quiet (so simulated time cannot advance past the outage), and the
//! listener keeps accepting. A reconnecting party presents the slot's
//! session token in its Hello; both sides then retransmit exactly the
//! frames the other never received, and the run continues on the same
//! seeded trajectory. [`ServerOptions::checkpoint_dir`] additionally
//! snapshots the whole coordinator plane at every round boundary
//! (atomic write, versioned format — see [`flips_fl::Checkpoint`]);
//! [`ServerOptions::restore`] rebuilds a crashed coordinator from such
//! a snapshot, pushing every link's delta-codec reference back out to
//! the (fresh) parties over [`ControlMsg::RefSync`] before the first
//! data frame.

use crate::control::{session_token, ControlMsg};
use crate::link::{net_err, prepare_stream, CoordLink, Fd, SocketRouter};
use crate::metrics::{render_server_metrics, HealthPlane};
use flips_fl::chaos::ChaosEvent;
use flips_fl::guard::BreakerTransition;
use flips_fl::{
    ChaosSchedule, ChaosTransport, Checkpoint, DriverStats, FlError, GuardConfig, History,
    JobParts, MultiJobDriver,
};
use mio::{Events, Interest, Poll, Token};
use std::collections::BTreeMap;
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The event loop's safety-net wakeup. All real work is event-driven;
/// this only bounds how late the loop notices an error condition — and,
/// with resume on, how late it notices a reconnecting party (the
/// mid-run listener is deliberately not in the selector: 20 ms of
/// accept latency against a reconnect budget of seconds is nothing,
/// and it keeps the steady-state loop untouched).
const POLL_TIMEOUT: Duration = Duration::from_millis(20);

/// How long the post-run flush waits for slow peers before giving up
/// (they still observe EOF).
const SHUTDOWN_TIMEOUT: Duration = Duration::from_secs(10);

/// The on-disk checkpoint filename inside
/// [`ServerOptions::checkpoint_dir`].
pub const CHECKPOINT_FILE: &str = "checkpoint.bin";

/// Options of one coordinator run.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Party connections to accept before the run starts (≥ 1). Party
    /// `p` of every job is served over link `p % links`.
    pub links: usize,
    /// Inbound guard plane installed on the driver. `None` runs
    /// unguarded.
    pub guard: Option<GuardConfig>,
    /// Seeded chaos schedule applied at the driver's uplink seam.
    /// `None` runs the wire untouched.
    pub chaos: Option<ChaosSchedule>,
    /// How long to wait for all `links` parties to connect and say
    /// Hello.
    pub accept_timeout: Duration,
    /// Per-link codec overrides, `(job, link slot, codec)` — applied to
    /// the driver's per-link negotiation table before the run starts
    /// (see [`flips_fl::MultiJobDriver::set_link_codec`]). The party
    /// process serving an overridden slot must pin the same codec.
    pub link_codecs: Vec<(u64, usize, flips_fl::ModelCodec)>,
    /// Park dead links and let their parties reconnect and resume the
    /// session (module docs) instead of aborting the run.
    pub resume: bool,
    /// How long a parked link may wait for its party to reconnect
    /// before the run aborts after all.
    pub resume_timeout: Duration,
    /// Snapshot the coordinator plane into
    /// `<dir>/`[`CHECKPOINT_FILE`] at every round boundary (atomic
    /// tmp-file + rename).
    pub checkpoint_dir: Option<PathBuf>,
    /// Restore the run from a checkpoint before the first round: the
    /// driver resumes mid-history and every link's delta reference is
    /// re-seeded on the connecting parties via [`ControlMsg::RefSync`].
    pub restore: Option<Checkpoint>,
}

impl ServerOptions {
    /// Options for `links` party connections, no guard, no chaos, no
    /// recovery plane.
    pub fn new(links: usize) -> Self {
        ServerOptions {
            links,
            guard: None,
            chaos: None,
            accept_timeout: Duration::from_secs(60),
            link_codecs: Vec::new(),
            resume: false,
            resume_timeout: Duration::from_secs(30),
            checkpoint_dir: None,
            restore: None,
        }
    }

    /// Installs an inbound guard plane on the run's driver.
    #[must_use]
    pub fn with_guard(mut self, guard: GuardConfig) -> Self {
        self.guard = Some(guard);
        self
    }

    /// Applies a seeded chaos schedule to the run's uplink.
    #[must_use]
    pub fn with_chaos(mut self, chaos: ChaosSchedule) -> Self {
        self.chaos = Some(chaos);
        self
    }

    /// Parks dead links for session resume instead of aborting.
    #[must_use]
    pub fn with_resume(mut self) -> Self {
        self.resume = true;
        self
    }

    /// Snapshots the run into `dir` at every round boundary.
    #[must_use]
    pub fn with_checkpoint_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// Restores the run from `cp` instead of starting fresh.
    #[must_use]
    pub fn with_restore(mut self, cp: Checkpoint) -> Self {
        self.restore = Some(cp);
        self
    }
}

/// The outcome of a completed coordinator run.
#[derive(Debug)]
pub struct ServerOutcome {
    /// Final per-job histories, keyed by job id.
    pub histories: BTreeMap<u64, History>,
    /// The coordinator-side wire counters.
    pub stats: DriverStats,
    /// The guard plane's breaker transition log (empty when no guard
    /// was installed).
    pub breaker_transitions: Vec<BreakerTransition>,
    /// The chaos actions actually applied, in application order (empty
    /// when no schedule was installed).
    pub chaos_events: Vec<ChaosEvent>,
    /// Round-boundary snapshots written this run (zero unless
    /// [`ServerOptions::checkpoint_dir`] was set).
    pub checkpoint_rounds: u64,
}

/// Accepts `links` connections and places each by its Hello's slot.
/// Every placed link gets its session token assigned and a
/// `HelloAck` — followed by that slot's `ref_syncs` reference seeds,
/// counted in the ack — as its first outbound frames.
fn accept_links(
    listener: &TcpListener,
    links: usize,
    timeout: Duration,
    resume: bool,
    ref_syncs: &[Vec<ControlMsg>],
) -> Result<Vec<Arc<Mutex<CoordLink>>>, FlError> {
    listener.set_nonblocking(true).map_err(net_err)?;
    let deadline = Instant::now() + timeout;
    let mut slots: Vec<Option<CoordLink>> = (0..links).map(|_| None).collect();
    let mut pending: Vec<CoordLink> = Vec::new();
    let mut filled = 0;
    while filled < links {
        if Instant::now() > deadline {
            return Err(FlError::Transport(format!(
                "timed out waiting for party connections ({filled}/{links} links up)"
            )));
        }
        match listener.accept() {
            Ok((stream, _)) => {
                prepare_stream(&stream)?;
                pending.push(CoordLink::new(stream));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
            Err(e) => return Err(net_err(e)),
        }
        // Poll pending connections for their Hello. This is setup-phase
        // code on an otherwise idle process; a short sleep beats wiring
        // a second selector for a handful of handshakes.
        let mut i = 0;
        while i < pending.len() {
            if let Some(frame) = pending[i].try_recv_data()? {
                return Err(FlError::Protocol(format!(
                    "party sent a {}-byte data frame before its Hello",
                    frame.len()
                )));
            }
            match pending[i].hello() {
                Some(hello) => {
                    let shard = hello.shard;
                    if hello.token != 0 {
                        return Err(FlError::Protocol(format!(
                            "party on link slot {shard} presented a session token during the \
                             initial accept phase"
                        )));
                    }
                    let mut link = pending.swap_remove(i);
                    let slot = slots.get_mut(shard as usize).ok_or_else(|| {
                        FlError::Protocol(format!(
                            "party announced link slot {shard}, but only {links} links exist"
                        ))
                    })?;
                    if slot.is_some() {
                        return Err(FlError::Protocol(format!(
                            "two parties announced link slot {shard}"
                        )));
                    }
                    link.assign_token(session_token(shard));
                    link.set_resumable(resume);
                    link.send_hello_ack(true, &ref_syncs[shard as usize])?;
                    *slot = Some(link);
                    filled += 1;
                }
                None => i += 1,
            }
        }
        if filled < links {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    Ok(slots.into_iter().map(|s| Arc::new(Mutex::new(s.expect("all slots filled")))).collect())
}

/// Flushes every link's staged bytes and keeps each link's epoll write
/// interest registered exactly while its outbox is non-empty. Returns
/// whether any link still has staged bytes.
fn flush_links(
    links: &[Arc<Mutex<CoordLink>>],
    fds: &[Fd],
    poll: &Poll,
    write_registered: &mut [bool],
) -> Result<bool, FlError> {
    let mut any_pending = false;
    for (i, link) in links.iter().enumerate() {
        let mut l = link.lock().expect("coordinator link poisoned");
        if l.is_parked() {
            continue;
        }
        if l.wants_write() {
            l.flush()?;
        }
        let wants = l.wants_write();
        any_pending |= wants;
        if wants != write_registered[i] {
            let interest =
                if wants { Interest::READABLE | Interest::WRITABLE } else { Interest::READABLE };
            poll.registry().reregister(&fds[i], Token(i), interest).map_err(net_err)?;
            write_registered[i] = wants;
        }
    }
    Ok(any_pending)
}

/// Writes `cp` into `dir/`[`CHECKPOINT_FILE`] atomically: a crash
/// mid-write leaves the previous snapshot intact, never a truncated
/// file (the decoder would reject one anyway — checksummed format —
/// but a complete older snapshot restores; a rejected newer one does
/// not).
fn write_checkpoint(dir: &Path, cp: &Checkpoint) -> Result<(), FlError> {
    let io = |e: std::io::Error| FlError::Transport(format!("checkpoint write failed: {e}"));
    std::fs::create_dir_all(dir).map_err(io)?;
    let tmp = dir.join(format!("{CHECKPOINT_FILE}.tmp"));
    std::fs::write(&tmp, cp.encode()).map_err(io)?;
    std::fs::rename(&tmp, dir.join(CHECKPOINT_FILE)).map_err(io)?;
    Ok(())
}

/// Runs every job to completion over `opts.links` party connections
/// accepted from `listener`, returning each job's final history and the
/// wire counters. `health`, when given, serves `/metrics` and
/// `/healthz` from the same event loop for the duration of the run.
///
/// Endpoints inside the given [`JobParts`] are dropped — the party side
/// of each job lives in whatever processes connect (see
/// [`crate::party_loop`]); only the coordinator-side pieces run here.
/// Histories are bit-identical to the same jobs under
/// [`flips_fl::run_lockstep`] and [`flips_fl::run_sharded`] — see the
/// [module docs](self) for why, including across parked-and-resumed
/// links and a checkpoint/restore cycle.
///
/// # Errors
///
/// [`FlError::InvalidConfig`] for zero links or an empty job set;
/// accept-phase timeouts, socket failures, protocol violations and
/// aggregation failures propagate. Without [`ServerOptions::resume`], a
/// dead party connection is fatal; with it, only a party that stays
/// gone past [`ServerOptions::resume_timeout`] is.
pub fn serve(
    listener: &TcpListener,
    jobs: Vec<JobParts>,
    opts: &ServerOptions,
    health: Option<TcpListener>,
) -> Result<ServerOutcome, FlError> {
    if opts.links == 0 {
        return Err(FlError::InvalidConfig("link count must be at least 1".into()));
    }
    if jobs.is_empty() {
        return Err(FlError::InvalidConfig("no jobs to run".into()));
    }
    // The restored references go out per-slot inside the accept-phase
    // handshake, so every party seeds its pool before it can possibly
    // see a data frame encoded against the reference.
    let mut ref_syncs: Vec<Vec<ControlMsg>> = vec![Vec::new(); opts.links];
    if let Some(cp) = &opts.restore {
        for r in &cp.codec_refs {
            let slot = ref_syncs.get_mut(r.link as usize).ok_or_else(|| {
                FlError::InvalidConfig(format!(
                    "checkpoint re-keys link {}, run has {}",
                    r.link, opts.links
                ))
            })?;
            slot.push(ControlMsg::RefSync {
                job: r.job,
                round: r.ref_round,
                params: r.params.clone(),
            });
        }
    }
    let links = accept_links(listener, opts.links, opts.accept_timeout, opts.resume, &ref_syncs)?;
    let mut fds: Vec<Fd> =
        links.iter().map(|l| Fd(l.lock().expect("fresh link").raw_fd())).collect();

    let router = SocketRouter::new(links.clone());
    let wire = match &opts.chaos {
        Some(schedule) => ChaosTransport::new(router, schedule.clone()),
        None => ChaosTransport::inert(router),
    };
    let mut driver = MultiJobDriver::new(wire);
    if let Some(guard) = opts.guard {
        driver.set_guard(guard)?;
    }
    let job_count = jobs.len() as u64;
    for parts in jobs {
        // The endpoints live in the party processes; only the
        // coordinator-side pieces are registered here.
        let _endpoints = driver.add_parts(parts)?;
    }
    for &(job, link, codec) in &opts.link_codecs {
        driver.set_link_codec(job, link, codec)?;
    }
    if let Some(cp) = &opts.restore {
        driver.restore(cp)?;
    }
    if opts.checkpoint_dir.is_some() {
        // Round opens queue at round closes so the boundary state can
        // be snapshotted before the next round's frames exist.
        driver.set_deferred_opens(true)?;
    }
    let mut checkpoint_rounds: u64 = 0;

    let mut poll = Poll::new().map_err(net_err)?;
    let mut events = Events::with_capacity(64);
    for (i, fd) in fds.iter().enumerate() {
        poll.registry().register(fd, Token(i), Interest::READABLE).map_err(net_err)?;
    }
    let mut write_registered = vec![false; fds.len()];
    let mut health_plane = HealthPlane::new(health)?;
    health_plane.register(poll.registry())?;
    // Reconnecting parties park here until their Hello arrives.
    let mut reconnects: Vec<CoordLink> = Vec::new();
    let mut parked_since: Vec<Option<Instant>> = vec![None; links.len()];

    driver.start()?;
    flush_links(&links, &fds, &poll, &mut write_registered)?;

    loop {
        // The loop sleeps here: frames, probe answers, write-readiness
        // and metrics scrapes all arrive as epoll events.
        poll.poll(&mut events, Some(POLL_TIMEOUT)).map_err(net_err)?;
        let health_tokens: Vec<usize> =
            events.iter().map(|e| e.token().0).filter(|t| health_plane.owns(*t)).collect();
        for token in health_tokens {
            let stats = driver.stats();
            let transitions = driver.guard().map_or(0, |g| g.transitions().len() as u64);
            let finished = driver.is_finished();
            health_plane.handle(poll.registry(), token, &mut || {
                render_server_metrics(&stats, transitions, checkpoint_rounds, job_count, finished)
            })?;
        }

        // Pump to exhaustion, then fall straight through to the
        // quiescence check: the wire is drained, so the only way
        // anything more can arrive is via a probe answer or a clock
        // advance — sleeping first would stall every simulated-time
        // step on the poll timeout. In checkpoint mode, round opens
        // queue at round closes; each boundary is snapshotted before
        // the queued opens put the next round on the wire.
        loop {
            while driver.pump()? {}
            if !driver.has_pending_opens() {
                break;
            }
            if let Some(dir) = &opts.checkpoint_dir {
                if driver.at_round_boundary() {
                    write_checkpoint(dir, &driver.checkpoint()?)?;
                    checkpoint_rounds += 1;
                }
            }
            driver.open_pending()?;
        }
        flush_links(&links, &fds, &poll, &mut write_registered)?;
        if driver.is_finished() {
            break;
        }

        // Link-death sweep: a resumable link that died mid-I/O parked
        // itself; one that went EOF cleanly is parked here. Without
        // resume, any dead link aborts the run (the old contract).
        for (i, link) in links.iter().enumerate() {
            let mut l = link.lock().expect("coordinator link poisoned");
            let newly_parked = l.take_just_parked()
                || (!l.is_parked() && l.is_eof() && {
                    if !opts.resume {
                        return Err(FlError::Transport(
                            "a party closed its link before the run finished".into(),
                        ));
                    }
                    l.park();
                    let _ = l.take_just_parked();
                    true
                });
            if newly_parked {
                driver.note_link_lost();
                parked_since[i] = Some(Instant::now());
                // The dead socket stays open inside the link until the
                // resume swaps it out; deregistering keeps its EOF
                // readiness from busy-looping the poll.
                let _ = poll.registry().deregister(&fds[i]);
                write_registered[i] = false;
            }
        }
        for since in parked_since.iter().flatten() {
            if since.elapsed() > opts.resume_timeout {
                return Err(FlError::Transport(format!(
                    "a parked link's party did not reconnect within {:?}",
                    opts.resume_timeout
                )));
            }
        }

        // Resume seam: reconnecting parties are accepted here, matched
        // to their slot by session token, and replayed the frames they
        // missed. Stray connections (bad token, fresh Hello) are
        // dropped — the run's roster is fixed at accept time.
        if opts.resume {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        prepare_stream(&stream)?;
                        reconnects.push(CoordLink::new(stream));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) => return Err(net_err(e)),
                }
            }
            let mut i = 0;
            while i < reconnects.len() {
                if reconnects[i].try_recv_data()?.is_some() || reconnects[i].is_eof() {
                    // Data before Hello, or died while pending.
                    reconnects.swap_remove(i);
                    continue;
                }
                let Some(hello) = reconnects[i].hello() else {
                    i += 1;
                    continue;
                };
                let conn = reconnects.swap_remove(i);
                let slot = hello.shard as usize;
                let valid = slot < links.len()
                    && hello.token != 0
                    && links[slot].lock().expect("coordinator link poisoned").token()
                        == hello.token;
                if !valid {
                    drop(conn);
                    continue;
                }
                let mut l = links[slot].lock().expect("coordinator link poisoned");
                if !l.is_parked() {
                    // The party noticed the death first; park the slot
                    // now so the swap below is the whole story.
                    let _ = poll.registry().deregister(&fds[slot]);
                    l.park();
                    let _ = l.take_just_parked();
                    write_registered[slot] = false;
                    driver.note_link_lost();
                }
                l.resume_with(conn.into_stream(), hello);
                l.send_hello_ack(false, &[])?;
                l.retransmit_unacked()?;
                fds[slot] = Fd(l.raw_fd());
                poll.registry()
                    .register(&fds[slot], Token(slot), Interest::READABLE)
                    .map_err(net_err)?;
                parked_since[slot] = None;
                drop(l);
                driver.note_link_resumed();
            }
        }

        // Nothing moved: run the quiescence protocol (module docs). A
        // parked link is never quiet, so simulated time holds still
        // across an outage — deadlines cannot fire against a party
        // that isn't there to answer.
        let mut all_quiet = true;
        for link in &links {
            let mut l = link.lock().expect("coordinator link poisoned");
            if l.needs_probe() {
                l.send_probe()?;
            }
            all_quiet &= l.quiet();
        }
        if !all_quiet {
            // Probes may be staged behind a full buffer; keep the write
            // interest honest before sleeping.
            flush_links(&links, &fds, &poll, &mut write_registered)?;
            continue;
        }
        // Provably quiet: one defensive drain, then time advances —
        // the same order the sharded coordinator uses.
        if driver.pump()? {
            continue;
        }
        if !driver.advance_clock()? {
            return Err(FlError::Protocol(
                "socket driver stalled: wire quiet, no live deadline, jobs unfinished".into(),
            ));
        }
    }

    // Final drain (chaos leftovers and post-completion replies are
    // counted, like the sharded runtime's final pump), then the final
    // boundary snapshot and shutdown.
    while driver.pump()? {}
    if let Some(dir) = &opts.checkpoint_dir {
        if driver.at_round_boundary() {
            write_checkpoint(dir, &driver.checkpoint()?)?;
            checkpoint_rounds += 1;
        }
    }
    for link in &links {
        link.lock().expect("coordinator link poisoned").send_shutdown()?;
    }
    // Linger until every party has read the shutdown notice and closed
    // its end: closing first would race in-flight probe answers and can
    // RST the shutdown frame out of the party's receive buffer. Late
    // control frames are read and discarded; data after finish would be
    // a protocol bug and is surfaced.
    let flush_deadline = Instant::now() + SHUTDOWN_TIMEOUT;
    loop {
        let pending = flush_links(&links, &fds, &poll, &mut write_registered)?;
        let mut all_closed = true;
        for link in &links {
            let mut l = link.lock().expect("coordinator link poisoned");
            if let Some(frame) = l.try_recv_data()? {
                return Err(FlError::Protocol(format!(
                    "party sent a {}-byte data frame after the run finished",
                    frame.len()
                )));
            }
            all_closed &= l.is_parked() || l.is_eof();
        }
        if (all_closed && !pending) || Instant::now() > flush_deadline {
            break; // slow peers still observe EOF on drop
        }
        poll.poll(&mut events, Some(Duration::from_millis(5))).map_err(net_err)?;
    }

    let histories = driver
        .job_ids()
        .into_iter()
        .map(|id| (id, driver.history(id).expect("registered job").clone()))
        .collect();
    Ok(ServerOutcome {
        histories,
        stats: driver.stats(),
        breaker_transitions: driver.guard().map_or_else(Vec::new, |g| g.transitions().to_vec()),
        chaos_events: driver.transport().log().to_vec(),
        checkpoint_rounds,
    })
}
