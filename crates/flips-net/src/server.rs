//! The coordinator's readiness-driven event loop.
//!
//! [`serve`] runs one [`MultiJobDriver`] — guard plane, chaos seam and
//! all — behind an epoll selector: every party connection, plus the
//! optional health listener, registers with one [`mio::Poll`], and the
//! loop sleeps in `epoll_wait` until a frame, a probe answer or a
//! metrics scrape arrives. Write interest is registered per link only
//! while its outbox holds staged bytes, so backpressure costs no
//! spinning: a full kernel buffer parks the frames in the
//! [`StreamTransport`](flips_fl::StreamTransport) outbox and the next
//! `EPOLLOUT` resumes them.
//!
//! # Quiescence over real sockets
//!
//! Simulated time may only advance when the wire is provably quiet —
//! the same invariant the sharded runtime enforces with in-memory inbox
//! probes and busy flags. Sockets offer neither, so quiet is
//! established with a counting protocol over per-link TCP FIFO (frame
//! formats in [`crate::control`]):
//!
//! 1. When a pump makes no progress, the loop probes every non-quiet
//!    link with `StatusReq(seq)` (one probe in flight per link).
//! 2. A party answers only after fully pumping its pool, so by FIFO the
//!    coordinator has already processed every data frame the party sent
//!    before the answer when it reads the answer.
//! 3. A link is quiet iff its newest probe is answered **and** the
//!    answer's counters match the coordinator's *current* counters in
//!    both directions (`party.received == sent_here`, `party.sent ==
//!    received_here`) **and** its outbox is empty. Frames that moved
//!    after the probe left make the answer stale, which re-arms the
//!    probe — the protocol converges because in-flight frames land.
//! 4. All links quiet → one defensive pump → the timer wheel fires the
//!    next deadline, exactly as in the lockstep and sharded drivers.
//!
//! The destination-modulo-links routing is the same pure assignment the
//! sharded runtime uses, so a socket run and a shard run carry
//! identical per-link data-frame sequences — which is what lets the
//! chaos schedule's per-`(link, index)` actions, and therefore entire
//! seeded guarded runs, replay bit-identically over TCP.

use crate::link::{net_err, prepare_stream, CoordLink, Fd, SocketRouter};
use crate::metrics::{render_server_metrics, HealthPlane};
use flips_fl::chaos::ChaosEvent;
use flips_fl::guard::BreakerTransition;
use flips_fl::{
    ChaosSchedule, ChaosTransport, DriverStats, FlError, GuardConfig, History, JobParts,
    MultiJobDriver,
};
use mio::{Events, Interest, Poll, Token};
use std::collections::BTreeMap;
use std::net::TcpListener;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The event loop's safety-net wakeup. All real work is event-driven;
/// this only bounds how late the loop notices an error condition.
const POLL_TIMEOUT: Duration = Duration::from_millis(20);

/// How long the post-run flush waits for slow peers before giving up
/// (they still observe EOF).
const SHUTDOWN_TIMEOUT: Duration = Duration::from_secs(10);

/// Options of one coordinator run.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Party connections to accept before the run starts (≥ 1). Party
    /// `p` of every job is served over link `p % links`.
    pub links: usize,
    /// Inbound guard plane installed on the driver. `None` runs
    /// unguarded.
    pub guard: Option<GuardConfig>,
    /// Seeded chaos schedule applied at the driver's uplink seam.
    /// `None` runs the wire untouched.
    pub chaos: Option<ChaosSchedule>,
    /// How long to wait for all `links` parties to connect and say
    /// Hello.
    pub accept_timeout: Duration,
    /// Per-link codec overrides, `(job, link slot, codec)` — applied to
    /// the driver's per-link negotiation table before the run starts
    /// (see [`flips_fl::MultiJobDriver::set_link_codec`]). The party
    /// process serving an overridden slot must pin the same codec.
    pub link_codecs: Vec<(u64, usize, flips_fl::ModelCodec)>,
}

impl ServerOptions {
    /// Options for `links` party connections, no guard, no chaos.
    pub fn new(links: usize) -> Self {
        ServerOptions {
            links,
            guard: None,
            chaos: None,
            accept_timeout: Duration::from_secs(60),
            link_codecs: Vec::new(),
        }
    }

    /// Installs an inbound guard plane on the run's driver.
    #[must_use]
    pub fn with_guard(mut self, guard: GuardConfig) -> Self {
        self.guard = Some(guard);
        self
    }

    /// Applies a seeded chaos schedule to the run's uplink.
    #[must_use]
    pub fn with_chaos(mut self, chaos: ChaosSchedule) -> Self {
        self.chaos = Some(chaos);
        self
    }
}

/// The outcome of a completed coordinator run.
#[derive(Debug)]
pub struct ServerOutcome {
    /// Final per-job histories, keyed by job id.
    pub histories: BTreeMap<u64, History>,
    /// The coordinator-side wire counters.
    pub stats: DriverStats,
    /// The guard plane's breaker transition log (empty when no guard
    /// was installed).
    pub breaker_transitions: Vec<BreakerTransition>,
    /// The chaos actions actually applied, in application order (empty
    /// when no schedule was installed).
    pub chaos_events: Vec<ChaosEvent>,
}

/// Accepts `links` connections and places each by its Hello's slot.
fn accept_links(
    listener: &TcpListener,
    links: usize,
    timeout: Duration,
) -> Result<Vec<Arc<Mutex<CoordLink>>>, FlError> {
    listener.set_nonblocking(true).map_err(net_err)?;
    let deadline = Instant::now() + timeout;
    let mut slots: Vec<Option<CoordLink>> = (0..links).map(|_| None).collect();
    let mut pending: Vec<CoordLink> = Vec::new();
    let mut filled = 0;
    while filled < links {
        if Instant::now() > deadline {
            return Err(FlError::Transport(format!(
                "timed out waiting for party connections ({filled}/{links} links up)"
            )));
        }
        match listener.accept() {
            Ok((stream, _)) => {
                prepare_stream(&stream)?;
                pending.push(CoordLink::new(stream));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
            Err(e) => return Err(net_err(e)),
        }
        // Poll pending connections for their Hello. This is setup-phase
        // code on an otherwise idle process; a short sleep beats wiring
        // a second selector for a handful of handshakes.
        let mut i = 0;
        while i < pending.len() {
            if let Some(frame) = pending[i].try_recv_data()? {
                return Err(FlError::Protocol(format!(
                    "party sent a {}-byte data frame before its Hello",
                    frame.len()
                )));
            }
            match pending[i].hello() {
                Some(shard) => {
                    let link = pending.swap_remove(i);
                    let slot = slots.get_mut(shard as usize).ok_or_else(|| {
                        FlError::Protocol(format!(
                            "party announced link slot {shard}, but only {links} links exist"
                        ))
                    })?;
                    if slot.is_some() {
                        return Err(FlError::Protocol(format!(
                            "two parties announced link slot {shard}"
                        )));
                    }
                    *slot = Some(link);
                    filled += 1;
                }
                None => i += 1,
            }
        }
        if filled < links {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    Ok(slots.into_iter().map(|s| Arc::new(Mutex::new(s.expect("all slots filled")))).collect())
}

/// Flushes every link's staged bytes and keeps each link's epoll write
/// interest registered exactly while its outbox is non-empty. Returns
/// whether any link still has staged bytes.
fn flush_links(
    links: &[Arc<Mutex<CoordLink>>],
    fds: &[Fd],
    poll: &Poll,
    write_registered: &mut [bool],
) -> Result<bool, FlError> {
    let mut any_pending = false;
    for (i, link) in links.iter().enumerate() {
        let mut l = link.lock().expect("coordinator link poisoned");
        if l.wants_write() {
            l.flush()?;
        }
        let wants = l.wants_write();
        any_pending |= wants;
        if wants != write_registered[i] {
            let interest =
                if wants { Interest::READABLE | Interest::WRITABLE } else { Interest::READABLE };
            poll.registry().reregister(&fds[i], Token(i), interest).map_err(net_err)?;
            write_registered[i] = wants;
        }
    }
    Ok(any_pending)
}

/// Runs every job to completion over `opts.links` party connections
/// accepted from `listener`, returning each job's final history and the
/// wire counters. `health`, when given, serves `/metrics` and
/// `/healthz` from the same event loop for the duration of the run.
///
/// Endpoints inside the given [`JobParts`] are dropped — the party side
/// of each job lives in whatever processes connect (see
/// [`crate::party_loop`]); only the coordinator-side pieces run here.
/// Histories are bit-identical to the same jobs under
/// [`flips_fl::run_lockstep`] and [`flips_fl::run_sharded`] — see the
/// [module docs](self) for why.
///
/// # Errors
///
/// [`FlError::InvalidConfig`] for zero links or an empty job set;
/// accept-phase timeouts, socket failures, protocol violations and
/// aggregation failures propagate.
pub fn serve(
    listener: &TcpListener,
    jobs: Vec<JobParts>,
    opts: &ServerOptions,
    health: Option<TcpListener>,
) -> Result<ServerOutcome, FlError> {
    if opts.links == 0 {
        return Err(FlError::InvalidConfig("link count must be at least 1".into()));
    }
    if jobs.is_empty() {
        return Err(FlError::InvalidConfig("no jobs to run".into()));
    }
    let links = accept_links(listener, opts.links, opts.accept_timeout)?;
    let fds: Vec<Fd> = links.iter().map(|l| Fd(l.lock().expect("fresh link").raw_fd())).collect();

    let router = SocketRouter::new(links.clone());
    let wire = match &opts.chaos {
        Some(schedule) => ChaosTransport::new(router, schedule.clone()),
        None => ChaosTransport::inert(router),
    };
    let mut driver = MultiJobDriver::new(wire);
    if let Some(guard) = opts.guard {
        driver.set_guard(guard)?;
    }
    let job_count = jobs.len() as u64;
    for parts in jobs {
        // The endpoints live in the party processes; only the
        // coordinator-side pieces are registered here.
        let _endpoints = driver.add_parts(parts)?;
    }
    for &(job, link, codec) in &opts.link_codecs {
        driver.set_link_codec(job, link, codec)?;
    }

    let mut poll = Poll::new().map_err(net_err)?;
    let mut events = Events::with_capacity(64);
    for (i, fd) in fds.iter().enumerate() {
        poll.registry().register(fd, Token(i), Interest::READABLE).map_err(net_err)?;
    }
    let mut write_registered = vec![false; fds.len()];
    let mut health_plane = HealthPlane::new(health)?;
    health_plane.register(poll.registry())?;

    driver.start()?;
    flush_links(&links, &fds, &poll, &mut write_registered)?;

    loop {
        // The loop sleeps here: frames, probe answers, write-readiness
        // and metrics scrapes all arrive as epoll events.
        poll.poll(&mut events, Some(POLL_TIMEOUT)).map_err(net_err)?;
        let health_tokens: Vec<usize> =
            events.iter().map(|e| e.token().0).filter(|t| health_plane.owns(*t)).collect();
        for token in health_tokens {
            let stats = driver.stats();
            let transitions = driver.guard().map_or(0, |g| g.transitions().len() as u64);
            let finished = driver.is_finished();
            health_plane.handle(poll.registry(), token, &mut || {
                render_server_metrics(&stats, transitions, job_count, finished)
            })?;
        }

        // Pump to exhaustion, then fall straight through to the
        // quiescence check: the wire is drained, so the only way
        // anything more can arrive is via a probe answer or a clock
        // advance — sleeping first would stall every simulated-time
        // step on the poll timeout.
        while driver.pump()? {}
        flush_links(&links, &fds, &poll, &mut write_registered)?;
        if driver.is_finished() {
            break;
        }
        for link in &links {
            let l = link.lock().expect("coordinator link poisoned");
            if l.is_eof() {
                return Err(FlError::Transport(
                    "a party closed its link before the run finished".into(),
                ));
            }
        }

        // Nothing moved: run the quiescence protocol (module docs).
        let mut all_quiet = true;
        for link in &links {
            let mut l = link.lock().expect("coordinator link poisoned");
            if l.needs_probe() {
                l.send_probe()?;
            }
            all_quiet &= l.quiet();
        }
        if !all_quiet {
            // Probes may be staged behind a full buffer; keep the write
            // interest honest before sleeping.
            flush_links(&links, &fds, &poll, &mut write_registered)?;
            continue;
        }
        // Provably quiet: one defensive drain, then time advances —
        // the same order the sharded coordinator uses.
        if driver.pump()? {
            continue;
        }
        if !driver.advance_clock()? {
            return Err(FlError::Protocol(
                "socket driver stalled: wire quiet, no live deadline, jobs unfinished".into(),
            ));
        }
    }

    // Final drain (chaos leftovers and post-completion replies are
    // counted, like the sharded runtime's final pump), then shutdown.
    while driver.pump()? {}
    for link in &links {
        link.lock().expect("coordinator link poisoned").send_shutdown()?;
    }
    // Linger until every party has read the shutdown notice and closed
    // its end: closing first would race in-flight probe answers and can
    // RST the shutdown frame out of the party's receive buffer. Late
    // control frames are read and discarded; data after finish would be
    // a protocol bug and is surfaced.
    let flush_deadline = Instant::now() + SHUTDOWN_TIMEOUT;
    loop {
        let pending = flush_links(&links, &fds, &poll, &mut write_registered)?;
        let mut all_closed = true;
        for link in &links {
            let mut l = link.lock().expect("coordinator link poisoned");
            if let Some(frame) = l.try_recv_data()? {
                return Err(FlError::Protocol(format!(
                    "party sent a {}-byte data frame after the run finished",
                    frame.len()
                )));
            }
            all_closed &= l.is_eof();
        }
        if (all_closed && !pending) || Instant::now() > flush_deadline {
            break; // slow peers still observe EOF on drop
        }
        poll.poll(&mut events, Some(Duration::from_millis(5))).map_err(net_err)?;
    }

    let histories = driver
        .job_ids()
        .into_iter()
        .map(|id| (id, driver.history(id).expect("registered job").clone()))
        .collect();
    Ok(ServerOutcome {
        histories,
        stats: driver.stats(),
        breaker_transitions: driver.guard().map_or_else(Vec::new, |g| g.transitions().to_vec()),
        chaos_events: driver.transport().log().to_vec(),
    })
}
