//! Socket-backed link types: the coordinator's per-connection state,
//! the router multiplexing them behind one [`Transport`], and the
//! party-side link.
//!
//! All three wrap a [`StreamTransport`] over a nonblocking `TcpStream`
//! and strip the [control protocol](crate::control) *below* the
//! [`Transport`] seam: the protocol state machines, the driver's wire
//! counters and the chaos schedule's per-link frame indices all see
//! exactly the data-frame sequences the in-memory sharded runtime
//! sees. Control traffic — quiescence probes, shutdown — is this
//! module's private business.

use crate::control::{is_control_frame, ControlMsg};
use bytes::Bytes;
use flips_fl::transport::StreamTransport;
use flips_fl::{FlError, Transport};
use std::collections::VecDeque;
use std::net::TcpStream;
use std::os::unix::io::{AsRawFd, RawFd};
use std::sync::{Arc, Mutex};

/// A raw file descriptor as an epoll-registrable source (the owning
/// `TcpStream` lives inside a [`StreamTransport`], so registration goes
/// through the fd captured at link construction).
#[derive(Debug, Clone, Copy)]
pub struct Fd(pub RawFd);

impl AsRawFd for Fd {
    fn as_raw_fd(&self) -> RawFd {
        self.0
    }
}

/// Prepares a stream for the event loop: `TCP_NODELAY` (length-prefixed
/// frames are small; Nagle plus delayed ACK would add ~40 ms to every
/// probe round trip) and nonblocking mode (the [`StreamTransport`]
/// contract).
pub fn prepare_stream(stream: &TcpStream) -> Result<(), FlError> {
    stream.set_nodelay(true).map_err(net_err)?;
    stream.set_nonblocking(true).map_err(net_err)?;
    Ok(())
}

/// Maps an I/O error into the workspace error type.
pub fn net_err(e: std::io::Error) -> FlError {
    FlError::Transport(format!("socket error: {e}"))
}

/// One coordinator-side connection: the framed stream plus the data
/// counters and probe state the quiescence protocol runs on.
#[derive(Debug)]
pub struct CoordLink {
    stream: StreamTransport<TcpStream>,
    fd: RawFd,
    /// Data frames sent / received on this link (control excluded).
    data_sent: u64,
    data_received: u64,
    /// The newest probe sequence issued, and whether its answer is
    /// still in flight.
    probe_seq: u64,
    probe_outstanding: bool,
    /// The party's counter snapshot from the newest answered probe.
    acked_seq: u64,
    acked_received: u64,
    acked_sent: u64,
    /// The link slot the peer's Hello named, once seen.
    hello: Option<u32>,
}

impl CoordLink {
    /// Wraps an accepted, [`prepare_stream`]-configured connection.
    pub fn new(stream: TcpStream) -> CoordLink {
        let fd = stream.as_raw_fd();
        CoordLink {
            stream: StreamTransport::new(stream),
            fd,
            data_sent: 0,
            data_received: 0,
            probe_seq: 0,
            probe_outstanding: false,
            acked_seq: 0,
            acked_received: 0,
            acked_sent: 0,
            hello: None,
        }
    }

    /// The link slot the peer's Hello named, if it has arrived (the
    /// accept phase polls this to place the connection).
    pub fn hello(&self) -> Option<u32> {
        self.hello
    }

    /// Whether the peer closed its write side.
    pub fn is_eof(&self) -> bool {
        self.stream.is_eof()
    }

    /// The connection's file descriptor (for epoll registration).
    pub fn raw_fd(&self) -> RawFd {
        self.fd
    }

    /// Sends one data frame (staged on backpressure).
    ///
    /// # Errors
    ///
    /// Propagates stream failure ([`FlError::Transport`]).
    pub fn send_data(&mut self, frame: &[u8]) -> Result<(), FlError> {
        self.data_sent += 1;
        self.stream.send(frame)
    }

    /// Receives the next *data* frame, consuming any control frames in
    /// between (probe answers update this link's ack state).
    ///
    /// # Errors
    ///
    /// Stream failure, or a malformed control frame (a peer speaking a
    /// different protocol revision).
    pub fn try_recv_data(&mut self) -> Result<Option<Bytes>, FlError> {
        loop {
            let Some(frame) = self.stream.try_recv()? else {
                return Ok(None);
            };
            if !is_control_frame(&frame) {
                self.data_received += 1;
                return Ok(Some(frame));
            }
            match ControlMsg::decode(&frame)? {
                ControlMsg::Status { seq, received, sent } => {
                    if seq == self.probe_seq {
                        self.probe_outstanding = false;
                        self.acked_seq = seq;
                        self.acked_received = received;
                        self.acked_sent = sent;
                    }
                    // Answers to superseded probes are stale; drop them.
                }
                ControlMsg::Hello { shard } => self.hello = Some(shard),
                ControlMsg::StatusReq { .. } | ControlMsg::Shutdown => {
                    return Err(FlError::Protocol("party sent a server-only control frame".into()));
                }
            }
        }
    }

    /// Issues a fresh quiescence probe.
    ///
    /// # Errors
    ///
    /// Propagates stream failure.
    pub fn send_probe(&mut self) -> Result<(), FlError> {
        self.probe_seq += 1;
        self.probe_outstanding = true;
        self.stream.send(&ControlMsg::StatusReq { seq: self.probe_seq }.encode())
    }

    /// Sends the end-of-run notice.
    ///
    /// # Errors
    ///
    /// Propagates stream failure.
    pub fn send_shutdown(&mut self) -> Result<(), FlError> {
        self.stream.send(&ControlMsg::Shutdown.encode())
    }

    /// Whether this link is provably quiet: the newest probe is
    /// answered, the answer's counters match this side's *current*
    /// counters in both directions (per-link TCP FIFO makes the answer
    /// a barrier — see the [control docs](crate::control)), and nothing
    /// is staged locally. A link that never carried a frame is
    /// vacuously quiet.
    pub fn quiet(&self) -> bool {
        !self.probe_outstanding
            && self.acked_received == self.data_sent
            && self.acked_sent == self.data_received
            && !self.stream.wants_write()
    }

    /// Whether the quiescence protocol should issue a (re-)probe: not
    /// quiet, and no probe in flight (either never probed, or the last
    /// answer went stale because frames moved since).
    pub fn needs_probe(&self) -> bool {
        !self.quiet() && !self.probe_outstanding
    }

    /// Whether staged bytes are waiting for write-readiness.
    pub fn wants_write(&self) -> bool {
        self.stream.wants_write()
    }

    /// Flushes staged bytes; `true` when the outbox drained.
    ///
    /// # Errors
    ///
    /// Propagates stream failure.
    pub fn flush(&mut self) -> Result<bool, FlError> {
        self.stream.flush()
    }
}

/// The coordinator side of the socket wire: one [`CoordLink`] per party
/// process, demultiplexed by the destination word every frame carries.
///
/// Implements [`Transport`], so the unmodified
/// [`MultiJobDriver`](flips_fl::MultiJobDriver) drives remote parties
/// exactly as it drives in-memory shards. Party `p` travels link
/// `p % links` — the same pure assignment the sharded runtime uses, so
/// a socket topology and a shard topology carry identical per-link
/// frame sequences.
///
/// Links live behind `Arc<Mutex<_>>` because the event loop needs them
/// too (readiness-driven flushing, probe issuance) while the driver
/// owns the router; both run on the coordinator thread, so the lock is
/// never contended — it is a sharing structure, not a synchronization
/// point.
#[derive(Debug)]
pub struct SocketRouter {
    links: Vec<Arc<Mutex<CoordLink>>>,
}

impl SocketRouter {
    /// A router over `links` (index = link slot = `party % links.len()`).
    pub fn new(links: Vec<Arc<Mutex<CoordLink>>>) -> SocketRouter {
        SocketRouter { links }
    }

    fn link(&self, i: usize) -> std::sync::MutexGuard<'_, CoordLink> {
        self.links[i].lock().expect("coordinator link poisoned")
    }
}

impl Transport for SocketRouter {
    fn send(&mut self, frame: &[u8]) -> Result<(), FlError> {
        let Some(dest) = flips_fl::message::frame_dest(frame) else {
            return Err(FlError::Transport("frame too short to route to a link".into()));
        };
        let slot = (dest % self.links.len() as u64) as usize;
        self.link(slot).send_data(frame)
    }

    fn try_recv(&mut self) -> Result<Option<Bytes>, FlError> {
        Ok(self.try_recv_tagged()?.map(|(_, frame)| frame))
    }

    fn links(&self) -> usize {
        self.links.len()
    }

    fn link_for(&self, _job: u64, dest: u64) -> usize {
        (dest % self.links.len() as u64) as usize
    }

    fn try_recv_tagged(&mut self) -> Result<Option<(usize, Bytes)>, FlError> {
        // Fixed sweep order, like the sharded router: the driver pumps
        // until every link runs dry, so fairness is a non-issue.
        for i in 0..self.links.len() {
            if let Some(frame) = self.link(i).try_recv_data()? {
                return Ok(Some((i, frame)));
            }
        }
        Ok(None)
    }
}

/// The party side of one socket link. Implements [`Transport`] for an
/// unmodified [`PartyPool`](flips_fl::PartyPool); control frames are
/// stripped on receive and stashed for the party event loop
/// ([`PartyLink::take_status_req`], [`PartyLink::is_shutdown`]).
#[derive(Debug)]
pub struct PartyLink {
    stream: StreamTransport<TcpStream>,
    fd: RawFd,
    data_sent: u64,
    data_received: u64,
    status_reqs: VecDeque<u64>,
    shutdown: bool,
}

impl PartyLink {
    /// Wraps a connected, [`prepare_stream`]-configured stream.
    pub fn new(stream: TcpStream) -> PartyLink {
        let fd = stream.as_raw_fd();
        PartyLink {
            stream: StreamTransport::new(stream),
            fd,
            data_sent: 0,
            data_received: 0,
            status_reqs: VecDeque::new(),
            shutdown: false,
        }
    }

    /// The connection's file descriptor (for epoll registration).
    pub fn raw_fd(&self) -> RawFd {
        self.fd
    }

    /// Identifies this connection's link slot to the server — the
    /// mandatory first frame (accept order is nondeterministic; the
    /// Hello makes link identity explicit).
    ///
    /// # Errors
    ///
    /// Propagates stream failure.
    pub fn send_hello(&mut self, shard: u32) -> Result<(), FlError> {
        self.stream.send(&ControlMsg::Hello { shard }.encode())
    }

    /// The oldest unanswered quiescence probe, if any. Answer only
    /// after a full pool pump — the FIFO barrier the server's quiet
    /// check relies on.
    pub fn take_status_req(&mut self) -> Option<u64> {
        self.status_reqs.pop_front()
    }

    /// Answers probe `seq` with this side's current data counters.
    ///
    /// # Errors
    ///
    /// Propagates stream failure.
    pub fn send_status(&mut self, seq: u64) -> Result<(), FlError> {
        let msg = ControlMsg::Status { seq, received: self.data_received, sent: self.data_sent };
        self.stream.send(&msg.encode())
    }

    /// Whether the server announced end-of-run.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown
    }

    /// Whether the server closed its write side.
    pub fn is_eof(&self) -> bool {
        self.stream.is_eof()
    }

    /// Whether staged bytes are waiting for write-readiness.
    pub fn wants_write(&self) -> bool {
        self.stream.wants_write()
    }

    /// Flushes staged bytes; `true` when the outbox drained.
    ///
    /// # Errors
    ///
    /// Propagates stream failure.
    pub fn flush(&mut self) -> Result<bool, FlError> {
        self.stream.flush()
    }

    /// Half-closes the connection (FIN) so the coordinator observes
    /// EOF even while this link — and its counters — stays alive
    /// inside a returned pool. Errors are ignored: the peer may
    /// already be gone, which serves the same purpose.
    pub fn close(&self) {
        let _ = self.stream.get_ref().shutdown(std::net::Shutdown::Write);
    }
}

impl Transport for PartyLink {
    fn send(&mut self, frame: &[u8]) -> Result<(), FlError> {
        self.data_sent += 1;
        self.stream.send(frame)
    }

    fn try_recv(&mut self) -> Result<Option<Bytes>, FlError> {
        loop {
            let Some(frame) = self.stream.try_recv()? else {
                return Ok(None);
            };
            if !is_control_frame(&frame) {
                self.data_received += 1;
                return Ok(Some(frame));
            }
            match ControlMsg::decode(&frame)? {
                ControlMsg::StatusReq { seq } => self.status_reqs.push_back(seq),
                ControlMsg::Shutdown => self.shutdown = true,
                ControlMsg::Hello { .. } | ControlMsg::Status { .. } => {
                    return Err(FlError::Protocol("server sent a party-only control frame".into()));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flips_fl::message::frame;
    use flips_fl::WireMessage;

    fn tcp_pair() -> (TcpStream, TcpStream) {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        prepare_stream(&client).unwrap();
        prepare_stream(&server).unwrap();
        (client, server)
    }

    fn drain_until<F: FnMut() -> bool>(mut done: F) {
        for _ in 0..2_000 {
            if done() {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        panic!("condition never became true");
    }

    #[test]
    fn control_frames_are_invisible_to_the_data_plane() {
        let (c, s) = tcp_pair();
        let mut coord = CoordLink::new(s);
        let mut party = PartyLink::new(c);

        // Party sends a status answer, then a data frame; the
        // coordinator's data plane must surface only the data frame.
        coord.send_probe().unwrap();
        let data = frame(u64::MAX, &WireMessage::Heartbeat { job: 9, round: 0, party: 1 });
        party.try_recv().unwrap(); // absorb the probe (returns None: control only)
        let seq = party.take_status_req().expect("probe stashed");
        party.send_status(seq).unwrap();
        Transport::send(&mut party, &data).unwrap();

        let mut got = None;
        drain_until(|| {
            got = coord.try_recv_data().unwrap();
            got.is_some()
        });
        assert_eq!(got.unwrap(), data);
        assert_eq!(coord.data_received, 1, "control frames must not count as data");
    }

    #[test]
    fn quiet_requires_matching_counters_in_both_directions() {
        let (c, s) = tcp_pair();
        let mut coord = CoordLink::new(s);
        let mut party = PartyLink::new(c);
        assert!(coord.quiet(), "an untouched link is vacuously quiet");

        let data = frame(3, &WireMessage::Heartbeat { job: 9, round: 0, party: 3 });
        coord.send_data(&data).unwrap();
        assert!(!coord.quiet(), "a sent frame without an ack cannot be quiet");
        assert!(coord.needs_probe());
        coord.send_probe().unwrap();
        assert!(!coord.needs_probe(), "one probe in flight at a time");

        // Party pumps (receives the data frame), then answers.
        drain_until(|| {
            party.try_recv().unwrap();
            party.take_status_req().map(|seq| party.send_status(seq).unwrap()).is_some()
        });
        drain_until(|| {
            coord.try_recv_data().unwrap();
            coord.quiet()
        });
    }

    #[test]
    fn stale_probe_answers_do_not_mark_the_link_quiet() {
        let (c, s) = tcp_pair();
        let mut coord = CoordLink::new(s);
        let mut party = PartyLink::new(c);
        let data = frame(3, &WireMessage::Heartbeat { job: 9, round: 0, party: 3 });
        coord.send_data(&data).unwrap();
        coord.send_probe().unwrap();
        // The party answers while it has seen only the first frame.
        drain_until(|| {
            party.try_recv().unwrap();
            party.take_status_req().map(|seq| party.send_status(seq).unwrap()).is_some()
        });
        // A second frame departs after that answer was computed: the
        // answer accounts for one frame of two and must read as stale.
        coord.send_data(&data).unwrap();
        drain_until(|| {
            coord.try_recv_data().unwrap();
            !coord.probe_outstanding
        });
        assert!(!coord.quiet(), "an answer predating the second frame proved nothing");
        assert!(coord.needs_probe(), "staleness must trigger a re-probe");
    }

    #[test]
    fn router_routes_by_destination_modulo_links() {
        let (c0, s0) = tcp_pair();
        let (c1, s1) = tcp_pair();
        let links = vec![
            Arc::new(Mutex::new(CoordLink::new(s0))),
            Arc::new(Mutex::new(CoordLink::new(s1))),
        ];
        let mut router = SocketRouter::new(links);
        assert_eq!(router.links(), 2);
        assert_eq!(router.link_for(9, 4), 0);
        assert_eq!(router.link_for(9, 7), 1);

        let even = frame(4, &WireMessage::Heartbeat { job: 9, round: 0, party: 4 });
        let odd = frame(7, &WireMessage::Heartbeat { job: 9, round: 0, party: 7 });
        router.send(&even).unwrap();
        router.send(&odd).unwrap();
        assert!(matches!(router.send(&[1, 2]), Err(FlError::Transport(_))));

        let mut p0 = PartyLink::new(c0);
        let mut p1 = PartyLink::new(c1);
        drain_until(|| p0.try_recv().unwrap().is_some_and(|f| f == even));
        drain_until(|| p1.try_recv().unwrap().is_some_and(|f| f == odd));
    }
}
