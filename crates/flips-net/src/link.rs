//! Socket-backed link types: the coordinator's per-connection state,
//! the router multiplexing them behind one [`Transport`], and the
//! party-side link.
//!
//! All three wrap a [`StreamTransport`] over a nonblocking `TcpStream`
//! and strip the [control protocol](crate::control) *below* the
//! [`Transport`] seam: the protocol state machines, the driver's wire
//! counters and the chaos schedule's per-link frame indices all see
//! exactly the data-frame sequences the in-memory sharded runtime
//! sees. Control traffic — quiescence probes, session handshakes,
//! shutdown — is this module's private business.
//!
//! # Link-loss resilience
//!
//! Both ends retain every sent data frame until the peer's counters
//! acknowledge it (probe traffic carries the counters, so retention is
//! pruned continuously). When a connection dies, a *resumable*
//! [`CoordLink`] **parks** instead of erroring: counters, retained
//! frames and codec state stay alive while the socket is gone. A
//! reconnecting party presents its session token and counters in its
//! Hello; each side then retransmits exactly the frames the peer never
//! received, so the per-link data-frame sequence — and therefore every
//! seeded history and chaos index — is identical to an uninterrupted
//! run.

use crate::control::{is_control_frame, ControlMsg};
use bytes::Bytes;
use flips_fl::transport::StreamTransport;
use flips_fl::{FlError, Transport};
use std::collections::VecDeque;
use std::net::TcpStream;
use std::os::unix::io::{AsRawFd, RawFd};
use std::sync::{Arc, Mutex};

/// A raw file descriptor as an epoll-registrable source (the owning
/// `TcpStream` lives inside a [`StreamTransport`], so registration goes
/// through the fd captured at link construction).
#[derive(Debug, Clone, Copy)]
pub struct Fd(pub RawFd);

impl AsRawFd for Fd {
    fn as_raw_fd(&self) -> RawFd {
        self.0
    }
}

/// Prepares a stream for the event loop: `TCP_NODELAY` (length-prefixed
/// frames are small; Nagle plus delayed ACK would add ~40 ms to every
/// probe round trip) and nonblocking mode (the [`StreamTransport`]
/// contract).
pub fn prepare_stream(stream: &TcpStream) -> Result<(), FlError> {
    stream.set_nodelay(true).map_err(net_err)?;
    stream.set_nonblocking(true).map_err(net_err)?;
    Ok(())
}

/// Maps an I/O error into the workspace error type.
pub fn net_err(e: std::io::Error) -> FlError {
    FlError::Transport(format!("socket error: {e}"))
}

/// The fields of a party's Hello, as the accept path consumes them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HelloInfo {
    /// The link slot the connection serves.
    pub shard: u32,
    /// The session token presented (0 = fresh connection).
    pub token: u64,
    /// Data frames the party has received on the link so far.
    pub received: u64,
    /// Data frames the party has sent on the link so far.
    pub sent: u64,
}

/// Sent data frames kept until the peer's counters acknowledge them,
/// shared by both link ends. `base` is the absolute index of the front
/// frame (= frames already acknowledged).
#[derive(Debug, Default)]
struct Retained {
    frames: VecDeque<Vec<u8>>,
    base: u64,
}

impl Retained {
    fn push(&mut self, frame: &[u8]) {
        self.frames.push_back(frame.to_vec());
    }

    /// Drops every frame the peer has received (absolute index below
    /// `acked`).
    fn prune(&mut self, acked: u64) {
        while self.base < acked && !self.frames.is_empty() {
            self.frames.pop_front();
            self.base += 1;
        }
    }

    /// Re-sends every still-retained frame — the resume
    /// retransmission. Counters are *not* bumped: these frames were
    /// counted when first sent.
    fn retransmit(&mut self, stream: &mut StreamTransport<TcpStream>) -> Result<(), FlError> {
        for frame in &self.frames {
            stream.send(frame)?;
        }
        Ok(())
    }
}

/// One coordinator-side connection: the framed stream plus the data
/// counters, probe state and retained-frame queue the quiescence and
/// resume protocols run on.
#[derive(Debug)]
pub struct CoordLink {
    stream: StreamTransport<TcpStream>,
    fd: RawFd,
    /// Data frames sent / received on this link (control excluded).
    data_sent: u64,
    data_received: u64,
    /// The newest probe sequence issued, and whether its answer is
    /// still in flight.
    probe_seq: u64,
    probe_outstanding: bool,
    /// The party's counter snapshot from the newest answered probe.
    acked_seq: u64,
    acked_received: u64,
    acked_sent: u64,
    /// The peer's Hello, once seen.
    hello: Option<HelloInfo>,
    /// The session token issued for this link (0 until assigned).
    token: u64,
    /// Sent data frames not yet acknowledged by the party's counters.
    retained: Retained,
    /// Whether a dead connection parks this link instead of erroring.
    resumable: bool,
    /// Whether the link is parked: the socket is gone, state is alive.
    parked: bool,
    /// One-shot flag for the event loop: the link parked since the
    /// last sweep (drive `links_lost` accounting exactly once).
    just_parked: bool,
}

impl CoordLink {
    /// Wraps an accepted, [`prepare_stream`]-configured connection.
    pub fn new(stream: TcpStream) -> CoordLink {
        let fd = stream.as_raw_fd();
        CoordLink {
            stream: StreamTransport::new(stream),
            fd,
            data_sent: 0,
            data_received: 0,
            probe_seq: 0,
            probe_outstanding: false,
            acked_seq: 0,
            acked_received: 0,
            acked_sent: 0,
            hello: None,
            token: 0,
            retained: Retained::default(),
            resumable: false,
            parked: false,
            just_parked: false,
        }
    }

    /// The peer's Hello, if it has arrived (the accept phase polls this
    /// to place the connection).
    pub fn hello(&self) -> Option<HelloInfo> {
        self.hello
    }

    /// Issues this link's session token (sent to the party in its
    /// HelloAck; presented back on reconnect).
    pub fn assign_token(&mut self, token: u64) {
        self.token = token;
    }

    /// The session token issued for this link.
    pub fn token(&self) -> u64 {
        self.token
    }

    /// Makes a dead connection park this link (state preserved for a
    /// resume) instead of surfacing a transport error.
    pub fn set_resumable(&mut self, resumable: bool) {
        self.resumable = resumable;
    }

    /// Whether the peer closed its write side.
    pub fn is_eof(&self) -> bool {
        self.stream.is_eof()
    }

    /// Whether the link is parked: no socket, state alive, waiting for
    /// the party to reconnect.
    pub fn is_parked(&self) -> bool {
        self.parked
    }

    /// Parks the link: the connection is considered dead; counters,
    /// retained frames and probe state stay alive for a resume.
    pub fn park(&mut self) {
        if !self.parked {
            self.parked = true;
            self.just_parked = true;
            // The in-flight probe died with the socket.
            self.probe_outstanding = false;
        }
    }

    /// Takes the one-shot "parked since last sweep" flag.
    pub fn take_just_parked(&mut self) -> bool {
        std::mem::take(&mut self.just_parked)
    }

    /// Parks on an I/O error when resumable; propagates it otherwise.
    fn absorb<T: Default>(&mut self, result: Result<T, FlError>) -> Result<T, FlError> {
        match result {
            Ok(v) => Ok(v),
            Err(e) if self.resumable => {
                self.park();
                drop(e);
                Ok(T::default())
            }
            Err(e) => Err(e),
        }
    }

    /// The connection's file descriptor (for epoll registration).
    pub fn raw_fd(&self) -> RawFd {
        self.fd
    }

    /// Re-attaches a parked (or dying) link to a fresh connection: the
    /// old socket and any half-read/half-written frames are discarded,
    /// and the retained queue is pruned to the frames the party's
    /// Hello counters do not acknowledge. Counters and codec state are
    /// untouched. Call [`CoordLink::send_hello_ack`] and then
    /// [`CoordLink::retransmit_unacked`] to complete the resume — the
    /// ack must precede the retransmitted data so the party can await
    /// it.
    pub fn resume_with(&mut self, stream: TcpStream, party: HelloInfo) {
        let fd = stream.as_raw_fd();
        self.stream = StreamTransport::new(stream);
        self.fd = fd;
        self.parked = false;
        self.just_parked = false;
        self.probe_outstanding = false;
        // The Hello's counters are as authoritative as a probe answer.
        self.acked_received = party.received;
        self.acked_sent = party.sent;
        self.retained.prune(party.received);
    }

    /// Retransmits every retained frame the resumed party has not
    /// received, in order — so the data-frame sequence over the link
    /// equals an uninterrupted run's.
    ///
    /// # Errors
    ///
    /// Propagates failure on the new stream.
    pub fn retransmit_unacked(&mut self) -> Result<(), FlError> {
        self.retained.retransmit(&mut self.stream)
    }

    /// Unwraps the connection (a Hello-reading wrapper in the accept
    /// path hands its socket to the slot's real link this way).
    pub fn into_stream(self) -> TcpStream {
        self.stream.into_inner()
    }

    /// Sends one data frame (staged on backpressure, retained until the
    /// party acknowledges it; a parked link retains without sending).
    ///
    /// # Errors
    ///
    /// Propagates stream failure ([`FlError::Transport`]) on a
    /// non-resumable link; a resumable link parks instead.
    pub fn send_data(&mut self, frame: &[u8]) -> Result<(), FlError> {
        self.data_sent += 1;
        self.retained.push(frame);
        if self.parked {
            return Ok(());
        }
        let result = self.stream.send(frame);
        self.absorb(result)
    }

    /// Receives the next *data* frame, consuming any control frames in
    /// between (probe answers update this link's ack state and prune
    /// the retained queue). A parked link reads as empty.
    ///
    /// # Errors
    ///
    /// Stream failure (non-resumable links only), or a malformed
    /// control frame (a peer speaking a different protocol revision).
    pub fn try_recv_data(&mut self) -> Result<Option<Bytes>, FlError> {
        if self.parked {
            return Ok(None);
        }
        loop {
            let received = self.stream.try_recv();
            let Some(frame) = self.absorb(received)? else {
                return Ok(None);
            };
            if !is_control_frame(&frame) {
                self.data_received += 1;
                return Ok(Some(frame));
            }
            match ControlMsg::decode(&frame)? {
                ControlMsg::Status { seq, received, sent } => {
                    if seq == self.probe_seq {
                        self.probe_outstanding = false;
                        self.acked_seq = seq;
                        self.acked_received = received;
                        self.acked_sent = sent;
                    }
                    // Answers to superseded probes are stale for the
                    // quiet check, but their counters still only grow —
                    // safe (and useful) for pruning retention.
                    self.retained.prune(received);
                }
                ControlMsg::Hello { shard, token, received, sent } => {
                    self.hello = Some(HelloInfo { shard, token, received, sent });
                }
                ControlMsg::StatusReq { .. }
                | ControlMsg::Shutdown
                | ControlMsg::HelloAck { .. }
                | ControlMsg::RefSync { .. } => {
                    return Err(FlError::Protocol("party sent a server-only control frame".into()));
                }
            }
        }
    }

    /// Issues a fresh quiescence probe, carrying this side's counters
    /// as retransmit acknowledgements. A no-op while parked.
    ///
    /// # Errors
    ///
    /// Propagates stream failure (non-resumable links only).
    pub fn send_probe(&mut self) -> Result<(), FlError> {
        if self.parked {
            return Ok(());
        }
        self.probe_seq += 1;
        self.probe_outstanding = true;
        let msg = ControlMsg::StatusReq {
            seq: self.probe_seq,
            received: self.data_received,
            sent: self.data_sent,
        };
        let result = self.stream.send(&msg.encode());
        self.absorb(result)
    }

    /// Answers a Hello: the session handshake reply, immediately
    /// followed by `ref_syncs` (already counted in the ack, so the
    /// party knows how many to drain before its first data frame).
    ///
    /// # Errors
    ///
    /// Propagates stream failure.
    pub fn send_hello_ack(&mut self, fresh: bool, ref_syncs: &[ControlMsg]) -> Result<(), FlError> {
        let ack = ControlMsg::HelloAck {
            token: self.token,
            received: self.data_received,
            sent: self.data_sent,
            fresh,
            ref_syncs: ref_syncs.len() as u32,
        };
        self.stream.send(&ack.encode())?;
        for msg in ref_syncs {
            debug_assert!(matches!(msg, ControlMsg::RefSync { .. }));
            self.stream.send(&msg.encode())?;
        }
        Ok(())
    }

    /// Sends the end-of-run notice (a no-op while parked: the party is
    /// gone; its reconnect attempt will find the server gone too).
    ///
    /// # Errors
    ///
    /// Propagates stream failure (non-resumable links only).
    pub fn send_shutdown(&mut self) -> Result<(), FlError> {
        if self.parked {
            return Ok(());
        }
        let result = self.stream.send(&ControlMsg::Shutdown.encode());
        self.absorb(result)
    }

    /// Whether this link is provably quiet: the newest probe is
    /// answered, the answer's counters match this side's *current*
    /// counters in both directions (per-link TCP FIFO makes the answer
    /// a barrier — see the [control docs](crate::control)), and nothing
    /// is staged locally. A link that never carried a frame is
    /// vacuously quiet; a parked link never is (frames may be lost in
    /// flight until the party's reconnect Hello says otherwise).
    pub fn quiet(&self) -> bool {
        !self.parked
            && !self.probe_outstanding
            && self.acked_received == self.data_sent
            && self.acked_sent == self.data_received
            && !self.stream.wants_write()
    }

    /// Whether the quiescence protocol should issue a (re-)probe: not
    /// quiet, and no probe in flight (either never probed, or the last
    /// answer went stale because frames moved since). Parked links are
    /// not probed.
    pub fn needs_probe(&self) -> bool {
        !self.parked && !self.quiet() && !self.probe_outstanding
    }

    /// Whether staged bytes are waiting for write-readiness.
    pub fn wants_write(&self) -> bool {
        !self.parked && self.stream.wants_write()
    }

    /// Flushes staged bytes; `true` when the outbox drained.
    ///
    /// # Errors
    ///
    /// Propagates stream failure (non-resumable links only).
    pub fn flush(&mut self) -> Result<bool, FlError> {
        if self.parked {
            return Ok(true);
        }
        let result = self.stream.flush();
        match result {
            Ok(done) => Ok(done),
            Err(e) if self.resumable => {
                self.park();
                drop(e);
                Ok(true)
            }
            Err(e) => Err(e),
        }
    }
}

/// The coordinator side of the socket wire: one [`CoordLink`] per party
/// process, demultiplexed by the destination word every frame carries.
///
/// Implements [`Transport`], so the unmodified
/// [`MultiJobDriver`](flips_fl::MultiJobDriver) drives remote parties
/// exactly as it drives in-memory shards. Party `p` travels link
/// `p % links` — the same pure assignment the sharded runtime uses, so
/// a socket topology and a shard topology carry identical per-link
/// frame sequences.
///
/// Links live behind `Arc<Mutex<_>>` because the event loop needs them
/// too (readiness-driven flushing, probe issuance, resume handshakes)
/// while the driver owns the router; both run on the coordinator
/// thread, so the lock is never contended — it is a sharing structure,
/// not a synchronization point.
#[derive(Debug)]
pub struct SocketRouter {
    links: Vec<Arc<Mutex<CoordLink>>>,
}

impl SocketRouter {
    /// A router over `links` (index = link slot = `party % links.len()`).
    pub fn new(links: Vec<Arc<Mutex<CoordLink>>>) -> SocketRouter {
        SocketRouter { links }
    }

    fn link(&self, i: usize) -> std::sync::MutexGuard<'_, CoordLink> {
        self.links[i].lock().expect("coordinator link poisoned")
    }
}

impl Transport for SocketRouter {
    fn send(&mut self, frame: &[u8]) -> Result<(), FlError> {
        let Some(dest) = flips_fl::message::frame_dest(frame) else {
            return Err(FlError::Transport("frame too short to route to a link".into()));
        };
        let slot = (dest % self.links.len() as u64) as usize;
        self.link(slot).send_data(frame)
    }

    fn try_recv(&mut self) -> Result<Option<Bytes>, FlError> {
        Ok(self.try_recv_tagged()?.map(|(_, frame)| frame))
    }

    fn links(&self) -> usize {
        self.links.len()
    }

    fn link_for(&self, _job: u64, dest: u64) -> usize {
        (dest % self.links.len() as u64) as usize
    }

    fn try_recv_tagged(&mut self) -> Result<Option<(usize, Bytes)>, FlError> {
        // Fixed sweep order, like the sharded router: the driver pumps
        // until every link runs dry, so fairness is a non-issue.
        for i in 0..self.links.len() {
            if let Some(frame) = self.link(i).try_recv_data()? {
                return Ok(Some((i, frame)));
            }
        }
        Ok(None)
    }
}

/// The party side of one socket link. Implements [`Transport`] for an
/// unmodified [`PartyPool`](flips_fl::PartyPool); control frames are
/// stripped on receive and stashed for the party event loop
/// ([`PartyLink::take_status_req`], [`PartyLink::is_shutdown`],
/// [`PartyLink::take_ref_sync`]).
#[derive(Debug)]
pub struct PartyLink {
    stream: StreamTransport<TcpStream>,
    fd: RawFd,
    data_sent: u64,
    data_received: u64,
    status_reqs: VecDeque<u64>,
    shutdown: bool,
    /// The session token the server's HelloAck issued (0 before the
    /// first ack).
    token: u64,
    /// The newest HelloAck, until the handshake takes it.
    hello_ack: Option<(u64, u64, u64, bool, u32)>,
    /// Codec-reference seeds stashed for the event loop. Receiving one
    /// pauses the data plane (see [`PartyLink::try_recv`]) so the seed
    /// is applied before any frame encoded against it is decoded.
    ref_syncs: VecDeque<(u64, u64, Vec<f32>)>,
    /// Sent data frames not yet acknowledged by the server's counters.
    retained: Retained,
    /// Whether a dead connection marks this link broken (reconnectable)
    /// instead of surfacing a transport error.
    resumable: bool,
    /// The connection died; the event loop should reconnect.
    broken: bool,
}

impl PartyLink {
    /// Wraps a connected, [`prepare_stream`]-configured stream.
    pub fn new(stream: TcpStream) -> PartyLink {
        let fd = stream.as_raw_fd();
        PartyLink {
            stream: StreamTransport::new(stream),
            fd,
            data_sent: 0,
            data_received: 0,
            status_reqs: VecDeque::new(),
            shutdown: false,
            token: 0,
            hello_ack: None,
            ref_syncs: VecDeque::new(),
            retained: Retained::default(),
            resumable: false,
            broken: false,
        }
    }

    /// Makes a dead connection mark this link broken (for the event
    /// loop to reconnect) instead of surfacing a transport error.
    pub fn set_resumable(&mut self, resumable: bool) {
        self.resumable = resumable;
    }

    /// Whether the connection died (resumable links only; the event
    /// loop reconnects via [`PartyLink::resume_with`]).
    pub fn is_broken(&self) -> bool {
        self.broken
    }

    /// The session token the server issued (0 before the first ack).
    pub fn token(&self) -> u64 {
        self.token
    }

    /// The connection's file descriptor (for epoll registration).
    pub fn raw_fd(&self) -> RawFd {
        self.fd
    }

    /// Marks this link broken on an I/O error when resumable;
    /// propagates it otherwise.
    fn absorb<T: Default>(&mut self, result: Result<T, FlError>) -> Result<T, FlError> {
        match result {
            Ok(v) => Ok(v),
            Err(e) if self.resumable => {
                self.broken = true;
                drop(e);
                Ok(T::default())
            }
            Err(e) => Err(e),
        }
    }

    /// Identifies this connection's link slot — and, on reconnect, its
    /// session — to the server: the mandatory first frame (accept order
    /// is nondeterministic; the Hello makes link identity explicit).
    /// Carries this side's data counters so the server knows exactly
    /// which retained frames to retransmit.
    ///
    /// # Errors
    ///
    /// Propagates stream failure.
    pub fn send_hello(&mut self, shard: u32) -> Result<(), FlError> {
        let msg = ControlMsg::Hello {
            shard,
            token: self.token,
            received: self.data_received,
            sent: self.data_sent,
        };
        self.stream.send(&msg.encode())
    }

    /// Swaps in a fresh connection after the old one died: half-read
    /// and half-written frames are discarded (retransmission covers
    /// them), counters and retained frames survive, stale probe
    /// requests are dropped (their answers would be lies — the server
    /// re-probes).
    pub fn resume_with(&mut self, stream: TcpStream) {
        let fd = stream.as_raw_fd();
        self.stream = StreamTransport::new(stream);
        self.fd = fd;
        self.status_reqs.clear();
        self.broken = false;
    }

    /// Blocks (politely — 1 ms naps on a nonblocking socket) until the
    /// server's HelloAck arrives, returning `(received, sent, fresh)`
    /// from it. The server sends the ack before any retransmitted data
    /// frame, so a data frame arriving first is a protocol violation.
    ///
    /// # Errors
    ///
    /// Stream failure, a data frame before the ack, or `timeout`
    /// elapsing.
    pub fn await_hello_ack(
        &mut self,
        timeout: std::time::Duration,
    ) -> Result<(u64, u64, bool), FlError> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if let Some(frame) = self.try_recv()? {
                return Err(FlError::Protocol(format!(
                    "server sent a {}-byte data frame before its hello-ack",
                    frame.len()
                )));
            }
            if self.broken {
                return Err(FlError::Transport("connection died awaiting hello-ack".into()));
            }
            if let Some((token, received, sent, fresh, _)) = self.hello_ack.take() {
                self.token = token;
                return Ok((received, sent, fresh));
            }
            if std::time::Instant::now() > deadline {
                return Err(FlError::Transport("timed out awaiting hello-ack".into()));
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }

    /// Retransmits every retained frame the server's ack counters do
    /// not cover (absolute index `from` on). Counters are untouched —
    /// these frames were counted when first sent.
    ///
    /// # Errors
    ///
    /// Propagates stream failure.
    pub fn retransmit_from(&mut self, from: u64) -> Result<(), FlError> {
        self.retained.prune(from);
        self.retained.retransmit(&mut self.stream)
    }

    /// Data frames received on this link so far (the deliberate
    /// link-death test knob triggers off this).
    pub fn data_received(&self) -> u64 {
        self.data_received
    }

    /// The oldest unanswered quiescence probe, if any. Answer only
    /// after a full pool pump — the FIFO barrier the server's quiet
    /// check relies on.
    pub fn take_status_req(&mut self) -> Option<u64> {
        self.status_reqs.pop_front()
    }

    /// The oldest unapplied codec-reference seed, if any (see
    /// [`ControlMsg::RefSync`]). The event loop applies these to its
    /// pool between pumps.
    pub fn take_ref_sync(&mut self) -> Option<(u64, u64, Vec<f32>)> {
        self.ref_syncs.pop_front()
    }

    /// Answers probe `seq` with this side's current data counters.
    ///
    /// # Errors
    ///
    /// Propagates stream failure (non-resumable links only).
    pub fn send_status(&mut self, seq: u64) -> Result<(), FlError> {
        let msg = ControlMsg::Status { seq, received: self.data_received, sent: self.data_sent };
        let result = self.stream.send(&msg.encode());
        self.absorb(result)
    }

    /// Whether the server announced end-of-run.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown
    }

    /// Whether the server closed its write side.
    pub fn is_eof(&self) -> bool {
        self.stream.is_eof()
    }

    /// Whether staged bytes are waiting for write-readiness.
    pub fn wants_write(&self) -> bool {
        !self.broken && self.stream.wants_write()
    }

    /// Flushes staged bytes; `true` when the outbox drained.
    ///
    /// # Errors
    ///
    /// Propagates stream failure (non-resumable links only).
    pub fn flush(&mut self) -> Result<bool, FlError> {
        if self.broken {
            return Ok(true);
        }
        let result = self.stream.flush();
        match result {
            Ok(done) => Ok(done),
            Err(e) if self.resumable => {
                self.broken = true;
                drop(e);
                Ok(true)
            }
            Err(e) => Err(e),
        }
    }

    /// Half-closes the connection (FIN) so the coordinator observes
    /// EOF even while this link — and its counters — stays alive
    /// inside a returned pool. Errors are ignored: the peer may
    /// already be gone, which serves the same purpose.
    pub fn close(&self) {
        let _ = self.stream.get_ref().shutdown(std::net::Shutdown::Write);
    }

    /// Severs the connection in *both* directions — the deliberate
    /// link-death test knob (a crash simulated without a process exit).
    pub fn sever(&mut self) {
        let _ = self.stream.get_ref().shutdown(std::net::Shutdown::Both);
        if self.resumable {
            self.broken = true;
        }
    }
}

impl Transport for PartyLink {
    fn send(&mut self, frame: &[u8]) -> Result<(), FlError> {
        self.data_sent += 1;
        self.retained.push(frame);
        if self.broken {
            return Ok(());
        }
        let result = self.stream.send(frame);
        self.absorb(result)
    }

    fn try_recv(&mut self) -> Result<Option<Bytes>, FlError> {
        if self.broken {
            return Ok(None);
        }
        loop {
            let received = self.stream.try_recv();
            let Some(frame) = self.absorb(received)? else {
                return Ok(None);
            };
            if !is_control_frame(&frame) {
                self.data_received += 1;
                return Ok(Some(frame));
            }
            match ControlMsg::decode(&frame)? {
                ControlMsg::StatusReq { seq, received, sent } => {
                    self.status_reqs.push_back(seq);
                    // The server's received count acknowledges our
                    // retained frames.
                    self.retained.prune(received);
                    let _ = sent;
                }
                ControlMsg::Shutdown => self.shutdown = true,
                ControlMsg::HelloAck { token, received, sent, fresh, ref_syncs } => {
                    // Stash and STOP, like RefSync below: the handshake
                    // ([`PartyLink::await_hello_ack`]) must observe the
                    // ack before any data frame behind it is surfaced.
                    self.hello_ack = Some((token, received, sent, fresh, ref_syncs));
                    self.token = token;
                    return Ok(None);
                }
                ControlMsg::RefSync { job, round, params } => {
                    // Stash and STOP: the seed must be applied (by the
                    // event loop) before any following frame — which
                    // may be encoded against it — is decoded. The pump
                    // resumes after application.
                    self.ref_syncs.push_back((job, round, params));
                    return Ok(None);
                }
                ControlMsg::Hello { .. } | ControlMsg::Status { .. } => {
                    return Err(FlError::Protocol("server sent a party-only control frame".into()));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flips_fl::message::frame;
    use flips_fl::WireMessage;

    fn tcp_pair() -> (TcpStream, TcpStream) {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        prepare_stream(&client).unwrap();
        prepare_stream(&server).unwrap();
        (client, server)
    }

    fn drain_until<F: FnMut() -> bool>(mut done: F) {
        for _ in 0..2_000 {
            if done() {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        panic!("condition never became true");
    }

    #[test]
    fn control_frames_are_invisible_to_the_data_plane() {
        let (c, s) = tcp_pair();
        let mut coord = CoordLink::new(s);
        let mut party = PartyLink::new(c);

        // Party sends a status answer, then a data frame; the
        // coordinator's data plane must surface only the data frame.
        coord.send_probe().unwrap();
        let data = frame(u64::MAX, &WireMessage::Heartbeat { job: 9, round: 0, party: 1 });
        party.try_recv().unwrap(); // absorb the probe (returns None: control only)
        let seq = party.take_status_req().expect("probe stashed");
        party.send_status(seq).unwrap();
        Transport::send(&mut party, &data).unwrap();

        let mut got = None;
        drain_until(|| {
            got = coord.try_recv_data().unwrap();
            got.is_some()
        });
        assert_eq!(got.unwrap(), data);
        assert_eq!(coord.data_received, 1, "control frames must not count as data");
    }

    #[test]
    fn quiet_requires_matching_counters_in_both_directions() {
        let (c, s) = tcp_pair();
        let mut coord = CoordLink::new(s);
        let mut party = PartyLink::new(c);
        assert!(coord.quiet(), "an untouched link is vacuously quiet");

        let data = frame(3, &WireMessage::Heartbeat { job: 9, round: 0, party: 3 });
        coord.send_data(&data).unwrap();
        assert!(!coord.quiet(), "a sent frame without an ack cannot be quiet");
        assert!(coord.needs_probe());
        coord.send_probe().unwrap();
        assert!(!coord.needs_probe(), "one probe in flight at a time");

        // Party pumps (receives the data frame), then answers.
        drain_until(|| {
            party.try_recv().unwrap();
            party.take_status_req().map(|seq| party.send_status(seq).unwrap()).is_some()
        });
        drain_until(|| {
            coord.try_recv_data().unwrap();
            coord.quiet()
        });
    }

    #[test]
    fn stale_probe_answers_do_not_mark_the_link_quiet() {
        let (c, s) = tcp_pair();
        let mut coord = CoordLink::new(s);
        let mut party = PartyLink::new(c);
        let data = frame(3, &WireMessage::Heartbeat { job: 9, round: 0, party: 3 });
        coord.send_data(&data).unwrap();
        coord.send_probe().unwrap();
        // The party answers while it has seen only the first frame.
        drain_until(|| {
            party.try_recv().unwrap();
            party.take_status_req().map(|seq| party.send_status(seq).unwrap()).is_some()
        });
        // A second frame departs after that answer was computed: the
        // answer accounts for one frame of two and must read as stale.
        coord.send_data(&data).unwrap();
        drain_until(|| {
            coord.try_recv_data().unwrap();
            !coord.probe_outstanding
        });
        assert!(!coord.quiet(), "an answer predating the second frame proved nothing");
        assert!(coord.needs_probe(), "staleness must trigger a re-probe");
    }

    #[test]
    fn router_routes_by_destination_modulo_links() {
        let (c0, s0) = tcp_pair();
        let (c1, s1) = tcp_pair();
        let links = vec![
            Arc::new(Mutex::new(CoordLink::new(s0))),
            Arc::new(Mutex::new(CoordLink::new(s1))),
        ];
        let mut router = SocketRouter::new(links);
        assert_eq!(router.links(), 2);
        assert_eq!(router.link_for(9, 4), 0);
        assert_eq!(router.link_for(9, 7), 1);

        let even = frame(4, &WireMessage::Heartbeat { job: 9, round: 0, party: 4 });
        let odd = frame(7, &WireMessage::Heartbeat { job: 9, round: 0, party: 7 });
        router.send(&even).unwrap();
        router.send(&odd).unwrap();
        assert!(matches!(router.send(&[1, 2]), Err(FlError::Transport(_))));

        let mut p0 = PartyLink::new(c0);
        let mut p1 = PartyLink::new(c1);
        drain_until(|| p0.try_recv().unwrap().is_some_and(|f| f == even));
        drain_until(|| p1.try_recv().unwrap().is_some_and(|f| f == odd));
    }

    #[test]
    fn probe_counters_prune_retained_frames_on_both_sides() {
        let (c, s) = tcp_pair();
        let mut coord = CoordLink::new(s);
        let mut party = PartyLink::new(c);
        let data = frame(3, &WireMessage::Heartbeat { job: 9, round: 0, party: 3 });
        coord.send_data(&data).unwrap();
        Transport::send(&mut party, &data).unwrap();
        assert_eq!(coord.retained.frames.len(), 1);
        assert_eq!(party.retained.frames.len(), 1);
        // One full probe round trip: the party learns the server
        // received its frame, the server learns the party received its.
        drain_until(|| coord.try_recv_data().unwrap().is_some());
        coord.send_probe().unwrap();
        drain_until(|| {
            party.try_recv().unwrap();
            party.take_status_req().map(|seq| party.send_status(seq).unwrap()).is_some()
        });
        drain_until(|| {
            coord.try_recv_data().unwrap();
            coord.retained.frames.is_empty()
        });
        assert!(party.retained.frames.is_empty(), "the probe's counters acked the party's frame");
        assert_eq!(coord.retained.base, 1);
        assert_eq!(party.retained.base, 1);
    }

    #[test]
    fn a_dead_party_parks_a_resumable_link_instead_of_erroring() {
        let (c, s) = tcp_pair();
        let mut coord = CoordLink::new(s);
        coord.set_resumable(true);
        let mut party = PartyLink::new(c);
        party.sever();
        drop(party);
        let data = frame(3, &WireMessage::Heartbeat { job: 9, round: 0, party: 3 });
        // Recv + send on the dead socket must park, not error.
        drain_until(|| {
            coord.try_recv_data().unwrap();
            coord.send_data(&data).unwrap();
            let _ = coord.flush().unwrap();
            coord.is_parked() || coord.is_eof()
        });
        if !coord.is_parked() {
            coord.park(); // EOF without an error also parks (the loop's job)
        }
        assert!(coord.take_just_parked());
        assert!(!coord.take_just_parked(), "the parked flag is one-shot");
        assert!(!coord.quiet(), "a parked link must hold the clock");
        assert!(!coord.needs_probe(), "a parked link cannot be probed");
        // Sends while parked retain silently.
        let before = coord.data_sent;
        coord.send_data(&data).unwrap();
        assert_eq!(coord.data_sent, before + 1);
        assert!(coord.try_recv_data().unwrap().is_none());
    }

    #[test]
    fn resume_retransmits_exactly_the_unacknowledged_frames() {
        let (c, s) = tcp_pair();
        let mut coord = CoordLink::new(s);
        coord.set_resumable(true);
        coord.assign_token(42);
        let f0 = frame(3, &WireMessage::Heartbeat { job: 9, round: 0, party: 3 });
        let f1 = frame(3, &WireMessage::Heartbeat { job: 9, round: 1, party: 3 });
        let f2 = frame(3, &WireMessage::Heartbeat { job: 9, round: 2, party: 3 });
        coord.send_data(&f0).unwrap();
        coord.send_data(&f1).unwrap();
        coord.send_data(&f2).unwrap();
        drop(c); // the party's first connection dies
        coord.park();

        // The party reconnects claiming it received only f0.
        let (c2, s2) = tcp_pair();
        // (swap the server end into the coordinator link)
        coord.resume_with(s2, HelloInfo { shard: 0, token: 42, received: 1, sent: 0 });
        coord.send_hello_ack(false, &[]).unwrap();
        coord.retransmit_unacked().unwrap();
        assert!(!coord.is_parked());
        let mut party = PartyLink::new(c2);
        let ack = party.await_hello_ack(std::time::Duration::from_secs(5)).unwrap();
        assert_eq!(ack, (0, 3, false), "the ack precedes the retransmits and carries counters");
        let mut got = Vec::new();
        drain_until(|| {
            if let Some(f) = party.try_recv().unwrap() {
                got.push(f);
            }
            got.len() == 2
        });
        assert_eq!(got, vec![f1.clone(), f2.clone()], "exactly the unacked frames, in order");
        assert_eq!(coord.data_sent, 3, "retransmission must not recount frames");
    }

    #[test]
    fn hello_ack_and_ref_sync_reach_the_party_in_order() {
        let (c, s) = tcp_pair();
        let mut coord = CoordLink::new(s);
        coord.assign_token(7);
        let seeds = vec![
            ControlMsg::RefSync { job: 9, round: 2, params: vec![1.0, 2.0] },
            ControlMsg::RefSync { job: 11, round: 2, params: vec![3.0] },
        ];
        coord.send_hello_ack(true, &seeds).unwrap();
        let mut party = PartyLink::new(c);
        let (received, _sent, fresh) =
            party.await_hello_ack(std::time::Duration::from_secs(5)).unwrap();
        assert_eq!((received, fresh, party.token()), (0, true, 7));
        // Ref syncs pause the data plane one at a time.
        drain_until(|| {
            party.try_recv().unwrap();
            party.ref_syncs.len() == 2
        });
        assert_eq!(party.take_ref_sync(), Some((9, 2, vec![1.0, 2.0])));
        assert_eq!(party.take_ref_sync(), Some((11, 2, vec![3.0])));
        assert_eq!(party.take_ref_sync(), None);
    }
}
