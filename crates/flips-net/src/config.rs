//! TOML configuration for the deployable binaries.
//!
//! One file describes a whole deployment — both `flips-server` and
//! `flips-party` read the *same* config, so the two sides provably
//! build the same seeded jobs (the party side keeps only the endpoints
//! its link slot owns; the server keeps the coordinator pieces):
//!
//! ```toml
//! links = 2
//!
//! [server]
//! listen = "127.0.0.1:7100"
//! health = "127.0.0.1:7101"
//!
//! [party]
//! connect = "127.0.0.1:7100"
//!
//! [guard]
//! max_frame_bytes = 1048576
//! rate_burst = 64
//! rate_per_round = 16
//! breaker_strikes = 3
//! breaker_cooldown_rounds = 2
//! strike_on_late = false
//! strike_on_corrupt = true
//! admission_factor = 16
//!
//! [[job]]
//! seed = 11
//! parties = 12
//! rounds = 4
//! selector = "random"
//! codec = "raw"
//! deadline = "latency-quantile"
//! deadline_q = 0.5
//! deadline_slack = 1.1
//! latency_sigma = 0.8
//! ```
//!
//! The parser is a deliberately minimal hand-rolled subset (this
//! workspace builds offline, so no crates.io `toml`): `[tables]`,
//! `[[arrays-of-tables]]`, `key = value` with string/integer/float/
//! boolean scalars, and `#` comments. Everything a deployment needs,
//! nothing it doesn't.

use flips_core::prelude::{
    DatasetProfile, DeadlinePolicy, GuardConfig, ModelCodec, SelectorKind, SimulationBuilder,
};
use flips_fl::guard::{BreakerConfig, RateLimit};
use flips_fl::FlError;
use std::collections::BTreeMap;

/// A scalar TOML value (the subset the binaries need).
#[derive(Debug, Clone, PartialEq)]
pub enum TomlValue {
    /// A double-quoted string.
    Str(String),
    /// A signed integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// `true` / `false`.
    Bool(bool),
}

type Table = BTreeMap<String, TomlValue>;

/// A parsed TOML document: the root/named tables plus arrays-of-tables.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct TomlDoc {
    /// Named tables; the root table lives under `""`.
    pub tables: BTreeMap<String, Table>,
    /// `[[name]]` arrays, in declaration order.
    pub arrays: BTreeMap<String, Vec<Table>>,
}

fn bad(line_no: usize, msg: impl std::fmt::Display) -> FlError {
    FlError::InvalidConfig(format!("config line {line_no}: {msg}"))
}

/// Parses one scalar value.
fn parse_value(raw: &str, line_no: usize) -> Result<TomlValue, FlError> {
    let raw = raw.trim();
    if let Some(rest) = raw.strip_prefix('"') {
        let Some(end) = rest.find('"') else {
            return Err(bad(line_no, "unterminated string"));
        };
        let tail = rest[end + 1..].trim();
        if !tail.is_empty() && !tail.starts_with('#') {
            return Err(bad(line_no, format!("trailing characters after string: {tail:?}")));
        }
        return Ok(TomlValue::Str(rest[..end].to_string()));
    }
    // Past the string case, a comment can be split off blindly.
    let raw = raw.split('#').next().unwrap_or_default().trim();
    match raw {
        "" => Err(bad(line_no, "missing value")),
        "true" => Ok(TomlValue::Bool(true)),
        "false" => Ok(TomlValue::Bool(false)),
        _ => {
            if raw.contains(['.', 'e', 'E']) {
                raw.parse::<f64>()
                    .map(TomlValue::Float)
                    .map_err(|_| bad(line_no, format!("not a float: {raw:?}")))
            } else {
                raw.parse::<i64>()
                    .map(TomlValue::Int)
                    .map_err(|_| bad(line_no, format!("not a number: {raw:?}")))
            }
        }
    }
}

/// Parses a TOML document (see the [module docs](self) for the
/// supported subset).
///
/// # Errors
///
/// [`FlError::InvalidConfig`] naming the offending line for any syntax
/// outside the subset.
pub fn parse_toml(text: &str) -> Result<TomlDoc, FlError> {
    enum Cursor {
        Table(String),
        Array(String),
    }
    let mut doc = TomlDoc::default();
    let mut cursor = Cursor::Table(String::new());
    for (i, raw_line) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(header) = line.strip_prefix("[[") {
            let Some(name) = header.strip_suffix("]]") else {
                return Err(bad(line_no, "malformed [[array]] header"));
            };
            let name = name.trim().to_string();
            if name.is_empty() {
                return Err(bad(line_no, "empty [[array]] header"));
            }
            doc.arrays.entry(name.clone()).or_default().push(Table::new());
            cursor = Cursor::Array(name);
            continue;
        }
        if let Some(header) = line.strip_prefix('[') {
            let Some(name) = header.strip_suffix(']') else {
                return Err(bad(line_no, "malformed [table] header"));
            };
            let name = name.trim().to_string();
            if name.is_empty() {
                return Err(bad(line_no, "empty [table] header"));
            }
            doc.tables.entry(name.clone()).or_default();
            cursor = Cursor::Table(name);
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(bad(line_no, format!("expected `key = value`, got {line:?}")));
        };
        let key = key.trim().to_string();
        if key.is_empty() {
            return Err(bad(line_no, "empty key"));
        }
        let value = parse_value(value, line_no)?;
        let table = match &cursor {
            Cursor::Table(name) => doc.tables.entry(name.clone()).or_default(),
            Cursor::Array(name) => doc
                .arrays
                .get_mut(name)
                .and_then(|v| v.last_mut())
                .expect("array cursor points at a pushed table"),
        };
        if table.insert(key.clone(), value).is_some() {
            return Err(bad(line_no, format!("duplicate key {key:?}")));
        }
    }
    Ok(doc)
}

/// Typed accessors over one [`Table`].
struct Fields<'a> {
    table: &'a Table,
    context: &'a str,
}

impl<'a> Fields<'a> {
    fn missing(&self, key: &str) -> FlError {
        FlError::InvalidConfig(format!("{}: missing required key {key:?}", self.context))
    }

    fn wrong(&self, key: &str, want: &str) -> FlError {
        FlError::InvalidConfig(format!("{}: key {key:?} must be a {want}", self.context))
    }

    fn str_opt(&self, key: &str) -> Result<Option<String>, FlError> {
        match self.table.get(key) {
            None => Ok(None),
            Some(TomlValue::Str(s)) => Ok(Some(s.clone())),
            Some(_) => Err(self.wrong(key, "string")),
        }
    }

    fn str_req(&self, key: &str) -> Result<String, FlError> {
        self.str_opt(key)?.ok_or_else(|| self.missing(key))
    }

    fn uint_opt(&self, key: &str) -> Result<Option<u64>, FlError> {
        match self.table.get(key) {
            None => Ok(None),
            Some(TomlValue::Int(i)) if *i >= 0 => Ok(Some(*i as u64)),
            Some(_) => Err(self.wrong(key, "non-negative integer")),
        }
    }

    fn uint_req(&self, key: &str) -> Result<u64, FlError> {
        self.uint_opt(key)?.ok_or_else(|| self.missing(key))
    }

    fn float_opt(&self, key: &str) -> Result<Option<f64>, FlError> {
        match self.table.get(key) {
            None => Ok(None),
            Some(TomlValue::Float(f)) => Ok(Some(*f)),
            Some(TomlValue::Int(i)) => Ok(Some(*i as f64)),
            Some(_) => Err(self.wrong(key, "number")),
        }
    }

    fn bool_or(&self, key: &str, default: bool) -> Result<bool, FlError> {
        match self.table.get(key) {
            None => Ok(default),
            Some(TomlValue::Bool(b)) => Ok(*b),
            Some(_) => Err(self.wrong(key, "boolean")),
        }
    }

    fn reject_unknown(&self, known: &[&str]) -> Result<(), FlError> {
        for key in self.table.keys() {
            if !known.contains(&key.as_str()) {
                return Err(FlError::InvalidConfig(format!(
                    "{}: unknown key {key:?}",
                    self.context
                )));
            }
        }
        Ok(())
    }
}

/// One job's full seeded description — enough for both sides of the
/// wire to rebuild bit-identical protocol state machines.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// The dataset profile: `"femnist"` or `"fashion-mnist"`.
    pub dataset: String,
    /// Seed of every stream in the job (also determines the job id).
    pub seed: u64,
    /// Roster size.
    pub parties: usize,
    /// Round budget.
    pub rounds: usize,
    /// Fraction of the roster selected per round.
    pub participation: f64,
    /// Dirichlet non-IID concentration.
    pub alpha: f64,
    /// The participant-selection policy.
    pub selector: SelectorKind,
    /// The model-payload codec both sides pin (the job-wide default).
    pub codec: ModelCodec,
    /// Per-link codec overrides, one entry per link slot (empty = every
    /// link speaks [`JobSpec::codec`]). Parsed from the optional
    /// `link_codecs = "name,name,..."` key — comma-separated codec
    /// names, exactly `links` of them — so one job can run
    /// heterogeneous codecs across its links, pinned out-of-band on
    /// both wire ends.
    pub link_codecs: Vec<ModelCodec>,
    /// The round-deadline policy.
    pub deadline: DeadlinePolicy,
    /// Log-normal σ of the platform-heterogeneity model.
    pub latency_sigma: f64,
    /// Injected straggler rate (the [`DeadlinePolicy::Injected`] path).
    pub straggler_rate: f64,
    /// Held-out test samples per class.
    pub test_per_class: usize,
    /// k-means restarts of the label-distribution clustering.
    pub clustering_restarts: usize,
}

impl JobSpec {
    /// The codec link `slot` speaks for this job: the per-link override
    /// when `link_codecs` is configured, the job-wide default otherwise.
    pub fn link_codec(&self, slot: usize) -> ModelCodec {
        self.link_codecs.get(slot).copied().unwrap_or(self.codec)
    }

    /// The builder producing this job's seeded [`flips_fl::FlJob`] —
    /// identical on every process that parses the same config.
    ///
    /// # Errors
    ///
    /// [`FlError::InvalidConfig`] for an unknown dataset name.
    pub fn builder(&self) -> Result<SimulationBuilder, FlError> {
        let profile = match self.dataset.as_str() {
            "femnist" => DatasetProfile::femnist(),
            "fashion-mnist" => DatasetProfile::fashion_mnist(),
            other => {
                return Err(FlError::InvalidConfig(format!("unknown dataset {other:?}")));
            }
        };
        Ok(SimulationBuilder::new(profile)
            .parties(self.parties)
            .rounds(self.rounds)
            .participation(self.participation)
            .alpha(self.alpha)
            .selector(self.selector)
            .codec(self.codec)
            .deadline(self.deadline)
            .latency_sigma(self.latency_sigma)
            .straggler_rate(self.straggler_rate)
            .test_per_class(self.test_per_class)
            .clustering_restarts(self.clustering_restarts)
            .seed(self.seed))
    }
}

/// A full deployment description (see the [module docs](self)).
#[derive(Debug, Clone, PartialEq)]
pub struct NetConfig {
    /// TCP links the roster is split across (party `p` → link
    /// `p % links`); also the number of party processes the server
    /// waits for.
    pub links: usize,
    /// The server's data-plane listen address.
    pub listen: String,
    /// The server's health/metrics listen address, if any.
    pub health: Option<String>,
    /// The address parties connect to (usually `listen` with a
    /// routable host).
    pub connect: String,
    /// The party-side health/metrics *base* address, if any: the
    /// `flips-party` process serving link slot `s` binds the base port
    /// plus `s`, so every party process exposes its own
    /// `/healthz`/`/metrics` endpoint.
    pub party_health: Option<String>,
    /// The inbound guard plane, if any.
    pub guard: Option<GuardConfig>,
    /// The jobs to run, in declaration order.
    pub jobs: Vec<JobSpec>,
}

fn selector_from_name(name: &str) -> Result<SelectorKind, FlError> {
    match name {
        "random" => Ok(SelectorKind::Random),
        "flips" => Ok(SelectorKind::Flips),
        "oort" => Ok(SelectorKind::Oort),
        "gradclus" => Ok(SelectorKind::GradClus),
        "tifl" => Ok(SelectorKind::Tifl),
        other => Err(FlError::InvalidConfig(format!("unknown selector {other:?}"))),
    }
}

fn selector_name(kind: SelectorKind) -> &'static str {
    match kind {
        SelectorKind::Random => "random",
        SelectorKind::Flips => "flips",
        SelectorKind::Oort => "oort",
        SelectorKind::GradClus => "gradclus",
        SelectorKind::Tifl => "tifl",
    }
}

fn codec_from_name(name: &str) -> Result<ModelCodec, FlError> {
    if let Some(k) = name.strip_prefix("topk:") {
        let k: u32 = k.parse().map_err(|_| {
            FlError::InvalidConfig(format!("codec \"topk:{k}\": k must be a positive integer"))
        })?;
        if k == 0 {
            return Err(FlError::InvalidConfig("codec \"topk:0\": k must be at least 1".into()));
        }
        return Ok(ModelCodec::TopK { k });
    }
    match name {
        "raw" => Ok(ModelCodec::Raw),
        "delta-lossless" => Ok(ModelCodec::DeltaLossless),
        "delta-entropy" => Ok(ModelCodec::DeltaEntropy),
        "f16" => Ok(ModelCodec::F16),
        other => Err(FlError::InvalidConfig(format!("unknown codec {other:?}"))),
    }
}

fn codec_name(codec: ModelCodec) -> String {
    match codec {
        ModelCodec::Raw => "raw".into(),
        ModelCodec::DeltaLossless => "delta-lossless".into(),
        ModelCodec::DeltaEntropy => "delta-entropy".into(),
        ModelCodec::F16 => "f16".into(),
        ModelCodec::TopK { k } => format!("topk:{k}"),
    }
}

fn job_from_table(table: &Table, index: usize) -> Result<JobSpec, FlError> {
    let context = format!("[[job]] #{index}");
    let f = Fields { table, context: &context };
    f.reject_unknown(&[
        "dataset",
        "seed",
        "parties",
        "rounds",
        "participation",
        "alpha",
        "selector",
        "codec",
        "link_codecs",
        "deadline",
        "deadline_q",
        "deadline_slack",
        "deadline_secs",
        "ewma_alpha",
        "latency_sigma",
        "straggler_rate",
        "test_per_class",
        "clustering_restarts",
    ])?;
    let deadline = match f.str_opt("deadline")?.as_deref().unwrap_or("injected") {
        "injected" => DeadlinePolicy::Injected,
        "latency-quantile" => DeadlinePolicy::LatencyQuantile {
            q: f.float_opt("deadline_q")?.unwrap_or(0.9),
            slack: f.float_opt("deadline_slack")?.unwrap_or(1.5),
        },
        "ewma" => DeadlinePolicy::Ewma {
            alpha: f.float_opt("ewma_alpha")?.unwrap_or(0.3),
            slack: f.float_opt("deadline_slack")?.unwrap_or(1.5),
        },
        "fixed" => DeadlinePolicy::FixedSeconds {
            secs: f.float_opt("deadline_secs")?.ok_or_else(|| {
                FlError::InvalidConfig(format!(
                    "{context}: deadline \"fixed\" requires deadline_secs"
                ))
            })?,
        },
        other => {
            return Err(FlError::InvalidConfig(format!(
                "{context}: unknown deadline policy {other:?}"
            )));
        }
    };
    let spec = JobSpec {
        dataset: f.str_opt("dataset")?.unwrap_or_else(|| "femnist".to_string()),
        seed: f.uint_req("seed")?,
        parties: f.uint_req("parties")? as usize,
        rounds: f.uint_req("rounds")? as usize,
        participation: f.float_opt("participation")?.unwrap_or(0.25),
        alpha: f.float_opt("alpha")?.unwrap_or(0.3),
        selector: selector_from_name(f.str_opt("selector")?.as_deref().unwrap_or("random"))?,
        codec: codec_from_name(f.str_opt("codec")?.as_deref().unwrap_or("raw"))?,
        link_codecs: match f.str_opt("link_codecs")? {
            None => Vec::new(),
            Some(names) => names
                .split(',')
                .map(|name| codec_from_name(name.trim()))
                .collect::<Result<Vec<_>, _>>()?,
        },
        deadline,
        latency_sigma: f.float_opt("latency_sigma")?.unwrap_or(0.0),
        straggler_rate: f.float_opt("straggler_rate")?.unwrap_or(0.0),
        test_per_class: f.uint_opt("test_per_class")?.unwrap_or(8) as usize,
        clustering_restarts: f.uint_opt("clustering_restarts")?.unwrap_or(3) as usize,
    };
    spec.builder()?; // surfaces an unknown dataset at parse time
    Ok(spec)
}

fn guard_from_table(table: &Table) -> Result<GuardConfig, FlError> {
    let f = Fields { table, context: "[guard]" };
    f.reject_unknown(&[
        "max_frame_bytes",
        "rate_burst",
        "rate_per_round",
        "breaker_strikes",
        "breaker_cooldown_rounds",
        "strike_on_late",
        "strike_on_corrupt",
        "admission_factor",
    ])?;
    let defaults = GuardConfig::default();
    let rate_limit = match (f.uint_opt("rate_burst")?, f.uint_opt("rate_per_round")?) {
        (None, None) => None,
        (burst, per_round) => Some(RateLimit {
            burst: burst.unwrap_or(RateLimit::default().burst.into()) as u32,
            per_round: per_round.unwrap_or(RateLimit::default().per_round.into()) as u32,
        }),
    };
    let breaker = match f.uint_opt("breaker_strikes")? {
        None => None,
        Some(strikes) => Some(BreakerConfig {
            strike_threshold: strikes as u32,
            cooldown_rounds: f
                .uint_opt("breaker_cooldown_rounds")?
                .unwrap_or(BreakerConfig::default().cooldown_rounds),
            strike_on_late: f.bool_or("strike_on_late", BreakerConfig::default().strike_on_late)?,
            strike_on_corrupt: f
                .bool_or("strike_on_corrupt", BreakerConfig::default().strike_on_corrupt)?,
        }),
    };
    let guard = GuardConfig {
        max_frame_bytes: f
            .uint_opt("max_frame_bytes")?
            .map_or(defaults.max_frame_bytes, |v| v as usize),
        rate_limit,
        breaker,
        admission_factor: f.uint_opt("admission_factor")?.map(|v| v as u32),
    };
    guard.validate().map(|()| guard)
}

impl NetConfig {
    /// Parses a deployment config.
    ///
    /// # Errors
    ///
    /// [`FlError::InvalidConfig`] for syntax errors, unknown keys or
    /// names, missing required keys, or a guard/job configuration the
    /// runtime itself would reject.
    pub fn parse(text: &str) -> Result<NetConfig, FlError> {
        let doc = parse_toml(text)?;
        for name in doc.tables.keys() {
            if !["", "server", "party", "guard"].contains(&name.as_str()) {
                return Err(FlError::InvalidConfig(format!("unknown table [{name}]")));
            }
        }
        for name in doc.arrays.keys() {
            if name != "job" {
                return Err(FlError::InvalidConfig(format!("unknown array [[{name}]]")));
            }
        }
        let empty = Table::new();
        let root = Fields { table: doc.tables.get("").unwrap_or(&empty), context: "config root" };
        root.reject_unknown(&["links"])?;
        let links = root.uint_opt("links")?.unwrap_or(1) as usize;
        if links == 0 {
            return Err(FlError::InvalidConfig("links must be at least 1".into()));
        }

        let server =
            Fields { table: doc.tables.get("server").unwrap_or(&empty), context: "[server]" };
        server.reject_unknown(&["listen", "health"])?;
        let party = Fields { table: doc.tables.get("party").unwrap_or(&empty), context: "[party]" };
        party.reject_unknown(&["connect", "health"])?;
        let listen = server.str_req("listen")?;
        let connect = party.str_opt("connect")?.unwrap_or_else(|| listen.clone());

        let guard = doc.tables.get("guard").map(guard_from_table).transpose()?;

        let job_tables = doc.arrays.get("job").map(Vec::as_slice).unwrap_or_default();
        if job_tables.is_empty() {
            return Err(FlError::InvalidConfig("at least one [[job]] is required".into()));
        }
        let mut jobs = Vec::with_capacity(job_tables.len());
        for (i, table) in job_tables.iter().enumerate() {
            let job = job_from_table(table, i)?;
            if !job.link_codecs.is_empty() && job.link_codecs.len() != links {
                return Err(FlError::InvalidConfig(format!(
                    "[[job]] #{i}: link_codecs names {} codec(s), but the deployment has {links} link(s)",
                    job.link_codecs.len()
                )));
            }
            jobs.push(job);
        }

        Ok(NetConfig {
            links,
            listen,
            health: server.str_opt("health")?,
            connect,
            party_health: party.str_opt("health")?,
            guard,
            jobs,
        })
    }

    /// Renders this config back to TOML ([`NetConfig::parse`] of the
    /// result round-trips exactly — the round-trip test's property).
    pub fn to_toml(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(1024);
        let _ = writeln!(out, "links = {}", self.links);
        let _ = writeln!(out, "\n[server]\nlisten = \"{}\"", self.listen);
        if let Some(health) = &self.health {
            let _ = writeln!(out, "health = \"{health}\"");
        }
        let _ = writeln!(out, "\n[party]\nconnect = \"{}\"", self.connect);
        if let Some(health) = &self.party_health {
            let _ = writeln!(out, "health = \"{health}\"");
        }
        if let Some(guard) = &self.guard {
            let _ = writeln!(out, "\n[guard]\nmax_frame_bytes = {}", guard.max_frame_bytes);
            if let Some(rate) = &guard.rate_limit {
                let _ = writeln!(out, "rate_burst = {}", rate.burst);
                let _ = writeln!(out, "rate_per_round = {}", rate.per_round);
            }
            if let Some(breaker) = &guard.breaker {
                let _ = writeln!(out, "breaker_strikes = {}", breaker.strike_threshold);
                let _ = writeln!(out, "breaker_cooldown_rounds = {}", breaker.cooldown_rounds);
                let _ = writeln!(out, "strike_on_late = {}", breaker.strike_on_late);
                let _ = writeln!(out, "strike_on_corrupt = {}", breaker.strike_on_corrupt);
            }
            if let Some(factor) = guard.admission_factor {
                let _ = writeln!(out, "admission_factor = {factor}");
            }
        }
        for job in &self.jobs {
            let _ = writeln!(out, "\n[[job]]");
            let _ = writeln!(out, "dataset = \"{}\"", job.dataset);
            let _ = writeln!(out, "seed = {}", job.seed);
            let _ = writeln!(out, "parties = {}", job.parties);
            let _ = writeln!(out, "rounds = {}", job.rounds);
            let _ = writeln!(out, "participation = {}", float_lit(job.participation));
            let _ = writeln!(out, "alpha = {}", float_lit(job.alpha));
            let _ = writeln!(out, "selector = \"{}\"", selector_name(job.selector));
            let _ = writeln!(out, "codec = \"{}\"", codec_name(job.codec));
            if !job.link_codecs.is_empty() {
                let names: Vec<String> = job.link_codecs.iter().map(|&c| codec_name(c)).collect();
                let _ = writeln!(out, "link_codecs = \"{}\"", names.join(","));
            }
            match job.deadline {
                DeadlinePolicy::Injected => {
                    let _ = writeln!(out, "deadline = \"injected\"");
                }
                DeadlinePolicy::LatencyQuantile { q, slack } => {
                    let _ = writeln!(out, "deadline = \"latency-quantile\"");
                    let _ = writeln!(out, "deadline_q = {}", float_lit(q));
                    let _ = writeln!(out, "deadline_slack = {}", float_lit(slack));
                }
                DeadlinePolicy::Ewma { alpha, slack } => {
                    let _ = writeln!(out, "deadline = \"ewma\"");
                    let _ = writeln!(out, "ewma_alpha = {}", float_lit(alpha));
                    let _ = writeln!(out, "deadline_slack = {}", float_lit(slack));
                }
                DeadlinePolicy::FixedSeconds { secs } => {
                    let _ = writeln!(out, "deadline = \"fixed\"");
                    let _ = writeln!(out, "deadline_secs = {}", float_lit(secs));
                }
            }
            let _ = writeln!(out, "latency_sigma = {}", float_lit(job.latency_sigma));
            let _ = writeln!(out, "straggler_rate = {}", float_lit(job.straggler_rate));
            let _ = writeln!(out, "test_per_class = {}", job.test_per_class);
            let _ = writeln!(out, "clustering_restarts = {}", job.clustering_restarts);
        }
        out
    }
}

/// Formats a float so the parser reads it back as a float (a bare
/// integer literal would come back as `TomlValue::Int`).
fn float_lit(v: f64) -> String {
    let s = format!("{v}");
    if s.contains(['.', 'e', 'E']) {
        s
    } else {
        format!("{s}.0")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FULL: &str = r#"
# A two-link deployment running one latency-deadline job.
links = 2

[server]
listen = "127.0.0.1:7100"
health = "127.0.0.1:7101"  # scrape me

[party]
connect = "127.0.0.1:7100"

[guard]
max_frame_bytes = 1048576
rate_burst = 64
rate_per_round = 16
breaker_strikes = 3
breaker_cooldown_rounds = 2
strike_on_late = false
strike_on_corrupt = true
admission_factor = 16

[[job]]
seed = 11
parties = 12
rounds = 4
participation = 0.25
alpha = 0.3
selector = "random"
codec = "raw"
deadline = "latency-quantile"
deadline_q = 0.5
deadline_slack = 1.1
latency_sigma = 0.8
test_per_class = 8
clustering_restarts = 3
"#;

    #[test]
    fn full_config_parses() {
        let cfg = NetConfig::parse(FULL).unwrap();
        assert_eq!(cfg.links, 2);
        assert_eq!(cfg.listen, "127.0.0.1:7100");
        assert_eq!(cfg.health.as_deref(), Some("127.0.0.1:7101"));
        assert_eq!(cfg.connect, "127.0.0.1:7100");
        assert!(cfg.party_health.is_none());
        let guard = cfg.guard.expect("guard parsed");
        assert_eq!(guard.max_frame_bytes, 1 << 20);
        assert_eq!(guard.rate_limit, Some(RateLimit { burst: 64, per_round: 16 }));
        assert_eq!(guard.admission_factor, Some(16));
        assert_eq!(cfg.jobs.len(), 1);
        let job = &cfg.jobs[0];
        assert_eq!(job.seed, 11);
        assert_eq!(job.parties, 12);
        assert_eq!(job.selector, SelectorKind::Random);
        assert_eq!(job.deadline, DeadlinePolicy::LatencyQuantile { q: 0.5, slack: 1.1 });
    }

    #[test]
    fn config_round_trips_through_to_toml() {
        let cfg = NetConfig::parse(FULL).unwrap();
        let rendered = cfg.to_toml();
        let reparsed = NetConfig::parse(&rendered).unwrap();
        assert_eq!(reparsed, cfg, "parse(to_toml(cfg)) must be identity:\n{rendered}");
    }

    #[test]
    fn every_deadline_policy_round_trips() {
        let mut cfg = NetConfig::parse(FULL).unwrap();
        for deadline in [
            DeadlinePolicy::Injected,
            DeadlinePolicy::Ewma { alpha: 0.3, slack: 1.1 },
            DeadlinePolicy::FixedSeconds { secs: 0.12 },
            DeadlinePolicy::LatencyQuantile { q: 0.9, slack: 1.5 },
        ] {
            cfg.jobs[0].deadline = deadline;
            let reparsed = NetConfig::parse(&cfg.to_toml()).unwrap();
            assert_eq!(reparsed.jobs[0].deadline, deadline);
        }
    }

    #[test]
    fn every_selector_and_codec_round_trips() {
        let mut cfg = NetConfig::parse(FULL).unwrap();
        for selector in SelectorKind::all() {
            for codec in [
                ModelCodec::Raw,
                ModelCodec::DeltaLossless,
                ModelCodec::DeltaEntropy,
                ModelCodec::F16,
                ModelCodec::TopK { k: 64 },
            ] {
                cfg.jobs[0].selector = selector;
                cfg.jobs[0].codec = codec;
                let reparsed = NetConfig::parse(&cfg.to_toml()).unwrap();
                assert_eq!(reparsed.jobs[0].selector, selector);
                assert_eq!(reparsed.jobs[0].codec, codec);
            }
        }
    }

    #[test]
    fn per_link_codec_overrides_round_trip_and_validate() {
        let mut cfg = NetConfig::parse(FULL).unwrap();
        cfg.jobs[0].link_codecs = vec![ModelCodec::DeltaEntropy, ModelCodec::TopK { k: 128 }];
        let reparsed = NetConfig::parse(&cfg.to_toml()).unwrap();
        assert_eq!(reparsed, cfg);
        assert_eq!(reparsed.jobs[0].link_codec(0), ModelCodec::DeltaEntropy);
        assert_eq!(reparsed.jobs[0].link_codec(1), ModelCodec::TopK { k: 128 });
        // No override: every slot falls back to the job-wide codec.
        assert_eq!(NetConfig::parse(FULL).unwrap().jobs[0].link_codec(1), ModelCodec::Raw);
        // A count that disagrees with `links` is a config error, not a
        // silently misrouted codec.
        cfg.jobs[0].link_codecs = vec![ModelCodec::DeltaEntropy];
        let err = NetConfig::parse(&cfg.to_toml()).unwrap_err();
        assert!(err.to_string().contains("link_codecs"), "{err}");
    }

    #[test]
    fn hostile_codec_names_are_rejected() {
        let mut cfg = NetConfig::parse(FULL).unwrap();
        for bad in ["topk:0", "topk:", "topk:-3", "topk:4294967296", "entropy"] {
            let toml = cfg.to_toml().replace("codec = \"raw\"", &format!("codec = \"{bad}\""));
            assert!(NetConfig::parse(&toml).is_err(), "codec {bad:?} must be rejected");
        }
        cfg.jobs[0].codec = ModelCodec::TopK { k: u32::MAX };
        let reparsed = NetConfig::parse(&cfg.to_toml()).unwrap();
        assert_eq!(reparsed.jobs[0].codec, ModelCodec::TopK { k: u32::MAX });
    }

    #[test]
    fn missing_required_keys_are_rejected() {
        // No [[job]] at all.
        let err = NetConfig::parse("links = 1\n[server]\nlisten = \"127.0.0.1:0\"\n").unwrap_err();
        assert!(err.to_string().contains("[[job]]"), "{err}");
        // A job without a seed.
        let err = NetConfig::parse(
            "links = 1\n[server]\nlisten = \"127.0.0.1:0\"\n[[job]]\nparties = 4\nrounds = 1\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("seed"), "{err}");
        // A server without a listen address.
        let err = NetConfig::parse("links = 1\n[[job]]\nseed = 1\nparties = 4\nrounds = 1\n")
            .unwrap_err();
        assert!(err.to_string().contains("listen"), "{err}");
    }

    #[test]
    fn unknown_names_are_rejected_not_ignored() {
        let base = "links = 1\n[server]\nlisten = \"127.0.0.1:0\"\n[[job]]\nseed = 1\nparties = 4\nrounds = 1\n";
        for (snippet, needle) in [
            (format!("{base}typo_key = 3\n"), "typo_key"),
            (format!("{base}selector = \"best\"\n"), "selector"),
            (format!("{base}codec = \"gzip\"\n"), "codec"),
            (format!("{base}deadline = \"soon\"\n"), "deadline"),
            (format!("[unknown]\nx = 1\n{base}"), "unknown"),
            (format!("[[widgets]]\nx = 1\n{base}"), "widgets"),
        ] {
            let err = NetConfig::parse(&snippet).unwrap_err();
            assert!(err.to_string().contains(needle), "{snippet:?} -> {err}");
        }
    }

    #[test]
    fn syntax_errors_name_the_line() {
        for text in ["links 1", "links = ", "x = \"unterminated", "[bad\n", "links = 1e"] {
            let err = parse_toml(text).unwrap_err();
            assert!(err.to_string().contains("line 1"), "{text:?} -> {err}");
        }
        assert!(parse_toml("links = 1\nlinks = 2\n")
            .unwrap_err()
            .to_string()
            .contains("duplicate"));
    }

    #[test]
    fn zero_links_is_rejected() {
        let err = NetConfig::parse(
            "links = 0\n[server]\nlisten = \"127.0.0.1:0\"\n[[job]]\nseed = 1\nparties = 4\nrounds = 1\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("links"), "{err}");
    }

    #[test]
    fn connect_defaults_to_the_listen_address() {
        let cfg = NetConfig::parse(
            "links = 1\n[server]\nlisten = \"127.0.0.1:7100\"\n[[job]]\nseed = 1\nparties = 4\nrounds = 1\n",
        )
        .unwrap();
        assert_eq!(cfg.connect, "127.0.0.1:7100");
    }
}
