//! The deployable FLIPS party worker.
//!
//! `flips-party <config.toml> [slot] [--resume] [--drop-after <n>]`
//! reads the *same* config as
//! `flips-server`, rebuilds the same seeded jobs, keeps the endpoints
//! whose party id maps to its link slot (`p % links == slot`, default
//! slot 0), connects out to the server and serves them with the
//! readiness-driven [`flips_net::party_loop`] until the coordinator's
//! shutdown notice.
//!
//! Both sides deriving the jobs from one file is the deployment story
//! for a simulation workspace: there is no model-state bootstrap
//! endpoint, the seed *is* the bootstrap. Every process binds its own
//! health plane: the config's `[party] health` address is the *base*,
//! and slot `s` serves `/healthz` + `/metrics` on `base port + s`, so
//! a deployment can scrape each party process individually.
//!
//! Stdout: `CONNECTED <addr>`, `PARTY HEALTH <addr>` (when configured),
//! then `PARTY COMPLETE parties=<n>` after a clean shutdown handshake.

use flips_net::{connect_with_retry, party_loop_with, NetConfig, PartyJob, PartyOptions};
use std::io::Write;
use std::net::{TcpListener, ToSocketAddrs};
use std::time::Duration;

/// Resolves slot `slot`'s health address: the configured base address
/// with the port offset by the slot number.
fn slot_health_addr(base: &str, slot: usize) -> Result<String, String> {
    let (host, port) = base
        .rsplit_once(':')
        .ok_or_else(|| format!("party health address {base:?} has no port"))?;
    let port: u32 = port.parse().map_err(|_| format!("party health port {port:?} not a number"))?;
    let port = port + slot as u32;
    if port > u16::MAX as u32 {
        return Err(format!("party health port {port} out of range for slot {slot}"));
    }
    Ok(format!("{host}:{port}"))
}

fn main() {
    if let Err(e) = run() {
        eprintln!("flips-party: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let mut resume = false;
    let mut drop_after = None;
    let mut positional = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--resume" => resume = true,
            // Fault-injection knob for the recovery smoke tests: sever
            // the link once after this many received data frames and
            // exercise the reconnect/resume path against a live server.
            "--drop-after" => {
                let n = args.next().ok_or("--drop-after needs a frame count")?;
                drop_after = Some(n.parse::<u64>().map_err(|_| "--drop-after needs a number")?);
                resume = true;
            }
            _ => positional.push(arg),
        }
    }
    let path = positional
        .first()
        .ok_or("usage: flips-party <config.toml> [slot] [--resume] [--drop-after <frames>]")?
        .clone();
    let slot: usize = positional.get(1).map_or(Ok(0), |s| s.parse())?;
    let cfg = NetConfig::parse(&std::fs::read_to_string(&path)?)?;
    if slot >= cfg.links {
        return Err(format!(
            "link slot {slot} out of range: the config declares {} link(s)",
            cfg.links
        )
        .into());
    }

    let mut link_jobs: Vec<PartyJob> = Vec::with_capacity(cfg.jobs.len());
    let mut parties = 0usize;
    for spec in &cfg.jobs {
        let (job, meta) = spec.builder()?.build()?;
        let parts = job.into_parts();
        // Pin the codec *this slot's link* speaks — the per-link
        // override when the job configures one.
        let codec = if spec.link_codecs.is_empty() {
            parts.coordinator.codec()
        } else {
            spec.link_codec(slot)
        };
        let endpoints: Vec<_> =
            parts.endpoints.into_iter().filter(|ep| ep.id() % cfg.links == slot).collect();
        if endpoints.is_empty() {
            continue;
        }
        parties += endpoints.len();
        eprintln!(
            "flips-party: slot {slot} owns {} of {} parties of job {:#018x}",
            endpoints.len(),
            spec.parties,
            meta.job_id
        );
        link_jobs.push((meta.job_id, codec, endpoints));
    }

    let addr = cfg
        .connect
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| format!("connect address {:?} resolves to nothing", cfg.connect))?;
    let health = match cfg.party_health.as_deref() {
        Some(base) => Some(TcpListener::bind(slot_health_addr(base, slot)?)?),
        None => None,
    };
    let stream = connect_with_retry(addr, Duration::from_secs(60))?;
    println!("CONNECTED {addr}");
    if let Some(h) = &health {
        println!("PARTY HEALTH {}", h.local_addr()?);
    }
    std::io::stdout().flush()?;

    let opts =
        PartyOptions { resume_addr: resume.then_some(addr), drop_after, ..PartyOptions::default() };
    let pool = party_loop_with(stream, slot as u32, link_jobs, cfg.guard.as_ref(), health, &opts)?;
    if pool.unroutable() > 0 || pool.rejected() > 0 {
        eprintln!(
            "flips-party: slot {slot} counters: unroutable={} rejected={}",
            pool.unroutable(),
            pool.rejected()
        );
    }
    println!("PARTY COMPLETE parties={parties}");
    Ok(())
}
