//! The deployable FLIPS party worker.
//!
//! `flips-party <config.toml> [slot]` reads the *same* config as
//! `flips-server`, rebuilds the same seeded jobs, keeps the endpoints
//! whose party id maps to its link slot (`p % links == slot`, default
//! slot 0), connects out to the server and serves them with the
//! readiness-driven [`flips_net::party_loop`] until the coordinator's
//! shutdown notice.
//!
//! Both sides deriving the jobs from one file is the deployment story
//! for a simulation workspace: there is no model-state bootstrap
//! endpoint, the seed *is* the bootstrap. Slot 0 additionally binds the
//! config's `[party] health` address, if any (one address can serve one
//! process).
//!
//! Stdout: `CONNECTED <addr>`, then `PARTY COMPLETE parties=<n>` after
//! a clean shutdown handshake.

use flips_net::{connect_with_retry, party_loop, NetConfig, PartyJob};
use std::io::Write;
use std::net::{TcpListener, ToSocketAddrs};
use std::time::Duration;

fn main() {
    if let Err(e) = run() {
        eprintln!("flips-party: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let path = std::env::args().nth(1).ok_or("usage: flips-party <config.toml> [slot]")?;
    let slot: usize = std::env::args().nth(2).map_or(Ok(0), |s| s.parse())?;
    let cfg = NetConfig::parse(&std::fs::read_to_string(&path)?)?;
    if slot >= cfg.links {
        return Err(format!(
            "link slot {slot} out of range: the config declares {} link(s)",
            cfg.links
        )
        .into());
    }

    let mut link_jobs: Vec<PartyJob> = Vec::with_capacity(cfg.jobs.len());
    let mut parties = 0usize;
    for spec in &cfg.jobs {
        let (job, meta) = spec.builder()?.build()?;
        let parts = job.into_parts();
        let codec = parts.coordinator.codec();
        let endpoints: Vec<_> =
            parts.endpoints.into_iter().filter(|ep| ep.id() % cfg.links == slot).collect();
        if endpoints.is_empty() {
            continue;
        }
        parties += endpoints.len();
        eprintln!(
            "flips-party: slot {slot} owns {} of {} parties of job {:#018x}",
            endpoints.len(),
            spec.parties,
            meta.job_id
        );
        link_jobs.push((meta.job_id, codec, endpoints));
    }

    let addr = cfg
        .connect
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| format!("connect address {:?} resolves to nothing", cfg.connect))?;
    let health = if slot == 0 {
        cfg.party_health.as_deref().map(TcpListener::bind).transpose()?
    } else {
        None
    };
    let stream = connect_with_retry(addr, Duration::from_secs(60))?;
    println!("CONNECTED {addr}");
    std::io::stdout().flush()?;

    let pool = party_loop(stream, slot as u32, link_jobs, cfg.guard.as_ref(), health)?;
    if pool.unroutable() > 0 || pool.rejected() > 0 {
        eprintln!(
            "flips-party: slot {slot} counters: unroutable={} rejected={}",
            pool.unroutable(),
            pool.rejected()
        );
    }
    println!("PARTY COMPLETE parties={parties}");
    Ok(())
}
