//! The deployable FLIPS coordinator.
//!
//! `flips-server <config.toml> [--checkpoint-dir <dir>] [--restore]`
//! binds the config's listen address, waits for one `flips-party`
//! process per link, runs every configured job to completion behind
//! the epoll event loop — guard plane, health plane and all — then
//! keeps the health endpoint up for final scrapes until killed.
//!
//! `--checkpoint-dir <dir>` turns on the failure-recovery plane:
//! parties may reconnect and resume mid-run, and the coordinator
//! snapshots its full round state into `<dir>/checkpoint.bin` at every
//! round boundary. `--restore` (requires `--checkpoint-dir`) loads
//! that snapshot and continues the run from it — the remaining rounds
//! replay bit-identically to the uninterrupted run.
//!
//! Stdout is line-oriented and machine-readable (the e2e smoke test
//! parses it): `LISTENING <addr>`, `HEALTH <addr>`, one `JOB <id>
//! rounds=<n> accuracy=<a>` per finished job, then `RUN COMPLETE`.

use flips_net::{render_server_metrics, request_path, serve, NetConfig, ServerOptions};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

const USAGE: &str = "usage: flips-server <config.toml> [--checkpoint-dir <dir>] [--restore]";

fn main() {
    if let Err(e) = run() {
        eprintln!("flips-server: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let mut config_path: Option<String> = None;
    let mut checkpoint_dir: Option<PathBuf> = None;
    let mut restore = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--checkpoint-dir" => {
                let dir = args.next().ok_or("--checkpoint-dir needs a directory")?;
                checkpoint_dir = Some(PathBuf::from(dir));
            }
            "--restore" => restore = true,
            _ if config_path.is_none() => config_path = Some(arg),
            _ => return Err(USAGE.into()),
        }
    }
    let path = config_path.ok_or(USAGE)?;
    if restore && checkpoint_dir.is_none() {
        return Err("--restore requires --checkpoint-dir".into());
    }
    let cfg = NetConfig::parse(&std::fs::read_to_string(&path)?)?;

    let listener = TcpListener::bind(&cfg.listen)?;
    println!("LISTENING {}", listener.local_addr()?);
    let health = cfg.health.as_deref().map(TcpListener::bind).transpose()?;
    if let Some(h) = &health {
        println!("HEALTH {}", h.local_addr()?);
    }
    std::io::stdout().flush()?;

    let mut jobs = Vec::with_capacity(cfg.jobs.len());
    let mut link_codecs = Vec::new();
    for spec in &cfg.jobs {
        let (job, meta) = spec.builder()?.build()?;
        eprintln!(
            "flips-server: job {:#018x} ({} parties, {} rounds, {:?})",
            meta.job_id, spec.parties, spec.rounds, spec.selector
        );
        jobs.push(job.into_parts());
        for (slot, &codec) in spec.link_codecs.iter().enumerate() {
            if codec != spec.codec {
                link_codecs.push((meta.job_id, slot, codec));
            }
        }
    }

    let mut opts = ServerOptions::new(cfg.links);
    opts.guard = cfg.guard;
    opts.link_codecs = link_codecs;
    if let Some(dir) = checkpoint_dir {
        // The checkpoint plane implies the resume plane: a server that
        // snapshots rounds also parks dead links for reconnects.
        opts.resume = true;
        if restore {
            let file = dir.join(flips_net::CHECKPOINT_FILE);
            let bytes = std::fs::read(&file)
                .map_err(|e| format!("cannot read checkpoint {}: {e}", file.display()))?;
            let cp = flips_fl::Checkpoint::decode(&bytes)?;
            eprintln!("flips-server: restoring from {} (tick {})", file.display(), cp.tick);
            opts.restore = Some(cp);
        }
        opts.checkpoint_dir = Some(dir);
    }
    // The health listener is cloned so scrapes keep working after the
    // run: the event loop serves it while jobs are live, the tail loop
    // below serves it once they finish.
    let in_loop_health = health.as_ref().map(TcpListener::try_clone).transpose()?;
    let outcome = serve(&listener, jobs, &opts, in_loop_health)?;

    for (id, history) in &outcome.histories {
        println!(
            "JOB {id:#018x} rounds={} accuracy={:.4}",
            history.len(),
            history.final_accuracy()
        );
    }
    println!("RUN COMPLETE");
    std::io::stdout().flush()?;

    if let Some(listener) = health {
        let transitions = outcome.breaker_transitions.len() as u64;
        let jobs = outcome.histories.len() as u64;
        let body = render_server_metrics(
            &outcome.stats,
            transitions,
            outcome.checkpoint_rounds,
            jobs,
            true,
        );
        listener.set_nonblocking(false)?;
        for conn in listener.incoming() {
            let Ok(stream) = conn else { continue };
            let _ = answer(stream, &body);
        }
    }
    Ok(())
}

/// Answers one post-run health request with the final metrics.
fn answer(stream: TcpStream, metrics: &str) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    let mut reader = BufReader::new(stream);
    let mut request = String::new();
    reader.read_line(&mut request)?;
    // Drain the headers so the peer is not mid-write when we respond.
    let mut line = String::new();
    while reader.read_line(&mut line).is_ok() && !line.trim_end().is_empty() {
        line.clear();
    }
    let (status, body) = match request_path(request.as_bytes()).as_deref() {
        Some("/healthz") => ("200 OK", "ok\n".to_string()),
        Some("/metrics") => ("200 OK", metrics.to_string()),
        _ => ("404 Not Found", "not found\n".to_string()),
    };
    let mut stream = reader.into_inner();
    write!(
        stream,
        "HTTP/1.0 {status}\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()?;
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = std::io::copy(&mut stream, &mut std::io::sink());
    Ok(())
}
