//! The deployable FLIPS coordinator.
//!
//! `flips-server <config.toml>` binds the config's listen address,
//! waits for one `flips-party` process per link, runs every configured
//! job to completion behind the epoll event loop — guard plane, health
//! plane and all — then keeps the health endpoint up for final scrapes
//! until killed.
//!
//! Stdout is line-oriented and machine-readable (the e2e smoke test
//! parses it): `LISTENING <addr>`, `HEALTH <addr>`, one `JOB <id>
//! rounds=<n> accuracy=<a>` per finished job, then `RUN COMPLETE`.

use flips_net::{render_server_metrics, request_path, serve, NetConfig, ServerOptions};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

fn main() {
    if let Err(e) = run() {
        eprintln!("flips-server: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let path = std::env::args().nth(1).ok_or("usage: flips-server <config.toml>")?;
    let cfg = NetConfig::parse(&std::fs::read_to_string(&path)?)?;

    let listener = TcpListener::bind(&cfg.listen)?;
    println!("LISTENING {}", listener.local_addr()?);
    let health = cfg.health.as_deref().map(TcpListener::bind).transpose()?;
    if let Some(h) = &health {
        println!("HEALTH {}", h.local_addr()?);
    }
    std::io::stdout().flush()?;

    let mut jobs = Vec::with_capacity(cfg.jobs.len());
    let mut link_codecs = Vec::new();
    for spec in &cfg.jobs {
        let (job, meta) = spec.builder()?.build()?;
        eprintln!(
            "flips-server: job {:#018x} ({} parties, {} rounds, {:?})",
            meta.job_id, spec.parties, spec.rounds, spec.selector
        );
        jobs.push(job.into_parts());
        for (slot, &codec) in spec.link_codecs.iter().enumerate() {
            if codec != spec.codec {
                link_codecs.push((meta.job_id, slot, codec));
            }
        }
    }

    let mut opts = ServerOptions::new(cfg.links);
    opts.guard = cfg.guard;
    opts.link_codecs = link_codecs;
    // The health listener is cloned so scrapes keep working after the
    // run: the event loop serves it while jobs are live, the tail loop
    // below serves it once they finish.
    let in_loop_health = health.as_ref().map(TcpListener::try_clone).transpose()?;
    let outcome = serve(&listener, jobs, &opts, in_loop_health)?;

    for (id, history) in &outcome.histories {
        println!(
            "JOB {id:#018x} rounds={} accuracy={:.4}",
            history.len(),
            history.final_accuracy()
        );
    }
    println!("RUN COMPLETE");
    std::io::stdout().flush()?;

    if let Some(listener) = health {
        let transitions = outcome.breaker_transitions.len() as u64;
        let jobs = outcome.histories.len() as u64;
        let body = render_server_metrics(&outcome.stats, transitions, jobs, true);
        listener.set_nonblocking(false)?;
        for conn in listener.incoming() {
            let Ok(stream) = conn else { continue };
            let _ = answer(stream, &body);
        }
    }
    Ok(())
}

/// Answers one post-run health request with the final metrics.
fn answer(stream: TcpStream, metrics: &str) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    let mut reader = BufReader::new(stream);
    let mut request = String::new();
    reader.read_line(&mut request)?;
    // Drain the headers so the peer is not mid-write when we respond.
    let mut line = String::new();
    while reader.read_line(&mut line).is_ok() && !line.trim_end().is_empty() {
        line.clear();
    }
    let (status, body) = match request_path(request.as_bytes()).as_deref() {
        Some("/healthz") => ("200 OK", "ok\n".to_string()),
        Some("/metrics") => ("200 OK", metrics.to_string()),
        _ => ("404 Not Found", "not found\n".to_string()),
    };
    let mut stream = reader.into_inner();
    write!(
        stream,
        "HTTP/1.0 {status}\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()?;
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = std::io::copy(&mut stream, &mut std::io::sink());
    Ok(())
}
