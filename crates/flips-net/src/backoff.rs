//! Deterministic reconnect pacing: capped exponential backoff with
//! seeded jitter.
//!
//! Both places the socket runtime dials a peer — the party binary's
//! first connect (racing the server to `listen(2)`) and the reconnect
//! loop after a link dies mid-run — need the same policy: retry
//! quickly at first, back off geometrically so a dead server is not
//! hammered, and jitter the delays so a fleet of parties whose links
//! died together does not reconnect as a thundering herd. Everything
//! here is a pure function of `(base, cap, seed, attempt)`, so a retry
//! schedule can be asserted against a scripted clock without touching
//! a socket or a real timer.
//!
//! [`Backoff`] produces the delays; [`retry`] drives an operation over
//! them against any [`RetryClock`] (the real [`SystemClock`] in the
//! binaries, a scripted one in tests).

use std::time::Duration;

/// Capped exponential backoff with deterministic jitter: attempt `n`
/// sleeps a seeded draw from `[d/2, d]` where
/// `d = min(cap, base · 2^n)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    seed: u64,
    attempt: u32,
}

impl Backoff {
    /// A schedule starting at `base` and capping at `cap`, with jitter
    /// drawn from `seed`. A zero `base` degenerates to zero delays
    /// (spin), which is what scripted in-process tests want.
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Self {
        Backoff { base, cap: cap.max(base), seed, attempt: 0 }
    }

    /// The delay for `attempt` (0-based) — a pure function, the whole
    /// point: replaying a seed replays the exact reconnect pacing.
    pub fn delay_for(base: Duration, cap: Duration, seed: u64, attempt: u32) -> Duration {
        let base_ns = base.as_nanos().min(u128::from(u64::MAX)) as u64;
        let cap_ns = cap.as_nanos().min(u128::from(u64::MAX)) as u64;
        let exp = base_ns.saturating_shl(attempt.min(63));
        let full = exp.min(cap_ns.max(base_ns));
        if full == 0 {
            return Duration::ZERO;
        }
        // Jitter in [full/2, full]: never less than half the nominal
        // delay (so backoff still backs off), never more (so the cap
        // holds).
        let half = full / 2;
        let jitter = splitmix64(seed ^ u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            % (full - half + 1);
        Duration::from_nanos(half + jitter)
    }

    /// Returns the next delay and advances the attempt counter.
    pub fn next_delay(&mut self) -> Duration {
        let d = Self::delay_for(self.base, self.cap, self.seed, self.attempt);
        self.attempt = self.attempt.saturating_add(1);
        d
    }

    /// Attempts drawn so far.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Resets the schedule to attempt 0 (after a successful connect, so
    /// the *next* outage starts fast again).
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

/// `u64::checked_shl` that saturates instead of wrapping — 2^attempt
/// growth must clamp, not overflow.
trait SaturatingShl {
    fn saturating_shl(self, rhs: u32) -> u64;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, rhs: u32) -> u64 {
        if self == 0 {
            return 0;
        }
        if rhs >= self.leading_zeros() {
            u64::MAX
        } else {
            self << rhs
        }
    }
}

/// The clock a [`retry`] loop runs against: elapsed time since the
/// loop began, and a way to wait. Production uses [`SystemClock`];
/// tests script both.
pub trait RetryClock {
    /// Time elapsed since the retry loop started.
    fn elapsed(&self) -> Duration;
    /// Waits for `delay` (or pretends to).
    fn sleep(&mut self, delay: Duration);
}

/// The real clock: `Instant` + `thread::sleep`.
#[derive(Debug)]
pub struct SystemClock(std::time::Instant);

impl SystemClock {
    /// Starts the clock now.
    pub fn start() -> Self {
        SystemClock(std::time::Instant::now())
    }
}

impl RetryClock for SystemClock {
    fn elapsed(&self) -> Duration {
        self.0.elapsed()
    }
    fn sleep(&mut self, delay: Duration) {
        std::thread::sleep(delay);
    }
}

/// Drives `op` under `backoff` until it succeeds or `budget` elapses
/// on `clock`, sleeping the schedule's delay between attempts (clipped
/// so the loop never sleeps past its own deadline).
///
/// # Errors
///
/// The last error from `op` once the budget is spent.
pub fn retry<T, E>(
    budget: Duration,
    backoff: &mut Backoff,
    clock: &mut impl RetryClock,
    mut op: impl FnMut() -> Result<T, E>,
) -> Result<T, E> {
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) => {
                let elapsed = clock.elapsed();
                if elapsed >= budget {
                    return Err(e);
                }
                let delay = backoff.next_delay().min(budget - elapsed);
                clock.sleep(delay);
            }
        }
    }
}

/// SplitMix64 — the same finalizer the chaos schedule uses; enough
/// mixing that consecutive attempts draw independent-looking jitter.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: Duration = Duration::from_millis(1);

    /// A scripted clock: `sleep` advances `elapsed` instantly and logs
    /// every delay, so a whole retry schedule asserts in microseconds.
    struct ScriptedClock {
        now: Duration,
        slept: Vec<Duration>,
    }

    impl ScriptedClock {
        fn new() -> Self {
            ScriptedClock { now: Duration::ZERO, slept: Vec::new() }
        }
    }

    impl RetryClock for ScriptedClock {
        fn elapsed(&self) -> Duration {
            self.now
        }
        fn sleep(&mut self, delay: Duration) {
            self.now += delay;
            self.slept.push(delay);
        }
    }

    #[test]
    fn delays_are_pure_and_seed_dependent() {
        for attempt in 0..20 {
            assert_eq!(
                Backoff::delay_for(10 * MS, 500 * MS, 7, attempt),
                Backoff::delay_for(10 * MS, 500 * MS, 7, attempt),
            );
        }
        let a: Vec<_> = (0..8).map(|n| Backoff::delay_for(10 * MS, 500 * MS, 1, n)).collect();
        let b: Vec<_> = (0..8).map(|n| Backoff::delay_for(10 * MS, 500 * MS, 2, n)).collect();
        assert_ne!(a, b, "different seeds must jitter differently");
    }

    #[test]
    fn delays_grow_geometrically_within_jitter_bounds() {
        let base = 10 * MS;
        let cap = 500 * MS;
        for attempt in 0..32 {
            let nominal = (base * 2u32.saturating_pow(attempt.min(16))).min(cap).max(base);
            let d = Backoff::delay_for(base, cap, 42, attempt);
            assert!(d >= nominal / 2, "attempt {attempt}: {d:?} below half of {nominal:?}");
            assert!(d <= nominal, "attempt {attempt}: {d:?} above nominal {nominal:?}");
        }
    }

    #[test]
    fn the_cap_holds_forever() {
        let cap = 200 * MS;
        for attempt in [0, 5, 31, 63, 64, 1000, u32::MAX] {
            assert!(Backoff::delay_for(10 * MS, cap, 9, attempt) <= cap);
        }
    }

    #[test]
    fn zero_base_never_sleeps() {
        for attempt in 0..8 {
            assert_eq!(
                Backoff::delay_for(Duration::ZERO, Duration::ZERO, 3, attempt),
                Duration::ZERO
            );
        }
    }

    #[test]
    fn retry_succeeds_after_scripted_failures() {
        let mut backoff = Backoff::new(10 * MS, 500 * MS, 7);
        let mut clock = ScriptedClock::new();
        let mut calls = 0;
        let result: Result<u32, &str> =
            retry(Duration::from_secs(60), &mut backoff, &mut clock, || {
                calls += 1;
                if calls < 4 {
                    Err("refused")
                } else {
                    Ok(99)
                }
            });
        assert_eq!(result, Ok(99));
        assert_eq!(calls, 4);
        assert_eq!(clock.slept.len(), 3, "one sleep per failure");
        // The scripted sleeps are exactly the schedule's first three
        // draws — the loop is a pure function of (seed, failures).
        for (n, d) in clock.slept.iter().enumerate() {
            assert_eq!(*d, Backoff::delay_for(10 * MS, 500 * MS, 7, n as u32));
        }
    }

    #[test]
    fn retry_returns_the_last_error_when_the_budget_is_spent() {
        let mut backoff = Backoff::new(10 * MS, 100 * MS, 7);
        let mut clock = ScriptedClock::new();
        let mut calls = 0u32;
        let result: Result<(), u32> = retry(300 * MS, &mut backoff, &mut clock, || {
            calls += 1;
            Err(calls)
        });
        assert_eq!(result, Err(calls), "the final attempt's error surfaces");
        assert!(clock.now <= 300 * MS + 100 * MS, "never sleeps far past the budget");
        assert!(calls > 1, "budget allows several attempts");
    }

    #[test]
    fn sleeps_are_clipped_to_the_remaining_budget() {
        let mut backoff = Backoff::new(100 * MS, 400 * MS, 1);
        let mut clock = ScriptedClock::new();
        let budget = 150 * MS;
        let _: Result<(), &str> = retry(budget, &mut backoff, &mut clock, || Err("down"));
        assert_eq!(clock.now, budget, "clipped sleeps land exactly on the deadline");
    }

    #[test]
    fn reset_restarts_the_schedule() {
        let mut b = Backoff::new(10 * MS, 500 * MS, 7);
        let first = b.next_delay();
        let _ = b.next_delay();
        assert_eq!(b.attempts(), 2);
        b.reset();
        assert_eq!(b.attempts(), 0);
        assert_eq!(b.next_delay(), first);
    }
}
