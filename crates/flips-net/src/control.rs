//! The socket runtime's link-control protocol.
//!
//! Control frames share the length-prefixed stream with data frames and
//! are distinguished by their destination word: data frames carry a
//! party id or [`AGGREGATOR_DEST`](flips_fl::message::AGGREGATOR_DEST)
//! (`u64::MAX`) in the first eight bytes, control frames carry
//! [`NET_CONTROL_DEST`] (`u64::MAX - 1`). Both sides strip control
//! frames *below* the [`Transport`](flips_fl::Transport) seam, so the
//! protocol state machines — and the chaos schedule's per-link frame
//! indices — see exactly the data-frame sequences the in-memory sharded
//! runtime sees.
//!
//! Four messages exist:
//!
//! - [`ControlMsg::Hello`] — the first frame on every party→server
//!   connection, naming the link slot (shard) the connection serves.
//!   Accept order over TCP is nondeterministic; the Hello makes link
//!   identity explicit instead of accidental.
//! - [`ControlMsg::StatusReq`] / [`ControlMsg::Status`] — the
//!   quiescence probe (see [`crate::server`]'s module docs). A party
//!   answers a probe only after fully pumping its pool, so per-link TCP
//!   FIFO turns the reply into a barrier: every data frame the party
//!   sent before the reply is already processed by the coordinator when
//!   the reply is read.
//! - [`ControlMsg::Shutdown`] — the coordinator's end-of-run notice.

use flips_fl::FlError;

/// Destination word marking a control frame. One below
/// [`flips_fl::message::AGGREGATOR_DEST`], far outside any party-id
/// space a roster can produce.
pub const NET_CONTROL_DEST: u64 = u64::MAX - 1;

const OP_HELLO: u8 = 0x01;
const OP_STATUS_REQ: u8 = 0x02;
const OP_STATUS: u8 = 0x03;
const OP_SHUTDOWN: u8 = 0x04;

/// A link-control message (see the [module docs](self)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlMsg {
    /// Party → server: this connection serves link slot `shard`.
    Hello {
        /// The link slot, `0..links`.
        shard: u32,
    },
    /// Server → party: report your frame counters (probe `seq`).
    StatusReq {
        /// Probe sequence number, echoed in the reply.
        seq: u64,
    },
    /// Party → server: counter snapshot taken *after* a full pool pump.
    Status {
        /// The probe this answers.
        seq: u64,
        /// Data frames the party has received on this link so far.
        received: u64,
        /// Data frames the party has sent on this link so far.
        sent: u64,
    },
    /// Server → party: the run is over; drain and exit.
    Shutdown,
}

/// Whether a frame is a control frame (by destination word).
pub fn is_control_frame(frame: &[u8]) -> bool {
    flips_fl::message::frame_dest(frame) == Some(NET_CONTROL_DEST)
}

impl ControlMsg {
    /// Encodes into a wire frame (destination word + opcode + fields,
    /// all little-endian). The length prefix is the stream transport's
    /// job, as for data frames.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(33);
        out.extend_from_slice(&NET_CONTROL_DEST.to_le_bytes());
        match self {
            ControlMsg::Hello { shard } => {
                out.push(OP_HELLO);
                out.extend_from_slice(&shard.to_le_bytes());
            }
            ControlMsg::StatusReq { seq } => {
                out.push(OP_STATUS_REQ);
                out.extend_from_slice(&seq.to_le_bytes());
            }
            ControlMsg::Status { seq, received, sent } => {
                out.push(OP_STATUS);
                out.extend_from_slice(&seq.to_le_bytes());
                out.extend_from_slice(&received.to_le_bytes());
                out.extend_from_slice(&sent.to_le_bytes());
            }
            ControlMsg::Shutdown => out.push(OP_SHUTDOWN),
        }
        out
    }

    /// Decodes a control frame ([`is_control_frame`] must already hold).
    ///
    /// # Errors
    ///
    /// [`FlError::Codec`] for a truncated frame or unknown opcode — a
    /// peer speaking a different protocol revision, not recoverable.
    pub fn decode(frame: &[u8]) -> Result<ControlMsg, FlError> {
        let body = frame
            .get(8..)
            .filter(|b| !b.is_empty())
            .ok_or_else(|| FlError::Codec("control frame missing opcode".into()))?;
        let u64_at = |off: usize| -> Result<u64, FlError> {
            body.get(off..off + 8)
                .map(|b| u64::from_le_bytes(b.try_into().expect("8-byte slice")))
                .ok_or_else(|| FlError::Codec("control frame truncated".into()))
        };
        match body[0] {
            OP_HELLO => {
                let shard = body
                    .get(1..5)
                    .map(|b| u32::from_le_bytes(b.try_into().expect("4-byte slice")))
                    .ok_or_else(|| FlError::Codec("hello frame truncated".into()))?;
                Ok(ControlMsg::Hello { shard })
            }
            OP_STATUS_REQ => Ok(ControlMsg::StatusReq { seq: u64_at(1)? }),
            OP_STATUS => {
                Ok(ControlMsg::Status { seq: u64_at(1)?, received: u64_at(9)?, sent: u64_at(17)? })
            }
            OP_SHUTDOWN => Ok(ControlMsg::Shutdown),
            op => Err(FlError::Codec(format!("unknown control opcode {op:#04x}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_messages_round_trip() {
        for msg in [
            ControlMsg::Hello { shard: 3 },
            ControlMsg::StatusReq { seq: 42 },
            ControlMsg::Status { seq: 42, received: 7, sent: 9 },
            ControlMsg::Shutdown,
        ] {
            let wire = msg.encode();
            assert!(is_control_frame(&wire));
            assert_eq!(ControlMsg::decode(&wire).unwrap(), msg);
        }
    }

    #[test]
    fn data_frames_are_not_control_frames() {
        let data = 5u64.to_le_bytes().to_vec();
        assert!(!is_control_frame(&data));
        assert!(!is_control_frame(&u64::MAX.to_le_bytes()));
        assert!(!is_control_frame(&[1, 2, 3]));
    }

    #[test]
    fn truncated_and_unknown_control_frames_are_rejected() {
        assert!(ControlMsg::decode(&NET_CONTROL_DEST.to_le_bytes()).is_err());
        let mut unknown = NET_CONTROL_DEST.to_le_bytes().to_vec();
        unknown.push(0x7F);
        assert!(ControlMsg::decode(&unknown).is_err());
        let mut short = ControlMsg::Status { seq: 1, received: 2, sent: 3 }.encode();
        short.truncate(20);
        assert!(ControlMsg::decode(&short).is_err());
    }
}
