//! The socket runtime's link-control protocol.
//!
//! Control frames share the length-prefixed stream with data frames and
//! are distinguished by their destination word: data frames carry a
//! party id or [`AGGREGATOR_DEST`](flips_fl::message::AGGREGATOR_DEST)
//! (`u64::MAX`) in the first eight bytes, control frames carry
//! [`NET_CONTROL_DEST`] (`u64::MAX - 1`). Both sides strip control
//! frames *below* the [`Transport`](flips_fl::Transport) seam, so the
//! protocol state machines — and the chaos schedule's per-link frame
//! indices — see exactly the data-frame sequences the in-memory sharded
//! runtime sees.
//!
//! Six messages exist:
//!
//! - [`ControlMsg::Hello`] — the first frame on every party→server
//!   connection, naming the link slot (shard) the connection serves.
//!   Accept order over TCP is nondeterministic; the Hello makes link
//!   identity explicit instead of accidental. A fresh connection sends
//!   session token 0; a *reconnecting* party presents the token its
//!   [`ControlMsg::HelloAck`] issued plus its data-frame counters, and
//!   the server re-attaches the connection to the parked link state and
//!   retransmits exactly the frames the party never received.
//! - [`ControlMsg::HelloAck`] — the server's answer to a Hello: the
//!   session token to present on reconnect, the server's own data
//!   counters (the party retransmits its unacknowledged frames from
//!   `received` on), whether the session is fresh, and how many
//!   [`ControlMsg::RefSync`] frames follow.
//! - [`ControlMsg::RefSync`] — server→party delta-codec reference
//!   seeding, used after a checkpoint restore: the restored server's
//!   per-link codec references are pushed to the (fresh) party process
//!   so both wire ends re-key to the same reference model before the
//!   first data frame.
//! - [`ControlMsg::StatusReq`] / [`ControlMsg::Status`] — the
//!   quiescence probe (see [`crate::server`]'s module docs). A party
//!   answers a probe only after fully pumping its pool, so per-link TCP
//!   FIFO turns the reply into a barrier: every data frame the party
//!   sent before the reply is already processed by the coordinator when
//!   the reply is read. Both directions carry the sender's data
//!   counters, which double as retransmit acknowledgements: each side
//!   prunes its retained-frame queue to the peer's `received`.
//! - [`ControlMsg::Shutdown`] — the coordinator's end-of-run notice.

use flips_fl::FlError;

/// Destination word marking a control frame. One below
/// [`flips_fl::message::AGGREGATOR_DEST`], far outside any party-id
/// space a roster can produce.
pub const NET_CONTROL_DEST: u64 = u64::MAX - 1;

const OP_HELLO: u8 = 0x01;
const OP_STATUS_REQ: u8 = 0x02;
const OP_STATUS: u8 = 0x03;
const OP_SHUTDOWN: u8 = 0x04;
const OP_HELLO_ACK: u8 = 0x05;
const OP_REF_SYNC: u8 = 0x06;

/// A link-control message (see the [module docs](self)).
#[derive(Debug, Clone, PartialEq)]
pub enum ControlMsg {
    /// Party → server: this connection serves link slot `shard`. A
    /// nonzero `token` claims an existing session (reconnect); the
    /// counters tell the server what the party has already seen.
    Hello {
        /// The link slot, `0..links`.
        shard: u32,
        /// Session token: 0 for a fresh connection, the
        /// [`ControlMsg::HelloAck`]-issued token on reconnect.
        token: u64,
        /// Data frames this party has received on the link so far.
        received: u64,
        /// Data frames this party has sent on the link so far.
        sent: u64,
    },
    /// Server → party: the session handshake answer.
    HelloAck {
        /// The session token to present when reconnecting.
        token: u64,
        /// Data frames the server has received on this link so far —
        /// the party retransmits its retained frames from here on.
        received: u64,
        /// Data frames the server has sent on this link so far.
        sent: u64,
        /// Whether this is a fresh session (`true`) or a resumed one.
        fresh: bool,
        /// How many [`ControlMsg::RefSync`] frames follow immediately.
        ref_syncs: u32,
    },
    /// Server → party: seed the delta-codec reference for `job` (after
    /// a checkpoint restore, so a fresh party decodes the restored
    /// server's deltas).
    RefSync {
        /// The job whose codec reference is being seeded.
        job: u64,
        /// The round the reference was broadcast in.
        round: u64,
        /// The reference model parameters.
        params: Vec<f32>,
    },
    /// Server → party: report your frame counters (probe `seq`). The
    /// server's own counters ride along as retransmit
    /// acknowledgements.
    StatusReq {
        /// Probe sequence number, echoed in the reply.
        seq: u64,
        /// Data frames the server has received on this link so far.
        received: u64,
        /// Data frames the server has sent on this link so far.
        sent: u64,
    },
    /// Party → server: counter snapshot taken *after* a full pool pump.
    Status {
        /// The probe this answers.
        seq: u64,
        /// Data frames the party has received on this link so far.
        received: u64,
        /// Data frames the party has sent on this link so far.
        sent: u64,
    },
    /// Server → party: the run is over; drain and exit.
    Shutdown,
}

/// Whether a frame is a control frame (by destination word).
pub fn is_control_frame(frame: &[u8]) -> bool {
    flips_fl::message::frame_dest(frame) == Some(NET_CONTROL_DEST)
}

impl ControlMsg {
    /// Encodes into a wire frame (destination word + opcode + fields,
    /// all little-endian). The length prefix is the stream transport's
    /// job, as for data frames.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(&NET_CONTROL_DEST.to_le_bytes());
        match self {
            ControlMsg::Hello { shard, token, received, sent } => {
                out.push(OP_HELLO);
                out.extend_from_slice(&shard.to_le_bytes());
                out.extend_from_slice(&token.to_le_bytes());
                out.extend_from_slice(&received.to_le_bytes());
                out.extend_from_slice(&sent.to_le_bytes());
            }
            ControlMsg::HelloAck { token, received, sent, fresh, ref_syncs } => {
                out.push(OP_HELLO_ACK);
                out.extend_from_slice(&token.to_le_bytes());
                out.extend_from_slice(&received.to_le_bytes());
                out.extend_from_slice(&sent.to_le_bytes());
                out.push(u8::from(*fresh));
                out.extend_from_slice(&ref_syncs.to_le_bytes());
            }
            ControlMsg::RefSync { job, round, params } => {
                out.push(OP_REF_SYNC);
                out.extend_from_slice(&job.to_le_bytes());
                out.extend_from_slice(&round.to_le_bytes());
                out.extend_from_slice(&(params.len() as u32).to_le_bytes());
                for p in params {
                    out.extend_from_slice(&p.to_bits().to_le_bytes());
                }
            }
            ControlMsg::StatusReq { seq, received, sent } => {
                out.push(OP_STATUS_REQ);
                out.extend_from_slice(&seq.to_le_bytes());
                out.extend_from_slice(&received.to_le_bytes());
                out.extend_from_slice(&sent.to_le_bytes());
            }
            ControlMsg::Status { seq, received, sent } => {
                out.push(OP_STATUS);
                out.extend_from_slice(&seq.to_le_bytes());
                out.extend_from_slice(&received.to_le_bytes());
                out.extend_from_slice(&sent.to_le_bytes());
            }
            ControlMsg::Shutdown => out.push(OP_SHUTDOWN),
        }
        out
    }

    /// Decodes a control frame ([`is_control_frame`] must already hold).
    ///
    /// # Errors
    ///
    /// [`FlError::Codec`] for a truncated frame or unknown opcode — a
    /// peer speaking a different protocol revision, not recoverable.
    pub fn decode(frame: &[u8]) -> Result<ControlMsg, FlError> {
        let body = frame
            .get(8..)
            .filter(|b| !b.is_empty())
            .ok_or_else(|| FlError::Codec("control frame missing opcode".into()))?;
        let u64_at = |off: usize| -> Result<u64, FlError> {
            body.get(off..off + 8)
                .map(|b| u64::from_le_bytes(b.try_into().expect("8-byte slice")))
                .ok_or_else(|| FlError::Codec("control frame truncated".into()))
        };
        let u32_at = |off: usize| -> Result<u32, FlError> {
            body.get(off..off + 4)
                .map(|b| u32::from_le_bytes(b.try_into().expect("4-byte slice")))
                .ok_or_else(|| FlError::Codec("control frame truncated".into()))
        };
        match body[0] {
            OP_HELLO => Ok(ControlMsg::Hello {
                shard: u32_at(1)?,
                token: u64_at(5)?,
                received: u64_at(13)?,
                sent: u64_at(21)?,
            }),
            OP_HELLO_ACK => {
                let fresh = match body
                    .get(25)
                    .ok_or_else(|| FlError::Codec("hello-ack frame truncated".into()))?
                {
                    0 => false,
                    1 => true,
                    b => {
                        return Err(FlError::Codec(format!("hello-ack fresh byte {b} not 0/1")));
                    }
                };
                Ok(ControlMsg::HelloAck {
                    token: u64_at(1)?,
                    received: u64_at(9)?,
                    sent: u64_at(17)?,
                    fresh,
                    ref_syncs: u32_at(26)?,
                })
            }
            OP_REF_SYNC => {
                let job = u64_at(1)?;
                let round = u64_at(9)?;
                let len = u32_at(17)? as usize;
                let raw = body
                    .get(21..)
                    .ok_or_else(|| FlError::Codec("ref-sync frame truncated".into()))?;
                if raw.len() != len * 4 {
                    return Err(FlError::Codec(format!(
                        "ref-sync claims {len} params but carries {} bytes",
                        raw.len()
                    )));
                }
                let params = raw
                    .chunks_exact(4)
                    .map(|c| f32::from_bits(u32::from_le_bytes(c.try_into().expect("4 bytes"))))
                    .collect();
                Ok(ControlMsg::RefSync { job, round, params })
            }
            OP_STATUS_REQ => Ok(ControlMsg::StatusReq {
                seq: u64_at(1)?,
                received: u64_at(9)?,
                sent: u64_at(17)?,
            }),
            OP_STATUS => {
                Ok(ControlMsg::Status { seq: u64_at(1)?, received: u64_at(9)?, sent: u64_at(17)? })
            }
            OP_SHUTDOWN => Ok(ControlMsg::Shutdown),
            op => Err(FlError::Codec(format!("unknown control opcode {op:#04x}"))),
        }
    }
}

/// The session token the server issues for link `slot`: a nonzero pure
/// function of the slot, so a deterministic run issues deterministic
/// tokens (token 0 is reserved to mean "fresh connection" in a
/// [`ControlMsg::Hello`]).
pub fn session_token(slot: u32) -> u64 {
    let mut x = 0x5E55_1011_u64 ^ u64::from(slot);
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_messages_round_trip() {
        for msg in [
            ControlMsg::Hello { shard: 3, token: 0, received: 0, sent: 0 },
            ControlMsg::Hello { shard: 1, token: 0xDEAD, received: 42, sent: 17 },
            ControlMsg::HelloAck { token: 7, received: 3, sent: 9, fresh: true, ref_syncs: 0 },
            ControlMsg::HelloAck { token: 7, received: 3, sent: 9, fresh: false, ref_syncs: 2 },
            ControlMsg::RefSync { job: 9, round: 4, params: vec![1.0, -2.5, f32::NAN] },
            ControlMsg::RefSync { job: 9, round: 0, params: Vec::new() },
            ControlMsg::StatusReq { seq: 42, received: 5, sent: 6 },
            ControlMsg::Status { seq: 42, received: 7, sent: 9 },
            ControlMsg::Shutdown,
        ] {
            let wire = msg.encode();
            assert!(is_control_frame(&wire));
            let decoded = ControlMsg::decode(&wire).unwrap();
            // NaN payloads compare bit-wise through re-encoding.
            assert_eq!(decoded.encode(), wire);
        }
    }

    #[test]
    fn data_frames_are_not_control_frames() {
        let data = 5u64.to_le_bytes().to_vec();
        assert!(!is_control_frame(&data));
        assert!(!is_control_frame(&u64::MAX.to_le_bytes()));
        assert!(!is_control_frame(&[1, 2, 3]));
    }

    #[test]
    fn truncated_and_unknown_control_frames_are_rejected() {
        assert!(ControlMsg::decode(&NET_CONTROL_DEST.to_le_bytes()).is_err());
        let mut unknown = NET_CONTROL_DEST.to_le_bytes().to_vec();
        unknown.push(0x7F);
        assert!(ControlMsg::decode(&unknown).is_err());
        for msg in [
            ControlMsg::Status { seq: 1, received: 2, sent: 3 },
            ControlMsg::Hello { shard: 1, token: 2, received: 3, sent: 4 },
            ControlMsg::HelloAck { token: 1, received: 2, sent: 3, fresh: true, ref_syncs: 4 },
            ControlMsg::RefSync { job: 1, round: 2, params: vec![1.0, 2.0] },
        ] {
            let mut short = msg.encode();
            short.truncate(short.len() - 1);
            assert!(ControlMsg::decode(&short).is_err(), "truncated {msg:?} must not decode");
        }
    }

    #[test]
    fn ref_sync_length_must_match_the_payload() {
        let mut wire = ControlMsg::RefSync { job: 1, round: 2, params: vec![1.0, 2.0] }.encode();
        // Claim three params while carrying two.
        wire[8 + 17..8 + 21].copy_from_slice(&3u32.to_le_bytes());
        assert!(ControlMsg::decode(&wire).is_err());
    }

    #[test]
    fn hello_ack_fresh_byte_is_strict() {
        let mut wire =
            ControlMsg::HelloAck { token: 1, received: 2, sent: 3, fresh: true, ref_syncs: 0 }
                .encode();
        wire[8 + 25] = 2;
        assert!(ControlMsg::decode(&wire).is_err());
    }

    #[test]
    fn session_tokens_are_nonzero_and_distinct_per_slot() {
        let tokens: Vec<u64> = (0..64).map(session_token).collect();
        assert!(tokens.iter().all(|&t| t != 0), "token 0 means fresh");
        let mut unique = tokens.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), tokens.len(), "slots must not share tokens");
        assert_eq!(session_token(3), session_token(3), "tokens are deterministic");
    }
}
