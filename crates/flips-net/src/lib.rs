//! Readiness-driven socket runtime for FLIPS: the sans-IO protocol
//! core served over real TCP by an epoll event loop.
//!
//! Every other driver in this workspace — [`flips_fl::FlJob`]'s
//! in-process loop, [`flips_fl::run_lockstep`], the threaded
//! [`flips_fl::run_sharded`] — moves frames through memory. This crate
//! moves the *same* frames through the kernel: length-prefixed TCP
//! links between a coordinator process (`flips-server`) and party
//! worker processes (`flips-party`), multiplexed onto one
//! [`mio`]-style epoll selector per side, with write-interest-driven
//! flushing instead of spin-polling for backpressure.
//!
//! The determinism contract carries over unchanged. Simulated time
//! stays the clock, and the coordinator only advances it when the wire
//! is provably quiet — established by the FIFO status-probe
//! [control protocol](control) rather than by lockstep turn-taking.
//! Because control frames are stripped below the chaos/guard seam, a
//! seeded run over sockets replays the single-threaded goldens (and
//! seeded chaos histories) bit-identically; the equivalence suite in
//! `tests/` holds this against every selector.
//!
//! Layering, bottom up:
//!
//! - [`control`] — the link-level control frames (Hello, quiescence
//!   probes, shutdown), invisible above the framing layer.
//! - [`link`] — [`CoordLink`]/[`PartyLink`] wrap a nonblocking
//!   [`flips_fl::StreamTransport`] and speak the control protocol;
//!   [`SocketRouter`] fans a [`flips_fl::MultiJobDriver`] out across
//!   links (party `p` ↔ link `p % links`).
//! - [`server`] / [`party`] — the two event loops.
//! - [`metrics`] — Prometheus text exposition + the `/healthz` and
//!   `/metrics` plane, served from the same selector.
//! - [`backoff`] — deterministic reconnect pacing: capped exponential
//!   backoff with seeded jitter, shared by first connects and
//!   mid-run link resumption.
//! - [`config`] — the TOML deployment config both binaries read.
//! - [`runtime`] — [`run_socket`], the in-process harness wiring both
//!   loops over loopback for tests and benches.

#![warn(missing_docs)]

pub mod backoff;
pub mod config;
pub mod control;
pub mod link;
pub mod metrics;
pub mod party;
pub mod runtime;
pub mod server;

pub use backoff::{retry, Backoff, RetryClock, SystemClock};
pub use config::{JobSpec, NetConfig};
pub use link::{CoordLink, HelloInfo, PartyLink, SocketRouter};
pub use metrics::{
    render_party_metrics, render_server_metrics, request_path, HealthPlane, PartySnapshot,
};
pub use party::{party_loop, party_loop_with, PartyJob, PartyOptions};
pub use runtime::{connect_with_retry, run_socket, SocketOptions, SocketOutcome};
pub use server::{serve, ServerOptions, ServerOutcome, CHECKPOINT_FILE};
