//! The health plane: Prometheus text exposition of the runtime's
//! counters, served over HTTP by the same event loop that moves frames.
//!
//! Two endpoints exist on the health listener:
//!
//! - `/healthz` — liveness, always `200 ok`;
//! - `/metrics` — Prometheus [text exposition format] (version 0.0.4):
//!   `# HELP` / `# TYPE` comment pair, then one sample per line.
//!
//! Rendering is a pure function of a counter snapshot
//! ([`render_server_metrics`] / [`render_party_metrics`]), so the
//! format is unit-testable without a socket anywhere in sight. The
//! [`HealthPlane`] owns the listener and its connections and plugs into
//! the event loop by token range: everything at or above
//! [`HealthPlane::BASE_TOKEN`] is health traffic.
//!
//! [text exposition format]: https://prometheus.io/docs/instrumenting/exposition_formats/

use crate::link::net_err;
use flips_fl::{DriverStats, FlError};
use mio::{Interest, Registry, Token};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};

/// Appends one metric: `# HELP` / `# TYPE` comments plus the sample.
fn metric(out: &mut String, name: &str, kind: &str, help: &str, value: u64) {
    out.push_str("# HELP ");
    out.push_str(name);
    out.push(' ');
    out.push_str(help);
    out.push_str("\n# TYPE ");
    out.push_str(name);
    out.push(' ');
    out.push_str(kind);
    out.push('\n');
    out.push_str(name);
    out.push(' ');
    out.push_str(&value.to_string());
    out.push('\n');
}

/// Renders the coordinator's counters — the full [`DriverStats`] set,
/// the guard's breaker-transition count, and run-level gauges.
pub fn render_server_metrics(
    stats: &DriverStats,
    breaker_transitions: u64,
    checkpoint_rounds: u64,
    jobs: u64,
    finished: bool,
) -> String {
    let mut out = String::with_capacity(2048);
    let counters: [(&str, &str, u64); 21] = [
        ("flips_frames_sent_total", "Frames sent (downlink).", stats.frames_sent),
        ("flips_frames_received_total", "Frames received (uplink).", stats.frames_received),
        ("flips_bytes_sent_total", "Bytes sent (downlink), as encoded.", stats.bytes_sent),
        ("flips_bytes_received_total", "Bytes received (uplink).", stats.bytes_received),
        ("flips_corrupt_frames_total", "Frames that failed deframing.", stats.corrupt_frames),
        (
            "flips_codec_mismatch_frames_total",
            "Model payloads disagreeing with the negotiated codec.",
            stats.codec_mismatch_frames,
        ),
        (
            "flips_unknown_job_frames_total",
            "Well-formed frames for a job nobody owns.",
            stats.unknown_job_frames,
        ),
        (
            "flips_rejected_messages_total",
            "Messages a coordinator bounced.",
            stats.rejected_messages,
        ),
        (
            "flips_late_updates_total",
            "Updates withheld past their round deadline.",
            stats.late_updates,
        ),
        (
            "flips_oversized_frames_total",
            "Frames dropped by the guard size cap.",
            stats.oversized_frames,
        ),
        (
            "flips_rate_limited_frames_total",
            "Frames refused by per-party rate limits.",
            stats.rate_limited_frames,
        ),
        (
            "flips_breaker_dropped_frames_total",
            "Frames dropped while a sender's breaker was open.",
            stats.breaker_dropped_frames,
        ),
        (
            "flips_admission_refused_frames_total",
            "Frames refused by per-round admission control.",
            stats.admission_refused_frames,
        ),
        ("flips_parties_ejected_total", "Breaker trips ejecting a party.", stats.parties_ejected),
        (
            "flips_drain_refused_selections_total",
            "Round opens refused while draining.",
            stats.drain_refused_selections,
        ),
        (
            "flips_breaker_transitions_total",
            "Guard-plane breaker state transitions.",
            breaker_transitions,
        ),
        (
            "flips_links_lost_total",
            "Links whose peer died mid-run (slot parked for resume).",
            stats.links_lost,
        ),
        (
            "flips_link_resumes_total",
            "Parked links a reconnecting peer re-attached to.",
            stats.links_resumed,
        ),
        (
            "flips_checkpoint_rounds_total",
            "Round boundaries snapshotted to the checkpoint directory.",
            checkpoint_rounds,
        ),
        (
            "flips_roster_segments_spilled_total",
            "Roster segments sealed to the spill directory.",
            stats.roster_spilled,
        ),
        (
            "flips_roster_segments_loaded_total",
            "Spilled roster segments paged back into memory.",
            stats.roster_loaded,
        ),
    ];
    for (name, help, value) in counters {
        metric(&mut out, name, "counter", help, value);
    }
    metric(&mut out, "flips_jobs", "gauge", "Jobs registered on this coordinator.", jobs);
    metric(
        &mut out,
        "flips_run_complete",
        "gauge",
        "1 once every job has exhausted its round budget.",
        u64::from(finished),
    );
    out
}

/// A party-side counter snapshot (the [`PartyPool`](flips_fl::PartyPool)
/// observability counters plus the link slot served).
#[derive(Debug, Clone, Copy, Default)]
pub struct PartySnapshot {
    /// The link slot this worker serves.
    pub shard: u32,
    /// Endpoints hosted across all jobs.
    pub parties: u64,
    /// Frames addressed to an endpoint this pool does not own.
    pub unroutable: u64,
    /// Routable frames an endpoint refused.
    pub rejected: u64,
    /// Frames whose payload codec disagreed with the pinned codec.
    pub codec_mismatch: u64,
    /// Mid-job renegotiation attempts refused.
    pub renegotiations_rejected: u64,
    /// Frames dropped by the guard size cap.
    pub oversized: u64,
}

/// Renders a party worker's counters.
pub fn render_party_metrics(snap: &PartySnapshot) -> String {
    let mut out = String::with_capacity(1024);
    metric(
        &mut out,
        "flips_party_shard",
        "gauge",
        "Link slot this worker serves.",
        snap.shard.into(),
    );
    metric(
        &mut out,
        "flips_party_endpoints",
        "gauge",
        "Endpoints hosted across all jobs.",
        snap.parties,
    );
    let counters: [(&str, &str, u64); 5] = [
        (
            "flips_party_unroutable_total",
            "Frames for an endpoint this pool does not own.",
            snap.unroutable,
        ),
        ("flips_party_rejected_total", "Routable frames an endpoint refused.", snap.rejected),
        (
            "flips_party_codec_mismatch_total",
            "Payloads disagreeing with the pinned codec.",
            snap.codec_mismatch,
        ),
        (
            "flips_party_renegotiations_rejected_total",
            "Mid-job renegotiation attempts refused.",
            snap.renegotiations_rejected,
        ),
        ("flips_party_oversized_total", "Frames dropped by the guard size cap.", snap.oversized),
    ];
    for (name, help, value) in counters {
        metric(&mut out, name, "counter", help, value);
    }
    out
}

/// An HTTP connection mid-request.
struct HealthConn {
    stream: TcpStream,
    buf: Vec<u8>,
}

/// The event-loop resident serving `/healthz` and `/metrics`.
///
/// Constructed over an (optional) pre-bound listener; a plane without a
/// listener is inert, so callers need no conditional wiring. Tokens at
/// or above [`HealthPlane::BASE_TOKEN`] belong to the plane.
pub struct HealthPlane {
    listener: Option<TcpListener>,
    conns: HashMap<usize, HealthConn>,
    next_token: usize,
}

impl HealthPlane {
    /// First token the plane claims (the listener; connections follow).
    /// Data links use small tokens; one million leaves room for a few
    /// hundred thousand of them.
    pub const BASE_TOKEN: usize = 1_000_000;

    /// Wraps `listener` (switched to nonblocking) — or builds an inert
    /// plane from `None`.
    ///
    /// # Errors
    ///
    /// Propagates the nonblocking switch failing.
    pub fn new(listener: Option<TcpListener>) -> Result<HealthPlane, FlError> {
        if let Some(l) = &listener {
            l.set_nonblocking(true).map_err(net_err)?;
        }
        Ok(HealthPlane { listener, conns: HashMap::new(), next_token: Self::BASE_TOKEN + 1 })
    }

    /// Registers the listener with the event loop (no-op when inert).
    ///
    /// # Errors
    ///
    /// Propagates registration failure.
    pub fn register(&self, registry: &Registry) -> Result<(), FlError> {
        if let Some(l) = &self.listener {
            registry.register(l, Token(Self::BASE_TOKEN), Interest::READABLE).map_err(net_err)?;
        }
        Ok(())
    }

    /// Whether `token` belongs to the plane.
    pub fn owns(&self, token: usize) -> bool {
        token >= Self::BASE_TOKEN
    }

    /// Advances the plane on a readiness event for `token`: accepts new
    /// connections, reads requests, and answers complete ones with
    /// `render_metrics()` for `/metrics`. Call only when
    /// [`HealthPlane::owns`] the token.
    ///
    /// # Errors
    ///
    /// Registration failures propagate; per-connection I/O errors just
    /// drop the connection (a scraper's problem, not the run's).
    pub fn handle(
        &mut self,
        registry: &Registry,
        token: usize,
        render_metrics: &mut dyn FnMut() -> String,
    ) -> Result<(), FlError> {
        if token == Self::BASE_TOKEN {
            let Some(listener) = &self.listener else { return Ok(()) };
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        let t = self.next_token;
                        self.next_token += 1;
                        registry
                            .register(&stream, Token(t), Interest::READABLE)
                            .map_err(net_err)?;
                        self.conns.insert(t, HealthConn { stream, buf: Vec::new() });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(_) => break,
                }
            }
            return Ok(());
        }
        let Some(mut conn) = self.conns.remove(&token) else { return Ok(()) };
        let mut chunk = [0u8; 1024];
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    let _ = registry.deregister(&conn.stream);
                    return Ok(());
                }
                Ok(n) => conn.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => {
                    let _ = registry.deregister(&conn.stream);
                    return Ok(());
                }
            }
            if conn.buf.len() > 8 * 1024 {
                let _ = registry.deregister(&conn.stream);
                return Ok(());
            }
        }
        if !conn.buf.windows(4).any(|w| w == b"\r\n\r\n") {
            // Request still incomplete; keep waiting.
            self.conns.insert(token, conn);
            return Ok(());
        }
        let path = request_path(&conn.buf).unwrap_or_default();
        let (status, body) = match path.as_str() {
            "/healthz" => ("200 OK", "ok\n".to_string()),
            "/metrics" => ("200 OK", render_metrics()),
            _ => ("404 Not Found", "not found\n".to_string()),
        };
        let response = format!(
            "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        );
        let _ = registry.deregister(&conn.stream);
        // Responses are a few KiB — comfortably inside a fresh socket
        // buffer — so a brief blocking write is simpler than tracking
        // write progress across loop iterations.
        let _ = conn.stream.set_nonblocking(false);
        let _ = conn.stream.write_all(response.as_bytes());
        let _ = conn.stream.shutdown(std::net::Shutdown::Both);
        Ok(())
    }
}

/// Extracts the request path from an HTTP request head.
pub fn request_path(head: &[u8]) -> Option<String> {
    let text = std::str::from_utf8(head).ok()?;
    let line = text.lines().next()?;
    let mut parts = line.split_whitespace();
    let _method = parts.next()?;
    parts.next().map(str::to_string)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_exposition_is_well_formed_prometheus_text() {
        let stats = DriverStats {
            frames_sent: 120,
            frames_received: 98,
            bytes_sent: 1 << 20,
            bytes_received: 900_000,
            corrupt_frames: 2,
            codec_mismatch_frames: 1,
            unknown_job_frames: 3,
            rejected_messages: 4,
            late_updates: 5,
            oversized_frames: 6,
            rate_limited_frames: 7,
            breaker_dropped_frames: 8,
            admission_refused_frames: 9,
            parties_ejected: 1,
            drain_refused_selections: 0,
            links_lost: 2,
            links_resumed: 1,
            roster_spilled: 11,
            roster_loaded: 37,
        };
        let text = render_server_metrics(&stats, 2, 4, 3, true);
        // Every sample line is preceded by its HELP and TYPE comments,
        // in that order, and carries the snapshot's exact value.
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len() % 3, 0, "HELP/TYPE/sample triples");
        for triple in lines.chunks(3) {
            let name = triple[0].split_whitespace().nth(2).unwrap();
            assert!(triple[0].starts_with(&format!("# HELP {name} ")));
            assert!(
                triple[1].starts_with(&format!("# TYPE {name} counter"))
                    || triple[1].starts_with(&format!("# TYPE {name} gauge"))
            );
            let mut sample = triple[2].split_whitespace();
            assert_eq!(sample.next(), Some(name));
            sample.next().unwrap().parse::<u64>().expect("numeric sample");
        }
        assert!(text.contains("flips_frames_sent_total 120\n"));
        assert!(text.contains("flips_late_updates_total 5\n"));
        assert!(text.contains("flips_breaker_transitions_total 2\n"));
        assert!(text.contains("flips_links_lost_total 2\n"));
        assert!(text.contains("flips_link_resumes_total 1\n"));
        assert!(text.contains("flips_checkpoint_rounds_total 4\n"));
        assert!(text.contains("flips_roster_segments_spilled_total 11\n"));
        assert!(text.contains("flips_roster_segments_loaded_total 37\n"));
        assert!(text.contains("flips_jobs 3\n"));
        assert!(text.contains("flips_run_complete 1\n"));
    }

    #[test]
    fn party_exposition_carries_the_pool_counters() {
        let snap = PartySnapshot {
            shard: 2,
            parties: 6,
            unroutable: 1,
            rejected: 2,
            codec_mismatch: 3,
            renegotiations_rejected: 4,
            oversized: 5,
        };
        let text = render_party_metrics(&snap);
        assert!(text.contains("flips_party_shard 2\n"));
        assert!(text.contains("flips_party_endpoints 6\n"));
        assert!(text.contains("flips_party_unroutable_total 1\n"));
        assert!(text.contains("flips_party_rejected_total 2\n"));
        assert!(text.contains("flips_party_codec_mismatch_total 3\n"));
        assert!(text.contains("flips_party_renegotiations_rejected_total 4\n"));
        assert!(text.contains("flips_party_oversized_total 5\n"));
    }

    #[test]
    fn zeroed_stats_render_zero_samples_not_missing_ones() {
        let text = render_server_metrics(&DriverStats::default(), 0, 0, 0, false);
        assert!(text.contains("flips_frames_sent_total 0\n"));
        assert!(text.contains("flips_run_complete 0\n"));
    }

    #[test]
    fn request_path_parses_the_request_line() {
        assert_eq!(
            request_path(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").as_deref(),
            Some("/metrics")
        );
        assert_eq!(request_path(b"GET /healthz HTTP/1.0\r\n\r\n").as_deref(), Some("/healthz"));
        assert_eq!(request_path(b"garbage"), None);
    }
}
