//! Property-based tests of the ML substrate's core invariants.

use flips_ml::activation::softmax_rows_inplace;
use flips_ml::matrix::{euclidean_distance, Matrix};
use flips_ml::metrics::ConfusionMatrix;
use flips_ml::model::ModelSpec;
use flips_ml::optimizer::{Optimizer, Sgd};
use flips_ml::rng::seeded;
use proptest::prelude::*;

/// Arbitrary small matrix with bounded entries.
fn matrix_strategy(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transpose_is_involutive(m in matrix_strategy(8)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_identity_is_neutral(m in matrix_strategy(8)) {
        let mut eye = Matrix::zeros(m.cols(), m.cols());
        for i in 0..m.cols() {
            eye[(i, i)] = 1.0;
        }
        let product = m.matmul(&eye);
        prop_assert_eq!(product, m);
    }

    #[test]
    fn matmul_tn_and_nt_match_explicit_transpose(
        a in matrix_strategy(6),
        b in matrix_strategy(6),
    ) {
        // Shape-compatible pairs only.
        if a.rows() == b.rows() {
            let fused = a.matmul_tn(&b);
            let explicit = a.transpose().matmul(&b);
            for (x, y) in fused.as_slice().iter().zip(explicit.as_slice()) {
                prop_assert!((x - y).abs() < 1e-3);
            }
        }
        if a.cols() == b.cols() {
            let fused = a.matmul_nt(&b);
            let explicit = a.matmul(&b.transpose());
            for (x, y) in fused.as_slice().iter().zip(explicit.as_slice()) {
                prop_assert!((x - y).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn euclidean_distance_is_a_metric(
        a in proptest::collection::vec(-100.0f32..100.0, 1..16),
        b in proptest::collection::vec(-100.0f32..100.0, 1..16),
        c in proptest::collection::vec(-100.0f32..100.0, 1..16),
    ) {
        let n = a.len().min(b.len()).min(c.len());
        let (a, b, c) = (&a[..n], &b[..n], &c[..n]);
        // Symmetry and identity.
        prop_assert_eq!(euclidean_distance(a, b), euclidean_distance(b, a));
        prop_assert_eq!(euclidean_distance(a, a), 0.0);
        // Triangle inequality (with float slack).
        let ab = euclidean_distance(a, b) as f64;
        let bc = euclidean_distance(b, c) as f64;
        let ac = euclidean_distance(a, c) as f64;
        prop_assert!(ac <= ab + bc + 1e-3);
    }

    #[test]
    fn softmax_rows_are_distributions(m in matrix_strategy(8)) {
        let mut s = m;
        softmax_rows_inplace(&mut s);
        for row in s.rows_iter() {
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn params_round_trip_for_all_architectures(
        seed in 0u64..1000,
        dim in 2usize..8,
        classes in 2usize..5,
    ) {
        let specs = [
            ModelSpec::LogisticRegression { dim, classes },
            ModelSpec::Mlp { dims: vec![dim, dim + 2, classes] },
            ModelSpec::Conv1d { len: dim + 6, kernel: 3, filters: 2, classes },
        ];
        for spec in specs {
            let mut model = spec.build(&mut seeded(seed));
            let p = model.params();
            prop_assert_eq!(p.len(), model.num_params());
            model.set_params(&p).unwrap();
            prop_assert_eq!(model.params(), p);
        }
    }

    #[test]
    fn sgd_step_is_linear_in_gradient(
        w in proptest::collection::vec(-5.0f32..5.0, 1..10),
        g in proptest::collection::vec(-5.0f32..5.0, 1..10),
    ) {
        let n = w.len().min(g.len());
        let (w, g) = (&w[..n], &g[..n]);
        let mut once = w.to_vec();
        Sgd::new(0.1).step(&mut once, g);
        let mut halved_twice = w.to_vec();
        let mut opt = Sgd::new(0.05);
        opt.step(&mut halved_twice, g);
        opt.step(&mut halved_twice, g);
        // Plain SGD without momentum: two half-lr steps on the same
        // gradient equal one full-lr step.
        for (a, b) in once.iter().zip(&halved_twice) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn balanced_accuracy_is_bounded_and_perfect_on_identity(
        labels in proptest::collection::vec(0usize..4, 1..64),
    ) {
        let cm = ConfusionMatrix::from_predictions(4, &labels, &labels);
        prop_assert_eq!(cm.balanced_accuracy(), 1.0);
        // Any prediction vector stays within [0, 1].
        let shifted: Vec<usize> = labels.iter().map(|&l| (l + 1) % 4).collect();
        let cm = ConfusionMatrix::from_predictions(4, &labels, &shifted);
        let acc = cm.balanced_accuracy();
        prop_assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn model_predictions_are_valid_class_indices(
        seed in 0u64..500,
        rows in 1usize..10,
    ) {
        let spec = ModelSpec::Mlp { dims: vec![4, 6, 3] };
        let model = spec.build(&mut seeded(seed));
        let x = flips_ml::init::gaussian(&mut seeded(seed ^ 1), rows, 4, 1.0);
        let preds = flips_ml::model::predict(model.as_ref(), &x);
        prop_assert_eq!(preds.len(), rows);
        prop_assert!(preds.iter().all(|&p| p < 3));
    }

    #[test]
    fn blocked_gemm_matches_naive_reference(
        m in 1usize..40,
        k in 1usize..48,
        n in 1usize..70,
        seed in 0u64..1000,
    ) {
        // Random shapes straddling the MR=4 / NR=32 tile boundaries,
        // including tall, wide and non-square cases; the blocked kernels
        // must agree with the retained naive ones within 1e-5 (relative
        // to accumulated magnitude).
        let a = flips_ml::init::gaussian(&mut seeded(seed), m, k, 1.0);
        let b = flips_ml::init::gaussian(&mut seeded(seed ^ 0xA5A5), k, n, 1.0);
        let tol = |x: f32, y: f32| (x - y).abs() <= 1e-5 * (1.0 + x.abs().max(y.abs()));

        let fast = a.matmul(&b);
        let slow = flips_ml::matrix::reference::matmul(&a, &b);
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            prop_assert!(tol(*x, *y), "nn mismatch {x} vs {y}");
        }

        // Transposed variants share the engine but exercise different
        // packing/streaming paths.
        let at = flips_ml::init::gaussian(&mut seeded(seed ^ 0x1111), k, m, 1.0);
        let fast = at.matmul_tn(&b);
        let slow = flips_ml::matrix::reference::matmul_tn(&at, &b);
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            prop_assert!(tol(*x, *y), "tn mismatch {x} vs {y}");
        }

        let bt = flips_ml::init::gaussian(&mut seeded(seed ^ 0x2222), n, k, 1.0);
        let fast = a.matmul_nt(&bt);
        let slow = flips_ml::matrix::reference::matmul_nt(&a, &bt);
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            prop_assert!(tol(*x, *y), "nt mismatch {x} vs {y}");
        }
    }

    #[test]
    fn into_variants_match_allocating_kernels(
        m in 1usize..20,
        k in 1usize..20,
        n in 1usize..40,
        seed in 0u64..500,
    ) {
        let a = flips_ml::init::gaussian(&mut seeded(seed), m, k, 1.0);
        let b = flips_ml::init::gaussian(&mut seeded(seed ^ 7), k, n, 1.0);
        // Warm the output with a mismatched shape to prove resize works.
        let mut out = Matrix::zeros(3, 3);
        a.matmul_into(&b, &mut out);
        prop_assert_eq!(&out, &a.matmul(&b));

        let mut flat = vec![0.0f32; k * n];
        let at = flips_ml::init::gaussian(&mut seeded(seed ^ 9), m, k, 1.0);
        let rhs = flips_ml::init::gaussian(&mut seeded(seed ^ 11), m, n, 1.0);
        at.matmul_tn_into_slice(&rhs, &mut flat);
        let expect = at.matmul_tn(&rhs);
        prop_assert_eq!(flat.as_slice(), expect.as_slice());
    }
}
