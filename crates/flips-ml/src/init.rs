//! Weight-initialization schemes.

use crate::matrix::Matrix;
use crate::rng::normal;
use rand::Rng;

/// Xavier/Glorot-normal initialization: `N(0, 2 / (fan_in + fan_out))`.
///
/// Appropriate for layers followed by symmetric activations (tanh, softmax).
pub fn xavier<R: Rng + ?Sized>(rng: &mut R, fan_in: usize, fan_out: usize) -> Matrix {
    let std_dev = (2.0 / (fan_in + fan_out) as f64).sqrt();
    gaussian(rng, fan_in, fan_out, std_dev)
}

/// He-normal initialization: `N(0, 2 / fan_in)`.
///
/// Appropriate for layers followed by ReLU.
pub fn he<R: Rng + ?Sized>(rng: &mut R, fan_in: usize, fan_out: usize) -> Matrix {
    let std_dev = (2.0 / fan_in as f64).sqrt();
    gaussian(rng, fan_in, fan_out, std_dev)
}

/// A `rows × cols` matrix of `N(0, std_dev²)` draws.
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R, rows: usize, cols: usize, std_dev: f64) -> Matrix {
    let data: Vec<f32> = (0..rows * cols).map(|_| normal(rng, 0.0, std_dev) as f32).collect();
    Matrix::from_vec(rows, cols, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    #[test]
    fn xavier_variance_matches_formula() {
        let mut rng = seeded(11);
        let m = xavier(&mut rng, 100, 100);
        let n = (m.rows() * m.cols()) as f64;
        let mean = m.as_slice().iter().map(|&x| x as f64).sum::<f64>() / n;
        let var = m.as_slice().iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / n;
        let expected = 2.0 / 200.0;
        assert!((var - expected).abs() < expected * 0.2, "var {var} vs {expected}");
    }

    #[test]
    fn he_variance_matches_formula() {
        let mut rng = seeded(12);
        let m = he(&mut rng, 50, 200);
        let n = (m.rows() * m.cols()) as f64;
        let var = m.as_slice().iter().map(|&x| (x as f64).powi(2)).sum::<f64>() / n;
        let expected = 2.0 / 50.0;
        assert!((var - expected).abs() < expected * 0.2, "var {var} vs {expected}");
    }

    #[test]
    fn init_is_seed_deterministic() {
        let a = xavier(&mut seeded(9), 8, 8);
        let b = xavier(&mut seeded(9), 8, 8);
        assert_eq!(a, b);
    }
}
