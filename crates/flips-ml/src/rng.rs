//! Deterministic random-number helpers.
//!
//! Only the `rand` core crate is permitted in this workspace, so the
//! continuous distributions the stack needs (standard normal for weight
//! initialization, Gamma/Dirichlet for non-IID partitioning — the latter
//! live in `flips-data`) are implemented here from first principles.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Creates a [`StdRng`] from a `u64` seed.
///
/// Every component in the workspace derives its RNG through this helper so
/// that a single simulation seed reproduces an entire experiment.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives a child seed from a parent seed and a stream label.
///
/// Uses the SplitMix64 finalizer, which is a bijective avalanche mix — two
/// distinct `(seed, stream)` pairs collide only if SplitMix64 collides.
pub fn derive_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Samples a standard normal via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling u1 from the open interval (0, 1].
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples `N(mean, std_dev²)`.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * standard_normal(rng)
}

/// Fisher–Yates shuffle of a slice.
pub fn shuffle<T, R: Rng + ?Sized>(rng: &mut R, items: &mut [T]) {
    for i in (1..items.len()).rev() {
        let j = rng.random_range(0..=i);
        items.swap(i, j);
    }
}

/// Samples `k` distinct indices from `0..n` uniformly (partial Fisher–Yates).
///
/// The virtual pool `[0, n)` is never materialized: only the O(k)
/// entries displaced by swaps are tracked, so sampling a cohort from a
/// million-party roster costs memory proportional to the cohort, not
/// the roster. Draw-for-draw identical to the classic array form — the
/// RNG consumption and the returned indices match exactly, which the
/// protocol-equivalence goldens rely on.
///
/// # Panics
///
/// Panics if `k > n`.
pub fn sample_without_replacement<R: Rng + ?Sized>(rng: &mut R, n: usize, k: usize) -> Vec<usize> {
    assert!(k <= n, "cannot sample {k} of {n} without replacement");
    // displaced[idx] = current value of the virtual pool at idx, for the
    // sparse set of indices where it differs from the identity.
    let mut displaced: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    let mut picks = Vec::with_capacity(k);
    for i in 0..k {
        let j = rng.random_range(i..n);
        let pick = displaced.get(&j).copied().unwrap_or(j);
        let at_i = displaced.get(&i).copied().unwrap_or(i);
        picks.push(pick);
        // Swap: pool[j] takes pool[i]'s old value; slot i is fixed at
        // `pick` but never read again (draws start at i+1), so its
        // entry can be dropped to keep the map at O(k - i).
        displaced.insert(j, at_i);
        displaced.remove(&i);
    }
    picks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = seeded(42);
        let mut b = seeded(42);
        for _ in 0..16 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn derive_seed_distinguishes_streams() {
        assert_ne!(derive_seed(7, 0), derive_seed(7, 1));
        assert_ne!(derive_seed(7, 0), derive_seed(8, 0));
        // Deterministic.
        assert_eq!(derive_seed(7, 3), derive_seed(7, 3));
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = seeded(1);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn normal_scales_and_shifts() {
        let mut rng = seeded(2);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn sample_without_replacement_is_distinct_and_in_range() {
        let mut rng = seeded(3);
        let picks = sample_without_replacement(&mut rng, 100, 30);
        assert_eq!(picks.len(), 30);
        let mut sorted = picks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 30, "duplicates in sample");
        assert!(picks.iter().all(|&i| i < 100));
    }

    #[test]
    fn sample_without_replacement_full_population() {
        let mut rng = seeded(4);
        let mut picks = sample_without_replacement(&mut rng, 10, 10);
        picks.sort_unstable();
        assert_eq!(picks, (0..10).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "without replacement")]
    fn sample_without_replacement_rejects_oversample() {
        let mut rng = seeded(5);
        let _ = sample_without_replacement(&mut rng, 3, 4);
    }

    /// The classic array-backed partial Fisher–Yates the sparse
    /// implementation must mirror draw-for-draw.
    fn dense_sample<R: Rng + ?Sized>(rng: &mut R, n: usize, k: usize) -> Vec<usize> {
        let mut pool: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = rng.random_range(i..n);
            pool.swap(i, j);
        }
        pool.truncate(k);
        pool
    }

    #[test]
    fn sample_without_replacement_matches_dense_reference() {
        for seed in 0..20 {
            for &(n, k) in &[(1, 0), (1, 1), (5, 5), (10, 3), (100, 30), (257, 256), (1000, 1)] {
                let sparse = sample_without_replacement(&mut seeded(seed), n, k);
                let dense = dense_sample(&mut seeded(seed), n, k);
                assert_eq!(sparse, dense, "diverged at seed {seed}, n {n}, k {k}");
                // Identical RNG consumption: the next draw agrees too.
                let mut a = seeded(seed);
                let mut b = seeded(seed);
                let _ = sample_without_replacement(&mut a, n, k);
                let _ = dense_sample(&mut b, n, k);
                assert_eq!(a.random::<u64>(), b.random::<u64>());
            }
        }
    }

    #[test]
    fn sample_without_replacement_huge_population_is_cheap() {
        // A million-slot virtual pool must not be materialized; this
        // would OOM-or-crawl if it were. Picks stay distinct/in-range.
        let mut rng = seeded(9);
        let picks = sample_without_replacement(&mut rng, 1_000_000_000, 64);
        assert_eq!(picks.len(), 64);
        let mut sorted = picks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 64);
        assert!(picks.iter().all(|&i| i < 1_000_000_000));
    }

    #[test]
    fn shuffle_preserves_multiset() {
        let mut rng = seeded(6);
        let mut v: Vec<u32> = (0..50).collect();
        shuffle(&mut rng, &mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
