//! Classification models with flat-parameter access.
//!
//! Three architectures stand in for the paper's GPU models (§4.2):
//!
//! | paper                         | here                      |
//! |-------------------------------|---------------------------|
//! | 1-D CNN (MIT-BIH ECG)         | [`Conv1dNet`]             |
//! | DenseNet-121 (HAM10000)       | [`Mlp`]                   |
//! | LeNet-5 (FEMNIST / Fashion)   | [`Mlp`] / [`LogisticRegression`] |
//!
//! All models expose parameters as a single flat vector so that federated
//! aggregation, FedProx proximal pulls and adaptive server optimizers can
//! operate uniformly (see the crate-level docs).

use crate::activation::{relu_grad_mask_mul, relu_inplace, softmax_rows_inplace};
use crate::init;
use crate::loss::{cross_entropy, cross_entropy_logit_grad_inplace};
use crate::matrix::Matrix;
use crate::MlError;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Reusable buffers for forward/backward passes.
///
/// A workspace owns every intermediate the training stack needs —
/// per-layer activations and pre-activations, backprop deltas, the conv
/// feature maps and the flat gradient — sized lazily on first use and
/// reused thereafter. A training loop that keeps one workspace per party
/// performs **zero heap allocation** per minibatch once buffers have
/// warmed up to the largest batch shape (buffers shrink logically via
/// [`Matrix::resize`], which never releases capacity).
#[derive(Debug, Default)]
pub struct TrainWorkspace {
    /// Post-activation outputs per layer (`acts[l]` for layer `l`).
    acts: Vec<Matrix>,
    /// Pre-activation values per layer (ReLU derivative masks).
    zs: Vec<Matrix>,
    /// Current backprop delta (`dL/dz` of the layer being processed).
    delta: Matrix,
    /// Double buffer for the next layer's delta.
    delta_prev: Matrix,
    /// Conv: flattened ReLU feature maps (`rows × filters·positions`).
    feats: Matrix,
    /// Conv: pre-activation maps in the same flattened layout.
    pres: Matrix,
    /// Conv: gradient w.r.t. the flattened feature maps.
    dfeats: Matrix,
    /// The flat gradient, laid out exactly like [`Model::params`].
    grad: Vec<f32>,
}

impl TrainWorkspace {
    /// An empty workspace; buffers are sized on first use.
    pub fn new() -> Self {
        TrainWorkspace::default()
    }

    /// The gradient produced by the last
    /// [`Model::loss_and_grad_into`] call.
    pub fn grad(&self) -> &[f32] {
        &self.grad
    }

    /// Mutable view of the gradient (e.g. for proximal-term adjustments
    /// applied between backward pass and optimizer step).
    pub fn grad_mut(&mut self) -> &mut [f32] {
        &mut self.grad
    }

    /// Consumes the workspace, returning the gradient buffer.
    pub fn into_grad(self) -> Vec<f32> {
        self.grad
    }

    /// Ensures `acts`/`zs` hold at least `layers` buffers.
    fn ensure_layers(&mut self, layers: usize) {
        while self.acts.len() < layers {
            self.acts.push(Matrix::zeros(0, 0));
            self.zs.push(Matrix::zeros(0, 0));
        }
    }
}

/// A supervised classifier trained with softmax cross-entropy.
///
/// Implementations are [`Send`] so parties can train in parallel threads.
pub trait Model: Send {
    /// Total number of scalar parameters.
    fn num_params(&self) -> usize;

    /// Flattens all parameters into one vector (stable, documented order).
    fn params(&self) -> Vec<f32>;

    /// Overwrites all parameters from a flat vector.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::ParamLength`] if the length does not match
    /// [`Model::num_params`].
    fn set_params(&mut self, params: &[f32]) -> Result<(), MlError>;

    /// Class probabilities for a batch (rows = samples).
    fn predict_proba(&self, x: &Matrix) -> Matrix;

    /// Mean cross-entropy loss and flat gradient for a batch.
    ///
    /// Convenience wrapper over [`Model::loss_and_grad_into`] paying one
    /// workspace construction per call; hot loops should hold a
    /// [`TrainWorkspace`] and call the `_into` form directly.
    fn loss_and_grad(&self, x: &Matrix, y: &[usize]) -> (f32, Vec<f32>) {
        let mut ws = TrainWorkspace::new();
        let loss = self.loss_and_grad_into(x, y, &mut ws);
        (loss, ws.into_grad())
    }

    /// Mean cross-entropy loss for a batch; the flat gradient is left in
    /// `ws.grad()`. Allocation-free once `ws` has warmed up.
    fn loss_and_grad_into(&self, x: &Matrix, y: &[usize], ws: &mut TrainWorkspace) -> f32;

    /// Number of output classes.
    fn num_classes(&self) -> usize;

    /// Expected input feature dimension.
    fn input_dim(&self) -> usize;

    /// Clones into a boxed trait object.
    fn clone_box(&self) -> Box<dyn Model>;
}

impl Clone for Box<dyn Model> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Predicted class labels (argmax of probabilities).
pub fn predict(model: &dyn Model, x: &Matrix) -> Vec<usize> {
    model.predict_proba(x).argmax_rows()
}

/// Mean cross-entropy of a model on a labelled batch, without gradients.
pub fn evaluate_loss(model: &dyn Model, x: &Matrix, y: &[usize]) -> f32 {
    cross_entropy(&model.predict_proba(x), y)
}

// ---------------------------------------------------------------------------
// Logistic regression
// ---------------------------------------------------------------------------

/// Multinomial logistic regression: `softmax(X·W + b)`.
///
/// Parameter order: `W` row-major (`dim × classes`) followed by `b`
/// (`classes`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogisticRegression {
    dim: usize,
    classes: usize,
    w: Matrix,
    b: Vec<f32>,
}

impl LogisticRegression {
    /// Creates a model with Xavier-initialized weights and zero biases.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, dim: usize, classes: usize) -> Self {
        assert!(dim > 0 && classes >= 2, "need dim>0 and classes>=2");
        LogisticRegression {
            dim,
            classes,
            w: init::xavier(rng, dim, classes),
            b: vec![0.0; classes],
        }
    }

    fn logits(&self, x: &Matrix) -> Matrix {
        let mut z = x.matmul(&self.w);
        z.add_row_broadcast(&self.b);
        z
    }
}

impl Model for LogisticRegression {
    fn num_params(&self) -> usize {
        self.dim * self.classes + self.classes
    }

    fn params(&self) -> Vec<f32> {
        let mut p = Vec::with_capacity(self.num_params());
        p.extend_from_slice(self.w.as_slice());
        p.extend_from_slice(&self.b);
        p
    }

    fn set_params(&mut self, params: &[f32]) -> Result<(), MlError> {
        if params.len() != self.num_params() {
            return Err(MlError::ParamLength { expected: self.num_params(), got: params.len() });
        }
        let split = self.dim * self.classes;
        self.w.as_mut_slice().copy_from_slice(&params[..split]);
        self.b.copy_from_slice(&params[split..]);
        Ok(())
    }

    fn predict_proba(&self, x: &Matrix) -> Matrix {
        let mut z = self.logits(x);
        softmax_rows_inplace(&mut z);
        z
    }

    fn loss_and_grad_into(&self, x: &Matrix, y: &[usize], ws: &mut TrainWorkspace) -> f32 {
        // Probabilities and the logit gradient share ws.delta.
        x.matmul_into(&self.w, &mut ws.delta);
        ws.delta.add_row_broadcast(&self.b);
        softmax_rows_inplace(&mut ws.delta);
        let loss = cross_entropy(&ws.delta, y);
        cross_entropy_logit_grad_inplace(&mut ws.delta, y);

        ws.grad.resize(self.num_params(), 0.0);
        let split = self.dim * self.classes;
        x.matmul_tn_into_slice(&ws.delta, &mut ws.grad[..split]);
        ws.delta.col_sums_into(&mut ws.grad[split..]);
        loss
    }

    fn num_classes(&self) -> usize {
        self.classes
    }

    fn input_dim(&self) -> usize {
        self.dim
    }

    fn clone_box(&self) -> Box<dyn Model> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------------
// Multi-layer perceptron
// ---------------------------------------------------------------------------

/// A fully-connected network with ReLU hidden activations and a softmax
/// output layer.
///
/// `dims = [in, h1, ..., out]` gives the layer widths. Parameter order:
/// for each layer in sequence, `W` row-major then `b`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    dims: Vec<usize>,
    weights: Vec<Matrix>,
    biases: Vec<Vec<f32>>,
}

impl Mlp {
    /// Creates an MLP with He-initialized weights.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two dims are given or any dim is zero.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, dims: &[usize]) -> Self {
        assert!(dims.len() >= 2, "MLP needs at least input and output dims");
        assert!(dims.iter().all(|&d| d > 0), "zero-width layer");
        let mut weights = Vec::new();
        let mut biases = Vec::new();
        for w in dims.windows(2) {
            weights.push(init::he(rng, w[0], w[1]));
            biases.push(vec![0.0; w[1]]);
        }
        Mlp { dims: dims.to_vec(), weights, biases }
    }

    /// Layer widths, `[in, h1, ..., out]`.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Forward pass into workspace buffers: `ws.zs[l]` holds layer `l`'s
    /// pre-activations, `ws.acts[l]` its (ReLU / softmax) outputs. No
    /// input clone, no per-layer allocation after warm-up.
    fn forward_ws(&self, x: &Matrix, ws: &mut TrainWorkspace) {
        let layers = self.weights.len();
        ws.ensure_layers(layers);
        for l in 0..layers {
            let (done, rest) = ws.acts.split_at_mut(l);
            let src: &Matrix = if l == 0 { x } else { &done[l - 1] };
            let z = &mut ws.zs[l];
            src.matmul_into(&self.weights[l], z);
            z.add_row_broadcast(&self.biases[l]);
            let act = &mut rest[0];
            act.copy_from(z);
            if l + 1 < layers {
                relu_inplace(act);
            } else {
                softmax_rows_inplace(act);
            }
        }
    }

    /// Flat-parameter offset of layer `l`'s weight block (its bias block
    /// follows immediately after the weights).
    fn layer_offset(&self, l: usize) -> usize {
        self.dims.windows(2).take(l).map(|w| w[0] * w[1] + w[1]).sum()
    }
}

impl Model for Mlp {
    fn num_params(&self) -> usize {
        self.dims.windows(2).map(|w| w[0] * w[1] + w[1]).sum()
    }

    fn params(&self) -> Vec<f32> {
        let mut p = Vec::with_capacity(self.num_params());
        for (w, b) in self.weights.iter().zip(&self.biases) {
            p.extend_from_slice(w.as_slice());
            p.extend_from_slice(b);
        }
        p
    }

    fn set_params(&mut self, params: &[f32]) -> Result<(), MlError> {
        if params.len() != self.num_params() {
            return Err(MlError::ParamLength { expected: self.num_params(), got: params.len() });
        }
        let mut off = 0;
        for (w, b) in self.weights.iter_mut().zip(&mut self.biases) {
            let wn = w.rows() * w.cols();
            w.as_mut_slice().copy_from_slice(&params[off..off + wn]);
            off += wn;
            let bn = b.len();
            b.copy_from_slice(&params[off..off + bn]);
            off += bn;
        }
        Ok(())
    }

    fn predict_proba(&self, x: &Matrix) -> Matrix {
        let mut ws = TrainWorkspace::new();
        self.forward_ws(x, &mut ws);
        ws.acts.pop().expect("non-empty activations")
    }

    fn loss_and_grad_into(&self, x: &Matrix, y: &[usize], ws: &mut TrainWorkspace) -> f32 {
        self.forward_ws(x, ws);
        let layers = self.weights.len();
        let probs = &ws.acts[layers - 1];
        let loss = cross_entropy(probs, y);

        // delta = dL/dz for the current layer, starting from the output.
        ws.delta.copy_from(probs);
        cross_entropy_logit_grad_inplace(&mut ws.delta, y);

        ws.grad.resize(self.num_params(), 0.0);
        for l in (0..layers).rev() {
            let woff = self.layer_offset(l);
            let wn = self.dims[l] * self.dims[l + 1];
            let bn = self.dims[l + 1];
            let src: &Matrix = if l == 0 { x } else { &ws.acts[l - 1] };
            src.matmul_tn_into_slice(&ws.delta, &mut ws.grad[woff..woff + wn]);
            ws.delta.col_sums_into(&mut ws.grad[woff + wn..woff + wn + bn]);
            if l > 0 {
                ws.delta.matmul_nt_into(&self.weights[l], &mut ws.delta_prev);
                relu_grad_mask_mul(&mut ws.delta_prev, &ws.zs[l - 1]);
                std::mem::swap(&mut ws.delta, &mut ws.delta_prev);
            }
        }
        loss
    }

    fn num_classes(&self) -> usize {
        *self.dims.last().expect("non-empty dims")
    }

    fn input_dim(&self) -> usize {
        self.dims[0]
    }

    fn clone_box(&self) -> Box<dyn Model> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------------
// 1-D convolutional network
// ---------------------------------------------------------------------------

/// A small 1-D CNN: single-channel convolution → ReLU → flatten → linear
/// classifier.
///
/// Stand-in for the paper's ECG 1-D CNN. The input row of length `len` is
/// treated as a signal; `filters` kernels of width `kernel` slide with
/// stride 1 over it (valid padding), and the full `filters × positions`
/// activation map feeds the classifier (no pooling — position information
/// is retained, which matters for the synthetic class geometry this
/// reproduction trains on).
///
/// Parameter order: kernels row-major (`filters × kernel`), kernel biases
/// (`filters`), classifier `W` row-major (`filters·positions × classes`),
/// classifier bias (`classes`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Conv1dNet {
    len: usize,
    kernel: usize,
    filters: usize,
    classes: usize,
    kernels: Matrix,
    kbias: Vec<f32>,
    w: Matrix,
    b: Vec<f32>,
}

impl Conv1dNet {
    /// Creates the network.
    ///
    /// # Panics
    ///
    /// Panics if `kernel > len` or any size is zero.
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        len: usize,
        kernel: usize,
        filters: usize,
        classes: usize,
    ) -> Self {
        assert!(kernel > 0 && kernel <= len, "kernel must fit in the signal");
        assert!(filters > 0 && classes >= 2 && len > 0, "sizes must be positive");
        let positions = len - kernel + 1;
        Conv1dNet {
            len,
            kernel,
            filters,
            classes,
            kernels: init::he(rng, kernel, filters).transpose(), // filters × kernel
            kbias: vec![0.0; filters],
            w: init::xavier(rng, filters * positions, classes),
            b: vec![0.0; classes],
        }
    }

    fn out_positions(&self) -> usize {
        self.len - self.kernel + 1
    }

    fn feature_dim(&self) -> usize {
        self.filters * self.out_positions()
    }

    /// Computes the batch's pre-activation maps into `ws.pres` and the
    /// flattened ReLU feature maps into `ws.feats`, both laid out
    /// `rows × filters·positions` with a sample's filter `f`, position
    /// `p` value at column `f·positions + p`. Allocation-free after
    /// warm-up.
    fn features_into(&self, x: &Matrix, ws: &mut TrainWorkspace) {
        assert_eq!(x.cols(), self.len, "conv1d input length mismatch");
        let positions = self.out_positions();
        ws.pres.resize(x.rows(), self.feature_dim());
        ws.feats.resize(x.rows(), self.feature_dim());
        for (i, signal) in x.rows_iter().enumerate() {
            let pre_row = ws.pres.row_mut(i);
            for f in 0..self.filters {
                let kernel = self.kernels.row(f);
                let dst = &mut pre_row[f * positions..(f + 1) * positions];
                for (p, slot) in dst.iter_mut().enumerate() {
                    let mut acc = self.kbias[f];
                    for (j, &kj) in kernel.iter().enumerate() {
                        acc += kj * signal[p + j];
                    }
                    *slot = acc;
                }
            }
            let feat_row = ws.feats.row_mut(i);
            let pre_row = ws.pres.row(i);
            for (dst, &v) in feat_row.iter_mut().zip(pre_row) {
                *dst = v.max(0.0);
            }
        }
    }
}

impl Model for Conv1dNet {
    fn num_params(&self) -> usize {
        self.filters * self.kernel + self.filters + self.feature_dim() * self.classes + self.classes
    }

    fn params(&self) -> Vec<f32> {
        let mut p = Vec::with_capacity(self.num_params());
        p.extend_from_slice(self.kernels.as_slice());
        p.extend_from_slice(&self.kbias);
        p.extend_from_slice(self.w.as_slice());
        p.extend_from_slice(&self.b);
        p
    }

    fn set_params(&mut self, params: &[f32]) -> Result<(), MlError> {
        if params.len() != self.num_params() {
            return Err(MlError::ParamLength { expected: self.num_params(), got: params.len() });
        }
        let mut off = 0;
        let kn = self.filters * self.kernel;
        self.kernels.as_mut_slice().copy_from_slice(&params[off..off + kn]);
        off += kn;
        self.kbias.copy_from_slice(&params[off..off + self.filters]);
        off += self.filters;
        let wn = self.feature_dim() * self.classes;
        self.w.as_mut_slice().copy_from_slice(&params[off..off + wn]);
        off += wn;
        self.b.copy_from_slice(&params[off..]);
        Ok(())
    }

    fn predict_proba(&self, x: &Matrix) -> Matrix {
        let mut ws = TrainWorkspace::new();
        self.features_into(x, &mut ws);
        let mut z = ws.feats.matmul(&self.w);
        z.add_row_broadcast(&self.b);
        softmax_rows_inplace(&mut z);
        z
    }

    fn loss_and_grad_into(&self, x: &Matrix, y: &[usize], ws: &mut TrainWorkspace) -> f32 {
        let positions = self.out_positions();
        self.features_into(x, ws);
        ws.feats.matmul_into(&self.w, &mut ws.delta);
        ws.delta.add_row_broadcast(&self.b);
        softmax_rows_inplace(&mut ws.delta);
        let loss = cross_entropy(&ws.delta, y);
        cross_entropy_logit_grad_inplace(&mut ws.delta, y);
        let dlogits = &ws.delta;

        // Classifier gradients land straight in their flat segments.
        ws.grad.resize(self.num_params(), 0.0);
        let kn = self.filters * self.kernel;
        let woff = kn + self.filters;
        let wn = self.feature_dim() * self.classes;
        ws.feats.matmul_tn_into_slice(dlogits, &mut ws.grad[woff..woff + wn]);
        ws.delta.col_sums_into(&mut ws.grad[woff + wn..]);

        // Gradient w.r.t. the flattened feature map: rows × (F·P).
        ws.delta.matmul_nt_into(&self.w, &mut ws.dfeats);

        // Kernel gradients accumulate; zero their segments first.
        let (dkernels, rest) = ws.grad.split_at_mut(kn);
        let dkbias = &mut rest[..self.filters];
        dkernels.fill(0.0);
        dkbias.fill(0.0);
        for (i, signal) in x.rows_iter().enumerate() {
            let pre_row = ws.pres.row(i);
            let dfeat_row = ws.dfeats.row(i);
            for f in 0..self.filters {
                let dk_row = &mut dkernels[f * self.kernel..(f + 1) * self.kernel];
                let pre = &pre_row[f * positions..(f + 1) * positions];
                for (p, &pr) in pre.iter().enumerate() {
                    if pr > 0.0 {
                        let upstream = dfeat_row[f * positions + p];
                        if upstream == 0.0 {
                            continue;
                        }
                        dkbias[f] += upstream;
                        for (j, slot) in dk_row.iter_mut().enumerate() {
                            *slot += upstream * signal[p + j];
                        }
                    }
                }
            }
        }
        loss
    }

    fn num_classes(&self) -> usize {
        self.classes
    }

    fn input_dim(&self) -> usize {
        self.len
    }

    fn clone_box(&self) -> Box<dyn Model> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------------
// Model specification (architecture sans weights)
// ---------------------------------------------------------------------------

/// A serializable architecture description.
///
/// FL parties must all build the *same* architecture; the aggregator ships a
/// `ModelSpec` during job negotiation (paper §2: "agreeing on ... model
/// architecture") and each party instantiates it locally.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelSpec {
    /// Multinomial logistic regression.
    LogisticRegression {
        /// Input feature dimension.
        dim: usize,
        /// Number of classes.
        classes: usize,
    },
    /// Fully-connected network; `dims = [in, h1, ..., out]`.
    Mlp {
        /// Layer widths.
        dims: Vec<usize>,
    },
    /// 1-D CNN (see [`Conv1dNet`]).
    Conv1d {
        /// Signal length.
        len: usize,
        /// Kernel width.
        kernel: usize,
        /// Number of filters.
        filters: usize,
        /// Number of classes.
        classes: usize,
    },
}

impl ModelSpec {
    /// Instantiates the architecture with fresh weights from `rng`.
    pub fn build<R: Rng + ?Sized>(&self, rng: &mut R) -> Box<dyn Model> {
        match self {
            ModelSpec::LogisticRegression { dim, classes } => {
                Box::new(LogisticRegression::new(rng, *dim, *classes))
            }
            ModelSpec::Mlp { dims } => Box::new(Mlp::new(rng, dims)),
            ModelSpec::Conv1d { len, kernel, filters, classes } => {
                Box::new(Conv1dNet::new(rng, *len, *kernel, *filters, *classes))
            }
        }
    }

    /// Number of output classes of the architecture.
    pub fn num_classes(&self) -> usize {
        match self {
            ModelSpec::LogisticRegression { classes, .. } => *classes,
            ModelSpec::Mlp { dims } => *dims.last().expect("non-empty dims"),
            ModelSpec::Conv1d { classes, .. } => *classes,
        }
    }

    /// Input feature dimension of the architecture.
    pub fn input_dim(&self) -> usize {
        match self {
            ModelSpec::LogisticRegression { dim, .. } => *dim,
            ModelSpec::Mlp { dims } => dims[0],
            ModelSpec::Conv1d { len, .. } => *len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    /// Central-difference gradient check: every analytic partial must agree
    /// with the numeric estimate to a mixed absolute/relative tolerance.
    fn check_gradients(model: &mut dyn Model, x: &Matrix, y: &[usize]) {
        let (_, grad) = model.loss_and_grad(x, y);
        let base = model.params();
        let eps = 1e-3f32;
        for i in 0..base.len() {
            let mut plus = base.clone();
            plus[i] += eps;
            model.set_params(&plus).unwrap();
            let lp = evaluate_loss(model, x, y);
            let mut minus = base.clone();
            minus[i] -= eps;
            model.set_params(&minus).unwrap();
            let lm = evaluate_loss(model, x, y);
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = grad[i];
            let tol = 1e-2 * (1.0 + analytic.abs().max(numeric.abs()));
            assert!(
                (numeric - analytic).abs() < tol,
                "param {i}: numeric {numeric} vs analytic {analytic}"
            );
        }
        model.set_params(&base).unwrap();
    }

    fn tiny_batch(dim: usize, classes: usize, n: usize) -> (Matrix, Vec<usize>) {
        let mut rng = seeded(99);
        let x = init::gaussian(&mut rng, n, dim, 1.0);
        let y: Vec<usize> = (0..n).map(|i| i % classes).collect();
        (x, y)
    }

    #[test]
    fn logreg_gradient_check() {
        let mut rng = seeded(1);
        let mut m = LogisticRegression::new(&mut rng, 5, 3);
        let (x, y) = tiny_batch(5, 3, 7);
        check_gradients(&mut m, &x, &y);
    }

    #[test]
    fn mlp_gradient_check() {
        let mut rng = seeded(2);
        let mut m = Mlp::new(&mut rng, &[4, 6, 3]);
        let (x, y) = tiny_batch(4, 3, 5);
        check_gradients(&mut m, &x, &y);
    }

    #[test]
    fn deep_mlp_gradient_check() {
        let mut rng = seeded(3);
        let mut m = Mlp::new(&mut rng, &[3, 5, 4, 3]);
        let (x, y) = tiny_batch(3, 3, 6);
        check_gradients(&mut m, &x, &y);
    }

    #[test]
    fn conv1d_gradient_check() {
        let mut rng = seeded(4);
        let mut m = Conv1dNet::new(&mut rng, 10, 3, 4, 3);
        let (x, y) = tiny_batch(10, 3, 5);
        check_gradients(&mut m, &x, &y);
    }

    #[test]
    fn params_set_params_round_trip() {
        let mut rng = seeded(5);
        for mut model in [
            Box::new(LogisticRegression::new(&mut rng, 6, 4)) as Box<dyn Model>,
            Box::new(Mlp::new(&mut rng, &[6, 8, 4])),
            Box::new(Conv1dNet::new(&mut rng, 12, 3, 5, 4)),
        ] {
            let p = model.params();
            assert_eq!(p.len(), model.num_params());
            let mut altered = p.clone();
            for v in &mut altered {
                *v += 1.0;
            }
            model.set_params(&altered).unwrap();
            assert_eq!(model.params(), altered);
            model.set_params(&p).unwrap();
            assert_eq!(model.params(), p);
        }
    }

    #[test]
    fn set_params_rejects_wrong_length() {
        let mut rng = seeded(6);
        let mut m = LogisticRegression::new(&mut rng, 3, 2);
        let err = m.set_params(&[0.0; 3]).unwrap_err();
        assert_eq!(err, MlError::ParamLength { expected: 8, got: 3 });
    }

    #[test]
    fn predict_proba_rows_are_distributions() {
        let mut rng = seeded(7);
        let m = Mlp::new(&mut rng, &[4, 5, 3]);
        let (x, _) = tiny_batch(4, 3, 9);
        let p = m.predict_proba(&x);
        assert_eq!(p.shape(), (9, 3));
        for row in p.rows_iter() {
            assert!((row.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn sgd_training_reduces_loss_and_learns_separable_data() {
        // Two well-separated Gaussian blobs; logistic regression must fit.
        let mut rng = seeded(8);
        let n = 100;
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let cls = i % 2;
            let center = if cls == 0 { -2.0 } else { 2.0 };
            rows.push(vec![
                crate::rng::normal(&mut rng, center, 0.5) as f32,
                crate::rng::normal(&mut rng, -center, 0.5) as f32,
            ]);
            y.push(cls);
        }
        let x = Matrix::from_rows(&rows);
        let mut model = LogisticRegression::new(&mut rng, 2, 2);
        let mut opt = crate::optimizer::Sgd::new(0.5);
        let initial = evaluate_loss(&model, &x, &y);
        for _ in 0..100 {
            let (_, grad) = model.loss_and_grad(&x, &y);
            let mut p = model.params();
            crate::optimizer::Optimizer::step(&mut opt, &mut p, &grad);
            model.set_params(&p).unwrap();
        }
        let fin = evaluate_loss(&model, &x, &y);
        assert!(fin < initial * 0.2, "loss {initial} -> {fin}");
        let preds = predict(&model, &x);
        let correct = preds.iter().zip(&y).filter(|(a, b)| a == b).count();
        assert!(correct as f32 / n as f32 > 0.95);
    }

    #[test]
    fn model_spec_builds_matching_architecture() {
        let mut rng = seeded(9);
        let spec = ModelSpec::Mlp { dims: vec![10, 16, 5] };
        let m = spec.build(&mut rng);
        assert_eq!(m.num_classes(), 5);
        assert_eq!(m.input_dim(), 10);
        assert_eq!(spec.num_classes(), 5);
        assert_eq!(spec.input_dim(), 10);
    }

    #[test]
    fn model_spec_conv_dimensions() {
        let spec = ModelSpec::Conv1d { len: 32, kernel: 5, filters: 8, classes: 5 };
        let mut rng = seeded(10);
        let m = spec.build(&mut rng);
        let positions = 32 - 5 + 1;
        assert_eq!(m.num_params(), 8 * 5 + 8 + 8 * positions * 5 + 5);
    }

    #[test]
    fn workspace_path_matches_allocating_path() {
        let mut rng = seeded(21);
        let models: Vec<Box<dyn Model>> = vec![
            Box::new(LogisticRegression::new(&mut rng, 6, 4)),
            Box::new(Mlp::new(&mut rng, &[6, 9, 5, 4])),
            Box::new(Conv1dNet::new(&mut rng, 6, 3, 3, 4)),
        ];
        let (x, y) = tiny_batch(6, 4, 9);
        let mut ws = TrainWorkspace::new();
        for model in &models {
            let (loss_alloc, grad_alloc) = model.loss_and_grad(&x, &y);
            // Run the workspace path twice: the second call reuses warm
            // buffers and must agree exactly.
            for _ in 0..2 {
                let loss_ws = model.loss_and_grad_into(&x, &y, &mut ws);
                assert_eq!(loss_ws, loss_alloc);
                assert_eq!(ws.grad(), grad_alloc.as_slice());
            }
        }
    }

    #[test]
    fn workspace_adapts_to_shrinking_batches() {
        // Last minibatch of an epoch is smaller; buffers must logically
        // shrink and still produce exact results.
        let mut rng = seeded(22);
        let model = Mlp::new(&mut rng, &[5, 7, 3]);
        let mut ws = TrainWorkspace::new();
        let (big_x, big_y) = tiny_batch(5, 3, 12);
        model.loss_and_grad_into(&big_x, &big_y, &mut ws);
        let (small_x, small_y) = tiny_batch(5, 3, 4);
        let loss_ws = model.loss_and_grad_into(&small_x, &small_y, &mut ws);
        let (loss_alloc, grad_alloc) = model.loss_and_grad(&small_x, &small_y);
        assert_eq!(loss_ws, loss_alloc);
        assert_eq!(ws.grad(), grad_alloc.as_slice());
    }

    #[test]
    fn two_parties_same_seed_build_identical_models() {
        let spec = ModelSpec::LogisticRegression { dim: 4, classes: 3 };
        let a = spec.build(&mut seeded(42));
        let b = spec.build(&mut seeded(42));
        assert_eq!(a.params(), b.params());
    }
}
