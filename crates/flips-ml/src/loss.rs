//! Loss functions.
//!
//! The FL evaluation in the paper is classification throughout, so the
//! workhorse is softmax cross-entropy. FedProx's proximal term
//! `µ/2 · ‖x − m‖²` (paper §2.1) is provided as a separate penalty applied
//! at the flat-parameter level.

use crate::matrix::Matrix;

/// Mean cross-entropy of row-wise probabilities against integer targets.
///
/// `probs` must contain valid probability rows (e.g. softmax output);
/// entries are clamped away from zero for numerical safety.
///
/// # Panics
///
/// Panics if `targets.len() != probs.rows()` or a target is out of range.
pub fn cross_entropy(probs: &Matrix, targets: &[usize]) -> f32 {
    assert_eq!(probs.rows(), targets.len(), "cross_entropy batch mismatch");
    let mut total = 0.0;
    for (row, &t) in probs.rows_iter().zip(targets) {
        assert!(t < row.len(), "target {t} out of range for {} classes", row.len());
        total -= row[t].max(1e-12).ln();
    }
    total / targets.len() as f32
}

/// Gradient of mean softmax cross-entropy w.r.t. the *logits*.
///
/// Given softmax output `probs` and targets, the gradient per row is
/// `(p − onehot(t)) / batch` — consumed directly by the models' backward
/// passes. The subtraction happens in place on `probs`.
pub fn cross_entropy_logit_grad_inplace(probs: &mut Matrix, targets: &[usize]) {
    assert_eq!(probs.rows(), targets.len(), "grad batch mismatch");
    let inv_batch = 1.0 / targets.len() as f32;
    let cols = probs.cols();
    for (i, &t) in targets.iter().enumerate() {
        let row = probs.row_mut(i);
        assert!(t < cols, "target {t} out of range for {cols} classes");
        row[t] -= 1.0;
        for x in row.iter_mut() {
            *x *= inv_batch;
        }
    }
}

/// Mean squared error between predictions and targets.
pub fn mse(pred: &[f32], target: &[f32]) -> f32 {
    assert_eq!(pred.len(), target.len(), "mse length mismatch");
    if pred.is_empty() {
        return 0.0;
    }
    pred.iter().zip(target).map(|(p, t)| (p - t) * (p - t)).sum::<f32>() / pred.len() as f32
}

/// FedProx proximal penalty value: `µ/2 · ‖w − w_global‖²`.
pub fn proximal_penalty(w: &[f32], w_global: &[f32], mu: f32) -> f32 {
    assert_eq!(w.len(), w_global.len(), "proximal length mismatch");
    let sq: f32 = w.iter().zip(w_global).map(|(a, b)| (a - b) * (a - b)).sum();
    0.5 * mu * sq
}

/// Adds the FedProx proximal gradient `µ · (w − w_global)` into `grad`.
pub fn add_proximal_grad(grad: &mut [f32], w: &[f32], w_global: &[f32], mu: f32) {
    assert_eq!(grad.len(), w.len(), "proximal grad length mismatch");
    assert_eq!(w.len(), w_global.len(), "proximal length mismatch");
    for ((g, &a), &b) in grad.iter_mut().zip(w).zip(w_global) {
        *g += mu * (a - b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_entropy_perfect_prediction_is_near_zero() {
        let probs = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        let loss = cross_entropy(&probs, &[0, 1]);
        assert!(loss < 1e-5, "loss {loss}");
    }

    #[test]
    fn cross_entropy_uniform_is_log_classes() {
        let probs = Matrix::from_rows(&[vec![0.25; 4]]);
        let loss = cross_entropy(&probs, &[2]);
        assert!((loss - 4.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn logit_grad_sums_to_zero_per_row() {
        // Softmax CE logit gradient rows sum to zero: Σ p_j − 1 = 0.
        let mut probs = Matrix::from_rows(&[vec![0.2, 0.3, 0.5]]);
        cross_entropy_logit_grad_inplace(&mut probs, &[1]);
        let s: f32 = probs.row(0).iter().sum();
        assert!(s.abs() < 1e-6);
        assert!(probs[(0, 1)] < 0.0, "target coordinate must be pulled up");
    }

    #[test]
    fn logit_grad_scales_by_batch() {
        let mut probs = Matrix::from_rows(&[vec![0.5, 0.5], vec![0.5, 0.5]]);
        cross_entropy_logit_grad_inplace(&mut probs, &[0, 0]);
        assert!((probs[(0, 0)] - (-0.25)).abs() < 1e-6);
        assert!((probs[(0, 1)] - 0.25).abs() < 1e-6);
    }

    #[test]
    fn proximal_penalty_zero_at_anchor() {
        let w = [1.0, 2.0, 3.0];
        assert_eq!(proximal_penalty(&w, &w, 0.1), 0.0);
    }

    #[test]
    fn proximal_penalty_known_value() {
        let w = [1.0, 1.0];
        let g = [0.0, 0.0];
        // 0.5 * 0.1 * (1 + 1) = 0.1
        assert!((proximal_penalty(&w, &g, 0.1) - 0.1).abs() < 1e-7);
    }

    #[test]
    fn proximal_grad_points_toward_anchor() {
        let mut grad = vec![0.0, 0.0];
        add_proximal_grad(&mut grad, &[2.0, -2.0], &[0.0, 0.0], 0.5);
        assert_eq!(grad, vec![1.0, -1.0]);
    }

    #[test]
    fn mse_known_value() {
        assert!((mse(&[1.0, 2.0], &[0.0, 0.0]) - 2.5).abs() < 1e-6);
        assert_eq!(mse(&[], &[]), 0.0);
    }
}
