//! Activation functions and their derivatives.

use crate::matrix::Matrix;

/// Rectified linear unit applied element-wise in place.
pub fn relu_inplace(m: &mut Matrix) {
    m.map_inplace(|x| if x > 0.0 { x } else { 0.0 });
}

/// Element-wise derivative mask of ReLU evaluated at the *pre-activation*.
///
/// Entry is 1.0 where the input was positive, else 0.0.
pub fn relu_grad_mask(pre_activation: &Matrix) -> Matrix {
    let mut m = pre_activation.clone();
    m.map_inplace(|x| if x > 0.0 { 1.0 } else { 0.0 });
    m
}

/// Multiplies `delta` in place by ReLU's derivative at `pre_activation`
/// (zeroing entries whose pre-activation was non-positive) without
/// materializing the mask matrix.
///
/// # Panics
///
/// Panics on a shape mismatch.
pub fn relu_grad_mask_mul(delta: &mut Matrix, pre_activation: &Matrix) {
    assert_eq!(delta.shape(), pre_activation.shape(), "relu mask shape mismatch");
    for (d, &z) in delta.as_mut_slice().iter_mut().zip(pre_activation.as_slice()) {
        if z <= 0.0 {
            *d = 0.0;
        }
    }
}

/// Logistic sigmoid applied element-wise in place.
pub fn sigmoid_inplace(m: &mut Matrix) {
    m.map_inplace(|x| 1.0 / (1.0 + (-x).exp()));
}

/// Hyperbolic tangent applied element-wise in place.
pub fn tanh_inplace(m: &mut Matrix) {
    m.map_inplace(f32::tanh);
}

/// Row-wise numerically-stable softmax.
///
/// Each row of the result sums to 1. Operates in place on logits.
pub fn softmax_rows_inplace(m: &mut Matrix) {
    let cols = m.cols();
    for row in m.as_mut_slice().chunks_exact_mut(cols) {
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for x in row.iter_mut() {
            *x = (*x - max).exp();
            sum += *x;
        }
        // `sum >= 1` because the max element maps to exp(0) = 1.
        for x in row.iter_mut() {
            *x /= sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let mut m = Matrix::from_rows(&[vec![-1.0, 0.0, 2.0]]);
        relu_inplace(&mut m);
        assert_eq!(m.as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn relu_grad_mask_is_indicator() {
        let pre = Matrix::from_rows(&[vec![-1.0, 0.0, 2.0]]);
        let mask = relu_grad_mask(&pre);
        assert_eq!(mask.as_slice(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![-5.0, 0.0, 5.0]]);
        softmax_rows_inplace(&mut m);
        for row in m.rows_iter() {
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let mut m = Matrix::from_rows(&[vec![1000.0, 1001.0]]);
        softmax_rows_inplace(&mut m);
        assert!(m.as_slice().iter().all(|p| p.is_finite()));
        assert!(m[(0, 1)] > m[(0, 0)]);
    }

    #[test]
    fn softmax_preserves_ordering() {
        let mut m = Matrix::from_rows(&[vec![0.5, 2.0, 1.0]]);
        softmax_rows_inplace(&mut m);
        assert!(m[(0, 1)] > m[(0, 2)]);
        assert!(m[(0, 2)] > m[(0, 0)]);
    }

    #[test]
    fn sigmoid_midpoint_and_limits() {
        let mut m = Matrix::from_rows(&[vec![0.0, 20.0, -20.0]]);
        sigmoid_inplace(&mut m);
        assert!((m[(0, 0)] - 0.5).abs() < 1e-6);
        assert!(m[(0, 1)] > 0.999);
        assert!(m[(0, 2)] < 0.001);
    }

    #[test]
    fn tanh_is_odd() {
        let mut m = Matrix::from_rows(&[vec![1.3, -1.3]]);
        tanh_inplace(&mut m);
        assert!((m[(0, 0)] + m[(0, 1)]).abs() < 1e-6);
    }
}
