//! Classification metrics.
//!
//! The paper's headline metric (§4.4) is **balanced accuracy**: the mean of
//! per-label recalls, which neutralizes label imbalance in the global test
//! set. This module provides that, plus the confusion matrix it derives
//! from and plain accuracy for comparison.

use serde::{Deserialize, Serialize};

/// A `classes × classes` confusion matrix; `counts[actual][predicted]`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// An empty matrix for `classes` labels.
    pub fn new(classes: usize) -> Self {
        assert!(classes >= 2, "need at least two classes");
        ConfusionMatrix { classes, counts: vec![0; classes * classes] }
    }

    /// Builds a matrix from parallel actual/predicted label slices.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch or out-of-range labels.
    pub fn from_predictions(classes: usize, actual: &[usize], predicted: &[usize]) -> Self {
        assert_eq!(actual.len(), predicted.len(), "label slices differ in length");
        let mut cm = ConfusionMatrix::new(classes);
        for (&a, &p) in actual.iter().zip(predicted) {
            cm.record(a, p);
        }
        cm
    }

    /// Records one observation.
    pub fn record(&mut self, actual: usize, predicted: usize) {
        assert!(actual < self.classes && predicted < self.classes, "label out of range");
        self.counts[actual * self.classes + predicted] += 1;
    }

    /// Count of `(actual, predicted)` observations.
    pub fn count(&self, actual: usize, predicted: usize) -> u64 {
        self.counts[actual * self.classes + predicted]
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Per-label recall (`lAi` in the paper): correct predictions for label
    /// `i` over total datapoints with label `i`. Labels absent from the
    /// data yield `None`.
    pub fn recall(&self, label: usize) -> Option<f64> {
        assert!(label < self.classes, "label out of range");
        let row_total: u64 = (0..self.classes).map(|p| self.count(label, p)).sum();
        if row_total == 0 {
            return None;
        }
        Some(self.count(label, label) as f64 / row_total as f64)
    }

    /// Per-label recalls for all labels present in the data.
    pub fn recalls(&self) -> Vec<Option<f64>> {
        (0..self.classes).map(|l| self.recall(l)).collect()
    }

    /// Balanced (macro) accuracy: mean of per-label recalls over labels
    /// present in the data. The paper's `Acc = (lA1 + ... + lAm) / m`.
    pub fn balanced_accuracy(&self) -> f64 {
        let present: Vec<f64> = self.recalls().into_iter().flatten().collect();
        if present.is_empty() {
            return 0.0;
        }
        present.iter().sum::<f64>() / present.len() as f64
    }

    /// Plain (micro) accuracy: total correct over total observations.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: u64 = (0..self.classes).map(|i| self.count(i, i)).sum();
        correct as f64 / total as f64
    }
}

/// Balanced accuracy of predictions against ground truth (see
/// [`ConfusionMatrix::balanced_accuracy`]).
pub fn balanced_accuracy(classes: usize, actual: &[usize], predicted: &[usize]) -> f64 {
    ConfusionMatrix::from_predictions(classes, actual, predicted).balanced_accuracy()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions_score_one() {
        let y = vec![0, 1, 2, 0, 1, 2];
        let cm = ConfusionMatrix::from_predictions(3, &y, &y);
        assert_eq!(cm.balanced_accuracy(), 1.0);
        assert_eq!(cm.accuracy(), 1.0);
    }

    #[test]
    fn balanced_accuracy_ignores_class_imbalance() {
        // 90 of label 0 all correct, 10 of label 1 all wrong:
        // micro accuracy = 0.9 but balanced accuracy = 0.5.
        let mut actual = vec![0; 90];
        actual.extend(vec![1; 10]);
        let predicted = vec![0; 100];
        let cm = ConfusionMatrix::from_predictions(2, &actual, &predicted);
        assert!((cm.accuracy() - 0.9).abs() < 1e-9);
        assert!((cm.balanced_accuracy() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn recall_per_label() {
        let actual = vec![0, 0, 1, 1];
        let predicted = vec![0, 1, 1, 1];
        let cm = ConfusionMatrix::from_predictions(2, &actual, &predicted);
        assert_eq!(cm.recall(0), Some(0.5));
        assert_eq!(cm.recall(1), Some(1.0));
    }

    #[test]
    fn absent_label_is_excluded_from_mean() {
        // Only labels 0 and 1 appear; label 2 must not drag the mean down.
        let actual = vec![0, 1];
        let predicted = vec![0, 1];
        let cm = ConfusionMatrix::from_predictions(3, &actual, &predicted);
        assert_eq!(cm.recall(2), None);
        assert_eq!(cm.balanced_accuracy(), 1.0);
    }

    #[test]
    fn empty_matrix_scores_zero() {
        let cm = ConfusionMatrix::new(4);
        assert_eq!(cm.balanced_accuracy(), 0.0);
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.total(), 0);
    }

    #[test]
    fn record_accumulates() {
        let mut cm = ConfusionMatrix::new(2);
        cm.record(0, 0);
        cm.record(0, 0);
        cm.record(0, 1);
        assert_eq!(cm.count(0, 0), 2);
        assert_eq!(cm.count(0, 1), 1);
        assert_eq!(cm.total(), 3);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn record_rejects_out_of_range() {
        let mut cm = ConfusionMatrix::new(2);
        cm.record(2, 0);
    }

    #[test]
    fn helper_matches_matrix_method() {
        let actual = vec![0, 1, 1, 0];
        let predicted = vec![0, 0, 1, 0];
        let via_helper = balanced_accuracy(2, &actual, &predicted);
        let via_matrix =
            ConfusionMatrix::from_predictions(2, &actual, &predicted).balanced_accuracy();
        assert_eq!(via_helper, via_matrix);
    }
}
