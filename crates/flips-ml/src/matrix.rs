//! Row-major dense matrices with cache-blocked GEMM kernels.
//!
//! A deliberately small linear-algebra kernel: just the operations the
//! training stack needs (GEMM with optional transposes, row-broadcast adds,
//! element-wise maps) with bounds-checked constructors and debug-mode shape
//! assertions.
//!
//! # Kernel design
//!
//! The three GEMM variants (`A·B`, `Aᵀ·B`, `A·Bᵀ`) share one blocked,
//! panel-packed engine (see [`gemm`]):
//!
//! - the right-hand operand is packed once per call into `NR`-wide column
//!   panels (`panel[j/NR][k][j%NR]`), so the micro-kernel streams
//!   contiguous memory regardless of the transpose flavor — `A·Bᵀ` simply
//!   packs with swapped indices and reuses the same inner loop;
//! - the `Aᵀ·B` flavor additionally packs its *left* operand into
//!   `MR`-wide column panels (`apanel[i/MR][k][i%MR]`): the lhs walk is
//!   otherwise strided by the full row length per `k` step, which left
//!   `gemm_tn` ~1.7× over naive before the pack;
//! - the micro-kernel computes an `MR×NR` register tile with explicit
//!   `f32::mul_add` (FMA), accumulating over `k` in ascending order so
//!   results are **bit-identical for every blocking/threading
//!   configuration**;
//! - large products split their *output row range* across threads with
//!   `std::thread::scope`; each thread owns a disjoint row panel, so the
//!   reduction order never changes — seeded runs stay bit-reproducible at
//!   any thread count;
//! - pack buffers live in thread-local scratch reused across calls:
//!   steady-state GEMM performs **zero heap allocation** when callers use
//!   the `*_into` variants.
//!
//! The seed's naive kernels are retained in [`mod@reference`] (behind
//! `cfg(test)` / the `reference-kernels` feature) as the correctness and
//! performance baseline; the `naive-gemm` feature routes the public
//! `matmul*` API back through them so end-to-end benchmarks can measure
//! the before/after delta.

use serde::{Deserialize, Serialize};

/// A dense, row-major `f32` matrix.
///
/// Rows index samples and columns index features throughout this workspace.
///
/// # Examples
///
/// ```
/// use flips_ml::Matrix;
/// let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
/// assert_eq!(m.shape(), (2, 2));
/// assert_eq!(m[(1, 0)], 3.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a `rows × cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Matrix { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from a slice of equal-length rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows are ragged or `rows` is empty.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows in from_rows");
            data.extend_from_slice(r);
        }
        Matrix { rows: rows.len(), cols, data }
    }

    /// A 1×n row matrix view of a slice.
    pub fn row_vector(v: &[f32]) -> Self {
        Matrix { rows: 1, cols: v.len(), data: v.to_vec() }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Reshapes in place to `rows × cols`, reusing the existing capacity.
    ///
    /// Contents after the call are unspecified (workspace buffers call
    /// this before being overwritten). No allocation occurs once the
    /// backing buffer has grown to its steady-state size.
    pub fn resize(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterator over rows as slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols)
    }

    /// Builds a new matrix from a subset of this matrix's rows.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        self.select_rows_into(indices, &mut out);
        out
    }

    /// Copies a subset of rows into a caller-owned matrix (resized as
    /// needed; allocation-free once `out` has warmed up).
    pub fn select_rows_into(&self, indices: &[usize], out: &mut Matrix) {
        out.resize(indices.len(), self.cols);
        for (i, &r) in indices.iter().enumerate() {
            let src = self.row(r);
            out.row_mut(i).copy_from_slice(src);
        }
    }

    /// Matrix product `self × rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        self.matmul_into(rhs, &mut out);
        out
    }

    /// `self × rhs` written into a caller-owned matrix (resized as
    /// needed).
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul: {}x{} . {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        out.resize(self.rows, rhs.cols);
        gemm::gemm(
            gemm::Layout::Nn,
            self.rows,
            self.cols,
            rhs.cols,
            &self.data,
            self.cols,
            &rhs.data,
            rhs.cols,
            &mut out.data,
        );
    }

    /// `selfᵀ × rhs` without materializing the transpose.
    pub fn matmul_tn(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        self.matmul_tn_into(rhs, &mut out);
        out
    }

    /// `selfᵀ × rhs` written into a caller-owned matrix.
    pub fn matmul_tn_into(&self, rhs: &Matrix, out: &mut Matrix) {
        out.resize(self.cols, rhs.cols);
        self.matmul_tn_into_slice(rhs, &mut out.data);
    }

    /// `selfᵀ × rhs` written into a caller-owned flat buffer of length
    /// `self.cols * rhs.cols` (lets backward passes write gradients
    /// straight into their flat-gradient segments).
    ///
    /// # Panics
    ///
    /// Panics on shape or buffer-length mismatch.
    pub fn matmul_tn_into_slice(&self, rhs: &Matrix, out: &mut [f32]) {
        assert_eq!(
            self.rows, rhs.rows,
            "matmul_tn: ({}x{})^T . {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        assert_eq!(out.len(), self.cols * rhs.cols, "matmul_tn output length");
        gemm::gemm(
            gemm::Layout::Tn,
            self.cols,
            self.rows,
            rhs.cols,
            &self.data,
            self.cols,
            &rhs.data,
            rhs.cols,
            out,
        );
    }

    /// `self × rhsᵀ` without materializing the transpose.
    pub fn matmul_nt(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        self.matmul_nt_into(rhs, &mut out);
        out
    }

    /// `self × rhsᵀ` written into a caller-owned matrix.
    pub fn matmul_nt_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_nt: {}x{} . ({}x{})^T",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        out.resize(self.rows, rhs.rows);
        gemm::gemm(
            gemm::Layout::Nt,
            self.rows,
            self.cols,
            rhs.rows,
            &self.data,
            self.cols,
            &rhs.data,
            rhs.cols,
            &mut out.data,
        );
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Adds `bias` (length = cols) to every row in place.
    pub fn add_row_broadcast(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "broadcast length mismatch");
        for row in self.data.chunks_exact_mut(self.cols) {
            for (x, &b) in row.iter_mut().zip(bias) {
                *x += b;
            }
        }
    }

    /// Element-wise in-place map.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Copies `src`'s contents and shape into `self`, reusing capacity.
    pub fn copy_from(&mut self, src: &Matrix) {
        self.resize(src.rows, src.cols);
        self.data.copy_from_slice(&src.data);
    }

    /// Element-wise addition of `alpha * rhs` into `self`.
    pub fn axpy(&mut self, alpha: f32, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += alpha * b;
        }
    }

    /// Scales every element by `alpha` in place.
    pub fn scale(&mut self, alpha: f32) {
        for x in &mut self.data {
            *x *= alpha;
        }
    }

    /// Hadamard (element-wise) product in place.
    pub fn hadamard_inplace(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "hadamard shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a *= b;
        }
    }

    /// Sum of each column (length = cols).
    pub fn col_sums(&self) -> Vec<f32> {
        let mut sums = vec![0.0; self.cols];
        self.col_sums_into(&mut sums);
        sums
    }

    /// Sum of each column written into a caller-owned buffer.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.cols`.
    pub fn col_sums_into(&self, out: &mut [f32]) {
        assert_eq!(out.len(), self.cols, "col_sums output length");
        out.fill(0.0);
        for row in self.data.chunks_exact(self.cols) {
            for (s, &x) in out.iter_mut().zip(row) {
                *s += x;
            }
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Index of the maximum entry in each row (ties resolve to the first).
    pub fn argmax_rows(&self) -> Vec<usize> {
        self.rows_iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f32;

    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

/// The blocked, panel-packed GEMM engine shared by all `matmul*` variants.
pub mod gemm {
    use std::cell::RefCell;

    /// Rows per register micro-tile.
    const MR: usize = 4;
    /// Columns per register micro-tile (two AVX-512 lane sets; four AVX2).
    const NR: usize = 32;
    /// Minimum FLOP count (2·m·k·n) before output rows are split across
    /// scoped threads; below this the spawn cost dominates.
    const PARALLEL_FLOPS: usize = 1 << 23;
    /// Upper bound on worker threads.
    const MAX_THREADS: usize = 8;

    thread_local! {
        /// Reusable rhs pack buffer: steady-state GEMM allocates nothing.
        static PACK: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
        /// Reusable lhs pack buffer for the `Aᵀ·B` flavor (per worker
        /// thread: each packs exactly the output rows it owns).
        static APACK: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    }

    /// Which operand is logically transposed.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Layout {
        /// `out = A·B` — `A` is `m×k` (lda = k), `B` is `k×n` (ldb = n).
        Nn,
        /// `out = Aᵀ·B` — `A` is `k×m` (lda = m), `B` is `k×n` (ldb = n).
        Tn,
        /// `out = A·Bᵀ` — `A` is `m×k` (lda = k), `B` is `n×k` (ldb = k).
        Nt,
    }

    /// Computes `out = op(A) · op(B)` where `out` is `m×n` and the shared
    /// dimension is `k`, per [`Layout`]. `out` is fully overwritten.
    ///
    /// Accumulation runs over `k` in ascending order for every element,
    /// independent of blocking and threading — bit-reproducible.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths disagree with the dimensions.
    #[allow(clippy::too_many_arguments)]
    pub fn gemm(
        layout: Layout,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: &[f32],
        ldb: usize,
        out: &mut [f32],
    ) {
        assert_eq!(out.len(), m * n, "gemm output length");
        match layout {
            Layout::Nn | Layout::Nt => assert_eq!(a.len(), m * lda, "gemm lhs length"),
            Layout::Tn => assert_eq!(a.len(), k * lda, "gemm lhs length"),
        }
        match layout {
            Layout::Nn | Layout::Tn => assert_eq!(b.len(), k * ldb, "gemm rhs length"),
            Layout::Nt => assert_eq!(b.len(), n * ldb, "gemm rhs length"),
        }
        #[cfg(feature = "naive-gemm")]
        {
            return super::reference::gemm_naive(layout, m, k, n, a, lda, b, ldb, out);
        }
        #[allow(unreachable_code)]
        {
            if m == 0 || n == 0 {
                return;
            }
            if k == 0 {
                out.fill(0.0);
                return;
            }

            PACK.with(|cell| {
                let mut pack = cell.borrow_mut();
                let panels = n.div_ceil(NR);
                let need = panels * k * NR;
                if pack.len() < need {
                    pack.resize(need, 0.0);
                }
                let pack = &mut pack[..need];
                match layout {
                    // B indexed [k][j]: panel[p][kk][jj] = B[kk][p·NR+jj].
                    Layout::Nn | Layout::Tn => {
                        for p in 0..panels {
                            let j0 = p * NR;
                            let w = NR.min(n - j0);
                            let dst = &mut pack[p * k * NR..(p + 1) * k * NR];
                            if w < NR {
                                // Keep tail lanes zeroed so stale values
                                // from earlier calls cannot go subnormal
                                // (the lanes are computed, then discarded).
                                dst.fill(0.0);
                            }
                            for kk in 0..k {
                                let src = &b[kk * ldb + j0..kk * ldb + j0 + w];
                                dst[kk * NR..kk * NR + w].copy_from_slice(src);
                            }
                        }
                    }
                    // B indexed [j][k]: packing transposes on the fly.
                    Layout::Nt => {
                        for p in 0..panels {
                            let j0 = p * NR;
                            let w = NR.min(n - j0);
                            let dst = &mut pack[p * k * NR..(p + 1) * k * NR];
                            if w < NR {
                                dst.fill(0.0);
                            }
                            for jj in 0..w {
                                let src = &b[(j0 + jj) * ldb..(j0 + jj) * ldb + k];
                                for (kk, &v) in src.iter().enumerate() {
                                    dst[kk * NR + jj] = v;
                                }
                            }
                        }
                    }
                }

                let threads = if 2 * m * k * n >= PARALLEL_FLOPS {
                    std::thread::available_parallelism()
                        .map_or(1, |t| t.get())
                        .min(MAX_THREADS)
                        .min(m)
                } else {
                    1
                };
                let pack: &[f32] = pack;
                match layout {
                    Layout::Nn | Layout::Nt => {
                        if threads <= 1 {
                            compute_rows_nn(0, m, k, n, a, lda, pack, out);
                        } else {
                            // Disjoint row panels per thread: identical
                            // per-element accumulation order at any
                            // thread count.
                            let chunk = m.div_ceil(threads);
                            std::thread::scope(|scope| {
                                for (t, out_chunk) in out.chunks_mut(chunk * n).enumerate() {
                                    let i0 = t * chunk;
                                    let rows = out_chunk.len() / n;
                                    scope.spawn(move || {
                                        compute_rows_nn(i0, rows, k, n, a, lda, pack, out_chunk);
                                    });
                                }
                            });
                        }
                    }
                    Layout::Tn => APACK.with(|acell| {
                        // Pack the lhs — all m output rows (= lhs
                        // columns) — into MR-wide panels contiguous in
                        // k, so the micro-kernel streams both operands
                        // sequentially instead of striding the lhs by
                        // lda every k step. Packed once on the calling
                        // thread (the thread-local buffer is reused
                        // across calls, like the rhs pack) and shared
                        // read-only with the workers; the O(m·k) copy
                        // amortizes over the n/NR panel sweeps.
                        let mut apack = acell.borrow_mut();
                        let need = m.div_ceil(MR) * k * MR;
                        if apack.len() < need {
                            apack.resize(need, 0.0);
                        }
                        let apack = &mut apack[..need];
                        let mut i = 0;
                        while i < m {
                            let mr = MR.min(m - i);
                            let dst = &mut apack[(i / MR) * k * MR..(i / MR + 1) * k * MR];
                            if mr < MR {
                                // Tail lanes are computed and discarded;
                                // keep them zeroed so stale values
                                // cannot go subnormal.
                                dst.fill(0.0);
                            }
                            for kk in 0..k {
                                let src = &a[kk * lda + i..kk * lda + i + mr];
                                dst[kk * MR..kk * MR + mr].copy_from_slice(src);
                            }
                            i += MR;
                        }
                        let apack: &[f32] = apack;
                        if threads <= 1 {
                            compute_rows_tn(0, m, k, n, apack, pack, out);
                        } else {
                            // MR-aligned chunks so every worker's row
                            // range starts on a pack-tile boundary.
                            let chunk = m.div_ceil(threads).div_ceil(MR) * MR;
                            std::thread::scope(|scope| {
                                for (t, out_chunk) in out.chunks_mut(chunk * n).enumerate() {
                                    let i0 = t * chunk;
                                    let rows = out_chunk.len() / n;
                                    scope.spawn(move || {
                                        compute_rows_tn(i0, rows, k, n, apack, pack, out_chunk);
                                    });
                                }
                            });
                        }
                    }),
                }
            });
        }
    }

    /// The micro-kernels keep an `MR×NR` accumulator tile in registers,
    /// feed it with `f32::mul_add` (forcing FMA codegen — rustc does not
    /// contract `a*b + c` on its own), and accumulate `k` in ascending
    /// order so every element's summation order is fixed.
    /// Tile sweep for the non-transposed-lhs layouts.
    #[allow(clippy::too_many_arguments)]
    fn compute_rows_nn(
        i0: usize,
        rows: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        pack: &[f32],
        out: &mut [f32],
    ) {
        let panels = n.div_ceil(NR);
        let mut i = 0;
        while i < rows {
            let mr = MR.min(rows - i);
            for p in 0..panels {
                let j0 = p * NR;
                let w = NR.min(n - j0);
                let panel = &pack[p * k * NR..(p + 1) * k * NR];
                let mut acc = [[0.0f32; NR]; MR];
                // A rows are contiguous in k; broadcast a[i][k].
                micro_nn(&mut acc, mr, a, lda, i0 + i, k, panel);
                for (ii, acc_row) in acc.iter().enumerate().take(mr) {
                    let dst = &mut out[(i + ii) * n + j0..(i + ii) * n + j0 + w];
                    dst.copy_from_slice(&acc_row[..w]);
                }
            }
            i += mr;
        }
    }

    /// Tile sweep for the transposed-lhs layout over the packed lhs.
    ///
    /// `i0` is the global output-row offset of this worker's range and
    /// must be a multiple of `MR` so the range starts on a pack-tile
    /// boundary (`apack` covers the full matrix).
    fn compute_rows_tn(
        i0: usize,
        rows: usize,
        k: usize,
        n: usize,
        apack: &[f32],
        pack: &[f32],
        out: &mut [f32],
    ) {
        debug_assert_eq!(i0 % MR, 0, "worker range must start on a pack tile");
        let panels = n.div_ceil(NR);
        let mut i = 0;
        while i < rows {
            let mr = MR.min(rows - i);
            let tile = (i0 + i) / MR;
            let apanel = &apack[tile * k * MR..(tile + 1) * k * MR];
            for p in 0..panels {
                let j0 = p * NR;
                let w = NR.min(n - j0);
                let panel = &pack[p * k * NR..(p + 1) * k * NR];
                let mut acc = [[0.0f32; NR]; MR];
                micro_tn(&mut acc, mr, apanel, panel);
                for (ii, acc_row) in acc.iter().enumerate().take(mr) {
                    let dst = &mut out[(i + ii) * n + j0..(i + ii) * n + j0 + w];
                    dst.copy_from_slice(&acc_row[..w]);
                }
            }
            i += mr;
        }
    }

    /// `MR×NR` micro-kernel for the non-transposed-lhs layouts.
    #[inline]
    fn micro_nn(
        acc: &mut [[f32; NR]; MR],
        mr: usize,
        a: &[f32],
        lda: usize,
        row0: usize,
        k: usize,
        panel: &[f32],
    ) {
        if mr == MR {
            let a0 = &a[row0 * lda..row0 * lda + k];
            let a1 = &a[(row0 + 1) * lda..(row0 + 1) * lda + k];
            let a2 = &a[(row0 + 2) * lda..(row0 + 2) * lda + k];
            let a3 = &a[(row0 + 3) * lda..(row0 + 3) * lda + k];
            let [acc0, acc1, acc2, acc3] = acc;
            let streams =
                panel.chunks_exact(NR).zip(a0.iter()).zip(a1.iter()).zip(a2.iter()).zip(a3.iter());
            for ((((bv, &x0), &x1), &x2), &x3) in streams {
                for j in 0..NR {
                    acc0[j] = x0.mul_add(bv[j], acc0[j]);
                    acc1[j] = x1.mul_add(bv[j], acc1[j]);
                    acc2[j] = x2.mul_add(bv[j], acc2[j]);
                    acc3[j] = x3.mul_add(bv[j], acc3[j]);
                }
            }
        } else {
            for (ii, acc_row) in acc.iter_mut().enumerate().take(mr) {
                let ar = &a[(row0 + ii) * lda..(row0 + ii) * lda + k];
                for (bv, &aik) in panel.chunks_exact(NR).zip(ar) {
                    for (dst, &bj) in acc_row.iter_mut().zip(bv) {
                        *dst = aik.mul_add(bj, *dst);
                    }
                }
            }
        }
    }

    /// `MR×NR` micro-kernel for the transposed-lhs layout (`Aᵀ·B`) over
    /// the `MR`-wide lhs panel: both operands stream contiguously, one
    /// `MR`-chunk and one `NR`-chunk per `k` step.
    #[inline]
    fn micro_tn(acc: &mut [[f32; NR]; MR], mr: usize, apanel: &[f32], panel: &[f32]) {
        if mr == MR {
            let [acc0, acc1, acc2, acc3] = acc;
            for (av, bv) in apanel.chunks_exact(MR).zip(panel.chunks_exact(NR)) {
                for j in 0..NR {
                    acc0[j] = av[0].mul_add(bv[j], acc0[j]);
                    acc1[j] = av[1].mul_add(bv[j], acc1[j]);
                    acc2[j] = av[2].mul_add(bv[j], acc2[j]);
                    acc3[j] = av[3].mul_add(bv[j], acc3[j]);
                }
            }
        } else {
            for (av, bv) in apanel.chunks_exact(MR).zip(panel.chunks_exact(NR)) {
                for (ii, acc_row) in acc.iter_mut().enumerate().take(mr) {
                    let aik = av[ii];
                    for (dst, &bj) in acc_row.iter_mut().zip(bv) {
                        *dst = aik.mul_add(bj, *dst);
                    }
                }
            }
        }
    }
}

/// The seed's naive triple-loop kernels, retained as the correctness and
/// performance baseline for the blocked engine.
#[cfg(any(test, feature = "reference-kernels"))]
pub mod reference {
    use super::gemm::Layout;
    use super::Matrix;

    /// Naive `A·B` (the seed's i-k-j streaming loop).
    pub fn matmul(lhs: &Matrix, rhs: &Matrix) -> Matrix {
        assert_eq!(lhs.cols, rhs.rows, "reference matmul shape");
        let mut out = Matrix::zeros(lhs.rows, rhs.cols);
        gemm_naive(
            Layout::Nn,
            lhs.rows,
            lhs.cols,
            rhs.cols,
            &lhs.data,
            lhs.cols,
            &rhs.data,
            rhs.cols,
            &mut out.data,
        );
        out
    }

    /// Naive `Aᵀ·B`.
    pub fn matmul_tn(lhs: &Matrix, rhs: &Matrix) -> Matrix {
        assert_eq!(lhs.rows, rhs.rows, "reference matmul_tn shape");
        let mut out = Matrix::zeros(lhs.cols, rhs.cols);
        gemm_naive(
            Layout::Tn,
            lhs.cols,
            lhs.rows,
            rhs.cols,
            &lhs.data,
            lhs.cols,
            &rhs.data,
            rhs.cols,
            &mut out.data,
        );
        out
    }

    /// Naive `A·Bᵀ`.
    pub fn matmul_nt(lhs: &Matrix, rhs: &Matrix) -> Matrix {
        assert_eq!(lhs.cols, rhs.cols, "reference matmul_nt shape");
        let mut out = Matrix::zeros(lhs.rows, rhs.rows);
        gemm_naive(
            Layout::Nt,
            lhs.rows,
            lhs.cols,
            rhs.rows,
            &lhs.data,
            lhs.cols,
            &rhs.data,
            rhs.cols,
            &mut out.data,
        );
        out
    }

    /// The seed's loop nests over flat slices (also the `naive-gemm`
    /// fallback inside the engine).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn gemm_naive(
        layout: Layout,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        lda: usize,
        b: &[f32],
        ldb: usize,
        out: &mut [f32],
    ) {
        out.fill(0.0);
        match layout {
            Layout::Nn => {
                for i in 0..m {
                    let a_row = &a[i * lda..i * lda + k];
                    let out_row = &mut out[i * n..(i + 1) * n];
                    for (kk, &av) in a_row.iter().enumerate() {
                        if av == 0.0 {
                            continue;
                        }
                        let b_row = &b[kk * ldb..kk * ldb + n];
                        for (o, &bv) in out_row.iter_mut().zip(b_row) {
                            *o += av * bv;
                        }
                    }
                }
            }
            Layout::Tn => {
                for r in 0..k {
                    let a_row = &a[r * lda..r * lda + m];
                    let b_row = &b[r * ldb..r * ldb + n];
                    for (i, &av) in a_row.iter().enumerate() {
                        if av == 0.0 {
                            continue;
                        }
                        let out_row = &mut out[i * n..(i + 1) * n];
                        for (o, &bv) in out_row.iter_mut().zip(b_row) {
                            *o += av * bv;
                        }
                    }
                }
            }
            Layout::Nt => {
                for i in 0..m {
                    let a_row = &a[i * lda..i * lda + k];
                    for j in 0..n {
                        let b_row = &b[j * ldb..j * ldb + k];
                        let mut acc = 0.0;
                        for (&av, &bv) in a_row.iter().zip(b_row) {
                            acc += av * bv;
                        }
                        out[i * n + j] = acc;
                    }
                }
            }
        }
    }
}

/// Euclidean (L2) distance between two equal-length slices.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn euclidean_distance(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "euclidean_distance length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f32>().sqrt()
}

/// Dot product of two equal-length slices.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// L2 norm of a slice.
pub fn l2_norm(a: &[f32]) -> f32 {
    a.iter().map(|x| x * x).sum::<f32>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_shape_and_is_zero() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_rows_round_trips_indexing() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 0)], 4.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_rejects_ragged_input() {
        let _ = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        let via_helper = a.matmul_tn(&b);
        let via_transpose = a.transpose().matmul(&b);
        assert_eq!(via_helper, via_transpose);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0], vec![9.0, 10.0]]);
        let via_helper = a.matmul_nt(&b);
        let via_transpose = a.matmul(&b.transpose());
        assert_eq!(via_helper, via_transpose);
    }

    /// Deterministic pseudo-random matrix for kernel cross-checks.
    fn patterned(rows: usize, cols: usize, salt: u32) -> Matrix {
        let data: Vec<f32> = (0..rows * cols)
            .map(|i| {
                let h = (i as u32).wrapping_mul(2654435761).wrapping_add(salt);
                ((h >> 16) as f32 / 65536.0) - 0.5
            })
            .collect();
        Matrix::from_vec(rows, cols, data)
    }

    fn assert_close(a: &Matrix, b: &Matrix, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() <= tol, "kernel mismatch: {x} vs {y}");
        }
    }

    #[test]
    fn blocked_kernels_match_reference_across_shapes() {
        // Shapes straddling every tile boundary: MR=4 and NR=32 tails, odd
        // dims, tall/wide/degenerate-k cases.
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (3, 5, 7),
            (4, 16, 16),
            (5, 17, 33),
            (8, 1, 31),
            (17, 64, 15),
            (64, 64, 64),
            (33, 129, 65),
            (2, 300, 3),
        ] {
            let a = patterned(m, k, 1);
            let b = patterned(k, n, 2);
            assert_close(&a.matmul(&b), &reference::matmul(&a, &b), 1e-4);

            let at = patterned(k, m, 3);
            assert_close(&at.matmul_tn(&b), &reference::matmul_tn(&at, &b), 1e-4);

            let bt = patterned(n, k, 4);
            assert_close(&a.matmul_nt(&bt), &reference::matmul_nt(&a, &bt), 1e-4);
        }
    }

    #[test]
    fn into_variants_reuse_and_resize_output() {
        let a = patterned(9, 12, 5);
        let b = patterned(12, 21, 6);
        let mut out = Matrix::zeros(1, 1);
        a.matmul_into(&b, &mut out);
        assert_eq!(out.shape(), (9, 21));
        assert_close(&out, &reference::matmul(&a, &b), 1e-4);
        // Second call with different shapes reuses the buffer.
        let c = patterned(4, 12, 7);
        c.matmul_into(&b, &mut out);
        assert_eq!(out.shape(), (4, 21));
        assert_close(&out, &reference::matmul(&c, &b), 1e-4);
    }

    #[test]
    fn tn_into_slice_writes_flat_gradient_segment() {
        let a = patterned(10, 6, 8);
        let b = patterned(10, 9, 9);
        let mut buf = vec![0.0f32; 6 * 9];
        a.matmul_tn_into_slice(&b, &mut buf);
        let expect = reference::matmul_tn(&a, &b);
        for (x, y) in buf.iter().zip(expect.as_slice()) {
            assert!((x - y).abs() <= 1e-4);
        }
    }

    #[test]
    fn large_gemm_is_deterministic_across_calls() {
        // Exercises the threaded path (when cores are available) and a
        // long-k accumulation; results must be bit-identical call to call.
        let a = patterned(300, 600, 10);
        let b = patterned(600, 200, 11);
        let first = a.matmul(&b);
        for _ in 0..2 {
            assert_eq!(a.matmul(&b), first);
        }
        assert_close(&first, &reference::matmul(&a, &b), 1e-3);
    }

    #[test]
    fn large_tn_gemm_is_correct_and_deterministic() {
        // Above PARALLEL_FLOPS with an output-row count (301) that is
        // neither a multiple of the tile size nor of any thread count:
        // the shared lhs pack must hold up across MR-aligned worker
        // splits, and repeated calls must be bit-identical.
        let at = patterned(600, 301, 12);
        let b = patterned(600, 200, 13);
        let first = at.matmul_tn(&b);
        for _ in 0..2 {
            assert_eq!(at.matmul_tn(&b), first);
        }
        assert_close(&first, &reference::matmul_tn(&at, &b), 1e-3);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn add_row_broadcast_adds_to_every_row() {
        let mut m = Matrix::zeros(2, 3);
        m.add_row_broadcast(&[1.0, 2.0, 3.0]);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn col_sums_sums_columns() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.col_sums(), vec![4.0, 6.0]);
    }

    #[test]
    fn argmax_rows_picks_largest() {
        let m = Matrix::from_rows(&[vec![0.1, 0.9], vec![0.8, 0.2]]);
        assert_eq!(m.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn select_rows_copies_requested_rows() {
        let m = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let s = m.select_rows(&[2, 0]);
        assert_eq!(s.as_slice(), &[3.0, 1.0]);
    }

    #[test]
    fn axpy_and_scale_compose() {
        let mut a = Matrix::filled(1, 2, 1.0);
        let b = Matrix::filled(1, 2, 2.0);
        a.axpy(0.5, &b);
        a.scale(2.0);
        assert_eq!(a.as_slice(), &[4.0, 4.0]);
    }

    #[test]
    fn euclidean_distance_pythagoras() {
        assert!((euclidean_distance(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn frobenius_norm_known_value() {
        let m = Matrix::from_rows(&[vec![3.0, 4.0]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-6);
    }
}
