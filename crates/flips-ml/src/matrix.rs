//! Row-major dense matrices.
//!
//! A deliberately small linear-algebra kernel: just the operations the
//! training stack needs (GEMM with optional transposes, row-broadcast adds,
//! element-wise maps) with bounds-checked constructors and debug-mode shape
//! assertions.

use serde::{Deserialize, Serialize};

/// A dense, row-major `f32` matrix.
///
/// Rows index samples and columns index features throughout this workspace.
///
/// # Examples
///
/// ```
/// use flips_ml::Matrix;
/// let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
/// assert_eq!(m.shape(), (2, 2));
/// assert_eq!(m[(1, 0)], 3.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a `rows × cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Matrix { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from a slice of equal-length rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows are ragged or `rows` is empty.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows in from_rows");
            data.extend_from_slice(r);
        }
        Matrix { rows: rows.len(), cols, data }
    }

    /// A 1×n row matrix view of a slice.
    pub fn row_vector(v: &[f32]) -> Self {
        Matrix { rows: 1, cols: v.len(), data: v.to_vec() }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterator over rows as slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols)
    }

    /// Builds a new matrix from a subset of this matrix's rows.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (i, &r) in indices.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(r));
        }
        out
    }

    /// Matrix product `self × rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul: {}x{} . {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // i-k-j loop order keeps the inner loop streaming over contiguous
        // memory in both `rhs` and `out`.
        for i in 0..self.rows {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `selfᵀ × rhs` without materializing the transpose.
    pub fn matmul_tn(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, rhs.rows,
            "matmul_tn: ({}x{})^T . {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        for r in 0..self.rows {
            let a_row = &self.data[r * self.cols..(r + 1) * self.cols];
            let b_row = &rhs.data[r * rhs.cols..(r + 1) * rhs.cols];
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self × rhsᵀ` without materializing the transpose.
    pub fn matmul_nt(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_nt: {}x{} . ({}x{})^T",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            for j in 0..rhs.rows {
                let b_row = &rhs.data[j * rhs.cols..(j + 1) * rhs.cols];
                let mut acc = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                out.data[i * rhs.rows + j] = acc;
            }
        }
        out
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Adds `bias` (length = cols) to every row in place.
    pub fn add_row_broadcast(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "broadcast length mismatch");
        for row in self.data.chunks_exact_mut(self.cols) {
            for (x, &b) in row.iter_mut().zip(bias) {
                *x += b;
            }
        }
    }

    /// Element-wise in-place map.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Element-wise addition of `alpha * rhs` into `self`.
    pub fn axpy(&mut self, alpha: f32, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += alpha * b;
        }
    }

    /// Scales every element by `alpha` in place.
    pub fn scale(&mut self, alpha: f32) {
        for x in &mut self.data {
            *x *= alpha;
        }
    }

    /// Hadamard (element-wise) product in place.
    pub fn hadamard_inplace(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "hadamard shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a *= b;
        }
    }

    /// Sum of each column (length = cols).
    pub fn col_sums(&self) -> Vec<f32> {
        let mut sums = vec![0.0; self.cols];
        for row in self.data.chunks_exact(self.cols) {
            for (s, &x) in sums.iter_mut().zip(row) {
                *s += x;
            }
        }
        sums
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Index of the maximum entry in each row (ties resolve to the first).
    pub fn argmax_rows(&self) -> Vec<usize> {
        self.rows_iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f32;

    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

/// Euclidean (L2) distance between two equal-length slices.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn euclidean_distance(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "euclidean_distance length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f32>().sqrt()
}

/// Dot product of two equal-length slices.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// L2 norm of a slice.
pub fn l2_norm(a: &[f32]) -> f32 {
    a.iter().map(|x| x * x).sum::<f32>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_shape_and_is_zero() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_rows_round_trips_indexing() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 0)], 4.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_rejects_ragged_input() {
        let _ = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        let via_helper = a.matmul_tn(&b);
        let via_transpose = a.transpose().matmul(&b);
        assert_eq!(via_helper, via_transpose);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0], vec![9.0, 10.0]]);
        let via_helper = a.matmul_nt(&b);
        let via_transpose = a.matmul(&b.transpose());
        assert_eq!(via_helper, via_transpose);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn add_row_broadcast_adds_to_every_row() {
        let mut m = Matrix::zeros(2, 3);
        m.add_row_broadcast(&[1.0, 2.0, 3.0]);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn col_sums_sums_columns() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.col_sums(), vec![4.0, 6.0]);
    }

    #[test]
    fn argmax_rows_picks_largest() {
        let m = Matrix::from_rows(&[vec![0.1, 0.9], vec![0.8, 0.2]]);
        assert_eq!(m.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn select_rows_copies_requested_rows() {
        let m = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let s = m.select_rows(&[2, 0]);
        assert_eq!(s.as_slice(), &[3.0, 1.0]);
    }

    #[test]
    fn axpy_and_scale_compose() {
        let mut a = Matrix::filled(1, 2, 1.0);
        let b = Matrix::filled(1, 2, 2.0);
        a.axpy(0.5, &b);
        a.scale(2.0);
        assert_eq!(a.as_slice(), &[4.0, 4.0]);
    }

    #[test]
    fn euclidean_distance_pythagoras() {
        assert!((euclidean_distance(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn frobenius_norm_known_value() {
        let m = Matrix::from_rows(&[vec![3.0, 4.0]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-6);
    }
}
