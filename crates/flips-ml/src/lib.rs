//! # flips-ml — neural-network training substrate
//!
//! A small, dependency-light machine-learning stack built for the FLIPS
//! reproduction. The paper trains a 1-D CNN (MIT-BIH ECG), DenseNet-121
//! (HAM10000) and LeNet-5 (FEMNIST / FashionMNIST) on GPUs; this crate
//! provides CPU-friendly stand-ins — multinomial logistic regression, a
//! configurable multi-layer perceptron and a small 1-D CNN — whose accuracy
//! is sensitive to the label distribution of their training data, which is
//! the property the FLIPS evaluation exercises.
//!
//! Design decisions:
//!
//! - **Flat parameter vectors.** Every [`Model`] exposes its
//!   parameters as one flattened `Vec<f32>`. Federated-learning servers
//!   aggregate flat vectors, FedProx adds a proximal pull toward a flat
//!   global vector, and adaptive server optimizers (Yogi/Adam/Adagrad) keep
//!   flat moment estimates. Flattening once at the model boundary keeps all
//!   of that trivial.
//! - **Deterministic by construction.** All randomness flows through caller
//!   supplied [`rand`] RNGs; seeding a simulation reproduces it bit-for-bit.
//! - **Balanced accuracy.** The paper's accuracy metric is the mean of
//!   per-label recalls (its Eq. in §4.4); [`metrics`] implements exactly
//!   that.
//!
//! # Example
//!
//! Build a model from a spec and step it — the flat parameter vector is
//! the entire interface the FL layers aggregate over:
//!
//! ```
//! use flips_ml::model::ModelSpec;
//! use flips_ml::rng::seeded;
//!
//! let spec = ModelSpec::Mlp { dims: vec![4, 8, 3] };
//! let model = spec.build(&mut seeded(7));
//! assert_eq!(model.num_params(), 4 * 8 + 8 + 8 * 3 + 3);
//! assert_eq!(model.params().len(), model.num_params());
//! ```

pub mod activation;
pub mod init;
pub mod loss;
pub mod matrix;
pub mod metrics;
pub mod model;
pub mod optimizer;
pub mod rng;

pub use matrix::Matrix;
pub use metrics::{balanced_accuracy, ConfusionMatrix};
pub use model::{Conv1dNet, LogisticRegression, Mlp, Model};
pub use optimizer::{Adagrad, Adam, Optimizer, Sgd, Yogi};

/// Errors produced by the ML substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MlError {
    /// Two operands had incompatible shapes; the payload describes them.
    ShapeMismatch(String),
    /// A parameter vector had the wrong length for the model it was
    /// assigned to.
    ParamLength { expected: usize, got: usize },
    /// A hyper-parameter was outside its valid domain.
    InvalidHyperparameter(String),
}

impl std::fmt::Display for MlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MlError::ShapeMismatch(msg) => write!(f, "shape mismatch: {msg}"),
            MlError::ParamLength { expected, got } => {
                write!(f, "parameter vector length {got}, model expects {expected}")
            }
            MlError::InvalidHyperparameter(msg) => {
                write!(f, "invalid hyperparameter: {msg}")
            }
        }
    }
}

impl std::error::Error for MlError {}
