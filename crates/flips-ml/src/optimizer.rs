//! First-order optimizers over flat parameter vectors.
//!
//! The same trait serves both sides of federated learning:
//!
//! - **client side** — parties run [`Sgd`] steps on local mini-batch
//!   gradients (paper Algorithm 1, lines 4–6);
//! - **server side** — FL algorithms apply the aggregated *pseudo-gradient*
//!   (global model minus averaged client model) through a server optimizer:
//!   plain averaging for FedAvg/FedProx, [`Yogi`] for FedYogi, [`Adam`] for
//!   FedAdam, [`Adagrad`] for FedAdagrad (paper §2.1).

use serde::{Deserialize, Serialize};

/// A stateful first-order optimizer over a flat `f32` parameter vector.
///
/// Implementations update `params` in place given a gradient of the same
/// length; they own any moment/velocity state and lazily size it on first
/// use.
pub trait Optimizer: Send {
    /// Applies one update step: conceptually `params ← params − f(grad)`.
    ///
    /// # Panics
    ///
    /// Panics if `grad.len() != params.len()`, or if the optimizer was
    /// previously stepped with a different parameter length.
    fn step(&mut self, params: &mut [f32], grad: &[f32]);

    /// The current base learning rate.
    fn learning_rate(&self) -> f32;

    /// Replaces the base learning rate (used by decay schedules).
    fn set_learning_rate(&mut self, lr: f32);

    /// Clears all accumulated state (moments, velocity).
    fn reset(&mut self);

    /// A short human-readable name, e.g. `"sgd"`.
    fn name(&self) -> &'static str;

    /// Serializes the optimizer's accumulated state (moments, velocity,
    /// step counters) as a flat `f32` word vector, bit-exactly. A
    /// stateless optimizer exports an empty vector. The layout is
    /// implementation-private: only [`Optimizer::import_state`] of the
    /// same implementation understands it.
    fn export_state(&self) -> Vec<f32> {
        Vec::new()
    }

    /// Restores state previously produced by [`Optimizer::export_state`]
    /// on an optimizer of the same kind and configuration. Returns
    /// `false` (leaving the optimizer untouched) when the words cannot
    /// be this implementation's layout.
    fn import_state(&mut self, state: &[f32]) -> bool {
        state.is_empty()
    }
}

/// Stochastic gradient descent with optional classical momentum and weight
/// decay.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<f32>,
}

impl Sgd {
    /// Plain SGD with learning rate `lr`.
    pub fn new(lr: f32) -> Self {
        Sgd { lr, momentum: 0.0, weight_decay: 0.0, velocity: Vec::new() }
    }

    /// SGD with classical momentum `beta`.
    pub fn with_momentum(lr: f32, beta: f32) -> Self {
        Sgd { lr, momentum: beta, weight_decay: 0.0, velocity: Vec::new() }
    }

    /// Adds L2 weight decay `lambda` (applied as `grad + λ·w`).
    #[must_use]
    pub fn weight_decay(mut self, lambda: f32) -> Self {
        self.weight_decay = lambda;
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [f32], grad: &[f32]) {
        assert_eq!(params.len(), grad.len(), "sgd: grad/param length mismatch");
        if self.momentum == 0.0 {
            for (p, &g) in params.iter_mut().zip(grad) {
                let g = g + self.weight_decay * *p;
                *p -= self.lr * g;
            }
            return;
        }
        if self.velocity.len() != params.len() {
            assert!(self.velocity.is_empty(), "sgd: parameter length changed mid-run");
            self.velocity = vec![0.0; params.len()];
        }
        for ((p, &g), v) in params.iter_mut().zip(grad).zip(&mut self.velocity) {
            let g = g + self.weight_decay * *p;
            *v = self.momentum * *v + g;
            *p -= self.lr * *v;
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn reset(&mut self) {
        self.velocity.clear();
    }

    fn name(&self) -> &'static str {
        "sgd"
    }

    fn export_state(&self) -> Vec<f32> {
        self.velocity.clone()
    }

    fn import_state(&mut self, state: &[f32]) -> bool {
        self.velocity = state.to_vec();
        true
    }
}

/// Shared implementation of the adaptive family (Adam / Yogi / Adagrad).
///
/// All three maintain a first moment `m` and a second-moment accumulator `v`
/// and update `p ← p − lr · m̂ / (√v̂ + ε)`; they differ only in how `v` is
/// accumulated:
///
/// - **Adam**: `v ← β₂·v + (1−β₂)·g²` (exponential moving average),
/// - **Yogi**: `v ← v − (1−β₂)·sign(v − g²)·g²` (additive, so `v` reacts
///   slowly when gradients shrink — the property that makes FedYogi robust
///   to heterogeneous client updates),
/// - **Adagrad**: `v ← v + g²` (monotone accumulation, no β₂).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum AdaptiveRule {
    Adam,
    Yogi,
    Adagrad,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct AdaptiveState {
    rule: AdaptiveRule,
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<f32>,
    v: Vec<f32>,
}

impl AdaptiveState {
    fn new(rule: AdaptiveRule, lr: f32, beta1: f32, beta2: f32, eps: f32) -> Self {
        AdaptiveState { rule, lr, beta1, beta2, eps, t: 0, m: Vec::new(), v: Vec::new() }
    }

    fn step(&mut self, params: &mut [f32], grad: &[f32]) {
        assert_eq!(params.len(), grad.len(), "adaptive: grad/param length mismatch");
        if self.m.len() != params.len() {
            assert!(self.m.is_empty(), "adaptive: parameter length changed mid-run");
            self.m = vec![0.0; params.len()];
            self.v = vec![0.0; params.len()];
        }
        self.t += 1;
        let bias1 = 1.0 - self.beta1.powi(self.t as i32);
        let bias2 = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grad[i];
            let g2 = g * g;
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            match self.rule {
                AdaptiveRule::Adam => {
                    self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g2;
                }
                AdaptiveRule::Yogi => {
                    let sign = (self.v[i] - g2).signum();
                    self.v[i] -= (1.0 - self.beta2) * sign * g2;
                }
                AdaptiveRule::Adagrad => {
                    self.v[i] += g2;
                }
            }
            let (m_hat, v_hat) = match self.rule {
                // Adagrad traditionally applies no bias correction.
                AdaptiveRule::Adagrad => (self.m[i] / bias1, self.v[i]),
                _ => (self.m[i] / bias1, self.v[i] / bias2),
            };
            params[i] -= self.lr * m_hat / (v_hat.max(0.0).sqrt() + self.eps);
        }
    }

    fn reset(&mut self) {
        self.t = 0;
        self.m.clear();
        self.v.clear();
    }

    /// Layout: `[t_lo_bits, t_hi_bits, m…, v…]` — the step counter split
    /// across two f32 bit patterns so the round-trip is exact for any
    /// `u64`, followed by the two moment vectors (equal lengths).
    fn export(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(2 + self.m.len() + self.v.len());
        out.push(f32::from_bits(self.t as u32));
        out.push(f32::from_bits((self.t >> 32) as u32));
        out.extend_from_slice(&self.m);
        out.extend_from_slice(&self.v);
        out
    }

    fn import(&mut self, state: &[f32]) -> bool {
        if state.len() < 2 || !(state.len() - 2).is_multiple_of(2) {
            return false;
        }
        let n = (state.len() - 2) / 2;
        self.t = u64::from(state[0].to_bits()) | (u64::from(state[1].to_bits()) << 32);
        self.m = state[2..2 + n].to_vec();
        self.v = state[2 + n..].to_vec();
        true
    }
}

macro_rules! adaptive_optimizer {
    ($(#[$doc:meta])* $name:ident, $rule:expr, $label:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Serialize, Deserialize)]
        pub struct $name {
            state: AdaptiveState,
        }

        impl $name {
            /// Creates the optimizer with the paper-standard defaults
            /// `β₁ = 0.9`, `β₂ = 0.99`, `ε = 1e-3`.
            pub fn new(lr: f32) -> Self {
                $name { state: AdaptiveState::new($rule, lr, 0.9, 0.99, 1e-3) }
            }

            /// Full-control constructor.
            pub fn with_config(lr: f32, beta1: f32, beta2: f32, eps: f32) -> Self {
                $name { state: AdaptiveState::new($rule, lr, beta1, beta2, eps) }
            }
        }

        impl Optimizer for $name {
            fn step(&mut self, params: &mut [f32], grad: &[f32]) {
                self.state.step(params, grad);
            }

            fn learning_rate(&self) -> f32 {
                self.state.lr
            }

            fn set_learning_rate(&mut self, lr: f32) {
                self.state.lr = lr;
            }

            fn reset(&mut self) {
                self.state.reset();
            }

            fn name(&self) -> &'static str {
                $label
            }

            fn export_state(&self) -> Vec<f32> {
                self.state.export()
            }

            fn import_state(&mut self, state: &[f32]) -> bool {
                self.state.import(state)
            }
        }
    };
}

adaptive_optimizer!(
    /// Adam (Kingma & Ba) — exponential moving averages of the gradient and
    /// its square. Used as the server optimizer of FedAdam.
    Adam,
    AdaptiveRule::Adam,
    "adam"
);

adaptive_optimizer!(
    /// Yogi (Zaheer et al.) — Adam with an additive second-moment update
    /// that shrinks `v` only slowly. The server optimizer of FedYogi, which
    /// the paper reports as the best-performing FL algorithm on non-IID
    /// data (§2.1).
    Yogi,
    AdaptiveRule::Yogi,
    "yogi"
);

adaptive_optimizer!(
    /// Adagrad (Duchi et al.) — monotone second-moment accumulation. The
    /// server optimizer of FedAdagrad.
    Adagrad,
    AdaptiveRule::Adagrad,
    "adagrad"
);

/// Step-decay learning-rate schedule: multiply the rate by `factor` every
/// `every` rounds (the paper decays its client LR every 20–30 rounds, §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepDecay {
    /// Initial learning rate.
    pub initial: f32,
    /// Multiplicative factor applied at each decay boundary.
    pub factor: f32,
    /// Decay period in rounds. Zero disables decay.
    pub every: usize,
}

impl StepDecay {
    /// A schedule that never decays.
    pub fn constant(lr: f32) -> Self {
        StepDecay { initial: lr, factor: 1.0, every: 0 }
    }

    /// The learning rate in effect at `round` (0-based).
    pub fn at(&self, round: usize) -> f32 {
        if self.every == 0 {
            return self.initial;
        }
        self.initial * self.factor.powi((round / self.every) as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_grad(params: &[f32]) -> Vec<f32> {
        // f(w) = Σ wᵢ², ∇f = 2w — minimized at the origin.
        params.iter().map(|&w| 2.0 * w).collect()
    }

    fn converges_on_quadratic(opt: &mut dyn Optimizer) -> f32 {
        let mut w = vec![5.0f32, -3.0, 2.0];
        for _ in 0..500 {
            let g = quadratic_grad(&w);
            opt.step(&mut w, &g);
        }
        w.iter().map(|x| x.abs()).fold(0.0, f32::max)
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        assert!(converges_on_quadratic(&mut opt) < 1e-3);
    }

    #[test]
    fn sgd_momentum_converges_on_quadratic() {
        let mut opt = Sgd::with_momentum(0.05, 0.9);
        assert!(converges_on_quadratic(&mut opt) < 1e-3);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.05);
        assert!(converges_on_quadratic(&mut opt) < 1e-2);
    }

    #[test]
    fn yogi_converges_on_quadratic() {
        let mut opt = Yogi::new(0.05);
        assert!(converges_on_quadratic(&mut opt) < 1e-2);
    }

    #[test]
    fn adagrad_converges_on_quadratic() {
        let mut opt = Adagrad::new(0.5);
        assert!(converges_on_quadratic(&mut opt) < 1e-1);
    }

    #[test]
    fn sgd_single_step_matches_hand_computation() {
        let mut opt = Sgd::new(0.1);
        let mut w = vec![1.0];
        opt.step(&mut w, &[2.0]);
        assert!((w[0] - 0.8).abs() < 1e-7);
    }

    #[test]
    fn weight_decay_shrinks_params_with_zero_grad() {
        let mut opt = Sgd::new(0.1).weight_decay(0.5);
        let mut w = vec![1.0];
        opt.step(&mut w, &[0.0]);
        assert!((w[0] - 0.95).abs() < 1e-7);
    }

    #[test]
    fn yogi_second_moment_is_additive() {
        // After one step from v=0, Yogi: v = -(1-β₂)·sign(0-g²)·g² =
        // (1-β₂)·g², identical to Adam's first step; they diverge later when
        // gradients shrink. Check both take the identical first step.
        let mut yogi = Yogi::new(0.1);
        let mut adam = Adam::new(0.1);
        let mut wy = vec![1.0f32];
        let mut wa = vec![1.0f32];
        yogi.step(&mut wy, &[0.5]);
        adam.step(&mut wa, &[0.5]);
        assert!((wy[0] - wa[0]).abs() < 1e-6);
    }

    #[test]
    fn reset_clears_momentum() {
        let mut opt = Sgd::with_momentum(0.1, 0.9);
        let mut w = vec![1.0];
        opt.step(&mut w, &[1.0]);
        opt.reset();
        let mut w2 = vec![1.0];
        let mut fresh = Sgd::with_momentum(0.1, 0.9);
        fresh.step(&mut w2, &[1.0]);
        let mut w1 = vec![w[0]];
        opt.step(&mut w1, &[1.0]);
        let mut w3 = vec![w[0]];
        fresh.reset();
        fresh.step(&mut w3, &[1.0]);
        assert_eq!(w1, w3, "reset optimizer must behave like a fresh one");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn step_rejects_mismatched_grad() {
        let mut opt = Sgd::new(0.1);
        let mut w = vec![1.0, 2.0];
        opt.step(&mut w, &[1.0]);
    }

    #[test]
    fn exported_state_resumes_bit_identically() {
        // Stepping an optimizer k times, exporting, importing into a
        // fresh instance and stepping both once more must agree bitwise
        // — the property the coordinator checkpoint rests on.
        let fresh: [Box<dyn Optimizer>; 4] = [
            Box::new(Sgd::with_momentum(0.05, 0.9)),
            Box::new(Adam::new(0.05)),
            Box::new(Yogi::new(0.05)),
            Box::new(Adagrad::new(0.5)),
        ];
        for mut opt in fresh {
            let mut w = vec![5.0f32, -3.0, 2.0];
            for _ in 0..7 {
                let g = quadratic_grad(&w);
                opt.step(&mut w, &g);
            }
            let mut twin: Box<dyn Optimizer> = match opt.name() {
                "sgd" => Box::new(Sgd::with_momentum(0.05, 0.9)),
                "adam" => Box::new(Adam::new(0.05)),
                "yogi" => Box::new(Yogi::new(0.05)),
                _ => Box::new(Adagrad::new(0.5)),
            };
            assert!(twin.import_state(&opt.export_state()), "{} state imports", opt.name());
            let mut w_twin = w.clone();
            let g = quadratic_grad(&w);
            opt.step(&mut w, &g);
            twin.step(&mut w_twin, &g);
            let same = w.iter().zip(&w_twin).all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "{} resumed step diverged", opt.name());
        }
    }

    #[test]
    fn import_state_rejects_malformed_words() {
        let mut adam = Adam::new(0.05);
        assert!(!adam.import_state(&[1.0]), "adaptive state needs the counter pair");
        assert!(!adam.import_state(&[0.0, 0.0, 1.0]), "odd moment split rejected");
        assert!(adam.import_state(&[0.0, 0.0]), "empty moments are a fresh optimizer");
    }

    #[test]
    fn step_decay_schedule() {
        let s = StepDecay { initial: 1.0, factor: 0.5, every: 10 };
        assert_eq!(s.at(0), 1.0);
        assert_eq!(s.at(9), 1.0);
        assert_eq!(s.at(10), 0.5);
        assert_eq!(s.at(25), 0.25);
    }

    #[test]
    fn constant_schedule_never_decays() {
        let s = StepDecay::constant(0.01);
        assert_eq!(s.at(0), s.at(10_000));
    }
}
