//! Property tests of the scale plane's two load-bearing invariants.
//!
//! **Partition independence**: [`ExactWeightedSum`] is the integer
//! arithmetic that lets aggregation trees exist — however a cohort's
//! updates are partitioned across inner nodes, and in whatever order
//! the partials merge, the folded limbs (and therefore the finished
//! aggregate, bit for bit) must equal the flat fold of the same
//! updates. If this property ever broke, tree topologies would leak
//! into training results.
//!
//! **Spill round-trip**: a [`RosterStore`] sealed to disk segments must
//! read back every record bit-exactly (NaN latency hints included), and
//! no truncated or bit-flipped segment file may load into anything —
//! clean error, never a panic, never a partial roster.

use flips_fl::{ExactWeightedSum, PartyRecord, RosterBuilder};
use proptest::collection::vec;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use std::sync::atomic::{AtomicU64, Ordering};

/// Parameters inside [`flips_fl::aggtree::param_in_domain`]'s bounds
/// (finite, |x| < 2³¹) with enough spread to exercise the fixed point.
fn in_domain_param() -> impl Strategy<Value = f32> {
    (-1.0e6f64..1.0e6).prop_map(|x| x as f32)
}

/// One party's folded contribution: a parameter vector (dim fixed by
/// the caller) and a weight in the fold's accepted range.
type Update = (Vec<f32>, u64);

/// A cohort and its partition: `(dim, updates, inner-node labels)`.
type Cohort = (usize, Vec<Update>, Vec<usize>);

fn update(dim: usize) -> impl Strategy<Value = Update> {
    (vec(in_domain_param(), dim..=dim), 1u64..=u32::MAX as u64)
}

/// A cohort of 1..12 updates over a shared dimension, plus a partition
/// label per update assigning it to one of up to 4 inner nodes.
fn cohort() -> impl Strategy<Value = Cohort> {
    (1usize..8).prop_flat_map(|dim| {
        (1usize..12).prop_flat_map(move |n| {
            (vec(update(dim), n..=n), vec(0usize..4, n..=n))
                .prop_map(move |(updates, labels)| (dim, updates, labels))
        })
    })
}

/// Flat fold of `updates` in order.
fn flat_fold(dim: usize, updates: &[Update]) -> ExactWeightedSum {
    let mut sum = ExactWeightedSum::new(dim);
    for (params, w) in updates {
        sum.fold(params, *w).unwrap();
    }
    sum
}

/// Tree fold: per-label partial sums, merged in the given label order.
fn tree_fold(
    dim: usize,
    updates: &[Update],
    labels: &[usize],
    order: &[usize],
) -> ExactWeightedSum {
    let mut partials: Vec<ExactWeightedSum> = (0..4).map(|_| ExactWeightedSum::new(dim)).collect();
    for ((params, w), &l) in updates.iter().zip(labels) {
        partials[l].fold(params, *w).unwrap();
    }
    let mut sum = ExactWeightedSum::new(dim);
    for &l in order {
        if !partials[l].is_empty() {
            sum.merge(&partials[l]).unwrap();
        }
    }
    sum
}

/// Bit-exact equality: limbs, weight, and the finished f64 aggregate.
fn assert_same(a: &ExactWeightedSum, b: &ExactWeightedSum) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.raw_limbs(), b.raw_limbs());
    prop_assert_eq!(a.total_weight(), b.total_weight());
    let (mut fa, mut fb) = (Vec::new(), Vec::new());
    if a.total_weight() > 0 {
        a.finish_into(&mut fa).unwrap();
        b.finish_into(&mut fb).unwrap();
    }
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    prop_assert_eq!(bits(&fa), bits(&fb));
    Ok(())
}

/// A unique spill directory per proptest case (cases run concurrently
/// across test threads and must never share segment files).
fn case_dir(name: &str) -> std::path::PathBuf {
    static CASE: AtomicU64 = AtomicU64::new(0);
    let id = CASE.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("flips-aggprops-{}-{name}-{id}", std::process::id()))
}

/// Arbitrary roster records: any u64 sizes, any f64 bit pattern as the
/// latency hint (NaNs included), 0..5 label counts.
fn record() -> impl Strategy<Value = PartyRecord> {
    (0u64..=u64::MAX, 0u64..=u64::MAX, vec(0u64..=u64::MAX, 0..5)).prop_map(
        |(data_size, latency_bits, label_counts)| PartyRecord {
            data_size,
            latency_hint: f64::from_bits(latency_bits),
            label_counts,
        },
    )
}

/// Bitwise record equality (`latency_hint` may be NaN).
fn records_eq(a: &PartyRecord, b: &PartyRecord) -> bool {
    a.data_size == b.data_size
        && a.latency_hint.to_bits() == b.latency_hint.to_bits()
        && a.label_counts == b.label_counts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// However the cohort is split across inner nodes, the merged
    /// partials equal the flat fold — limbs, weight, finished bits.
    #[test]
    fn tree_fold_equals_flat_fold_for_any_partition((dim, updates, labels) in cohort()) {
        let flat = flat_fold(dim, &updates);
        let tree = tree_fold(dim, &updates, &labels, &[0, 1, 2, 3]);
        assert_same(&flat, &tree)?;
    }

    /// Merge order cannot matter either: forward and reverse partial
    /// merge orders land on identical bits.
    #[test]
    fn partial_merge_order_is_irrelevant((dim, updates, labels) in cohort()) {
        let fwd = tree_fold(dim, &updates, &labels, &[0, 1, 2, 3]);
        let rev = tree_fold(dim, &updates, &labels, &[3, 2, 1, 0]);
        assert_same(&fwd, &rev)?;
    }

    /// The wire image of a partial (`raw_limbs` + weight + term count)
    /// rebuilds into a sum that merges exactly like the original.
    #[test]
    fn raw_limb_round_trip_preserves_the_fold((dim, updates, labels) in cohort()) {
        let flat = flat_fold(dim, &updates);
        let terms = updates.len() as u64;
        let rebuilt =
            ExactWeightedSum::from_raw(&flat.raw_limbs(), flat.total_weight(), terms).unwrap();
        assert_same(&flat, &rebuilt)?;
        // And merging the rebuilt image into an empty sum is the
        // coordinator's actual receive path.
        let mut merged = ExactWeightedSum::new(dim);
        merged.merge(&rebuilt).unwrap();
        assert_same(&flat, &merged)?;
        let _ = labels;
    }

    /// A rejected fold must leave the sum untouched — the driver's
    /// flat-forward fallback depends on partial-failure atomicity.
    #[test]
    fn rejected_folds_are_atomic((dim, updates, _labels) in cohort(), bad_bits in 0u32..=u32::MAX) {
        let mut sum = flat_fold(dim, &updates);
        let before = (sum.raw_limbs(), sum.total_weight());
        let mut params = updates[0].0.clone();
        // Push one coordinate out of the domain (NaN/inf/huge); skip
        // the rare case the random bits land back inside it.
        let bad = f32::from_bits(bad_bits | 0x7f80_0000);
        params[0] = bad;
        prop_assert!(sum.fold(&params, 1).is_err());
        prop_assert_eq!(before, (sum.raw_limbs(), sum.total_weight()));
        // Zero weight is equally rejected, equally atomically.
        prop_assert!(sum.fold(&updates[0].0, 0).is_err());
        prop_assert_eq!(before, (sum.raw_limbs(), sum.total_weight()));
    }

    /// Arbitrary rosters — any sizes, NaN latency hints, ragged label
    /// vectors — survive seal → spill → page-in bit-exactly, record by
    /// record and under a full scan, across segment boundaries.
    #[test]
    fn spilled_rosters_round_trip_bit_exactly(
        records in vec(record(), 1..40),
        cap in 1usize..8,
        budget in 1usize..3,
    ) {
        let dir = case_dir("roundtrip");
        let mut rb = RosterBuilder::spilling(&dir, budget).unwrap().segment_cap(cap);
        for r in &records {
            rb.push(r.clone()).unwrap();
        }
        let store = rb.finish().unwrap();
        prop_assert_eq!(store.num_parties(), records.len());
        prop_assert_eq!(store.spilled() as usize, records.len().div_ceil(cap));
        for (i, want) in records.iter().enumerate() {
            let got = store.record(i).unwrap();
            prop_assert!(records_eq(&got, want), "record {} moved through the spill", i);
        }
        let mut scanned = Vec::new();
        store.visit_all(&mut |p, r| scanned.push((p, r.clone()))).unwrap();
        prop_assert_eq!(scanned.len(), records.len());
        for (i, (p, got)) in scanned.iter().enumerate() {
            prop_assert_eq!(*p, i);
            prop_assert!(records_eq(got, &records[i]));
        }
        prop_assert!(store.resident_segments() <= budget);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The FLCK corruption harness, pointed at segment files: any
    /// truncation and any single-bit flip of a sealed segment is
    /// rejected with a clean error on page-in — never a panic, never a
    /// partial segment.
    #[test]
    fn corrupt_segment_files_are_rejected(
        records in vec(record(), 1..12),
        pos in 0.0f64..1.0,
        bit in 0usize..8,
        truncate in 0u64..2,
    ) {
        let dir = case_dir("corrupt");
        let mut rb = RosterBuilder::spilling(&dir, 1).unwrap().segment_cap(4);
        for r in &records {
            rb.push(r.clone()).unwrap();
        }
        let store = rb.finish().unwrap();
        let seg0 = dir.join("seg-00000000.flrs");
        let bytes = std::fs::read(&seg0).unwrap();
        let mutated = if truncate == 1 {
            let cut = ((bytes.len() as f64) * pos) as usize; // < len
            bytes[..cut].to_vec()
        } else {
            let mut b = bytes.clone();
            let i = ((b.len() as f64) * pos) as usize;
            b[i] ^= 1 << bit;
            b
        };
        std::fs::write(&seg0, &mutated).unwrap();
        // Evict nothing — budget 1 and nothing resident yet, so the
        // read must page the mutated file and fail cleanly.
        prop_assert!(store.record(0).is_err());
        // Restoring the original bytes heals the store (the failure
        // was the file's, not the cache's).
        std::fs::write(&seg0, &bytes).unwrap();
        prop_assert!(records_eq(&store.record(0).unwrap(), &records[0]));
        std::fs::remove_dir_all(&dir).ok();
    }
}
