//! Property tests of the model-payload codecs.
//!
//! The load-bearing claim is **bit-exactness**: `DeltaLossless` must
//! reproduce arbitrary `f32` vectors — NaN payloads, ±0.0, subnormals,
//! infinities, any bit pattern at all — exactly, whatever reference
//! model the two ends share. Everything downstream (golden-history
//! pinning over the compressed wire) rests on this.

use bytes::Buf;
use flips_fl::codec::{f16_bits_to_f32, f32_to_f16_bits, ModelCodec, PayloadCodec, Role};
use flips_fl::FlError;
use proptest::prelude::*;

/// Any f32 bit pattern, NaNs and subnormals included.
fn any_f32_bits() -> impl Strategy<Value = f32> {
    (0u64..=u32::MAX as u64).prop_map(|bits| f32::from_bits(bits as u32))
}

/// Vectors biased toward the hostile corners: every strategy draw mixes
/// arbitrary bit patterns with the named special values.
fn hostile_vec() -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(
        (any_f32_bits(), 0u64..8).prop_map(|(x, pick)| match pick {
            0 => f32::NAN,
            1 => -0.0,
            2 => 0.0,
            3 => f32::from_bits(1),           // smallest subnormal
            4 => f32::from_bits(0x8000_0001), // negative subnormal
            5 => f32::INFINITY,
            _ => x,
        }),
        0..128,
    )
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn sender(codec: ModelCodec) -> PayloadCodec {
    PayloadCodec::new(codec, Role::Sender)
}

fn receiver(codec: ModelCodec) -> PayloadCodec {
    PayloadCodec::new(codec, Role::Receiver)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// DeltaLossless round-trips arbitrary f32 vectors bit-exactly —
    /// both the inline first frame and the XOR-delta frames against an
    /// equally arbitrary reference.
    #[test]
    fn delta_round_trips_arbitrary_vectors_bit_exactly(
        reference in hostile_vec(),
        payload_bits in proptest::collection::vec(0u64..=u32::MAX as u64, 0..128),
    ) {
        let mut tx = sender(ModelCodec::DeltaLossless);
        let mut rx = receiver(ModelCodec::DeltaLossless);

        // Establish the (arbitrary, NaN-laden) reference on both ends.
        let mut frame0 = bytes::BytesMut::new();
        tx.encode_global(0, &reference, &mut frame0);
        let got = rx.decode_global(0, &mut frame0.freeze()).unwrap();
        prop_assert_eq!(bits(&got), bits(&reference));

        // A payload of the same length deltas against it; any other
        // length falls back to inline. Both must be bit-exact.
        let payload: Vec<f32> = payload_bits
            .iter()
            .map(|&b| f32::from_bits(b as u32))
            .chain(reference.iter().copied().map(|r| f32::from_bits(r.to_bits() ^ 0x8000_0000)))
            .take(reference.len().max(payload_bits.len()))
            .collect();
        let mut frame1 = bytes::BytesMut::new();
        tx.encode_update(&payload, &mut frame1);
        let mut encoded = frame1.freeze();
        let decoded = rx.decode_update(&mut encoded).unwrap();
        prop_assert_eq!(encoded.remaining(), 0, "block not consumed exactly");
        prop_assert_eq!(bits(&decoded), bits(&payload));
    }

    /// A multi-round conversation stays in sync: every global advances
    /// the reference on both ends, every update deltas against it, and
    /// every payload survives bit-for-bit.
    #[test]
    fn delta_conversation_stays_bit_exact_across_rounds(
        rounds in proptest::collection::vec(hostile_vec(), 1..5),
    ) {
        let mut tx = sender(ModelCodec::DeltaLossless);
        let mut rx = receiver(ModelCodec::DeltaLossless);
        for (round, global) in rounds.iter().enumerate() {
            let mut down = bytes::BytesMut::new();
            tx.encode_global(round as u64, global, &mut down);
            let got = rx.decode_global(round as u64, &mut down.freeze()).unwrap();
            prop_assert_eq!(bits(&got), bits(global), "round {} global", round);

            // The party trains and replies with a perturbed update.
            let update: Vec<f32> =
                global.iter().map(|x| f32::from_bits(x.to_bits().wrapping_add(3))).collect();
            let mut up = bytes::BytesMut::new();
            rx.encode_update(&update, &mut up);
            let decoded = tx.decode_update(&mut up.freeze()).unwrap();
            prop_assert_eq!(bits(&decoded), bits(&update), "round {} update", round);
        }
    }

    /// Corrupting any single byte of a delta params block never panics:
    /// it either fails cleanly or decodes to some well-formed vector
    /// (payload bits are not self-describing) — and a codec-tag flip is
    /// reported as the distinct mismatch error.
    #[test]
    fn corrupt_delta_blocks_never_panic(
        reference in proptest::collection::vec(any_f32_bits(), 1..64),
        flip_at in 0usize..4096,
        xor in 1u8..=255,
    ) {
        let mut tx = sender(ModelCodec::DeltaLossless);
        let mut rx = receiver(ModelCodec::DeltaLossless);
        let mut frame0 = bytes::BytesMut::new();
        tx.encode_global(0, &reference, &mut frame0);
        rx.decode_global(0, &mut frame0.freeze()).unwrap();
        let mut frame1 = bytes::BytesMut::new();
        tx.encode_update(&reference, &mut frame1);
        let mut corrupted = frame1.freeze().to_vec();
        let idx = flip_at % corrupted.len();
        corrupted[idx] ^= xor;
        let result = rx.decode_update(&mut bytes::Bytes::from(corrupted));
        if idx == 0 {
            prop_assert!(
                matches!(result, Err(FlError::CodecMismatch(_))),
                "codec-tag corruption must surface as a mismatch"
            );
        }
        // Any other corruption: Ok or Err are both acceptable, reaching
        // here without a panic is the property.
    }

    /// DeltaEntropy is DeltaLossless with an entropy stage bolted on —
    /// the same bit-exactness bar applies: arbitrary f32 vectors (NaNs,
    /// subnormals, any bit pattern) survive the rANS wire exactly, both
    /// the inline first frame and the plane-coded delta frames.
    #[test]
    fn entropy_round_trips_arbitrary_vectors_bit_exactly(
        reference in hostile_vec(),
        payload_bits in proptest::collection::vec(0u64..=u32::MAX as u64, 0..128),
    ) {
        let mut tx = sender(ModelCodec::DeltaEntropy);
        let mut rx = receiver(ModelCodec::DeltaEntropy);

        let mut frame0 = bytes::BytesMut::new();
        tx.encode_global(0, &reference, &mut frame0);
        let got = rx.decode_global(0, &mut frame0.freeze()).unwrap();
        prop_assert_eq!(bits(&got), bits(&reference));

        let payload: Vec<f32> = payload_bits
            .iter()
            .map(|&b| f32::from_bits(b as u32))
            .chain(reference.iter().copied().map(|r| f32::from_bits(r.to_bits() ^ 0x8000_0000)))
            .take(reference.len().max(payload_bits.len()))
            .collect();
        let mut frame1 = bytes::BytesMut::new();
        tx.encode_update(&payload, &mut frame1);
        let mut encoded = frame1.freeze();
        let decoded = rx.decode_update(&mut encoded).unwrap();
        prop_assert_eq!(encoded.remaining(), 0, "block not consumed exactly");
        prop_assert_eq!(bits(&decoded), bits(&payload));
    }

    /// Corrupting or truncating an entropy or top-k block never panics:
    /// a clobbered codec tag surfaces as the distinct mismatch error,
    /// any other single-byte corruption fails cleanly or decodes to
    /// some well-formed vector, and a strict prefix of a block is
    /// always rejected (every layout is length-prefixed).
    #[test]
    fn corrupt_or_truncated_entropy_and_topk_blocks_fail_cleanly(
        reference in proptest::collection::vec(any_f32_bits(), 1..64),
        flip_at in 0usize..4096,
        xor in 1u8..=255,
        cut in 0usize..4096,
        k in 1u32..16,
    ) {
        for codec in [ModelCodec::DeltaEntropy, ModelCodec::TopK { k }] {
            let clean = {
                let mut tx = sender(codec);
                let mut frame0 = bytes::BytesMut::new();
                tx.encode_global(0, &reference, &mut frame0);
                let update: Vec<f32> = reference
                    .iter()
                    .map(|x| f32::from_bits(x.to_bits() ^ 3))
                    .collect();
                let mut frame1 = bytes::BytesMut::new();
                tx.encode_update(&update, &mut frame1);
                frame1.freeze().to_vec()
            };
            let mut rx = {
                let mut tx = sender(codec);
                let mut rx = receiver(codec);
                let mut frame0 = bytes::BytesMut::new();
                tx.encode_global(0, &reference, &mut frame0);
                rx.decode_global(0, &mut frame0.freeze()).unwrap();
                rx
            };

            let mut corrupted = clean.clone();
            let idx = flip_at % corrupted.len();
            corrupted[idx] ^= xor;
            let result = rx.decode_update(&mut bytes::Bytes::from(corrupted));
            if idx == 0 {
                prop_assert!(
                    matches!(result, Err(FlError::CodecMismatch(_))),
                    "codec-tag corruption must surface as a mismatch for {:?}", codec
                );
            }

            let cut = cut % clean.len();
            let result = rx.decode_update(&mut bytes::Bytes::from(clean[..cut].to_vec()));
            prop_assert!(
                result.is_err(),
                "a {}-byte prefix of a {}-byte {:?} block must be rejected",
                cut, clean.len(), codec
            );
        }
    }

    /// TopK selection is deterministic with ties broken by ascending
    /// index: however the tied coordinates are scattered, two fresh
    /// encoders emit byte-identical frames and the reconstruction picks
    /// exactly the k lowest-indexed candidates.
    #[test]
    fn topk_selection_is_deterministic_under_permuted_ties(
        n in 16usize..64,
        k in 1u32..8,
        picks in proptest::collection::vec(0usize..16, 1..6),
        v_bits in 1u32..=u32::MAX,
    ) {
        let mut set = picks;
        set.sort_unstable();
        set.dedup();
        let v = f32::from_bits(v_bits);
        let reference = vec![0.0f32; n];
        let mut payload = reference.clone();
        for &i in &set {
            payload[i] = v;
        }
        let encode = || {
            let mut tx = sender(ModelCodec::TopK { k });
            let mut rx = receiver(ModelCodec::TopK { k });
            let mut frame0 = bytes::BytesMut::new();
            tx.encode_global(0, &reference, &mut frame0);
            rx.decode_global(0, &mut frame0.freeze()).unwrap();
            let mut frame1 = bytes::BytesMut::new();
            tx.encode_update(&payload, &mut frame1);
            let encoded = frame1.freeze();
            let decoded = rx.decode_update(&mut encoded.clone()).unwrap();
            (encoded.to_vec(), decoded)
        };
        let (wire_a, decoded_a) = encode();
        let (wire_b, decoded_b) = encode();
        prop_assert_eq!(&wire_a, &wire_b, "two fresh encoders must agree byte for byte");
        prop_assert_eq!(bits(&decoded_a), bits(&decoded_b));

        // All candidates share one magnitude key, so the winners are
        // the k smallest indices of the set — nothing else may move.
        let winners: Vec<usize> = set.iter().copied().take(k as usize).collect();
        for (i, got) in decoded_a.iter().enumerate() {
            let want = if winners.contains(&i) { v.to_bits() } else { 0 };
            prop_assert_eq!(got.to_bits(), want, "coordinate {} moved unexpectedly", i);
        }
    }

    /// TopK is lossy but conservative: every reconstructed coordinate
    /// carries either the payload's bits or the reference's bits at
    /// that index — never an invented value — and at most k coords take
    /// the payload side unless the block fell back to inline.
    #[test]
    fn topk_reconstruction_mixes_only_payload_and_reference_bits(
        reference in proptest::collection::vec(any_f32_bits(), 1..96),
        k in 1u32..32,
        seed in 0u64..=u32::MAX as u64,
    ) {
        let seed = seed as u32;
        let payload: Vec<f32> = reference
            .iter()
            .enumerate()
            .map(|(i, x)| f32::from_bits(x.to_bits() ^ seed.wrapping_mul(i as u32 + 1)))
            .collect();
        let mut tx = sender(ModelCodec::TopK { k });
        let mut rx = receiver(ModelCodec::TopK { k });
        let mut frame0 = bytes::BytesMut::new();
        tx.encode_global(0, &reference, &mut frame0);
        rx.decode_global(0, &mut frame0.freeze()).unwrap();
        let mut frame1 = bytes::BytesMut::new();
        tx.encode_update(&payload, &mut frame1);
        let decoded = rx.decode_update(&mut frame1.freeze()).unwrap();
        prop_assert_eq!(decoded.len(), payload.len());
        let mut from_payload = 0usize;
        for i in 0..decoded.len() {
            let d = decoded[i].to_bits();
            prop_assert!(
                d == payload[i].to_bits() || d == reference[i].to_bits(),
                "coordinate {} is neither payload nor reference bits", i
            );
            if d != reference[i].to_bits() {
                from_payload += 1;
            }
        }
        let inline = bits(&decoded) == bits(&payload);
        prop_assert!(
            from_payload <= k as usize || inline,
            "{} coords moved with k={} and no inline fallback", from_payload, k
        );
    }

    /// The f16 grid is a fixed point: encode∘decode is the identity on
    /// values already representable in half precision, so a second
    /// quantization pass is free of further loss.
    #[test]
    fn f16_quantization_is_idempotent(v in hostile_vec()) {
        let mut tx = sender(ModelCodec::F16);
        let mut rx = receiver(ModelCodec::F16);
        let mut first = bytes::BytesMut::new();
        tx.encode_update(&v, &mut first);
        let once = rx.decode_update(&mut first.freeze()).unwrap();
        let mut second = bytes::BytesMut::new();
        tx.encode_update(&once, &mut second);
        let twice = rx.decode_update(&mut second.freeze()).unwrap();
        for (a, b) in once.iter().zip(&twice) {
            if a.is_nan() {
                prop_assert!(b.is_nan());
            } else {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    /// Scalar f16 conversion: finite halves survive a full round trip
    /// exactly, and every f32 maps to a half within half-ULP-correct
    /// distance (monotone rounding sanity).
    #[test]
    fn f16_scalar_round_trip(h in 0u64..0x7C00u64) {
        let h = h as u16;
        prop_assert_eq!(f32_to_f16_bits(f16_bits_to_f32(h)), h);
        let neg = h | 0x8000;
        prop_assert_eq!(f32_to_f16_bits(f16_bits_to_f32(neg)), neg);
    }
}
