//! Property tests of the model-payload codecs.
//!
//! The load-bearing claim is **bit-exactness**: `DeltaLossless` must
//! reproduce arbitrary `f32` vectors — NaN payloads, ±0.0, subnormals,
//! infinities, any bit pattern at all — exactly, whatever reference
//! model the two ends share. Everything downstream (golden-history
//! pinning over the compressed wire) rests on this.

use bytes::Buf;
use flips_fl::codec::{f16_bits_to_f32, f32_to_f16_bits, ModelCodec, PayloadCodec, Role};
use flips_fl::FlError;
use proptest::prelude::*;

/// Any f32 bit pattern, NaNs and subnormals included.
fn any_f32_bits() -> impl Strategy<Value = f32> {
    (0u64..=u32::MAX as u64).prop_map(|bits| f32::from_bits(bits as u32))
}

/// Vectors biased toward the hostile corners: every strategy draw mixes
/// arbitrary bit patterns with the named special values.
fn hostile_vec() -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(
        (any_f32_bits(), 0u64..8).prop_map(|(x, pick)| match pick {
            0 => f32::NAN,
            1 => -0.0,
            2 => 0.0,
            3 => f32::from_bits(1),           // smallest subnormal
            4 => f32::from_bits(0x8000_0001), // negative subnormal
            5 => f32::INFINITY,
            _ => x,
        }),
        0..128,
    )
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn sender(codec: ModelCodec) -> PayloadCodec {
    PayloadCodec::new(codec, Role::Sender)
}

fn receiver(codec: ModelCodec) -> PayloadCodec {
    PayloadCodec::new(codec, Role::Receiver)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// DeltaLossless round-trips arbitrary f32 vectors bit-exactly —
    /// both the inline first frame and the XOR-delta frames against an
    /// equally arbitrary reference.
    #[test]
    fn delta_round_trips_arbitrary_vectors_bit_exactly(
        reference in hostile_vec(),
        payload_bits in proptest::collection::vec(0u64..=u32::MAX as u64, 0..128),
    ) {
        let mut tx = sender(ModelCodec::DeltaLossless);
        let mut rx = receiver(ModelCodec::DeltaLossless);

        // Establish the (arbitrary, NaN-laden) reference on both ends.
        let mut frame0 = bytes::BytesMut::new();
        tx.encode_global(0, &reference, &mut frame0);
        let got = rx.decode_global(0, &mut frame0.freeze()).unwrap();
        prop_assert_eq!(bits(&got), bits(&reference));

        // A payload of the same length deltas against it; any other
        // length falls back to inline. Both must be bit-exact.
        let payload: Vec<f32> = payload_bits
            .iter()
            .map(|&b| f32::from_bits(b as u32))
            .chain(reference.iter().copied().map(|r| f32::from_bits(r.to_bits() ^ 0x8000_0000)))
            .take(reference.len().max(payload_bits.len()))
            .collect();
        let mut frame1 = bytes::BytesMut::new();
        tx.encode_update(&payload, &mut frame1);
        let mut encoded = frame1.freeze();
        let decoded = rx.decode_update(&mut encoded).unwrap();
        prop_assert_eq!(encoded.remaining(), 0, "block not consumed exactly");
        prop_assert_eq!(bits(&decoded), bits(&payload));
    }

    /// A multi-round conversation stays in sync: every global advances
    /// the reference on both ends, every update deltas against it, and
    /// every payload survives bit-for-bit.
    #[test]
    fn delta_conversation_stays_bit_exact_across_rounds(
        rounds in proptest::collection::vec(hostile_vec(), 1..5),
    ) {
        let mut tx = sender(ModelCodec::DeltaLossless);
        let mut rx = receiver(ModelCodec::DeltaLossless);
        for (round, global) in rounds.iter().enumerate() {
            let mut down = bytes::BytesMut::new();
            tx.encode_global(round as u64, global, &mut down);
            let got = rx.decode_global(round as u64, &mut down.freeze()).unwrap();
            prop_assert_eq!(bits(&got), bits(global), "round {} global", round);

            // The party trains and replies with a perturbed update.
            let update: Vec<f32> =
                global.iter().map(|x| f32::from_bits(x.to_bits().wrapping_add(3))).collect();
            let mut up = bytes::BytesMut::new();
            rx.encode_update(&update, &mut up);
            let decoded = tx.decode_update(&mut up.freeze()).unwrap();
            prop_assert_eq!(bits(&decoded), bits(&update), "round {} update", round);
        }
    }

    /// Corrupting any single byte of a delta params block never panics:
    /// it either fails cleanly or decodes to some well-formed vector
    /// (payload bits are not self-describing) — and a codec-tag flip is
    /// reported as the distinct mismatch error.
    #[test]
    fn corrupt_delta_blocks_never_panic(
        reference in proptest::collection::vec(any_f32_bits(), 1..64),
        flip_at in 0usize..4096,
        xor in 1u8..=255,
    ) {
        let mut tx = sender(ModelCodec::DeltaLossless);
        let mut rx = receiver(ModelCodec::DeltaLossless);
        let mut frame0 = bytes::BytesMut::new();
        tx.encode_global(0, &reference, &mut frame0);
        rx.decode_global(0, &mut frame0.freeze()).unwrap();
        let mut frame1 = bytes::BytesMut::new();
        tx.encode_update(&reference, &mut frame1);
        let mut corrupted = frame1.freeze().to_vec();
        let idx = flip_at % corrupted.len();
        corrupted[idx] ^= xor;
        let result = rx.decode_update(&mut bytes::Bytes::from(corrupted));
        if idx == 0 {
            prop_assert!(
                matches!(result, Err(FlError::CodecMismatch(_))),
                "codec-tag corruption must surface as a mismatch"
            );
        }
        // Any other corruption: Ok or Err are both acceptable, reaching
        // here without a panic is the property.
    }

    /// The f16 grid is a fixed point: encode∘decode is the identity on
    /// values already representable in half precision, so a second
    /// quantization pass is free of further loss.
    #[test]
    fn f16_quantization_is_idempotent(v in hostile_vec()) {
        let mut tx = sender(ModelCodec::F16);
        let mut rx = receiver(ModelCodec::F16);
        let mut first = bytes::BytesMut::new();
        tx.encode_update(&v, &mut first);
        let once = rx.decode_update(&mut first.freeze()).unwrap();
        let mut second = bytes::BytesMut::new();
        tx.encode_update(&once, &mut second);
        let twice = rx.decode_update(&mut second.freeze()).unwrap();
        for (a, b) in once.iter().zip(&twice) {
            if a.is_nan() {
                prop_assert!(b.is_nan());
            } else {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    /// Scalar f16 conversion: finite halves survive a full round trip
    /// exactly, and every f32 maps to a half within half-ULP-correct
    /// distance (monotone rounding sanity).
    #[test]
    fn f16_scalar_round_trip(h in 0u64..0x7C00u64) {
        let h = h as u16;
        prop_assert_eq!(f32_to_f16_bits(f16_bits_to_f32(h)), h);
        let neg = h | 0x8000;
        prop_assert_eq!(f32_to_f16_bits(f16_bits_to_f32(neg)), neg);
    }
}
