//! Pure state-machine tests of the sans-IO [`Coordinator`]: every round
//! phase — select → dispatch → partial updates → deadline close →
//! aggregate — is driven by hand-fed events, with zero I/O, zero threads
//! and zero training. Updates are fabricated wire messages, not model
//! outputs: the protocol does not care.

use flips_data::dataset::balanced_test_set;
use flips_data::DatasetProfile;
use flips_fl::codec::ModelCodec;
use flips_fl::config::FlAlgorithm;
use flips_fl::coordinator::{Coordinator, CoordinatorConfig};
use flips_fl::events::{Effect, Event, RejectReason};
use flips_fl::message::WireMessage;
use flips_fl::FlError;
use flips_selection::{ParticipantSelector, PartyId, RoundFeedback, SelectionError};

const JOB: u64 = 0xF00D;

/// A deterministic policy selecting `cohort` every round, recording the
/// feedback it receives.
struct Scripted {
    n: usize,
    cohort: Vec<PartyId>,
    reports: Vec<(usize, Vec<PartyId>, Vec<PartyId>)>,
}

impl Scripted {
    fn new(n: usize, cohort: Vec<PartyId>) -> Self {
        Scripted { n, cohort, reports: Vec::new() }
    }
}

impl ParticipantSelector for Scripted {
    fn name(&self) -> &'static str {
        "scripted"
    }
    fn select(&mut self, _round: usize, _target: usize) -> Result<Vec<PartyId>, SelectionError> {
        Ok(self.cohort.clone())
    }
    fn report(&mut self, fb: &RoundFeedback) {
        self.reports.push((fb.round, fb.completed.clone(), fb.stragglers.clone()));
    }
    fn num_parties(&self) -> usize {
        self.n
    }
}

fn coordinator(rounds: usize, cohort: Vec<PartyId>) -> Coordinator {
    let profile = DatasetProfile::femnist();
    let test = balanced_test_set(&profile, 4, 5);
    Coordinator::new(
        CoordinatorConfig {
            job_id: JOB,
            model: profile.model.clone(),
            algorithm: FlAlgorithm::FedAvg,
            rounds,
            parties_per_round: cohort.len().max(1),
            sketch_dim: 8,
            codec: ModelCodec::Raw,
            seed: 7,
        },
        8,
        test,
        Box::new(Scripted::new(8, cohort)),
    )
    .unwrap()
}

fn update(party: u64, round: u64, dim: usize, value: f32) -> Event {
    Event::UpdateReceived(WireMessage::LocalUpdate {
        job: JOB,
        round,
        party,
        num_samples: 10,
        mean_loss: 0.5,
        duration: 1.0 + party as f64,
        params: vec![value; dim],
    })
}

fn heartbeat(party: u64, round: u64) -> Event {
    Event::UpdateReceived(WireMessage::Heartbeat { job: JOB, round, party })
}

fn rejection(effects: &[Effect]) -> Option<RejectReason> {
    effects.iter().find_map(|e| match e {
        Effect::Rejected { reason, .. } => Some(*reason),
        _ => None,
    })
}

#[test]
fn open_round_dispatches_notice_and_model_per_party() {
    let mut c = coordinator(3, vec![1, 4, 6]);
    let effects = c.open_round().unwrap();
    assert_eq!(effects.len(), 6, "one notice + one model per party");
    for (i, &p) in [1usize, 4, 6].iter().enumerate() {
        match &effects[2 * i] {
            Effect::Send { to, msg: WireMessage::SelectionNotice { job, round, party, .. } } => {
                assert_eq!((*to, *job, *round, *party), (p, JOB, 0, p as u64));
            }
            other => panic!("expected SelectionNotice, got {other:?}"),
        }
        match &effects[2 * i + 1] {
            Effect::Send { to, msg: WireMessage::GlobalModel { params, .. } } => {
                assert_eq!(*to, p);
                assert_eq!(params.len(), c.global_params().len());
            }
            other => panic!("expected GlobalModel, got {other:?}"),
        }
    }
    assert_eq!(c.open_cohort(), Some(&[1usize, 4, 6][..]));
}

#[test]
fn deadline_close_aggregates_partials_and_aborts_stragglers() {
    let mut c = coordinator(3, vec![1, 4, 6]);
    let dim = c.global_params().len();
    c.open_round().unwrap();

    // Everyone acks; only parties 4 and 1 deliver before the deadline.
    for p in [1u64, 4, 6] {
        assert!(c.handle(heartbeat(p, 0)).unwrap().is_empty());
    }
    assert_eq!(c.heartbeats_this_round(), 3);
    assert!(c.handle(update(4, 0, dim, 2.0)).unwrap().is_empty());
    assert!(c.handle(update(1, 0, dim, 4.0)).unwrap().is_empty());

    let effects = c.handle(Event::DeadlineExpired).unwrap();
    // Straggler 6 is told to abort, then the round record lands.
    assert!(effects
        .iter()
        .any(|e| matches!(e, Effect::Send { to: 6, msg: WireMessage::Abort { .. } })));
    let record = effects
        .iter()
        .find_map(|e| match e {
            Effect::RoundClosed(r) => Some(r),
            _ => None,
        })
        .expect("round must close");
    assert_eq!(record.round, 0);
    assert_eq!(record.selected, vec![1, 4, 6]);
    assert_eq!(record.completed, vec![1, 4], "sorted by party id");
    assert_eq!(record.stragglers, vec![6]);
    assert_eq!(record.round_duration, 5.0, "slowest completing party (4)");
    // FedAvg with equal weights: global becomes the mean of 4.0 and 2.0.
    assert!(c.global_params().iter().all(|&g| (g - 3.0).abs() < 1e-6));
    assert_eq!(c.round(), 1);
    assert!(!c.is_finished());
}

#[test]
fn duplicate_updates_are_rejected_without_state_damage() {
    let mut c = coordinator(1, vec![2, 3]);
    let dim = c.global_params().len();
    c.open_round().unwrap();
    assert!(c.handle(update(2, 0, dim, 8.0)).unwrap().is_empty());

    // The same party again — with different parameters, which must NOT
    // replace the accepted ones (first-write-wins, as in XAIN's round
    // manager).
    let effects = c.handle(update(2, 0, dim, -99.0)).unwrap();
    assert_eq!(rejection(&effects), Some(RejectReason::DuplicateUpdate));

    let effects = c.handle(update(3, 0, dim, 4.0)).unwrap();
    // Cohort complete -> auto-close without an explicit deadline.
    let record = effects
        .iter()
        .find_map(|e| match e {
            Effect::RoundClosed(r) => Some(r.clone()),
            _ => None,
        })
        .expect("full cohort closes the round");
    assert_eq!(record.completed, vec![2, 3]);
    assert!(record.stragglers.is_empty());
    assert!(c.global_params().iter().all(|&g| (g - 6.0).abs() < 1e-6), "mean of 8 and 4");
    assert!(effects.iter().any(|e| matches!(e, Effect::JobFinished(_))));
    assert!(c.is_finished());
}

#[test]
fn foreign_and_malformed_updates_bounce() {
    let mut c = coordinator(2, vec![0, 1]);
    let dim = c.global_params().len();

    // Before any round is open.
    let effects = c.handle(update(0, 0, dim, 1.0)).unwrap();
    assert_eq!(rejection(&effects), Some(RejectReason::NoOpenRound));

    c.open_round().unwrap();
    // Wrong job id.
    let msg = WireMessage::LocalUpdate {
        job: JOB + 1,
        round: 0,
        party: 0,
        num_samples: 1,
        mean_loss: 0.0,
        duration: 0.0,
        params: vec![0.0; dim],
    };
    let effects = c.handle(Event::UpdateReceived(msg)).unwrap();
    assert_eq!(rejection(&effects), Some(RejectReason::WrongJob));

    // Wrong round (future).
    let effects = c.handle(update(0, 5, dim, 1.0)).unwrap();
    assert_eq!(rejection(&effects), Some(RejectReason::WrongRound));

    // Not selected / out of roster.
    let effects = c.handle(update(7, 0, dim, 1.0)).unwrap();
    assert_eq!(rejection(&effects), Some(RejectReason::NotSelected));
    let effects = c.handle(update(100, 0, dim, 1.0)).unwrap();
    assert_eq!(rejection(&effects), Some(RejectReason::NotSelected));

    // Parameter vector of the wrong architecture.
    let effects = c.handle(update(0, 0, dim + 1, 1.0)).unwrap();
    assert_eq!(rejection(&effects), Some(RejectReason::WrongModelSize));

    // A party echoing the aggregator's own message back.
    let echo = WireMessage::GlobalModel { job: JOB, round: 0, params: vec![0.0; dim].into() };
    let effects = c.handle(Event::UpdateReceived(echo)).unwrap();
    assert_eq!(rejection(&effects), Some(RejectReason::WrongDirection));

    // None of that perturbed the round: both parties can still complete.
    assert!(c.handle(update(0, 0, dim, 1.0)).unwrap().is_empty());
    let effects = c.handle(update(1, 0, dim, 1.0)).unwrap();
    assert!(effects.iter().any(|e| matches!(e, Effect::RoundClosed(_))));
}

#[test]
fn dropped_parties_close_as_stragglers() {
    let mut c = coordinator(2, vec![0, 1, 2]);
    let dim = c.global_params().len();
    c.open_round().unwrap();
    assert!(c.handle(Event::PartyDropped(1)).unwrap().is_empty());

    // An update from the dropped party is refused.
    let effects = c.handle(update(1, 0, dim, 1.0)).unwrap();
    assert_eq!(rejection(&effects), Some(RejectReason::PartyDropped));

    // The remaining parties complete -> the drop triggers no waiting.
    assert!(c.handle(update(0, 0, dim, 1.0)).unwrap().is_empty());
    let effects = c.handle(update(2, 0, dim, 1.0)).unwrap();
    let record = effects
        .iter()
        .find_map(|e| match e {
            Effect::RoundClosed(r) => Some(r.clone()),
            _ => None,
        })
        .expect("round closes once all live parties delivered");
    assert_eq!(record.completed, vec![0, 2]);
    assert_eq!(record.stragglers, vec![1]);
}

#[test]
fn party_abort_message_acts_as_a_drop() {
    let mut c = coordinator(2, vec![0, 1]);
    let dim = c.global_params().len();
    c.open_round().unwrap();
    let abort = WireMessage::Abort { job: JOB, round: 0, party: 1, reason: "low battery".into() };
    assert!(c.handle(Event::UpdateReceived(abort)).unwrap().is_empty());
    let effects = c.handle(update(0, 0, dim, 1.0)).unwrap();
    let record = effects
        .iter()
        .find_map(|e| match e {
            Effect::RoundClosed(r) => Some(r.clone()),
            _ => None,
        })
        .unwrap();
    assert_eq!(record.stragglers, vec![1]);
}

#[test]
fn foreign_job_abort_does_not_drop_a_party() {
    // Regression: on a multiplexed transport, another job's Abort with a
    // matching round number must bounce with WrongJob, not silently turn
    // a pending party into a straggler.
    let mut c = coordinator(2, vec![0, 1]);
    let dim = c.global_params().len();
    c.open_round().unwrap();
    let foreign =
        WireMessage::Abort { job: JOB + 1, round: 0, party: 1, reason: "not yours".into() };
    let effects = c.handle(Event::UpdateReceived(foreign)).unwrap();
    assert_eq!(rejection(&effects), Some(RejectReason::WrongJob));

    // Party 1 is still pending and can complete normally.
    assert!(c.handle(update(0, 0, dim, 1.0)).unwrap().is_empty());
    let effects = c.handle(update(1, 0, dim, 1.0)).unwrap();
    let record = effects
        .iter()
        .find_map(|e| match e {
            Effect::RoundClosed(r) => Some(r.clone()),
            _ => None,
        })
        .unwrap();
    assert_eq!(record.completed, vec![0, 1]);
    assert!(record.stragglers.is_empty());
}

#[test]
fn round_lifecycle_is_enforced() {
    let mut c = coordinator(1, vec![0, 1]);
    let dim = c.global_params().len();

    // A deadline with no open round is a benign no-op (late timer).
    assert!(c.handle(Event::DeadlineExpired).unwrap().is_empty());

    c.open_round().unwrap();
    assert!(matches!(c.open_round(), Err(FlError::Protocol(_))), "double open");

    c.handle(update(0, 0, dim, 1.0)).unwrap();
    c.handle(Event::DeadlineExpired).unwrap();
    assert!(c.is_finished());
    assert!(matches!(c.open_round(), Err(FlError::Protocol(_))), "open after finish");
}

#[test]
fn fully_straggled_round_leaves_the_model_unchanged() {
    let mut c = coordinator(2, vec![0, 1]);
    let before = c.global_params().to_vec();
    c.open_round().unwrap();
    let effects = c.handle(Event::DeadlineExpired).unwrap();
    let record = effects
        .iter()
        .find_map(|e| match e {
            Effect::RoundClosed(r) => Some(r.clone()),
            _ => None,
        })
        .unwrap();
    assert!(record.completed.is_empty());
    assert_eq!(record.stragglers, vec![0, 1]);
    assert_eq!(record.mean_train_loss, 0.0);
    assert_eq!(c.global_params(), before.as_slice());
}

#[test]
fn selector_feedback_flows_through_round_close() {
    // The selector learns only via the round-close event — check the
    // reported cohorts match the records.
    let profile = DatasetProfile::femnist();
    let test = balanced_test_set(&profile, 4, 5);
    let mut c = Coordinator::new(
        CoordinatorConfig {
            job_id: JOB,
            model: profile.model.clone(),
            algorithm: FlAlgorithm::FedAvg,
            rounds: 2,
            parties_per_round: 2,
            sketch_dim: 8,
            codec: ModelCodec::Raw,
            seed: 7,
        },
        8,
        test,
        Box::new(Scripted::new(8, vec![3, 5])),
    )
    .unwrap();
    let dim = c.global_params().len();
    for round in 0..2u64 {
        c.open_round().unwrap();
        c.handle(update(3, round, dim, 1.0)).unwrap();
        c.handle(Event::DeadlineExpired).unwrap();
    }
    let h = c.history();
    assert_eq!(h.len(), 2);
    for r in h.records() {
        assert_eq!(r.completed, vec![3]);
        assert_eq!(r.stragglers, vec![5]);
    }
}

#[test]
fn coordinator_guards_against_malicious_selectors() {
    // Duplicates are deduplicated preserving order; out-of-roster ids
    // are a hard error.
    let mut c = coordinator(1, vec![5, 2, 5, 2, 7]);
    c.open_round().unwrap();
    assert_eq!(c.open_cohort(), Some(&[5usize, 2, 7][..]));

    let mut c = coordinator(1, vec![1, 8]);
    assert!(matches!(c.open_round(), Err(FlError::InvalidConfig(_))));

    let mut c = coordinator(1, vec![]);
    assert!(matches!(c.open_round(), Err(FlError::InvalidConfig(_))));
}

#[test]
fn stale_heartbeats_and_unknown_senders_are_rejected() {
    let mut c = coordinator(2, vec![0, 1]);
    let effects = c.handle(heartbeat(0, 0)).unwrap();
    assert_eq!(rejection(&effects), Some(RejectReason::NoOpenRound));
    // An abort with no round open reports the same state, not WrongRound.
    let idle_abort = WireMessage::Abort { job: JOB, round: 0, party: 0, reason: "x".into() };
    let effects = c.handle(Event::UpdateReceived(idle_abort)).unwrap();
    assert_eq!(rejection(&effects), Some(RejectReason::NoOpenRound));
    c.open_round().unwrap();
    let effects = c.handle(heartbeat(0, 3)).unwrap();
    assert_eq!(rejection(&effects), Some(RejectReason::WrongRound));
    let effects = c.handle(heartbeat(6, 0)).unwrap();
    assert_eq!(rejection(&effects), Some(RejectReason::NotSelected));
    assert_eq!(c.heartbeats_this_round(), 0);
}

#[test]
fn duplicate_heartbeats_within_the_window_count_bytes_once() {
    // An at-least-once transport can redeliver a heartbeat while its
    // round is still open; the ack is idempotent and must not inflate
    // bytes_up (histories stay bit-identical under duplicate delivery).
    use flips_fl::message::{heartbeat_bytes, local_update_bytes};
    let mut c = coordinator(1, vec![0]);
    let dim = c.global_params().len();
    c.open_round().unwrap();
    for _ in 0..3 {
        assert!(c.handle(heartbeat(0, 0)).unwrap().is_empty());
    }
    assert_eq!(c.heartbeats_this_round(), 1);
    let effects = c.handle(update(0, 0, dim, 1.0)).unwrap();
    let record = effects
        .iter()
        .find_map(|e| match e {
            Effect::RoundClosed(r) => Some(r.clone()),
            _ => None,
        })
        .unwrap();
    assert_eq!(record.bytes_up, (heartbeat_bytes() + local_update_bytes(dim)) as u64);
}

#[test]
fn bytes_account_every_message_on_the_wire() {
    use flips_fl::message::{
        global_model_bytes, heartbeat_bytes, local_update_bytes, selection_notice_bytes,
    };
    let mut c = coordinator(1, vec![0, 1]);
    let dim = c.global_params().len();
    c.open_round().unwrap();
    c.handle(heartbeat(0, 0)).unwrap();
    c.handle(update(0, 0, dim, 1.0)).unwrap();
    let effects = c.handle(Event::DeadlineExpired).unwrap();
    let record = effects
        .iter()
        .find_map(|e| match e {
            Effect::RoundClosed(r) => Some(r.clone()),
            _ => None,
        })
        .unwrap();
    let abort_bytes: u64 = effects
        .iter()
        .filter_map(|e| match e {
            Effect::Send { msg: msg @ WireMessage::Abort { .. }, .. } => {
                Some(msg.wire_size() as u64)
            }
            _ => None,
        })
        .sum();
    assert_eq!(
        record.bytes_down,
        2 * (selection_notice_bytes() + global_model_bytes(dim)) as u64 + abort_bytes
    );
    assert_eq!(record.bytes_up, (heartbeat_bytes() + local_update_bytes(dim)) as u64);
}
