//! Property tests of the checkpoint wire format.
//!
//! The format is the crash-recovery trust boundary: whatever coordinator
//! state exists in memory must survive `encode → decode` bit-exactly
//! (mid-drain drivers, open breakers, partial admission budgets, NaN
//! accuracies, delta references — all of it), and *no* corrupt or
//! truncated byte string may decode into anything, panic included.

use flips_fl::driver::DriverStats;
use flips_fl::guard::{
    BreakerState, BreakerTransition, GuardJobSnapshot, GuardPartySnapshot, GuardSnapshot,
};
use flips_fl::history::RoundRecord;
use flips_fl::{Checkpoint, CodecRefSnapshot, JobSnapshot};
use flips_selection::{PartyId, RoundFeedback};
use proptest::collection::vec;
use proptest::prelude::*;

fn any_u64() -> impl Strategy<Value = u64> {
    0u64..=u64::MAX
}

fn any_u32() -> impl Strategy<Value = u32> {
    0u32..=u32::MAX
}

fn any_bool() -> impl Strategy<Value = bool> {
    (0u64..2).prop_map(|b| b == 1)
}

/// `Option<V>` off a coin flip (the shim has no `proptest::option`).
fn opt<S: Strategy>(s: S) -> impl Strategy<Value = Option<S::Value>> {
    (0u64..2, s).prop_map(|(tag, v)| if tag == 1 { Some(v) } else { None })
}

/// Any f32 bit pattern, NaNs and subnormals included.
fn any_f32() -> impl Strategy<Value = f32> {
    any_u32().prop_map(f32::from_bits)
}

/// Any f64 bit pattern (arbitrary NaN payloads included).
fn any_f64() -> impl Strategy<Value = f64> {
    any_u64().prop_map(f64::from_bits)
}

fn f32_vec() -> impl Strategy<Value = Vec<f32>> {
    vec(any_f32(), 0..24)
}

fn party_vec() -> impl Strategy<Value = Vec<PartyId>> {
    vec(0usize..16, 0..8)
}

fn round_record() -> impl Strategy<Value = RoundRecord> {
    (
        (0usize..64, party_vec(), party_vec(), party_vec(), any_f64()),
        (vec(opt(any_f64()), 0..6), any_f64(), any_u64(), any_u64(), any_f64()),
    )
        .prop_map(
            |(
                (round, selected, completed, stragglers, accuracy),
                (per_label_recall, mean_train_loss, bytes_down, bytes_up, round_duration),
            )| RoundRecord {
                round,
                selected,
                completed,
                stragglers,
                accuracy,
                per_label_recall,
                mean_train_loss,
                bytes_down,
                bytes_up,
                round_duration,
            },
        )
}

fn feedback() -> impl Strategy<Value = RoundFeedback> {
    (
        (0usize..64, party_vec(), party_vec(), party_vec(), any_f64()),
        (
            vec((0usize..16, any_f64()), 0..6),
            vec((0usize..16, any_f64()), 0..6),
            vec((0usize..16, f32_vec()), 0..6),
        ),
    )
        .prop_map(|((round, selected, completed, stragglers, acc), (loss, dur, sketch))| {
            let mut fb = RoundFeedback::for_round(round, selected, completed, stragglers, acc);
            fb.train_loss = loss.into_iter().collect();
            fb.duration = dur.into_iter().collect();
            fb.update_sketch = sketch.into_iter().collect();
            fb
        })
}

fn job_snapshot() -> impl Strategy<Value = JobSnapshot> {
    (
        (any_u64(), f32_vec(), f32_vec(), vec(any_bool(), 0..16)),
        (
            vec(round_record(), 0..3),
            vec(feedback(), 0..3),
            opt((vec(any_f64(), 0..12), vec(0usize..64, 0..6))),
        ),
    )
        .prop_map(|((job, global, optimizer, active), (history, feedback, observed))| {
            JobSnapshot { job, global, optimizer, active, history, feedback, observed }
        })
}

fn breaker_state() -> impl Strategy<Value = BreakerState> {
    (0u64..3).prop_map(|tag| match tag {
        0 => BreakerState::Closed,
        1 => BreakerState::Open,
        _ => BreakerState::HalfOpen,
    })
}

fn guard_snapshot() -> impl Strategy<Value = GuardSnapshot> {
    (
        vec(
            ((any_u64(), 0u64..16, breaker_state()), (any_u32(), any_u64(), opt(any_u32())))
                .prop_map(|((job, party, state), (strikes, opens_left, tokens))| {
                    GuardPartySnapshot { job, party, state, strikes, opens_left, tokens }
                }),
            0..5,
        ),
        vec(
            (any_u64(), any_u32(), opt(any_u32()), any_u64()).prop_map(
                |(job, admitted, budget, opens)| GuardJobSnapshot { job, admitted, budget, opens },
            ),
            0..4,
        ),
        vec(
            (any_u64(), 0u64..16, any_u64(), breaker_state()).prop_map(
                |(job, party, open_index, to)| BreakerTransition { job, party, open_index, to },
            ),
            0..4,
        ),
    )
        .prop_map(|(parties, jobs, transitions)| GuardSnapshot { parties, jobs, transitions })
}

fn stats() -> impl Strategy<Value = DriverStats> {
    vec(any_u64(), 17).prop_map(|w| DriverStats {
        frames_sent: w[0],
        frames_received: w[1],
        bytes_sent: w[2],
        bytes_received: w[3],
        corrupt_frames: w[4],
        codec_mismatch_frames: w[5],
        unknown_job_frames: w[6],
        rejected_messages: w[7],
        late_updates: w[8],
        oversized_frames: w[9],
        rate_limited_frames: w[10],
        breaker_dropped_frames: w[11],
        admission_refused_frames: w[12],
        parties_ejected: w[13],
        drain_refused_selections: w[14],
        links_lost: w[15],
        links_resumed: w[16],
        // Live gauges of attached roster stores — the snapshot codec
        // neither writes nor restores them, so the round-trip property
        // holds only at their reset value.
        roster_spilled: 0,
        roster_loaded: 0,
    })
}

fn checkpoint() -> impl Strategy<Value = Checkpoint> {
    (
        (any_u64(), any_bool(), stats()),
        (
            vec(job_snapshot(), 0..3),
            opt(guard_snapshot()),
            vec(
                (any_u32(), any_u64(), any_u64(), f32_vec()).prop_map(
                    |(link, job, ref_round, params)| CodecRefSnapshot {
                        link,
                        job,
                        ref_round,
                        params,
                    },
                ),
                0..4,
            ),
        ),
    )
        .prop_map(|((tick, draining, stats), (jobs, guard, codec_refs))| Checkpoint {
            tick,
            draining,
            stats,
            jobs,
            guard,
            codec_refs,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary coordinator states — NaN metrics, open breakers,
    /// half-spent budgets, empty and populated tapes — round-trip
    /// through the versioned wire format to the exact canonical bytes.
    /// (f32/f64 NaNs break `PartialEq`, so equality is judged on the
    /// canonical encoding, like the format's own unit tests do.)
    #[test]
    fn encode_decode_round_trips_arbitrary_states(cp in checkpoint()) {
        let bytes = cp.encode();
        let back = Checkpoint::decode(&bytes).unwrap();
        prop_assert_eq!(bytes, back.encode());
    }

    /// Every strict prefix of a valid snapshot is rejected with a clean
    /// error — never a panic, never a partial value.
    #[test]
    fn every_truncation_is_rejected(cp in checkpoint(), frac in 0.0f64..1.0) {
        let bytes = cp.encode();
        let cut = ((bytes.len() as f64) * frac) as usize; // always < len
        prop_assert!(Checkpoint::decode(&bytes[..cut]).is_err());
    }

    /// A single corrupted byte anywhere — header, checksum or payload —
    /// fails the load cleanly.
    #[test]
    fn any_single_byte_corruption_is_rejected(
        cp in checkpoint(),
        pos in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let mut bytes = cp.encode();
        let i = ((bytes.len() as f64) * pos) as usize;
        bytes[i] ^= flip;
        prop_assert!(Checkpoint::decode(&bytes).is_err());
    }

    /// Trailing garbage after a well-formed snapshot is rejected — the
    /// format owns the whole file.
    #[test]
    fn trailing_garbage_is_rejected(cp in checkpoint(), tail in vec(0u8..=255, 1..16)) {
        let mut bytes = cp.encode();
        bytes.extend_from_slice(&tail);
        prop_assert!(Checkpoint::decode(&bytes).is_err());
    }
}
