//! Property-based tests of the FL runtime: wire-codec round-trips,
//! aggregation invariants, straggler-injection bounds.

use flips_fl::message::WireMessage;
use flips_fl::party::LocalUpdate;
use flips_fl::server::weighted_average;
use flips_fl::straggler::{StragglerBias, StragglerInjector};
use flips_fl::LatencyModel;
use proptest::prelude::*;

fn finite_f32() -> impl Strategy<Value = f32> {
    (-1e6f32..1e6).prop_map(|x| x)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn global_model_codec_round_trips(
        round in 0u64..1_000_000,
        params in proptest::collection::vec(finite_f32(), 0..64),
    ) {
        let msg = WireMessage::GlobalModel { round, params };
        let encoded = msg.encode();
        prop_assert_eq!(encoded.len(), msg.wire_size());
        prop_assert_eq!(WireMessage::decode(encoded).unwrap(), msg);
    }

    #[test]
    fn local_update_codec_round_trips(
        round in 0u64..1_000_000,
        party in 0u64..10_000,
        num_samples in 0u64..100_000,
        mean_loss in 0.0f32..100.0,
        duration in 0.0f32..1000.0,
        params in proptest::collection::vec(finite_f32(), 0..64),
    ) {
        let msg = WireMessage::LocalUpdate {
            round, party, num_samples, mean_loss, duration, params,
        };
        let encoded = msg.encode();
        prop_assert_eq!(encoded.len(), msg.wire_size());
        prop_assert_eq!(WireMessage::decode(encoded).unwrap(), msg);
    }

    #[test]
    fn corrupted_messages_never_decode_to_a_different_valid_value(
        params in proptest::collection::vec(finite_f32(), 1..16),
        flip_byte in 0usize..8,
    ) {
        // Flipping header bytes (magic/tag) must fail decoding, never
        // silently succeed as something else.
        let msg = WireMessage::GlobalModel { round: 7, params };
        let mut bytes = msg.encode().to_vec();
        let idx = flip_byte % 5; // within magic+tag
        bytes[idx] ^= 0xFF;
        prop_assert!(WireMessage::decode(bytes::Bytes::from(bytes)).is_err());
    }

    #[test]
    fn weighted_average_lies_within_the_convex_hull(
        a in proptest::collection::vec(-100.0f32..100.0, 1..8),
        b_offset in proptest::collection::vec(-100.0f32..100.0, 1..8),
        na in 1usize..1000,
        nb in 1usize..1000,
    ) {
        let n = a.len().min(b_offset.len());
        let a = &a[..n];
        let b: Vec<f32> = a.iter().zip(&b_offset[..n]).map(|(x, o)| x + o).collect();
        let updates = vec![
            LocalUpdate { params: a.to_vec(), num_samples: na, mean_loss: 0.0, duration: 0.0 },
            LocalUpdate { params: b.clone(), num_samples: nb, mean_loss: 0.0, duration: 0.0 },
        ];
        let avg = weighted_average(&updates).unwrap();
        for i in 0..n {
            let lo = a[i].min(b[i]) - 1e-3;
            let hi = a[i].max(b[i]) + 1e-3;
            prop_assert!((lo..=hi).contains(&avg[i]), "coordinate {i} escaped hull");
        }
    }

    #[test]
    fn weighted_average_is_permutation_invariant(
        params in proptest::collection::vec(
            proptest::collection::vec(-10.0f32..10.0, 4),
            2..6,
        ),
    ) {
        let updates: Vec<LocalUpdate> = params
            .iter()
            .enumerate()
            .map(|(i, p)| LocalUpdate {
                params: p.clone(),
                num_samples: i + 1,
                mean_loss: 0.0,
                duration: 0.0,
            })
            .collect();
        let mut reversed = updates.clone();
        reversed.reverse();
        let a = weighted_average(&updates).unwrap();
        let b = weighted_average(&reversed).unwrap();
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn straggler_injector_respects_rate_and_bounds(
        rate in 0.0f64..0.9,
        cohort in 1usize..60,
        seed in 0u64..500,
    ) {
        let selected: Vec<usize> = (0..cohort).collect();
        let latency = LatencyModel::uniform(cohort);
        let mut inj = StragglerInjector::new(rate, StragglerBias::Uniform, seed);
        let victims = inj.strike(&selected, &latency);
        let expected = (rate * cohort as f64).round() as usize;
        prop_assert_eq!(victims.len(), expected.min(cohort));
        // Sorted, distinct, in-range indices.
        prop_assert!(victims.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(victims.iter().all(|&v| v < cohort));
    }

    #[test]
    fn latency_durations_are_monotone_in_work(
        parties in 1usize..20,
        sigma in 0.0f64..1.0,
        seed in 0u64..300,
        samples in 1usize..500,
    ) {
        let m = LatencyModel::sample(parties, sigma, seed);
        for p in 0..parties {
            let d1 = m.duration(p, samples, 1);
            let d2 = m.duration(p, samples * 2, 1);
            let d3 = m.duration(p, samples, 2);
            prop_assert!(d1 > 0.0);
            prop_assert!(d2 >= d1);
            prop_assert!(d3 >= d1);
        }
    }
}
