//! Property-based tests of the FL runtime: wire-codec round-trips,
//! aggregation invariants, straggler-injection bounds.

use flips_fl::codec::ModelCodec;
use flips_fl::message::WireMessage;
use flips_fl::party::LocalUpdate;
use flips_fl::server::weighted_average;
use flips_fl::straggler::{StragglerBias, StragglerInjector};
use flips_fl::LatencyModel;
use proptest::prelude::*;

fn finite_f32() -> impl Strategy<Value = f32> {
    (-1e6f32..1e6).prop_map(|x| x)
}

/// A strategy producing one message of every protocol variant.
fn any_message() -> impl Strategy<Value = WireMessage> {
    (
        0u8..5,
        0u64..1_000_000,
        0u64..1_000_000,
        0u64..10_000,
        proptest::collection::vec(finite_f32(), 0..64),
        0usize..24,
    )
        .prop_map(|(kind, job, round, party, params, reason_len)| match kind {
            0 => WireMessage::SelectionNotice {
                job,
                round,
                party,
                codec: match party % 3 {
                    0 => ModelCodec::Raw,
                    1 => ModelCodec::DeltaLossless,
                    _ => ModelCodec::F16,
                },
            },
            1 => WireMessage::GlobalModel { job, round, params: params.into() },
            2 => WireMessage::LocalUpdate {
                job,
                round,
                party,
                num_samples: party.wrapping_mul(3) % 100_000,
                mean_loss: params.first().copied().unwrap_or(0.5) as f64,
                duration: (round % 977) as f64 * 0.01,
                params,
            },
            3 => WireMessage::Heartbeat { job, round, party },
            _ => WireMessage::Abort { job, round, party, reason: "x".repeat(reason_len) },
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_variant_round_trips_and_sizes_exactly(msg in any_message()) {
        // wire_size() always equals encode().len(), for every variant.
        let encoded = msg.encode();
        prop_assert_eq!(encoded.len(), msg.wire_size());
        prop_assert_eq!(WireMessage::decode(encoded).unwrap(), msg);
    }

    #[test]
    fn truncated_messages_never_decode(msg in any_message(), frac in 0.0f64..1.0) {
        // Every proper prefix must fail cleanly — no panic, no partial
        // value.
        let bytes = msg.encode();
        let cut = ((bytes.len() as f64) * frac) as usize;
        let cut = cut.min(bytes.len().saturating_sub(1));
        prop_assert!(WireMessage::decode(bytes.slice(0..cut)).is_err());
    }

    #[test]
    fn corrupted_messages_never_panic(
        msg in any_message(),
        flip_byte in 0usize..4096,
        xor in 1u8..=255,
    ) {
        // Flipping any byte either fails decoding or yields another
        // well-formed message (payload bits are not self-describing) —
        // but it must never panic. Magic flips must always fail; a tag
        // flip must fail whenever it changes the frame length (the
        // decoder rejects trailing bytes), i.e. for every message whose
        // variants differ in size. Only fixed-size variants of identical
        // layout (notice/heartbeat, or an empty-params model) can alias
        // under a tag flip — the tag is their sole discriminator.
        let mut bytes = msg.encode().to_vec();
        let idx = flip_byte % bytes.len();
        bytes[idx] ^= xor;
        let result = WireMessage::decode(bytes::Bytes::from(bytes));
        if idx < 4 {
            prop_assert!(result.is_err(), "corrupted magic decoded");
        }
    }

    #[test]
    fn foreign_buffers_never_panic(
        junk in proptest::collection::vec(0u8..=255, 0..128),
    ) {
        // Arbitrary bytes (random length, random content) must never
        // panic the decoder; decoding only succeeds if the buffer
        // happens to start with the protocol magic.
        let result = WireMessage::decode(bytes::Bytes::from(junk.clone()));
        if junk.len() < 5 || junk[..4] != 0xF11F_5002u32.to_le_bytes() {
            prop_assert!(result.is_err());
        }
    }

    #[test]
    fn weighted_average_lies_within_the_convex_hull(
        a in proptest::collection::vec(-100.0f32..100.0, 1..8),
        b_offset in proptest::collection::vec(-100.0f32..100.0, 1..8),
        na in 1usize..1000,
        nb in 1usize..1000,
    ) {
        let n = a.len().min(b_offset.len());
        let a = &a[..n];
        let b: Vec<f32> = a.iter().zip(&b_offset[..n]).map(|(x, o)| x + o).collect();
        let updates = vec![
            LocalUpdate { params: a.to_vec(), num_samples: na, mean_loss: 0.0, duration: 0.0 },
            LocalUpdate { params: b.clone(), num_samples: nb, mean_loss: 0.0, duration: 0.0 },
        ];
        let avg = weighted_average(&updates).unwrap();
        for i in 0..n {
            let lo = a[i].min(b[i]) - 1e-3;
            let hi = a[i].max(b[i]) + 1e-3;
            prop_assert!((lo..=hi).contains(&avg[i]), "coordinate {i} escaped hull");
        }
    }

    #[test]
    fn weighted_average_is_permutation_invariant(
        params in proptest::collection::vec(
            proptest::collection::vec(-10.0f32..10.0, 4),
            2..6,
        ),
    ) {
        let updates: Vec<LocalUpdate> = params
            .iter()
            .enumerate()
            .map(|(i, p)| LocalUpdate {
                params: p.clone(),
                num_samples: i + 1,
                mean_loss: 0.0,
                duration: 0.0,
            })
            .collect();
        let mut reversed = updates.clone();
        reversed.reverse();
        let a = weighted_average(&updates).unwrap();
        let b = weighted_average(&reversed).unwrap();
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn straggler_injector_respects_rate_and_bounds(
        rate in 0.0f64..0.9,
        cohort in 1usize..60,
        seed in 0u64..500,
    ) {
        let selected: Vec<usize> = (0..cohort).collect();
        let latency = LatencyModel::uniform(cohort);
        let mut inj = StragglerInjector::new(rate, StragglerBias::Uniform, seed);
        let victims = inj.strike(&selected, &latency);
        let expected = (rate * cohort as f64).round() as usize;
        prop_assert_eq!(victims.len(), expected.min(cohort));
        // Sorted, distinct, in-range indices.
        prop_assert!(victims.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(victims.iter().all(|&v| v < cohort));
    }

    #[test]
    fn latency_durations_are_monotone_in_work(
        parties in 1usize..20,
        sigma in 0.0f64..1.0,
        seed in 0u64..300,
        samples in 1usize..500,
    ) {
        let m = LatencyModel::sample(parties, sigma, seed);
        for p in 0..parties {
            let d1 = m.duration(p, samples, 1);
            let d2 = m.duration(p, samples * 2, 1);
            let d3 = m.duration(p, samples, 2);
            prop_assert!(d1 > 0.0);
            prop_assert!(d2 >= d1);
            prop_assert!(d3 >= d1);
        }
    }
}
