//! Pluggable model-payload codecs: how a `GlobalModel`/`LocalUpdate`
//! parameter vector travels as bytes.
//!
//! PR 3 put every FL message on real bytes and measured the price: the
//! ~params·4-byte model frames dominate the serialized driver's round
//! overhead. This module makes the payload encoding a **negotiated,
//! per-job choice** — the classic adaptive-middleware move — without
//! touching the protocol state machines:
//!
//! - [`ModelCodec::Raw`] — f32 little-endian, the compatibility default.
//!   Exactly the pre-codec wire image (plus the one-byte codec tag).
//! - [`ModelCodec::DeltaLossless`] — XOR-delta of each parameter's bits
//!   against a per-job *reference model* (the last global model both
//!   ends of the wire already hold), byte-plane shuffled and
//!   zero-run-length encoded. **Bit-exact** on decode — NaN payloads,
//!   signed zeros and subnormals survive — so seeded histories over the
//!   compressed wire still pin the `FlJob` goldens.
//! - [`ModelCodec::DeltaEntropy`] — the delta pipeline above plus a
//!   static-model [rANS entropy stage](crate::rans) over the shuffled
//!   planes in place of the zero-RLE: still **bit-exact**, and the
//!   literal bytes the RLE ships at full width now cost their entropy.
//!   A per-block inline fallback keeps hostile-entropy payloads inside
//!   the same reserve-ahead bound the RLE honors.
//! - [`ModelCodec::TopK`] — a *lossy* sparsification tier: only the `k`
//!   largest-magnitude delta coordinates against the reference travel,
//!   as `(index, value)` pairs with deterministic tie-breaking by
//!   index, so seeded histories stay replayable even though the model
//!   itself is approximated.
//! - [`ModelCodec::F16`] — lossy IEEE half precision for deployments
//!   that opt in (never a default): halves model bytes unconditionally,
//!   at ~3 decimal digits of mantissa.
//!
//! The codec is carried per job in the coordinator config, announced in
//! every [`SelectionNotice`](crate::WireMessage::SelectionNotice), and
//! negotiated once per job on the receiving side ([`CodecMap::negotiate`]).
//! Since the per-link negotiation PR the announcement is scoped to the
//! *link*: the driver may pin a different codec per link on one job
//! ([`crate::MultiJobDriver::set_link_codec`]), each link's
//! `SelectionNotice` carries that link's codec, and each receiving pool
//! pins per (link, job) with the same once-only renegotiation-refusal
//! rules. A decoder rejects mismatched or corrupt codec tags with
//! [`FlError::CodecMismatch`] — the frame is dropped and counted, round
//! state untouched.
//!
//! The byte-level layout of every payload and announcement is specified
//! normatively in `docs/WIRE.md`.
//!
//! ## The reference model
//!
//! Both ends of a wire hold a per-job [`PayloadCodec`] whose reference
//! is "the last global model that crossed this wire for this job":
//!
//! - the **sender** of global models (the aggregator driver) updates its
//!   reference when it *encodes* a `GlobalModel`;
//! - the **receiver** (the party pool) updates its reference when it
//!   *decodes* one (never regressing to an older round, so a replayed
//!   stale frame cannot desynchronize the ends).
//!
//! `LocalUpdate` payloads delta against the same reference but never
//! update it. The first `GlobalModel` of a job (no reference yet) goes
//! inline-raw and establishes the reference on both ends; every later
//! model frame is a delta. Within a round the 2nd..Nth copies of the
//! same broadcast XOR to all-zero and collapse to a few RLE tokens, and
//! across rounds the aggregate moves the model little, so the deltas'
//! exponent/sign planes are almost entirely zero.
//!
//! ## Trust boundary
//!
//! The wire is **unauthenticated** — exactly like the pre-codec raw
//! wire, where an injector could already hand any endpoint arbitrary
//! model parameters or forged aborts. The codec layer therefore defends
//! against *corruption and confusion*, not against an active forger:
//! corrupt/truncated/mismatched-tag frames are rejected and counted,
//! stale replays cannot regress a reference, wrong-direction frames
//! cannot move codec state, and a decoded model of the wrong
//! architecture length can never become a reference
//! ([`PayloadCodec::set_expected_len`]). What it cannot do is
//! distinguish a *well-formed, right-length* forged frame from
//! legitimate traffic — no unauthenticated scheme can; on the delta
//! wire such a frame can poison the reference where on the raw wire it
//! poisons one round of training. Deployments that need the stronger
//! property must authenticate frames (the attested TEE channel layer in
//! `flips-tee` is the natural place) and can pre-pin each job's codec
//! out-of-band with [`crate::PartyPool::pin_codec`] instead of trusting
//! the first notice.

use crate::FlError;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// How model-parameter payloads are encoded on the wire for one job.
///
/// # Example
///
/// A sender/receiver codec pair round-trips a global model bit-exactly
/// under [`ModelCodec::DeltaLossless`] — the first model goes inline
/// and establishes the shared reference, later rounds travel as
/// XOR-deltas:
///
/// ```
/// use bytes::BytesMut;
/// use flips_fl::codec::{ModelCodec, PayloadCodec, Role};
///
/// let mut tx = PayloadCodec::new(ModelCodec::DeltaLossless, Role::Sender);
/// let mut rx = PayloadCodec::new(ModelCodec::DeltaLossless, Role::Receiver);
/// for (round, params) in [[1.0f32, -2.5, 0.0], [1.25, -2.5, 0.0]].iter().enumerate() {
///     let mut buf = BytesMut::new();
///     tx.encode_global(round as u64, params, &mut buf);
///     let mut wire = buf.freeze();
///     let decoded = rx.decode_global(round as u64, &mut wire).unwrap();
///     assert_eq!(&decoded[..], params, "bit-exact across the compressed wire");
/// }
/// assert!(rx.has_reference(), "the receiver tracks the sender's reference");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ModelCodec {
    /// f32 little-endian, the compatibility default.
    #[default]
    Raw,
    /// Bit-exact XOR-delta vs the per-job reference model, byte-plane
    /// shuffled + zero-run-length encoded.
    DeltaLossless,
    /// Lossy IEEE 754 half precision (opt-in only, never a default).
    F16,
    /// Bit-exact XOR-delta planes entropy-coded with a static-model
    /// [rANS stage](crate::rans) (inline fallback bounds hostile
    /// payloads at the raw image size).
    DeltaEntropy,
    /// Lossy top-k sparsification: the `k` largest-magnitude delta
    /// coordinates vs the reference travel as `(index, value_bits)`
    /// pairs; untransmitted coordinates keep their reference value.
    /// Ties in magnitude break by ascending index, so encoding is a
    /// pure function of `(params, reference, k)` and seeded histories
    /// replay bit-identically.
    TopK {
        /// Coordinates transmitted per model frame.
        k: u32,
    },
}

const TAG_RAW: u8 = 0;
const TAG_DELTA: u8 = 1;
const TAG_F16: u8 = 2;
const TAG_ENTROPY: u8 = 3;
const TAG_TOPK: u8 = 4;

/// Delta payload sub-mode: full inline-raw image (no reference yet).
const MODE_INLINE: u8 = 0;
/// Delta payload sub-mode: XOR-delta planes vs the reference.
const MODE_DELTA: u8 = 1;

impl ModelCodec {
    /// The one-byte wire tag.
    pub fn tag(self) -> u8 {
        match self {
            ModelCodec::Raw => TAG_RAW,
            ModelCodec::DeltaLossless => TAG_DELTA,
            ModelCodec::F16 => TAG_F16,
            ModelCodec::DeltaEntropy => TAG_ENTROPY,
            ModelCodec::TopK { .. } => TAG_TOPK,
        }
    }

    /// Parses a wire tag. `None` for unknown tags *and* for the top-k
    /// tag: top-k carries a `k` parameter the tag byte alone cannot
    /// recover — announcements travel through
    /// [`ModelCodec::decode_announcement`], which reads it.
    pub fn from_tag(tag: u8) -> Option<ModelCodec> {
        match tag {
            TAG_RAW => Some(ModelCodec::Raw),
            TAG_DELTA => Some(ModelCodec::DeltaLossless),
            TAG_F16 => Some(ModelCodec::F16),
            TAG_ENTROPY => Some(ModelCodec::DeltaEntropy),
            _ => None,
        }
    }

    /// The human-readable name of a wire tag, known or not (decoder
    /// diagnostics).
    fn tag_name(tag: u8) -> Option<&'static str> {
        match tag {
            TAG_RAW => Some("raw"),
            TAG_DELTA => Some("delta-lossless"),
            TAG_F16 => Some("f16"),
            TAG_ENTROPY => Some("delta-entropy"),
            TAG_TOPK => Some("topk"),
            _ => None,
        }
    }

    /// Human-readable name (benchmarks, logs).
    pub fn label(self) -> &'static str {
        match self {
            ModelCodec::Raw => "raw",
            ModelCodec::DeltaLossless => "delta-lossless",
            ModelCodec::F16 => "f16",
            ModelCodec::DeltaEntropy => "delta-entropy",
            ModelCodec::TopK { .. } => "topk",
        }
    }

    /// Whether decode reproduces the encoded parameters bit-for-bit.
    pub fn is_lossless(self) -> bool {
        !matches!(self, ModelCodec::F16 | ModelCodec::TopK { .. })
    }

    /// Whether this codec maintains a reference model on both ends of
    /// the wire (and therefore pays the reference-advance bookkeeping
    /// on global-model encode/decode).
    pub fn tracks_reference(self) -> bool {
        matches!(
            self,
            ModelCodec::DeltaLossless | ModelCodec::DeltaEntropy | ModelCodec::TopK { .. }
        )
    }

    /// Worst-case bytes of one encoded params block of `n` parameters
    /// (codec tag + count + payload) — what an encoder reserves ahead.
    pub fn max_params_block_bytes(self, n: usize) -> usize {
        let head = 1 + 8; // codec tag + count
        match self {
            ModelCodec::Raw => head + 4 * n,
            // mode + comp_len + tokens; literal tokens add 3 bytes per
            // 65535-byte run, plus one possibly-short token per plane.
            ModelCodec::DeltaLossless => head + 1 + 4 + 4 * n + 3 * (4 * n / RUN_CAP + 5),
            ModelCodec::F16 => head + 2 * n,
            // mode + comp_len/pair-count + the inline fallback image
            // (the compressed/sparse path is strictly smaller — the
            // encoder falls back before it would exceed the raw size).
            ModelCodec::DeltaEntropy | ModelCodec::TopK { .. } => head + 1 + 4 + 4 * n,
        }
    }

    /// Bytes of this codec's announcement inside a `SelectionNotice`:
    /// the tag byte, plus the u32 `k` parameter for [`ModelCodec::TopK`].
    pub fn announcement_bytes(self) -> usize {
        match self {
            ModelCodec::TopK { .. } => 1 + 4,
            _ => 1,
        }
    }

    /// Appends this codec's announcement (tag byte, then top-k's u32
    /// `k` little-endian).
    pub fn encode_announcement(self, out: &mut BytesMut) {
        out.put_u8(self.tag());
        if let ModelCodec::TopK { k } = self {
            out.put_u32_le(k);
        }
    }

    /// Parses an announcement written by
    /// [`ModelCodec::encode_announcement`].
    ///
    /// # Errors
    ///
    /// [`FlError::Codec`] on an empty buffer, an unknown tag, or a
    /// truncated top-k parameter.
    pub fn decode_announcement(buf: &mut Bytes) -> Result<ModelCodec, FlError> {
        if buf.remaining() < 1 {
            return Err(FlError::Codec("truncated codec announcement".into()));
        }
        let tag = buf.get_u8();
        if tag == TAG_TOPK {
            if buf.remaining() < 4 {
                return Err(FlError::Codec("truncated top-k announcement parameter".into()));
            }
            return Ok(ModelCodec::TopK { k: buf.get_u32_le() });
        }
        ModelCodec::from_tag(tag)
            .ok_or_else(|| FlError::Codec(format!("unknown codec tag {tag:#x}")))
    }
}

impl std::fmt::Display for ModelCodec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Which end of the wire a [`PayloadCodec`] serves — decides which
/// operation (encode or decode of a `GlobalModel`) advances the
/// reference, so a hostile echoed frame on the wrong link direction can
/// never move codec state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Sends global models (the aggregator driver): reference advances
    /// on *encode*.
    Sender,
    /// Receives global models (the party pool): reference advances on
    /// *decode*.
    Receiver,
}

/// One job's payload codec state: the negotiated codec, the reference
/// model, and reused compression scratch (grow-only, like the GEMM pack
/// buffers — steady-state encode/decode allocates nothing but the
/// decoded payload itself).
pub struct PayloadCodec {
    codec: ModelCodec,
    role: Role,
    reference: Vec<f32>,
    /// Round of the reference (replay guard: never regress).
    ref_round: u64,
    has_reference: bool,
    /// `(addr, len)` of the buffer the sender's reference was copied
    /// from — same-round rebroadcasts share one `Arc`, so a pointer
    /// match proves the payload IS the reference and the zero-delta
    /// block can be emitted in O(1) without re-shuffling.
    ref_src: (usize, usize),
    /// Architecture bound on reference commits (see
    /// [`PayloadCodec::set_expected_len`]).
    expected_len: Option<usize>,
    /// Byte-plane shuffle scratch, 4·n bytes.
    planes: Vec<u8>,
    /// RLE / rANS token scratch.
    tokens: Vec<u8>,
    /// Decoded-parameter scratch for global models.
    decoded: Vec<f32>,
    /// Top-k candidate scratch: `(magnitude key, index)`.
    cands: Vec<(u32, u32)>,
    /// Top-k selected pairs of the last encode, `(index, value bits)`
    /// ascending by index — what the sender applies to advance its
    /// reference to the *reconstruction* (the model the receiver now
    /// holds), not to the true parameters.
    pairs: Vec<(u32, u32)>,
    /// Whether the last top-k params encode fell back to the inline
    /// image (then the reconstruction IS the true model).
    topk_inline: bool,
    /// The true (pre-sparsification) parameters behind the top-k
    /// reference — same-round rebroadcast detection must compare the
    /// offered params against what was *offered* last time, not against
    /// the lossy reconstruction.
    true_ref: Vec<f32>,
}

impl std::fmt::Debug for PayloadCodec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PayloadCodec")
            .field("codec", &self.codec)
            .field("role", &self.role)
            .field("reference", &self.has_reference.then_some(self.reference.len()))
            .finish()
    }
}

impl PayloadCodec {
    /// Fresh codec state for one end of one job's wire.
    pub fn new(codec: ModelCodec, role: Role) -> Self {
        PayloadCodec {
            codec,
            role,
            reference: Vec::new(),
            ref_round: 0,
            has_reference: false,
            ref_src: (0, 0),
            expected_len: None,
            planes: Vec::new(),
            tokens: Vec::new(),
            decoded: Vec::new(),
            cands: Vec::new(),
            pairs: Vec::new(),
            topk_inline: false,
            true_ref: Vec::new(),
        }
    }

    /// The negotiated codec.
    pub fn codec(&self) -> ModelCodec {
        self.codec
    }

    /// Whether a reference model has been established.
    pub fn has_reference(&self) -> bool {
        self.has_reference
    }

    /// Pins the parameter count references must have. A receiver that
    /// knows the job's architecture (the party pool does — its
    /// endpoints hold the agreed model) refuses to let any other-sized
    /// decoded model become the reference, so a forged wrong-length
    /// inline frame cannot poison the delta state of a live job.
    pub fn set_expected_len(&mut self, len: usize) {
        self.expected_len = Some(len);
    }

    /// Appends one encoded params block for a `GlobalModel` payload.
    /// A [`Role::Sender`] advances its reference — to `params` for the
    /// lossless delta codecs, and to the *reconstruction* (reference
    /// with the transmitted pairs applied) for the lossy top-k tier, so
    /// both ends keep referencing the same bits.
    pub fn encode_global(&mut self, round: u64, params: &[f32], out: &mut BytesMut) {
        if !self.codec.tracks_reference() {
            // Raw/f16 keep no reference — they must not pay a
            // full-model memcpy per dispatched frame.
            self.encode_params(params, out);
            return;
        }
        if self.role == Role::Sender
            && !params.is_empty()
            && self.is_reference_rebroadcast(round, params)
        {
            // Same-round rebroadcast: the delta is identically zero —
            // emit the degenerate block directly, no shuffle/sort.
            match self.codec {
                ModelCodec::DeltaLossless => self.encode_zero_delta(params.len(), out),
                ModelCodec::DeltaEntropy => self.encode_zero_entropy(params.len(), out),
                ModelCodec::TopK { .. } => self.encode_empty_topk(params.len(), out),
                _ => unreachable!("only reference-tracking codecs reach here"),
            }
            return;
        }
        self.encode_params(params, out);
        if self.role != Role::Sender {
            return;
        }
        if let ModelCodec::TopK { .. } = self.codec {
            if self.topk_inline {
                self.set_reference(round, params);
            } else {
                // Advance to the reconstruction the receiver will now
                // hold: the old reference with the shipped pairs
                // applied. `params` itself is remembered separately so
                // a same-round rebroadcast of the same buffer is
                // recognized.
                for &(i, bits) in &self.pairs {
                    self.reference[i as usize] = f32::from_bits(bits);
                }
                self.ref_round = round;
                self.has_reference = true;
                self.ref_src = (params.as_ptr() as usize, params.len());
            }
            self.true_ref.clear();
            self.true_ref.extend_from_slice(params);
        } else {
            self.set_reference(round, params);
        }
    }

    /// Appends one encoded params block for a `LocalUpdate` payload
    /// (uses the reference, never advances it).
    pub fn encode_update(&mut self, params: &[f32], out: &mut BytesMut) {
        self.encode_params(params, out);
    }

    /// Decodes a `GlobalModel` params block. A [`Role::Receiver`]
    /// advances its reference to the decoded model only for a strictly
    /// newer round: a same-round rebroadcast decodes to the reference
    /// itself (no redundant full-model re-commit), a stale or
    /// same-round *replay* cannot re-commit — a redelivered first
    /// frame of the current round would decode against the round's own
    /// reference into garbage, and under a `>=` guard that garbage
    /// would poison the reference — and the decoded length must honor
    /// [`PayloadCodec::set_expected_len`] / the established reference
    /// (a forged or corrupt self-contained frame must not poison live
    /// delta state; the message still decodes — the protocol layer
    /// rejects and counts it).
    ///
    /// # Errors
    ///
    /// [`FlError::CodecMismatch`] on a codec tag other than the
    /// negotiated one (or an unknown tag byte); [`FlError::Codec`] on
    /// truncation, hostile lengths or malformed compression streams.
    pub fn decode_global(&mut self, round: u64, buf: &mut Bytes) -> Result<Arc<[f32]>, FlError> {
        let mut decoded = std::mem::take(&mut self.decoded);
        decoded.clear();
        let result = self.decode_params(buf, &mut decoded);
        let arc = match result {
            Ok(()) => {
                let fresh = !self.has_reference || round > self.ref_round;
                let len_ok = self.expected_len.is_none_or(|l| l == decoded.len())
                    && (!self.has_reference || self.reference.len() == decoded.len());
                if self.codec.tracks_reference() && self.role == Role::Receiver && fresh && len_ok {
                    self.set_reference(round, &decoded);
                }
                Ok(Arc::from(decoded.as_slice()))
            }
            Err(e) => Err(e),
        };
        self.decoded = decoded;
        arc
    }

    /// Decodes a `LocalUpdate` params block (uses the reference, never
    /// advances it).
    ///
    /// # Errors
    ///
    /// As [`PayloadCodec::decode_global`].
    pub fn decode_update(&mut self, buf: &mut Bytes) -> Result<Vec<f32>, FlError> {
        let mut out = Vec::new();
        self.decode_params(buf, &mut out)?;
        Ok(out)
    }

    /// Forcibly re-keys the reference to `params` at `round` — the
    /// resume/restore path, where both ends of a wire deterministically
    /// resynchronize to the last mutually-acknowledged global model.
    /// Returns `false` (state untouched) when the length violates
    /// [`PayloadCodec::set_expected_len`] or the codec keeps no
    /// reference at all. The rebroadcast pointer hint is invalidated:
    /// the next encode against these bits takes the ordinary delta path,
    /// which emits the identical byte stream.
    pub fn force_reference(&mut self, round: u64, params: &[f32]) -> bool {
        if !self.codec.tracks_reference() {
            return false;
        }
        if self.expected_len.is_some_and(|l| l != params.len()) {
            return false;
        }
        self.reference.clear();
        self.reference.extend_from_slice(params);
        self.ref_round = round;
        self.has_reference = true;
        self.ref_src = (0, 0);
        self.true_ref.clear();
        self.pairs.clear();
        self.topk_inline = false;
        true
    }

    /// The current reference model, as `(round, params)` — what a
    /// checkpoint records so a restored sender re-keys to the exact bits
    /// (for the top-k tier that is the lossy *reconstruction*, which is
    /// precisely what the next delta must be computed against).
    pub fn reference_snapshot(&self) -> Option<(u64, &[f32])> {
        self.has_reference.then_some((self.ref_round, self.reference.as_slice()))
    }

    fn set_reference(&mut self, round: u64, params: &[f32]) {
        self.reference.clear();
        self.reference.extend_from_slice(params);
        self.ref_round = round;
        self.has_reference = true;
        self.ref_src = (params.as_ptr() as usize, params.len());
    }

    /// Whether `params` is bit-identical to the reference. The
    /// address/length/round triple is only a cheap *hint* (a same-round
    /// rebroadcast hands the codec the very `Arc` buffer its reference
    /// was copied from); the bitwise compare below is what makes the
    /// answer sound — an allocator recycling a freed buffer at the same
    /// address (ABA) must not smuggle different data through the
    /// zero-delta fast path. The compare is a linear scan, still an
    /// order of magnitude cheaper than the shuffle+RLE it skips, and it
    /// only runs when the pointer hint already matched.
    fn is_reference_rebroadcast(&self, round: u64, params: &[f32]) -> bool {
        // Top-k's stored reference is the lossy reconstruction; the
        // bits to compare against are the true params of the last
        // encode, kept in `true_ref`.
        let baseline: &[f32] = match self.codec {
            ModelCodec::TopK { .. } => &self.true_ref,
            _ => &self.reference,
        };
        self.has_reference
            && self.ref_round == round
            && self.ref_src == (params.as_ptr() as usize, params.len())
            && baseline.len() == params.len()
            && params.iter().zip(baseline).all(|(a, b)| a.to_bits() == b.to_bits())
    }

    /// Emits the delta block of an all-zero delta (a rebroadcast of the
    /// reference itself): `ceil(4n / RUN_CAP)` zero-run tokens, O(1) in
    /// the model size.
    fn encode_zero_delta(&mut self, n: usize, out: &mut BytesMut) {
        self.tokens.clear();
        let mut remaining = 4 * n;
        while remaining > 0 {
            let run = remaining.min(RUN_CAP);
            self.tokens.push(RUN_ZERO);
            self.tokens.extend_from_slice(&(run as u16).to_le_bytes());
            remaining -= run;
        }
        out.reserve(1 + 8 + 1 + 4 + self.tokens.len());
        out.put_u8(self.codec.tag());
        out.put_u64_le(n as u64);
        out.put_u8(MODE_DELTA);
        out.put_u32_le(self.tokens.len() as u32);
        out.put_slice(&self.tokens);
    }

    /// Emits the entropy-coded block of an all-zero delta. Each plane's
    /// rANS stream is header-sized (one symbol at the full frequency
    /// budget never moves the coder state), so a rebroadcast costs ~170
    /// bytes regardless of model size; only the plane memset is O(n).
    fn encode_zero_entropy(&mut self, n: usize, out: &mut BytesMut) {
        self.planes.clear();
        self.planes.resize(4 * n, 0);
        self.tokens.clear();
        crate::rans::encode_planes(&self.planes, n, &mut self.tokens);
        out.reserve(1 + 8 + 1 + 4 + self.tokens.len());
        out.put_u8(self.codec.tag());
        out.put_u64_le(n as u64);
        out.put_u8(MODE_DELTA);
        out.put_u32_le(self.tokens.len() as u32);
        out.put_slice(&self.tokens);
    }

    /// Emits the top-k block of a zero delta: no pairs at all, O(1).
    fn encode_empty_topk(&mut self, n: usize, out: &mut BytesMut) {
        out.reserve(1 + 8 + 1 + 4);
        out.put_u8(self.codec.tag());
        out.put_u64_le(n as u64);
        out.put_u8(MODE_DELTA);
        out.put_u32_le(0);
    }

    fn encode_params(&mut self, params: &[f32], out: &mut BytesMut) {
        out.reserve(self.codec.max_params_block_bytes(params.len()));
        out.put_u8(self.codec.tag());
        out.put_u64_le(params.len() as u64);
        match self.codec {
            ModelCodec::Raw => {
                for &p in params {
                    out.put_f32_le(p);
                }
            }
            ModelCodec::F16 => {
                for &p in params {
                    out.put_slice(&f32_to_f16_bits(p).to_le_bytes());
                }
            }
            ModelCodec::DeltaLossless => {
                if !self.has_reference || self.reference.len() != params.len() {
                    out.put_u8(MODE_INLINE);
                    for &p in params {
                        out.put_f32_le(p);
                    }
                    return;
                }
                let n = params.len();
                self.build_delta_planes(params);
                self.tokens.clear();
                rle_compress(&self.planes, &mut self.tokens);
                // A hostile-entropy delta (short zero runs threaded
                // between literals) can RLE-expand up to ~1.4×; fall
                // back to the inline image so an encoded block never
                // exceeds its raw size (which is also what keeps the
                // reserve-ahead bound honest — no mid-encode
                // reallocation of the scratch).
                if self.tokens.len() >= 4 * n {
                    out.put_u8(MODE_INLINE);
                    for &p in params {
                        out.put_f32_le(p);
                    }
                    return;
                }
                out.put_u8(MODE_DELTA);
                out.put_u32_le(self.tokens.len() as u32);
                out.put_slice(&self.tokens);
            }
            ModelCodec::DeltaEntropy => {
                if !self.has_reference || self.reference.len() != params.len() || params.is_empty()
                {
                    out.put_u8(MODE_INLINE);
                    for &p in params {
                        out.put_f32_le(p);
                    }
                    return;
                }
                let n = params.len();
                self.build_delta_planes(params);
                self.tokens.clear();
                crate::rans::encode_planes(&self.planes, n, &mut self.tokens);
                // Same reserve-ahead discipline as the RLE stage: a
                // near-incompressible delta (the rANS header alone is
                // up to 544 bytes) falls back to the inline image so no
                // block exceeds its raw size.
                if self.tokens.len() >= 4 * n {
                    out.put_u8(MODE_INLINE);
                    for &p in params {
                        out.put_f32_le(p);
                    }
                    return;
                }
                out.put_u8(MODE_DELTA);
                out.put_u32_le(self.tokens.len() as u32);
                out.put_slice(&self.tokens);
            }
            ModelCodec::TopK { k } => {
                self.topk_inline = true;
                if !self.has_reference || self.reference.len() != params.len() {
                    out.put_u8(MODE_INLINE);
                    for &p in params {
                        out.put_f32_le(p);
                    }
                    return;
                }
                let n = params.len();
                // Candidates: coordinates whose bits differ from the
                // reference, keyed by |params − reference| (NaN deltas
                // key as the largest magnitudes — a NaN-poisoned
                // coordinate must not be silently dropped).
                let mut cands = std::mem::take(&mut self.cands);
                cands.clear();
                for (i, (&x, &r)) in params.iter().zip(&self.reference).enumerate() {
                    if x.to_bits() != r.to_bits() {
                        let key = (x - r).to_bits() & 0x7FFF_FFFF;
                        cands.push((key, i as u32));
                    }
                }
                // Keep the k largest keys; the comparator's index
                // tie-break makes it a total order, so the selected
                // *set* is a pure function of the input regardless of
                // partition internals.
                let k = k as usize;
                if cands.len() > k {
                    cands.select_nth_unstable_by(k, |a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
                    cands.truncate(k);
                }
                self.pairs.clear();
                self.pairs.extend(cands.iter().map(|&(_, i)| (i, params[i as usize].to_bits())));
                self.pairs.sort_unstable_by_key(|&(i, _)| i);
                self.cands = cands;
                // Dense deltas (or tiny models) where the pair list
                // would not undercut the raw image go inline — and
                // inline is also bit-exact, so the fallback only ever
                // *improves* fidelity.
                if 4 + 8 * self.pairs.len() >= 4 * n {
                    out.put_u8(MODE_INLINE);
                    for &p in params {
                        out.put_f32_le(p);
                    }
                    return;
                }
                self.topk_inline = false;
                out.put_u8(MODE_DELTA);
                out.put_u32_le(self.pairs.len() as u32);
                for &(i, bits) in &self.pairs {
                    out.put_u32_le(i);
                    out.put_u32_le(bits);
                }
            }
        }
    }

    /// Fills `self.planes` with the byte-plane-shuffled XOR delta of
    /// `params` against the reference (callers guarantee equal
    /// lengths).
    fn build_delta_planes(&mut self, params: &[f32]) {
        let n = params.len();
        self.planes.clear();
        self.planes.resize(4 * n, 0);
        for (i, (&x, &r)) in params.iter().zip(&self.reference).enumerate() {
            let d = (x.to_bits() ^ r.to_bits()).to_le_bytes();
            self.planes[i] = d[0];
            self.planes[n + i] = d[1];
            self.planes[2 * n + i] = d[2];
            self.planes[3 * n + i] = d[3];
        }
    }

    fn decode_params(&mut self, buf: &mut Bytes, out: &mut Vec<f32>) -> Result<(), FlError> {
        if buf.remaining() < 1 + 8 {
            return Err(FlError::Codec("truncated params block".into()));
        }
        let tag = buf.get_u8();
        if tag != self.codec.tag() {
            return Err(FlError::CodecMismatch(match ModelCodec::tag_name(tag) {
                Some(got) => {
                    format!("payload encoded as {got}, job negotiated {}", self.codec)
                }
                None => format!("corrupt codec tag {tag:#x}"),
            }));
        }
        let count = buf.get_u64_le();
        match self.codec {
            ModelCodec::Raw => {
                let n = checked_count(count, 4, buf.remaining())?;
                out.clear();
                out.extend((0..n).map(|_| buf.get_f32_le()));
            }
            ModelCodec::F16 => {
                let n = checked_count(count, 2, buf.remaining())?;
                out.clear();
                out.extend(
                    (0..n)
                        .map(|_| f16_bits_to_f32(u16::from_le_bytes([buf.get_u8(), buf.get_u8()]))),
                );
            }
            ModelCodec::DeltaLossless => {
                if buf.remaining() < 1 {
                    return Err(FlError::Codec("truncated delta mode byte".into()));
                }
                match buf.get_u8() {
                    MODE_INLINE => {
                        let n = checked_count(count, 4, buf.remaining())?;
                        out.clear();
                        out.extend((0..n).map(|_| buf.get_f32_le()));
                    }
                    MODE_DELTA => {
                        if !self.has_reference {
                            return Err(FlError::Codec(
                                "delta payload before any reference model".into(),
                            ));
                        }
                        let n = self.reference.len();
                        if count != n as u64 {
                            return Err(FlError::Codec(format!(
                                "delta payload for {count} params, reference holds {n}"
                            )));
                        }
                        if buf.remaining() < 4 {
                            return Err(FlError::Codec("truncated delta length".into()));
                        }
                        let comp_len = buf.get_u32_le() as usize;
                        if comp_len > buf.remaining() {
                            return Err(FlError::Codec(format!(
                                "delta stream of {comp_len} bytes exceeds the {} remaining",
                                buf.remaining()
                            )));
                        }
                        let comp = buf.split_to(comp_len);
                        // A stream of only zero-run tokens is a
                        // rebroadcast of the reference itself — skip
                        // the plane expansion and XOR gather entirely.
                        if let Some(total) = zero_only_stream_len(comp.as_slice()) {
                            if total != 4 * n {
                                return Err(FlError::Codec(format!(
                                    "RLE stream yields {total} bytes, delta planes need {}",
                                    4 * n
                                )));
                            }
                            out.clear();
                            out.extend_from_slice(&self.reference);
                            return Ok(());
                        }
                        rle_decompress(comp.as_slice(), 4 * n, &mut self.planes)?;
                        out.clear();
                        gather_from_planes(&self.planes, &self.reference, out);
                    }
                    other => {
                        return Err(FlError::Codec(format!("unknown delta mode {other}")));
                    }
                }
            }
            ModelCodec::DeltaEntropy => {
                if buf.remaining() < 1 {
                    return Err(FlError::Codec("truncated delta mode byte".into()));
                }
                match buf.get_u8() {
                    MODE_INLINE => {
                        let n = checked_count(count, 4, buf.remaining())?;
                        out.clear();
                        out.extend((0..n).map(|_| buf.get_f32_le()));
                    }
                    MODE_DELTA => {
                        if !self.has_reference {
                            return Err(FlError::Codec(
                                "delta payload before any reference model".into(),
                            ));
                        }
                        let n = self.reference.len();
                        if count != n as u64 {
                            return Err(FlError::Codec(format!(
                                "delta payload for {count} params, reference holds {n}"
                            )));
                        }
                        if buf.remaining() < 4 {
                            return Err(FlError::Codec("truncated delta length".into()));
                        }
                        let comp_len = buf.get_u32_le() as usize;
                        if comp_len > buf.remaining() {
                            return Err(FlError::Codec(format!(
                                "entropy stream of {comp_len} bytes exceeds the {} remaining",
                                buf.remaining()
                            )));
                        }
                        let comp = buf.split_to(comp_len);
                        crate::rans::decode_planes(comp.as_slice(), n, &mut self.planes)?;
                        out.clear();
                        gather_from_planes(&self.planes, &self.reference, out);
                    }
                    other => {
                        return Err(FlError::Codec(format!("unknown delta mode {other}")));
                    }
                }
            }
            ModelCodec::TopK { .. } => {
                if buf.remaining() < 1 {
                    return Err(FlError::Codec("truncated delta mode byte".into()));
                }
                match buf.get_u8() {
                    MODE_INLINE => {
                        let n = checked_count(count, 4, buf.remaining())?;
                        out.clear();
                        out.extend((0..n).map(|_| buf.get_f32_le()));
                    }
                    MODE_DELTA => {
                        if !self.has_reference {
                            return Err(FlError::Codec(
                                "top-k payload before any reference model".into(),
                            ));
                        }
                        let n = self.reference.len();
                        if count != n as u64 {
                            return Err(FlError::Codec(format!(
                                "top-k payload for {count} params, reference holds {n}"
                            )));
                        }
                        if buf.remaining() < 4 {
                            return Err(FlError::Codec("truncated top-k pair count".into()));
                        }
                        let npairs = buf.get_u32_le() as usize;
                        if npairs > n || npairs.checked_mul(8).is_none_or(|b| b > buf.remaining()) {
                            return Err(FlError::Codec(format!(
                                "{npairs} top-k pairs exceed the model or the buffer"
                            )));
                        }
                        out.clear();
                        out.extend_from_slice(&self.reference);
                        let mut prev: Option<u32> = None;
                        for _ in 0..npairs {
                            let i = buf.get_u32_le();
                            let bits = buf.get_u32_le();
                            if i as usize >= n {
                                return Err(FlError::Codec(format!(
                                    "top-k index {i} out of range for {n} params"
                                )));
                            }
                            if prev.is_some_and(|p| p >= i) {
                                return Err(FlError::Codec(
                                    "top-k indices must strictly ascend".into(),
                                ));
                            }
                            prev = Some(i);
                            out[i as usize] = f32::from_bits(bits);
                        }
                    }
                    other => {
                        return Err(FlError::Codec(format!("unknown delta mode {other}")));
                    }
                }
            }
        }
        Ok(())
    }
}

/// XOR-gathers the shuffled delta `planes` (4·n bytes) against
/// `reference` into `out` — the shared tail of the lossless delta
/// decoders.
fn gather_from_planes(planes: &[u8], reference: &[f32], out: &mut Vec<f32>) {
    let n = reference.len();
    out.extend(reference.iter().enumerate().map(|(i, r)| {
        let d =
            u32::from_le_bytes([planes[i], planes[n + i], planes[2 * n + i], planes[3 * n + i]]);
        f32::from_bits(r.to_bits() ^ d)
    }));
}

/// Overflow-safe "count · elem bytes must be present" guard (the same
/// hostile-length defense the pre-codec decoder used).
fn checked_count(count: u64, elem: usize, remaining: usize) -> Result<usize, FlError> {
    usize::try_from(count)
        .ok()
        .and_then(|n| n.checked_mul(elem).map(|bytes| (n, bytes)))
        .filter(|&(_, bytes)| bytes <= remaining)
        .map(|(n, _)| n)
        .ok_or_else(|| FlError::Codec("length prefix exceeds buffer".into()))
}

/// Outcome of offering a codec for a job on the receiving end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Negotiation {
    /// First offer for this job: the codec is now pinned.
    Established,
    /// The offer matches the pinned codec (idempotent re-announcement).
    Match,
    /// The offer conflicts with the pinned codec — the frame must be
    /// dropped; a job's codec is negotiated exactly once.
    Conflict,
}

/// Per-job payload codec state for one end of a multiplexed wire.
///
/// Jobs not (yet) registered fall back to a stateless [`ModelCodec::Raw`]
/// codec, so legacy raw traffic decodes without negotiation.
pub struct CodecMap {
    role: Role,
    jobs: BTreeMap<u64, PayloadCodec>,
    /// Architecture bound applied to codecs registered later (the pool
    /// learns a job's parameter count before its first notice).
    expected: BTreeMap<u64, usize>,
    fallback: PayloadCodec,
}

impl std::fmt::Debug for CodecMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CodecMap")
            .field("role", &self.role)
            .field("jobs", &self.jobs.len())
            .finish()
    }
}

impl CodecMap {
    /// An empty map for one end of the wire.
    pub fn new(role: Role) -> Self {
        CodecMap {
            role,
            jobs: BTreeMap::new(),
            expected: BTreeMap::new(),
            fallback: PayloadCodec::new(ModelCodec::Raw, role),
        }
    }

    /// Records the agreed parameter count of a job's architecture:
    /// every codec (re)registered for the job refuses to commit a
    /// reference model of any other length.
    pub fn expect_len(&mut self, job: u64, len: usize) {
        self.expected.insert(job, len);
        if let Some(pc) = self.jobs.get_mut(&job) {
            pc.set_expected_len(len);
        }
    }

    /// Registers a job's codec outright (the sender side knows its own
    /// configuration; no negotiation involved).
    pub fn register(&mut self, job: u64, codec: ModelCodec) {
        let mut pc = PayloadCodec::new(codec, self.role);
        if let Some(&len) = self.expected.get(&job) {
            pc.set_expected_len(len);
        }
        self.jobs.insert(job, pc);
    }

    /// Offers `codec` for `job` — the receive-side handshake driven by
    /// [`SelectionNotice`](crate::WireMessage::SelectionNotice) frames.
    /// The first offer pins the codec; repeats are idempotent; a
    /// conflicting offer is refused (state unchanged).
    pub fn negotiate(&mut self, job: u64, codec: ModelCodec) -> Negotiation {
        match self.jobs.get(&job) {
            None => {
                self.register(job, codec);
                Negotiation::Established
            }
            Some(pc) if pc.codec() == codec => Negotiation::Match,
            Some(_) => Negotiation::Conflict,
        }
    }

    /// The pinned codec for a job, if negotiated/registered.
    pub fn codec_of(&self, job: u64) -> Option<ModelCodec> {
        self.jobs.get(&job).map(PayloadCodec::codec)
    }

    /// The payload codec a frame of `job` should use (raw fallback for
    /// unregistered jobs).
    pub fn for_job(&mut self, job: u64) -> &mut PayloadCodec {
        match self.jobs.get_mut(&job) {
            Some(pc) => pc,
            None => &mut self.fallback,
        }
    }

    /// Re-keys a registered job's reference (see
    /// [`PayloadCodec::force_reference`]). Returns `false` when the job
    /// has no registered codec, the codec keeps no reference, or the
    /// length violates the job's architecture bound.
    pub fn seed_reference(&mut self, job: u64, round: u64, params: &[f32]) -> bool {
        self.jobs.get_mut(&job).is_some_and(|pc| pc.force_reference(round, params))
    }

    /// Every established reference in the map, as
    /// `(job, ref_round, params)` ascending by job — the checkpoint's
    /// view of one link's delta state.
    pub fn reference_snapshots(&self) -> Vec<(u64, u64, Vec<f32>)> {
        self.jobs
            .iter()
            .filter_map(|(&job, pc)| {
                pc.reference_snapshot().map(|(round, params)| (job, round, params.to_vec()))
            })
            .collect()
    }
}

// ---------------------------------------------------------------------
// Zero-run-length coding of the shuffled delta planes.
// ---------------------------------------------------------------------

const RUN_ZERO: u8 = 0x00;
const RUN_LITERAL: u8 = 0x01;
/// Max bytes one token covers (u16 count).
const RUN_CAP: usize = u16::MAX as usize;
/// Zero runs shorter than this fold into the surrounding literal — a
/// zero token costs 3 bytes, so breaking a literal for less loses.
const MIN_ZERO_RUN: usize = 4;

/// Compresses `src` into `out` as `(kind, u16 count[, bytes])` tokens.
fn rle_compress(src: &[u8], out: &mut Vec<u8>) {
    let mut i = 0;
    while i < src.len() {
        if src[i] == 0 {
            let run = src[i..].iter().position(|&b| b != 0).unwrap_or(src.len() - i);
            if run >= MIN_ZERO_RUN {
                let mut remaining = run;
                while remaining > 0 {
                    let n = remaining.min(RUN_CAP);
                    out.push(RUN_ZERO);
                    out.extend_from_slice(&(n as u16).to_le_bytes());
                    remaining -= n;
                }
                i += run;
                continue;
            }
        }
        // Literal run: until a qualifying zero run begins (or the token
        // count saturates).
        let start = i;
        while i < src.len() && i - start < RUN_CAP {
            if src[i] == 0 {
                let zrun = src[i..].iter().position(|&b| b != 0).unwrap_or(src.len() - i);
                if zrun >= MIN_ZERO_RUN {
                    break;
                }
                i = (i + zrun).min(start + RUN_CAP);
            } else {
                i += 1;
            }
        }
        out.push(RUN_LITERAL);
        out.extend_from_slice(&((i - start) as u16).to_le_bytes());
        out.extend_from_slice(&src[start..i]);
    }
}

/// If the stream is exclusively well-formed zero-run tokens, returns
/// the total byte count they cover (`None` otherwise — fall through to
/// the general decoder, which also produces the errors).
fn zero_only_stream_len(mut src: &[u8]) -> Option<usize> {
    let mut total = 0usize;
    while !src.is_empty() {
        if src.len() < 3 || src[0] != RUN_ZERO {
            return None;
        }
        let count = u16::from_le_bytes([src[1], src[2]]) as usize;
        if count == 0 {
            return None;
        }
        total = total.checked_add(count)?;
        src = &src[3..];
    }
    Some(total)
}

/// Decompresses a token stream into exactly `expect` bytes.
fn rle_decompress(mut src: &[u8], expect: usize, out: &mut Vec<u8>) -> Result<(), FlError> {
    out.clear();
    while !src.is_empty() {
        if src.len() < 3 {
            return Err(FlError::Codec("truncated RLE token".into()));
        }
        let count = u16::from_le_bytes([src[1], src[2]]) as usize;
        if count == 0 {
            return Err(FlError::Codec("empty RLE token".into()));
        }
        if out.len() + count > expect {
            return Err(FlError::Codec("RLE stream overflows the delta planes".into()));
        }
        match src[0] {
            RUN_ZERO => {
                out.resize(out.len() + count, 0);
                src = &src[3..];
            }
            RUN_LITERAL => {
                if src.len() < 3 + count {
                    return Err(FlError::Codec("truncated RLE literal".into()));
                }
                out.extend_from_slice(&src[3..3 + count]);
                src = &src[3 + count..];
            }
            other => return Err(FlError::Codec(format!("unknown RLE token kind {other}"))),
        }
    }
    if out.len() != expect {
        return Err(FlError::Codec(format!(
            "RLE stream yields {} bytes, delta planes need {expect}",
            out.len()
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// IEEE 754 binary16 conversion (no half-precision crate offline).
// ---------------------------------------------------------------------

/// Converts an `f32` to IEEE 754 binary16 bits, round-to-nearest-even.
/// Overflow saturates to ±∞; NaN stays NaN (a payload bit is forced so
/// a truncated-payload NaN cannot collapse into an infinity).
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp32 = ((bits >> 23) & 0xFF) as i32;
    let man = bits & 0x007F_FFFF;
    if exp32 == 0xFF {
        if man == 0 {
            return sign | 0x7C00; // ±inf
        }
        let payload = ((man >> 13) as u16) & 0x03FF;
        return sign | 0x7C00 | 0x0200 | payload; // NaN, quiet bit forced
    }
    let exp = exp32 - 127 + 15;
    if exp >= 0x1F {
        return sign | 0x7C00; // overflow → ±inf
    }
    if exp <= 0 {
        if exp < -10 {
            return sign; // underflow → ±0
        }
        // Subnormal half: shift the (implicit-1) mantissa into place.
        let man = man | 0x0080_0000;
        let shift = (14 - exp) as u32; // 14..=24
        let half = (man >> shift) as u16;
        let round_bit = 1u32 << (shift - 1);
        let rem = man & ((1u32 << shift) - 1);
        if rem > round_bit || (rem == round_bit && half & 1 == 1) {
            return sign | (half + 1); // may carry into the exponent: correct
        }
        return sign | half;
    }
    let mut half = ((exp as u16) << 10) | ((man >> 13) as u16);
    let rem = man & 0x1FFF;
    if rem > 0x1000 || (rem == 0x1000 && half & 1 == 1) {
        half += 1; // mantissa carry may roll into the exponent: correct
    }
    sign | half
}

/// Converts IEEE 754 binary16 bits to the exactly-representable `f32`.
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1F) as u32;
    let man = (h & 0x03FF) as u32;
    let bits = match exp {
        0 => {
            if man == 0 {
                sign // ±0
            } else {
                // Subnormal half = man · 2⁻²⁴, exact in f32.
                let magnitude = man as f32 * (1.0 / 16_777_216.0);
                sign | magnitude.to_bits()
            }
        }
        0x1F => sign | 0x7F80_0000 | (man << 13), // ±inf / NaN
        _ => sign | ((exp + 112) << 23) | (man << 13),
    };
    f32::from_bits(bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(codec: &mut PayloadCodec, peer: &mut PayloadCodec, params: &[f32]) -> Vec<f32> {
        let mut buf = BytesMut::new();
        codec.encode_global(0, params, &mut buf);
        let mut bytes = buf.freeze();
        let out = peer.decode_global(0, &mut bytes).unwrap();
        assert_eq!(bytes.remaining(), 0, "decode must consume the block exactly");
        out.to_vec()
    }

    fn pair(codec: ModelCodec) -> (PayloadCodec, PayloadCodec) {
        (PayloadCodec::new(codec, Role::Sender), PayloadCodec::new(codec, Role::Receiver))
    }

    fn hostile_f32s() -> Vec<f32> {
        vec![
            0.0,
            -0.0,
            1.0,
            -2.5,
            f32::NAN,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::MIN_POSITIVE,
            f32::from_bits(1),           // smallest subnormal
            f32::from_bits(0x807F_FFFF), // negative subnormal
            f32::from_bits(0x7FC0_1234), // NaN with payload
            f32::MAX,
        ]
    }

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn raw_and_delta_are_bit_exact_on_hostile_values() {
        for codec in [ModelCodec::Raw, ModelCodec::DeltaLossless, ModelCodec::DeltaEntropy] {
            let (mut tx, mut rx) = pair(codec);
            let params = hostile_f32s();
            // Twice: first pass establishes the delta reference
            // (inline), second exercises the XOR-delta path proper.
            assert_eq!(bits(&roundtrip(&mut tx, &mut rx, &params)), bits(&params), "{codec}");
            let shifted: Vec<f32> =
                params.iter().map(|x| f32::from_bits(x.to_bits() ^ 0x0000_0101)).collect();
            assert_eq!(bits(&roundtrip(&mut tx, &mut rx, &shifted)), bits(&shifted), "{codec}");
        }
    }

    #[test]
    fn identical_rebroadcast_collapses_to_a_few_bytes() {
        let (mut tx, _) = pair(ModelCodec::DeltaLossless);
        let params: Vec<f32> = (0..10_000).map(|i| (i as f32).sin()).collect();
        let mut first = BytesMut::new();
        tx.encode_global(0, &params, &mut first);
        let mut second = BytesMut::new();
        tx.encode_global(0, &params, &mut second);
        assert!(first.len() > 4 * params.len(), "first frame is inline-raw");
        assert!(
            second.len() < 64,
            "identical rebroadcast must RLE to almost nothing, got {} bytes",
            second.len()
        );
    }

    #[test]
    fn nearby_model_compresses_well() {
        let (mut tx, mut rx) = pair(ModelCodec::DeltaLossless);
        let params: Vec<f32> = (0..10_000).map(|i| (i as f32 * 0.01).sin()).collect();
        roundtrip(&mut tx, &mut rx, &params);
        // An SGD-sized nudge: same exponents, low-mantissa churn.
        let nudged: Vec<f32> = params.iter().map(|x| x * (1.0 + 1e-4)).collect();
        let mut buf = BytesMut::new();
        tx.encode_update(&nudged, &mut buf);
        assert!(
            buf.len() < 3 * params.len(),
            "small-exponent deltas must beat 4 B/param, got {} bytes for {} params",
            buf.len(),
            params.len()
        );
        let decoded = rx.decode_update(&mut buf.freeze()).unwrap();
        assert_eq!(bits(&decoded), bits(&nudged));
    }

    #[test]
    fn f16_halves_the_payload() {
        let (mut tx, mut rx) = pair(ModelCodec::F16);
        let params: Vec<f32> = (0..1000).map(|i| (i as f32 * 0.01).cos()).collect();
        let mut buf = BytesMut::new();
        tx.encode_update(&params, &mut buf);
        assert_eq!(buf.len(), 1 + 8 + 2 * params.len());
        let decoded = rx.decode_update(&mut buf.freeze()).unwrap();
        for (d, p) in decoded.iter().zip(&params) {
            assert!((d - p).abs() <= p.abs() * 1e-3 + 1e-6, "f16 {d} too far from {p}");
        }
    }

    #[test]
    fn codec_tag_mismatch_is_rejected_distinctly() {
        let (mut tx, _) = pair(ModelCodec::Raw);
        let mut buf = BytesMut::new();
        tx.encode_update(&[1.0, 2.0], &mut buf);
        let mut rx = PayloadCodec::new(ModelCodec::DeltaLossless, Role::Receiver);
        assert!(matches!(rx.decode_update(&mut buf.freeze()), Err(FlError::CodecMismatch(_))));
    }

    #[test]
    fn corrupt_codec_tag_is_rejected_distinctly() {
        let (mut tx, mut rx) = pair(ModelCodec::Raw);
        let mut buf = BytesMut::new();
        tx.encode_update(&[1.0], &mut buf);
        let mut bytes = buf.freeze().to_vec();
        bytes[0] = 0x7F;
        assert!(matches!(
            rx.decode_update(&mut Bytes::from(bytes)),
            Err(FlError::CodecMismatch(_))
        ));
    }

    #[test]
    fn delta_before_reference_is_rejected() {
        let (mut tx, _) = pair(ModelCodec::DeltaLossless);
        let params = [1.0f32, 2.0];
        tx.set_reference(0, &params); // sender has one, receiver does not
        let mut buf = BytesMut::new();
        tx.encode_update(&params, &mut buf);
        let mut rx = PayloadCodec::new(ModelCodec::DeltaLossless, Role::Receiver);
        assert!(matches!(rx.decode_update(&mut buf.freeze()), Err(FlError::Codec(_))));
    }

    #[test]
    fn corrupt_delta_streams_never_panic_or_decode() {
        let (mut tx, mut rx) = pair(ModelCodec::DeltaLossless);
        let params: Vec<f32> = (0..256).map(|i| i as f32 * 0.5).collect();
        roundtrip(&mut tx, &mut rx, &params);
        let mut buf = BytesMut::new();
        tx.encode_update(&params, &mut buf);
        let clean = buf.freeze().to_vec();
        // Unknown token kind, truncations at every prefix, oversized
        // comp_len: every corruption fails cleanly.
        let mut bad_kind = clean.clone();
        bad_kind[1 + 8 + 1 + 4] = 0xFF;
        assert!(rx.decode_update(&mut Bytes::from(bad_kind)).is_err());
        for cut in 0..clean.len() {
            assert!(
                rx.decode_update(&mut Bytes::from(clean[..cut].to_vec())).is_err(),
                "decoded from a {cut}-byte prefix"
            );
        }
        let mut bad_len = clean.clone();
        bad_len[1 + 8 + 1..1 + 8 + 1 + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(rx.decode_update(&mut Bytes::from(bad_len)).is_err());
        // And the clean stream still decodes after all that rejection.
        assert_eq!(bits(&rx.decode_update(&mut Bytes::from(clean)).unwrap()), bits(&params));
    }

    #[test]
    fn replayed_stale_global_does_not_regress_the_receiver_reference() {
        let (mut tx, mut rx) = pair(ModelCodec::DeltaLossless);
        let round0: Vec<f32> = vec![1.0; 64];
        let round1: Vec<f32> = vec![1.5; 64];
        let mut frame0 = BytesMut::new();
        tx.encode_global(0, &round0, &mut frame0);
        let frame0 = frame0.freeze();
        rx.decode_global(0, &mut frame0.clone()).unwrap();
        let mut frame1 = BytesMut::new();
        tx.encode_global(1, &round1, &mut frame1);
        rx.decode_global(1, &mut frame1.freeze()).unwrap();
        // Replay the (inline-raw, self-contained) round-0 frame.
        rx.decode_global(0, &mut frame0.clone()).unwrap();
        assert_eq!(rx.reference, round1, "stale replay moved the reference backwards");
        // The wire stays in sync: a round-2 delta still decodes.
        let round2: Vec<f32> = vec![1.25; 64];
        let mut frame2 = BytesMut::new();
        tx.encode_global(2, &round2, &mut frame2);
        let decoded = rx.decode_global(2, &mut frame2.freeze()).unwrap();
        assert_eq!(bits(&decoded), bits(&round2));
    }

    #[test]
    fn hostile_entropy_delta_falls_back_to_inline_within_the_reserve() {
        // A period-5 plane pattern (one literal byte, then a 4-byte
        // zero run) makes the RLE token stream ~1.4× the plane bytes;
        // the encoder must fall back to the inline image so no block
        // exceeds its reserve-ahead bound (and the scratch never
        // reallocates mid-encode).
        let (mut tx, mut rx) = pair(ModelCodec::DeltaLossless);
        let reference: Vec<f32> = vec![0.0; 4096];
        roundtrip(&mut tx, &mut rx, &reference);
        // Differ from the reference in exactly one byte plane, every
        // 5th parameter: plane bytes read x,0,0,0,0,x,0,0,0,0,…
        let hostile: Vec<f32> =
            (0..4096).map(|i| if i % 5 == 0 { f32::from_bits(0xFF) } else { 0.0 }).collect();
        let mut buf = BytesMut::new();
        tx.encode_update(&hostile, &mut buf);
        assert!(
            buf.len() <= ModelCodec::DeltaLossless.max_params_block_bytes(hostile.len()),
            "encoded block {} exceeds the reserve bound",
            buf.len()
        );
        assert!(
            buf.len() <= 1 + 8 + 1 + 4 * hostile.len(),
            "worst case must cap at the inline image, got {}",
            buf.len()
        );
        let decoded = rx.decode_update(&mut buf.freeze()).unwrap();
        assert_eq!(bits(&decoded), bits(&hostile));
    }

    #[test]
    fn wrong_length_inline_global_cannot_become_the_reference() {
        // The receiver pins the architecture size: a decoded global of
        // any other length (a forged or corrupt self-contained frame)
        // decodes but never commits, so live delta state survives.
        let (mut tx, mut rx) = pair(ModelCodec::DeltaLossless);
        rx.set_expected_len(8);
        let legit: Vec<f32> = vec![1.0; 8];
        assert_eq!(bits(&roundtrip(&mut tx, &mut rx, &legit)), bits(&legit));
        // Forge: fresh sender codec → inline mode, wrong length, a
        // round that would pin the replay guard forever.
        let mut forger = PayloadCodec::new(ModelCodec::DeltaLossless, Role::Sender);
        let mut buf = BytesMut::new();
        forger.encode_global(u64::MAX, &[9.0; 3], &mut buf);
        let decoded = rx.decode_global(u64::MAX, &mut buf.freeze()).unwrap();
        assert_eq!(decoded.len(), 3, "the frame itself still decodes");
        assert_eq!(rx.reference, legit, "the forged frame must not move the reference");
        // The wire stays live: the next legitimate delta still decodes
        // and still advances the reference.
        let next: Vec<f32> = vec![1.5; 8];
        let mut frame = BytesMut::new();
        tx.encode_global(1, &next, &mut frame);
        let got = rx.decode_global(1, &mut frame.freeze()).unwrap();
        assert_eq!(bits(&got), bits(&next));
        assert_eq!(rx.reference, next);
    }

    #[test]
    fn rle_roundtrips_edge_patterns() {
        for src in [
            vec![],
            vec![0u8; 5],
            vec![7u8; 5],
            vec![0, 1, 0, 1, 0, 1],
            [vec![0; 100], vec![9; 3], vec![0; 70_000], vec![1, 2, 3]].concat(),
            vec![0; RUN_CAP + 1],
            vec![5; RUN_CAP + 1],
        ] {
            let mut tokens = Vec::new();
            rle_compress(&src, &mut tokens);
            let mut out = Vec::new();
            rle_decompress(&tokens, src.len(), &mut out).unwrap();
            assert_eq!(out, src);
        }
    }

    #[test]
    fn f16_known_values() {
        assert_eq!(f32_to_f16_bits(0.0), 0x0000);
        assert_eq!(f32_to_f16_bits(-0.0), 0x8000);
        assert_eq!(f32_to_f16_bits(1.0), 0x3C00);
        assert_eq!(f32_to_f16_bits(-2.0), 0xC000);
        assert_eq!(f32_to_f16_bits(65504.0), 0x7BFF); // f16::MAX
        assert_eq!(f32_to_f16_bits(65536.0), 0x7C00); // overflow → inf
        assert_eq!(f32_to_f16_bits(f32::INFINITY), 0x7C00);
        assert_eq!(f32_to_f16_bits(f32::NEG_INFINITY), 0xFC00);
        assert_eq!(f32_to_f16_bits(5.96e-8), 0x0001); // smallest subnormal
        assert_eq!(f32_to_f16_bits(1e-10), 0x0000); // underflow → 0
        let nan = f32_to_f16_bits(f32::NAN);
        assert_eq!(nan & 0x7C00, 0x7C00);
        assert_ne!(nan & 0x03FF, 0, "NaN must stay NaN");
        assert!(f16_bits_to_f32(0x7E00).is_nan());
        assert_eq!(f16_bits_to_f32(0x3C00), 1.0);
        assert_eq!(f16_bits_to_f32(0x0001), 2.0f32.powi(-24));
        assert_eq!(f16_bits_to_f32(0x8000).to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn f16_roundtrip_is_identity_on_f16_grid() {
        // Every finite half value maps to an exactly-representable f32
        // and back to the same bits.
        for h in 0..=u16::MAX {
            if (h >> 10) & 0x1F == 0x1F {
                continue; // inf/NaN handled above
            }
            assert_eq!(f32_to_f16_bits(f16_bits_to_f32(h)), h, "h={h:#06x}");
        }
    }

    #[test]
    fn f16_rounds_to_nearest_even() {
        // 1.0 + 2⁻¹¹ is exactly between 1.0 and the next half (1.0 +
        // 2⁻¹⁰); even mantissa wins.
        assert_eq!(f32_to_f16_bits(1.0 + 0.000_488_281_25), 0x3C00);
        // Just above the midpoint rounds up.
        assert_eq!(f32_to_f16_bits(1.0 + 0.000_488_4), 0x3C01);
    }

    #[test]
    fn negotiation_pins_once_and_refuses_conflicts() {
        let mut map = CodecMap::new(Role::Receiver);
        assert_eq!(map.negotiate(7, ModelCodec::DeltaLossless), Negotiation::Established);
        assert_eq!(map.negotiate(7, ModelCodec::DeltaLossless), Negotiation::Match);
        assert_eq!(map.negotiate(7, ModelCodec::Raw), Negotiation::Conflict);
        assert_eq!(map.codec_of(7), Some(ModelCodec::DeltaLossless), "conflict must not repin");
        assert_eq!(map.codec_of(8), None);
        assert_eq!(map.for_job(8).codec(), ModelCodec::Raw, "unknown jobs fall back to raw");
    }

    #[test]
    fn codec_tags_roundtrip_and_unknown_tags_fail() {
        for codec in
            [ModelCodec::Raw, ModelCodec::DeltaLossless, ModelCodec::F16, ModelCodec::DeltaEntropy]
        {
            assert_eq!(ModelCodec::from_tag(codec.tag()), Some(codec));
        }
        // Top-k's tag alone cannot recover k: announcements carry it.
        assert_eq!(ModelCodec::from_tag(ModelCodec::TopK { k: 8 }.tag()), None);
        assert_eq!(ModelCodec::from_tag(99), None);
    }

    /// The normative tag values of `docs/WIRE.md` §codec-tags. Changing
    /// any of these is a wire break: update the spec and say so loudly.
    #[test]
    fn codec_tag_values_match_the_wire_spec() {
        assert_eq!(ModelCodec::Raw.tag(), 0);
        assert_eq!(ModelCodec::DeltaLossless.tag(), 1);
        assert_eq!(ModelCodec::F16.tag(), 2);
        assert_eq!(ModelCodec::DeltaEntropy.tag(), 3);
        assert_eq!(ModelCodec::TopK { k: 1 }.tag(), 4);
        // And the delta sub-modes the spec names.
        assert_eq!(MODE_INLINE, 0);
        assert_eq!(MODE_DELTA, 1);
        assert_eq!(RUN_ZERO, 0x00);
        assert_eq!(RUN_LITERAL, 0x01);
    }

    #[test]
    fn announcements_roundtrip_including_the_topk_parameter() {
        for codec in [
            ModelCodec::Raw,
            ModelCodec::DeltaLossless,
            ModelCodec::F16,
            ModelCodec::DeltaEntropy,
            ModelCodec::TopK { k: 0 },
            ModelCodec::TopK { k: 1024 },
            ModelCodec::TopK { k: u32::MAX },
        ] {
            let mut buf = BytesMut::new();
            codec.encode_announcement(&mut buf);
            assert_eq!(buf.len(), codec.announcement_bytes(), "{codec}");
            let mut bytes = buf.freeze();
            assert_eq!(ModelCodec::decode_announcement(&mut bytes).unwrap(), codec);
            assert_eq!(bytes.remaining(), 0, "{codec} announcement fully consumed");
        }
        // Truncated top-k parameter and unknown tags fail cleanly.
        assert!(ModelCodec::decode_announcement(&mut Bytes::from(vec![4u8, 1, 0])).is_err());
        assert!(ModelCodec::decode_announcement(&mut Bytes::from(vec![99u8])).is_err());
        assert!(ModelCodec::decode_announcement(&mut Bytes::new()).is_err());
    }

    #[test]
    fn entropy_delta_beats_the_rle_on_literal_heavy_deltas() {
        let params: Vec<f32> = (0..10_000).map(|i| (i as f32 * 0.01).sin()).collect();
        let nudged: Vec<f32> = params.iter().map(|x| x * (1.0 + 1e-4)).collect();
        let mut sizes = std::collections::BTreeMap::new();
        for codec in [ModelCodec::DeltaLossless, ModelCodec::DeltaEntropy] {
            let (mut tx, mut rx) = pair(codec);
            roundtrip(&mut tx, &mut rx, &params);
            let mut buf = BytesMut::new();
            tx.encode_update(&nudged, &mut buf);
            sizes.insert(codec.label(), buf.len());
            let decoded = rx.decode_update(&mut buf.freeze()).unwrap();
            assert_eq!(bits(&decoded), bits(&nudged), "{codec} must stay bit-exact");
        }
        assert!(
            sizes["delta-entropy"] < sizes["delta-lossless"],
            "entropy stage must undercut the RLE: {sizes:?}"
        );
    }

    #[test]
    fn entropy_rebroadcast_is_small_and_decodes_to_the_reference() {
        let (mut tx, mut rx) = pair(ModelCodec::DeltaEntropy);
        let params: Vec<f32> = (0..10_000).map(|i| (i as f32).sin()).collect();
        roundtrip(&mut tx, &mut rx, &params);
        let mut second = BytesMut::new();
        tx.encode_global(0, &params, &mut second);
        assert!(second.len() < 256, "zero-delta rANS block is header-sized, got {}", second.len());
        let decoded = rx.decode_global(0, &mut second.freeze()).unwrap();
        assert_eq!(bits(&decoded), bits(&params));
    }

    #[test]
    fn hostile_entropy_payload_falls_back_to_inline_within_the_reserve() {
        // White-noise bit patterns: the delta planes are uniform bytes,
        // rANS gains nothing, and the encoder must ship the inline
        // image instead of exceeding the reserve bound.
        let (mut tx, mut rx) = pair(ModelCodec::DeltaEntropy);
        let reference: Vec<f32> = vec![0.0; 512];
        roundtrip(&mut tx, &mut rx, &reference);
        let hostile: Vec<f32> =
            (0u32..512).map(|i| f32::from_bits(i.wrapping_mul(0x9E37_79B9))).collect();
        let mut buf = BytesMut::new();
        tx.encode_update(&hostile, &mut buf);
        assert!(
            buf.len() <= ModelCodec::DeltaEntropy.max_params_block_bytes(hostile.len()),
            "encoded block {} exceeds the reserve bound",
            buf.len()
        );
        assert_eq!(buf.as_slice()[1 + 8], MODE_INLINE, "hostile entropy must go inline");
        let decoded = rx.decode_update(&mut buf.freeze()).unwrap();
        assert_eq!(bits(&decoded), bits(&hostile));
    }

    #[test]
    fn corrupt_entropy_streams_never_panic_or_decode() {
        let (mut tx, mut rx) = pair(ModelCodec::DeltaEntropy);
        let params: Vec<f32> = (0..256).map(|i| i as f32 * 0.5).collect();
        roundtrip(&mut tx, &mut rx, &params);
        let nudged: Vec<f32> = params.iter().map(|x| x * (1.0 + 1e-4)).collect();
        let mut buf = BytesMut::new();
        tx.encode_update(&nudged, &mut buf);
        let clean = buf.freeze().to_vec();
        assert_eq!(clean[1 + 8], MODE_DELTA, "test premise: the delta path is exercised");
        for cut in 0..clean.len() {
            assert!(
                rx.decode_update(&mut Bytes::from(clean[..cut].to_vec())).is_err(),
                "decoded from a {cut}-byte prefix"
            );
        }
        let mut bad_len = clean.clone();
        bad_len[1 + 8 + 1..1 + 8 + 1 + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(rx.decode_update(&mut Bytes::from(bad_len)).is_err());
        // The clean stream still decodes after all that rejection.
        assert_eq!(bits(&rx.decode_update(&mut Bytes::from(clean)).unwrap()), bits(&nudged));
    }

    #[test]
    fn topk_transmits_exactly_the_k_largest_coordinates() {
        let (mut tx, mut rx) = pair(ModelCodec::TopK { k: 3 });
        let reference: Vec<f32> = vec![0.0; 64];
        assert_eq!(
            bits(&roundtrip(&mut tx, &mut rx, &reference)),
            bits(&reference),
            "first frame is inline and bit-exact"
        );
        let mut next = reference.clone();
        next[5] = 0.1;
        next[17] = -4.0;
        next[18] = 2.0;
        next[40] = 0.5;
        next[63] = -0.2;
        let mut buf = BytesMut::new();
        tx.encode_global(1, &next, &mut buf);
        assert_eq!(buf.len(), 1 + 8 + 1 + 4 + 8 * 3, "3 pairs travel");
        let decoded = rx.decode_global(1, &mut buf.freeze()).unwrap();
        // The 3 largest magnitudes (17, 18, 40) land; 5 and 63 do not.
        let mut expect = reference.clone();
        expect[17] = -4.0;
        expect[18] = 2.0;
        expect[40] = 0.5;
        assert_eq!(bits(&decoded), bits(&expect));
        // Sender and receiver references both hold the reconstruction:
        // the next round's frame decodes against it bit-exactly at k=n.
        assert_eq!(tx.reference, rx.reference, "references stay in lockstep");
    }

    #[test]
    fn topk_ties_break_by_ascending_index() {
        let (mut tx, mut rx) = pair(ModelCodec::TopK { k: 2 });
        let reference: Vec<f32> = vec![0.0; 32];
        roundtrip(&mut tx, &mut rx, &reference);
        // Four coordinates move by exactly the same magnitude.
        let mut next = reference.clone();
        for i in [3usize, 9, 12, 30] {
            next[i] = 1.0;
        }
        let mut buf = BytesMut::new();
        tx.encode_global(1, &next, &mut buf);
        let decoded = rx.decode_global(1, &mut buf.freeze()).unwrap();
        let mut expect = reference.clone();
        expect[3] = 1.0;
        expect[9] = 1.0;
        assert_eq!(bits(&decoded), bits(&expect), "lowest indices win the tie");
    }

    #[test]
    fn topk_rebroadcast_is_empty_and_all_receivers_converge() {
        // One link codec pair, two cohort members on the link — exactly
        // how the driver/pool share per-link state. The first round-1
        // frame carries pairs; the second (same Arc-backed buffer) is
        // the empty rebroadcast; both must decode to the same model.
        let (mut tx, mut rx) = pair(ModelCodec::TopK { k: 2 });
        let reference: Vec<f32> = vec![1.0; 16];
        let mut buf = BytesMut::new();
        tx.encode_global(0, &reference, &mut buf);
        rx.decode_global(0, &mut buf.freeze()).unwrap();
        let moved: Vec<f32> = (0..16).map(|i| 1.0 + i as f32 * 0.01).collect();
        let mut first = BytesMut::new();
        tx.encode_global(1, &moved, &mut first);
        let got_a = rx.decode_global(1, &mut first.freeze()).unwrap();
        let mut second = BytesMut::new();
        tx.encode_global(1, &moved, &mut second);
        assert_eq!(second.len(), 1 + 8 + 1 + 4, "rebroadcast carries zero pairs");
        let got_b = rx.decode_global(1, &mut second.freeze()).unwrap();
        assert_eq!(bits(&got_a), bits(&got_b), "cohort members must hold one round-1 model");
        assert_eq!(tx.reference, rx.reference, "references stay in lockstep");
    }

    #[test]
    fn topk_dense_delta_falls_back_to_the_exact_inline_image() {
        // k ≥ n/2: the pair list cannot undercut the raw image, so the
        // encoder ships inline — which is bit-exact.
        let (mut tx, mut rx) = pair(ModelCodec::TopK { k: 64 });
        let reference: Vec<f32> = vec![0.0; 64];
        roundtrip(&mut tx, &mut rx, &reference);
        let moved: Vec<f32> = (0..64).map(|i| i as f32).collect();
        let mut buf = BytesMut::new();
        tx.encode_global(1, &moved, &mut buf);
        assert_eq!(buf.as_slice()[1 + 8], MODE_INLINE);
        assert!(buf.len() <= ModelCodec::TopK { k: 64 }.max_params_block_bytes(moved.len()));
        let decoded = rx.decode_global(1, &mut buf.freeze()).unwrap();
        assert_eq!(bits(&decoded), bits(&moved));
        assert_eq!(tx.reference, rx.reference);
    }

    #[test]
    fn corrupt_topk_streams_never_panic_or_decode() {
        let (mut tx, mut rx) = pair(ModelCodec::TopK { k: 4 });
        let reference: Vec<f32> = vec![0.0; 256];
        roundtrip(&mut tx, &mut rx, &reference);
        let mut moved = reference.clone();
        moved[10] = 1.0;
        moved[200] = -2.0;
        let mut buf = BytesMut::new();
        tx.encode_update(&moved, &mut buf);
        let clean = buf.freeze().to_vec();
        assert_eq!(clean[1 + 8], MODE_DELTA);
        for cut in 0..clean.len() {
            assert!(
                rx.decode_update(&mut Bytes::from(clean[..cut].to_vec())).is_err(),
                "decoded from a {cut}-byte prefix"
            );
        }
        // Out-of-range index.
        let mut bad_idx = clean.clone();
        bad_idx[1 + 8 + 1 + 4..1 + 8 + 1 + 4 + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(rx.decode_update(&mut Bytes::from(bad_idx)).is_err());
        // Non-ascending indices (duplicate).
        let mut dup = clean.clone();
        let second_pair = 1 + 8 + 1 + 4 + 8;
        let first_pair: [u8; 4] = clean[1 + 8 + 1 + 4..1 + 8 + 1 + 4 + 4].try_into().unwrap();
        dup[second_pair..second_pair + 4].copy_from_slice(&first_pair);
        assert!(rx.decode_update(&mut Bytes::from(dup)).is_err());
        // Hostile pair count.
        let mut bad_count = clean.clone();
        bad_count[1 + 8 + 1..1 + 8 + 1 + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(rx.decode_update(&mut Bytes::from(bad_count)).is_err());
        // The clean stream still decodes.
        let decoded = rx.decode_update(&mut Bytes::from(clean)).unwrap();
        let mut expect = reference.clone();
        expect[10] = 1.0;
        expect[200] = -2.0;
        assert_eq!(bits(&decoded), bits(&expect));
    }

    #[test]
    fn topk_is_not_lossless_and_the_delta_codecs_are() {
        assert!(ModelCodec::Raw.is_lossless());
        assert!(ModelCodec::DeltaLossless.is_lossless());
        assert!(ModelCodec::DeltaEntropy.is_lossless());
        assert!(!ModelCodec::F16.is_lossless());
        assert!(!ModelCodec::TopK { k: 1 }.is_lossless());
        assert!(!ModelCodec::Raw.tracks_reference());
        assert!(!ModelCodec::F16.tracks_reference());
        assert!(ModelCodec::DeltaLossless.tracks_reference());
        assert!(ModelCodec::DeltaEntropy.tracks_reference());
        assert!(ModelCodec::TopK { k: 1 }.tracks_reference());
    }

    #[test]
    fn replayed_stale_entropy_global_does_not_regress_the_reference() {
        let (mut tx, mut rx) = pair(ModelCodec::DeltaEntropy);
        let round0: Vec<f32> = vec![1.0; 64];
        let round1: Vec<f32> = vec![1.5; 64];
        let mut frame0 = BytesMut::new();
        tx.encode_global(0, &round0, &mut frame0);
        let frame0 = frame0.freeze();
        rx.decode_global(0, &mut frame0.clone()).unwrap();
        let mut frame1 = BytesMut::new();
        tx.encode_global(1, &round1, &mut frame1);
        rx.decode_global(1, &mut frame1.freeze()).unwrap();
        rx.decode_global(0, &mut frame0.clone()).unwrap();
        assert_eq!(rx.reference, round1, "stale replay moved the reference backwards");
        let round2: Vec<f32> = vec![1.25; 64];
        let mut frame2 = BytesMut::new();
        tx.encode_global(2, &round2, &mut frame2);
        let decoded = rx.decode_global(2, &mut frame2.freeze()).unwrap();
        assert_eq!(bits(&decoded), bits(&round2));
    }
}
