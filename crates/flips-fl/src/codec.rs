//! Pluggable model-payload codecs: how a `GlobalModel`/`LocalUpdate`
//! parameter vector travels as bytes.
//!
//! PR 3 put every FL message on real bytes and measured the price: the
//! ~params·4-byte model frames dominate the serialized driver's round
//! overhead. This module makes the payload encoding a **negotiated,
//! per-job choice** — the classic adaptive-middleware move — without
//! touching the protocol state machines:
//!
//! - [`ModelCodec::Raw`] — f32 little-endian, the compatibility default.
//!   Exactly the pre-codec wire image (plus the one-byte codec tag).
//! - [`ModelCodec::DeltaLossless`] — XOR-delta of each parameter's bits
//!   against a per-job *reference model* (the last global model both
//!   ends of the wire already hold), byte-plane shuffled and
//!   zero-run-length encoded. **Bit-exact** on decode — NaN payloads,
//!   signed zeros and subnormals survive — so seeded histories over the
//!   compressed wire still pin the `FlJob` goldens.
//! - [`ModelCodec::F16`] — lossy IEEE half precision for deployments
//!   that opt in (never a default): halves model bytes unconditionally,
//!   at ~3 decimal digits of mantissa.
//!
//! The codec is carried per job in the coordinator config, announced in
//! every [`SelectionNotice`](crate::WireMessage::SelectionNotice), and
//! negotiated once per job on the receiving side ([`CodecMap::negotiate`]).
//! A decoder rejects mismatched or corrupt codec tags with
//! [`FlError::CodecMismatch`] — the frame is dropped and counted, round
//! state untouched.
//!
//! ## The reference model
//!
//! Both ends of a wire hold a per-job [`PayloadCodec`] whose reference
//! is "the last global model that crossed this wire for this job":
//!
//! - the **sender** of global models (the aggregator driver) updates its
//!   reference when it *encodes* a `GlobalModel`;
//! - the **receiver** (the party pool) updates its reference when it
//!   *decodes* one (never regressing to an older round, so a replayed
//!   stale frame cannot desynchronize the ends).
//!
//! `LocalUpdate` payloads delta against the same reference but never
//! update it. The first `GlobalModel` of a job (no reference yet) goes
//! inline-raw and establishes the reference on both ends; every later
//! model frame is a delta. Within a round the 2nd..Nth copies of the
//! same broadcast XOR to all-zero and collapse to a few RLE tokens, and
//! across rounds the aggregate moves the model little, so the deltas'
//! exponent/sign planes are almost entirely zero.
//!
//! ## Trust boundary
//!
//! The wire is **unauthenticated** — exactly like the pre-codec raw
//! wire, where an injector could already hand any endpoint arbitrary
//! model parameters or forged aborts. The codec layer therefore defends
//! against *corruption and confusion*, not against an active forger:
//! corrupt/truncated/mismatched-tag frames are rejected and counted,
//! stale replays cannot regress a reference, wrong-direction frames
//! cannot move codec state, and a decoded model of the wrong
//! architecture length can never become a reference
//! ([`PayloadCodec::set_expected_len`]). What it cannot do is
//! distinguish a *well-formed, right-length* forged frame from
//! legitimate traffic — no unauthenticated scheme can; on the delta
//! wire such a frame can poison the reference where on the raw wire it
//! poisons one round of training. Deployments that need the stronger
//! property must authenticate frames (the attested TEE channel layer in
//! `flips-tee` is the natural place) and can pre-pin each job's codec
//! out-of-band with [`crate::PartyPool::pin_codec`] instead of trusting
//! the first notice.

use crate::FlError;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// How model-parameter payloads are encoded on the wire for one job.
///
/// # Example
///
/// A sender/receiver codec pair round-trips a global model bit-exactly
/// under [`ModelCodec::DeltaLossless`] — the first model goes inline
/// and establishes the shared reference, later rounds travel as
/// XOR-deltas:
///
/// ```
/// use bytes::BytesMut;
/// use flips_fl::codec::{ModelCodec, PayloadCodec, Role};
///
/// let mut tx = PayloadCodec::new(ModelCodec::DeltaLossless, Role::Sender);
/// let mut rx = PayloadCodec::new(ModelCodec::DeltaLossless, Role::Receiver);
/// for (round, params) in [[1.0f32, -2.5, 0.0], [1.25, -2.5, 0.0]].iter().enumerate() {
///     let mut buf = BytesMut::new();
///     tx.encode_global(round as u64, params, &mut buf);
///     let mut wire = buf.freeze();
///     let decoded = rx.decode_global(round as u64, &mut wire).unwrap();
///     assert_eq!(&decoded[..], params, "bit-exact across the compressed wire");
/// }
/// assert!(rx.has_reference(), "the receiver tracks the sender's reference");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ModelCodec {
    /// f32 little-endian, the compatibility default.
    #[default]
    Raw,
    /// Bit-exact XOR-delta vs the per-job reference model, byte-plane
    /// shuffled + zero-run-length encoded.
    DeltaLossless,
    /// Lossy IEEE 754 half precision (opt-in only, never a default).
    F16,
}

const TAG_RAW: u8 = 0;
const TAG_DELTA: u8 = 1;
const TAG_F16: u8 = 2;

/// Delta payload sub-mode: full inline-raw image (no reference yet).
const MODE_INLINE: u8 = 0;
/// Delta payload sub-mode: XOR-delta planes vs the reference.
const MODE_DELTA: u8 = 1;

impl ModelCodec {
    /// The one-byte wire tag.
    pub fn tag(self) -> u8 {
        match self {
            ModelCodec::Raw => TAG_RAW,
            ModelCodec::DeltaLossless => TAG_DELTA,
            ModelCodec::F16 => TAG_F16,
        }
    }

    /// Parses a wire tag.
    pub fn from_tag(tag: u8) -> Option<ModelCodec> {
        match tag {
            TAG_RAW => Some(ModelCodec::Raw),
            TAG_DELTA => Some(ModelCodec::DeltaLossless),
            TAG_F16 => Some(ModelCodec::F16),
            _ => None,
        }
    }

    /// Human-readable name (benchmarks, logs).
    pub fn label(self) -> &'static str {
        match self {
            ModelCodec::Raw => "raw",
            ModelCodec::DeltaLossless => "delta-lossless",
            ModelCodec::F16 => "f16",
        }
    }

    /// Whether decode reproduces the encoded parameters bit-for-bit.
    pub fn is_lossless(self) -> bool {
        !matches!(self, ModelCodec::F16)
    }

    /// Worst-case bytes of one encoded params block of `n` parameters
    /// (codec tag + count + payload) — what an encoder reserves ahead.
    pub fn max_params_block_bytes(self, n: usize) -> usize {
        let head = 1 + 8; // codec tag + count
        match self {
            ModelCodec::Raw => head + 4 * n,
            // mode + comp_len + tokens; literal tokens add 3 bytes per
            // 65535-byte run, plus one possibly-short token per plane.
            ModelCodec::DeltaLossless => head + 1 + 4 + 4 * n + 3 * (4 * n / RUN_CAP + 5),
            ModelCodec::F16 => head + 2 * n,
        }
    }
}

impl std::fmt::Display for ModelCodec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Which end of the wire a [`PayloadCodec`] serves — decides which
/// operation (encode or decode of a `GlobalModel`) advances the
/// reference, so a hostile echoed frame on the wrong link direction can
/// never move codec state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Sends global models (the aggregator driver): reference advances
    /// on *encode*.
    Sender,
    /// Receives global models (the party pool): reference advances on
    /// *decode*.
    Receiver,
}

/// One job's payload codec state: the negotiated codec, the reference
/// model, and reused compression scratch (grow-only, like the GEMM pack
/// buffers — steady-state encode/decode allocates nothing but the
/// decoded payload itself).
pub struct PayloadCodec {
    codec: ModelCodec,
    role: Role,
    reference: Vec<f32>,
    /// Round of the reference (replay guard: never regress).
    ref_round: u64,
    has_reference: bool,
    /// `(addr, len)` of the buffer the sender's reference was copied
    /// from — same-round rebroadcasts share one `Arc`, so a pointer
    /// match proves the payload IS the reference and the zero-delta
    /// block can be emitted in O(1) without re-shuffling.
    ref_src: (usize, usize),
    /// Architecture bound on reference commits (see
    /// [`PayloadCodec::set_expected_len`]).
    expected_len: Option<usize>,
    /// Byte-plane shuffle scratch, 4·n bytes.
    planes: Vec<u8>,
    /// RLE token scratch.
    tokens: Vec<u8>,
    /// Decoded-parameter scratch for global models.
    decoded: Vec<f32>,
}

impl std::fmt::Debug for PayloadCodec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PayloadCodec")
            .field("codec", &self.codec)
            .field("role", &self.role)
            .field("reference", &self.has_reference.then_some(self.reference.len()))
            .finish()
    }
}

impl PayloadCodec {
    /// Fresh codec state for one end of one job's wire.
    pub fn new(codec: ModelCodec, role: Role) -> Self {
        PayloadCodec {
            codec,
            role,
            reference: Vec::new(),
            ref_round: 0,
            has_reference: false,
            ref_src: (0, 0),
            expected_len: None,
            planes: Vec::new(),
            tokens: Vec::new(),
            decoded: Vec::new(),
        }
    }

    /// The negotiated codec.
    pub fn codec(&self) -> ModelCodec {
        self.codec
    }

    /// Whether a reference model has been established.
    pub fn has_reference(&self) -> bool {
        self.has_reference
    }

    /// Pins the parameter count references must have. A receiver that
    /// knows the job's architecture (the party pool does — its
    /// endpoints hold the agreed model) refuses to let any other-sized
    /// decoded model become the reference, so a forged wrong-length
    /// inline frame cannot poison the delta state of a live job.
    pub fn set_expected_len(&mut self, len: usize) {
        self.expected_len = Some(len);
    }

    /// Appends one encoded params block for a `GlobalModel` payload.
    /// A [`Role::Sender`] advances its reference to `params`.
    pub fn encode_global(&mut self, round: u64, params: &[f32], out: &mut BytesMut) {
        if self.codec != ModelCodec::DeltaLossless {
            // Only the delta codec keeps a reference — raw/f16 must
            // not pay a full-model memcpy per dispatched frame.
            self.encode_params(params, out);
            return;
        }
        if self.role == Role::Sender && self.is_reference_rebroadcast(round, params) {
            // Same-round rebroadcast: the XOR-delta is identically
            // zero — emit the zero-run tokens directly, no shuffle.
            self.encode_zero_delta(params.len(), out);
            return;
        }
        self.encode_params(params, out);
        if self.role == Role::Sender {
            self.set_reference(round, params);
        }
    }

    /// Appends one encoded params block for a `LocalUpdate` payload
    /// (uses the reference, never advances it).
    pub fn encode_update(&mut self, params: &[f32], out: &mut BytesMut) {
        self.encode_params(params, out);
    }

    /// Decodes a `GlobalModel` params block. A [`Role::Receiver`]
    /// advances its reference to the decoded model only for a strictly
    /// newer round: a same-round rebroadcast decodes to the reference
    /// itself (no redundant full-model re-commit), a stale or
    /// same-round *replay* cannot re-commit — a redelivered first
    /// frame of the current round would decode against the round's own
    /// reference into garbage, and under a `>=` guard that garbage
    /// would poison the reference — and the decoded length must honor
    /// [`PayloadCodec::set_expected_len`] / the established reference
    /// (a forged or corrupt self-contained frame must not poison live
    /// delta state; the message still decodes — the protocol layer
    /// rejects and counts it).
    ///
    /// # Errors
    ///
    /// [`FlError::CodecMismatch`] on a codec tag other than the
    /// negotiated one (or an unknown tag byte); [`FlError::Codec`] on
    /// truncation, hostile lengths or malformed compression streams.
    pub fn decode_global(&mut self, round: u64, buf: &mut Bytes) -> Result<Arc<[f32]>, FlError> {
        let mut decoded = std::mem::take(&mut self.decoded);
        decoded.clear();
        let result = self.decode_params(buf, &mut decoded);
        let arc = match result {
            Ok(()) => {
                let fresh = !self.has_reference || round > self.ref_round;
                let len_ok = self.expected_len.is_none_or(|l| l == decoded.len())
                    && (!self.has_reference || self.reference.len() == decoded.len());
                if self.codec == ModelCodec::DeltaLossless
                    && self.role == Role::Receiver
                    && fresh
                    && len_ok
                {
                    self.set_reference(round, &decoded);
                }
                Ok(Arc::from(decoded.as_slice()))
            }
            Err(e) => Err(e),
        };
        self.decoded = decoded;
        arc
    }

    /// Decodes a `LocalUpdate` params block (uses the reference, never
    /// advances it).
    ///
    /// # Errors
    ///
    /// As [`PayloadCodec::decode_global`].
    pub fn decode_update(&mut self, buf: &mut Bytes) -> Result<Vec<f32>, FlError> {
        let mut out = Vec::new();
        self.decode_params(buf, &mut out)?;
        Ok(out)
    }

    fn set_reference(&mut self, round: u64, params: &[f32]) {
        self.reference.clear();
        self.reference.extend_from_slice(params);
        self.ref_round = round;
        self.has_reference = true;
        self.ref_src = (params.as_ptr() as usize, params.len());
    }

    /// Whether `params` is bit-identical to the reference. The
    /// address/length/round triple is only a cheap *hint* (a same-round
    /// rebroadcast hands the codec the very `Arc` buffer its reference
    /// was copied from); the bitwise compare below is what makes the
    /// answer sound — an allocator recycling a freed buffer at the same
    /// address (ABA) must not smuggle different data through the
    /// zero-delta fast path. The compare is a linear scan, still an
    /// order of magnitude cheaper than the shuffle+RLE it skips, and it
    /// only runs when the pointer hint already matched.
    fn is_reference_rebroadcast(&self, round: u64, params: &[f32]) -> bool {
        self.has_reference
            && self.ref_round == round
            && self.ref_src == (params.as_ptr() as usize, params.len())
            && params.iter().zip(&self.reference).all(|(a, b)| a.to_bits() == b.to_bits())
    }

    /// Emits the delta block of an all-zero delta (a rebroadcast of the
    /// reference itself): `ceil(4n / RUN_CAP)` zero-run tokens, O(1) in
    /// the model size.
    fn encode_zero_delta(&mut self, n: usize, out: &mut BytesMut) {
        self.tokens.clear();
        let mut remaining = 4 * n;
        while remaining > 0 {
            let run = remaining.min(RUN_CAP);
            self.tokens.push(RUN_ZERO);
            self.tokens.extend_from_slice(&(run as u16).to_le_bytes());
            remaining -= run;
        }
        out.reserve(1 + 8 + 1 + 4 + self.tokens.len());
        out.put_u8(self.codec.tag());
        out.put_u64_le(n as u64);
        out.put_u8(MODE_DELTA);
        out.put_u32_le(self.tokens.len() as u32);
        out.put_slice(&self.tokens);
    }

    fn encode_params(&mut self, params: &[f32], out: &mut BytesMut) {
        out.reserve(self.codec.max_params_block_bytes(params.len()));
        out.put_u8(self.codec.tag());
        out.put_u64_le(params.len() as u64);
        match self.codec {
            ModelCodec::Raw => {
                for &p in params {
                    out.put_f32_le(p);
                }
            }
            ModelCodec::F16 => {
                for &p in params {
                    out.put_slice(&f32_to_f16_bits(p).to_le_bytes());
                }
            }
            ModelCodec::DeltaLossless => {
                if !self.has_reference || self.reference.len() != params.len() {
                    out.put_u8(MODE_INLINE);
                    for &p in params {
                        out.put_f32_le(p);
                    }
                    return;
                }
                let n = params.len();
                self.planes.clear();
                self.planes.resize(4 * n, 0);
                for (i, (&x, &r)) in params.iter().zip(&self.reference).enumerate() {
                    let d = (x.to_bits() ^ r.to_bits()).to_le_bytes();
                    self.planes[i] = d[0];
                    self.planes[n + i] = d[1];
                    self.planes[2 * n + i] = d[2];
                    self.planes[3 * n + i] = d[3];
                }
                self.tokens.clear();
                rle_compress(&self.planes, &mut self.tokens);
                // A hostile-entropy delta (short zero runs threaded
                // between literals) can RLE-expand up to ~1.4×; fall
                // back to the inline image so an encoded block never
                // exceeds its raw size (which is also what keeps the
                // reserve-ahead bound honest — no mid-encode
                // reallocation of the scratch).
                if self.tokens.len() >= 4 * n {
                    out.put_u8(MODE_INLINE);
                    for &p in params {
                        out.put_f32_le(p);
                    }
                    return;
                }
                out.put_u8(MODE_DELTA);
                out.put_u32_le(self.tokens.len() as u32);
                out.put_slice(&self.tokens);
            }
        }
    }

    fn decode_params(&mut self, buf: &mut Bytes, out: &mut Vec<f32>) -> Result<(), FlError> {
        if buf.remaining() < 1 + 8 {
            return Err(FlError::Codec("truncated params block".into()));
        }
        let tag = buf.get_u8();
        if tag != self.codec.tag() {
            return Err(FlError::CodecMismatch(match ModelCodec::from_tag(tag) {
                Some(got) => {
                    format!("payload encoded as {got}, job negotiated {}", self.codec)
                }
                None => format!("corrupt codec tag {tag:#x}"),
            }));
        }
        let count = buf.get_u64_le();
        match self.codec {
            ModelCodec::Raw => {
                let n = checked_count(count, 4, buf.remaining())?;
                out.clear();
                out.extend((0..n).map(|_| buf.get_f32_le()));
            }
            ModelCodec::F16 => {
                let n = checked_count(count, 2, buf.remaining())?;
                out.clear();
                out.extend(
                    (0..n)
                        .map(|_| f16_bits_to_f32(u16::from_le_bytes([buf.get_u8(), buf.get_u8()]))),
                );
            }
            ModelCodec::DeltaLossless => {
                if buf.remaining() < 1 {
                    return Err(FlError::Codec("truncated delta mode byte".into()));
                }
                match buf.get_u8() {
                    MODE_INLINE => {
                        let n = checked_count(count, 4, buf.remaining())?;
                        out.clear();
                        out.extend((0..n).map(|_| buf.get_f32_le()));
                    }
                    MODE_DELTA => {
                        if !self.has_reference {
                            return Err(FlError::Codec(
                                "delta payload before any reference model".into(),
                            ));
                        }
                        let n = self.reference.len();
                        if count != n as u64 {
                            return Err(FlError::Codec(format!(
                                "delta payload for {count} params, reference holds {n}"
                            )));
                        }
                        if buf.remaining() < 4 {
                            return Err(FlError::Codec("truncated delta length".into()));
                        }
                        let comp_len = buf.get_u32_le() as usize;
                        if comp_len > buf.remaining() {
                            return Err(FlError::Codec(format!(
                                "delta stream of {comp_len} bytes exceeds the {} remaining",
                                buf.remaining()
                            )));
                        }
                        let comp = buf.split_to(comp_len);
                        // A stream of only zero-run tokens is a
                        // rebroadcast of the reference itself — skip
                        // the plane expansion and XOR gather entirely.
                        if let Some(total) = zero_only_stream_len(comp.as_slice()) {
                            if total != 4 * n {
                                return Err(FlError::Codec(format!(
                                    "RLE stream yields {total} bytes, delta planes need {}",
                                    4 * n
                                )));
                            }
                            out.clear();
                            out.extend_from_slice(&self.reference);
                            return Ok(());
                        }
                        rle_decompress(comp.as_slice(), 4 * n, &mut self.planes)?;
                        out.clear();
                        let planes = &self.planes;
                        out.extend(self.reference.iter().enumerate().map(|(i, r)| {
                            let d = u32::from_le_bytes([
                                planes[i],
                                planes[n + i],
                                planes[2 * n + i],
                                planes[3 * n + i],
                            ]);
                            f32::from_bits(r.to_bits() ^ d)
                        }));
                    }
                    other => {
                        return Err(FlError::Codec(format!("unknown delta mode {other}")));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Overflow-safe "count · elem bytes must be present" guard (the same
/// hostile-length defense the pre-codec decoder used).
fn checked_count(count: u64, elem: usize, remaining: usize) -> Result<usize, FlError> {
    usize::try_from(count)
        .ok()
        .and_then(|n| n.checked_mul(elem).map(|bytes| (n, bytes)))
        .filter(|&(_, bytes)| bytes <= remaining)
        .map(|(n, _)| n)
        .ok_or_else(|| FlError::Codec("length prefix exceeds buffer".into()))
}

/// Outcome of offering a codec for a job on the receiving end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Negotiation {
    /// First offer for this job: the codec is now pinned.
    Established,
    /// The offer matches the pinned codec (idempotent re-announcement).
    Match,
    /// The offer conflicts with the pinned codec — the frame must be
    /// dropped; a job's codec is negotiated exactly once.
    Conflict,
}

/// Per-job payload codec state for one end of a multiplexed wire.
///
/// Jobs not (yet) registered fall back to a stateless [`ModelCodec::Raw`]
/// codec, so legacy raw traffic decodes without negotiation.
pub struct CodecMap {
    role: Role,
    jobs: BTreeMap<u64, PayloadCodec>,
    /// Architecture bound applied to codecs registered later (the pool
    /// learns a job's parameter count before its first notice).
    expected: BTreeMap<u64, usize>,
    fallback: PayloadCodec,
}

impl std::fmt::Debug for CodecMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CodecMap")
            .field("role", &self.role)
            .field("jobs", &self.jobs.len())
            .finish()
    }
}

impl CodecMap {
    /// An empty map for one end of the wire.
    pub fn new(role: Role) -> Self {
        CodecMap {
            role,
            jobs: BTreeMap::new(),
            expected: BTreeMap::new(),
            fallback: PayloadCodec::new(ModelCodec::Raw, role),
        }
    }

    /// Records the agreed parameter count of a job's architecture:
    /// every codec (re)registered for the job refuses to commit a
    /// reference model of any other length.
    pub fn expect_len(&mut self, job: u64, len: usize) {
        self.expected.insert(job, len);
        if let Some(pc) = self.jobs.get_mut(&job) {
            pc.set_expected_len(len);
        }
    }

    /// Registers a job's codec outright (the sender side knows its own
    /// configuration; no negotiation involved).
    pub fn register(&mut self, job: u64, codec: ModelCodec) {
        let mut pc = PayloadCodec::new(codec, self.role);
        if let Some(&len) = self.expected.get(&job) {
            pc.set_expected_len(len);
        }
        self.jobs.insert(job, pc);
    }

    /// Offers `codec` for `job` — the receive-side handshake driven by
    /// [`SelectionNotice`](crate::WireMessage::SelectionNotice) frames.
    /// The first offer pins the codec; repeats are idempotent; a
    /// conflicting offer is refused (state unchanged).
    pub fn negotiate(&mut self, job: u64, codec: ModelCodec) -> Negotiation {
        match self.jobs.get(&job) {
            None => {
                self.register(job, codec);
                Negotiation::Established
            }
            Some(pc) if pc.codec() == codec => Negotiation::Match,
            Some(_) => Negotiation::Conflict,
        }
    }

    /// The pinned codec for a job, if negotiated/registered.
    pub fn codec_of(&self, job: u64) -> Option<ModelCodec> {
        self.jobs.get(&job).map(PayloadCodec::codec)
    }

    /// The payload codec a frame of `job` should use (raw fallback for
    /// unregistered jobs).
    pub fn for_job(&mut self, job: u64) -> &mut PayloadCodec {
        match self.jobs.get_mut(&job) {
            Some(pc) => pc,
            None => &mut self.fallback,
        }
    }
}

// ---------------------------------------------------------------------
// Zero-run-length coding of the shuffled delta planes.
// ---------------------------------------------------------------------

const RUN_ZERO: u8 = 0x00;
const RUN_LITERAL: u8 = 0x01;
/// Max bytes one token covers (u16 count).
const RUN_CAP: usize = u16::MAX as usize;
/// Zero runs shorter than this fold into the surrounding literal — a
/// zero token costs 3 bytes, so breaking a literal for less loses.
const MIN_ZERO_RUN: usize = 4;

/// Compresses `src` into `out` as `(kind, u16 count[, bytes])` tokens.
fn rle_compress(src: &[u8], out: &mut Vec<u8>) {
    let mut i = 0;
    while i < src.len() {
        if src[i] == 0 {
            let run = src[i..].iter().position(|&b| b != 0).unwrap_or(src.len() - i);
            if run >= MIN_ZERO_RUN {
                let mut remaining = run;
                while remaining > 0 {
                    let n = remaining.min(RUN_CAP);
                    out.push(RUN_ZERO);
                    out.extend_from_slice(&(n as u16).to_le_bytes());
                    remaining -= n;
                }
                i += run;
                continue;
            }
        }
        // Literal run: until a qualifying zero run begins (or the token
        // count saturates).
        let start = i;
        while i < src.len() && i - start < RUN_CAP {
            if src[i] == 0 {
                let zrun = src[i..].iter().position(|&b| b != 0).unwrap_or(src.len() - i);
                if zrun >= MIN_ZERO_RUN {
                    break;
                }
                i = (i + zrun).min(start + RUN_CAP);
            } else {
                i += 1;
            }
        }
        out.push(RUN_LITERAL);
        out.extend_from_slice(&((i - start) as u16).to_le_bytes());
        out.extend_from_slice(&src[start..i]);
    }
}

/// If the stream is exclusively well-formed zero-run tokens, returns
/// the total byte count they cover (`None` otherwise — fall through to
/// the general decoder, which also produces the errors).
fn zero_only_stream_len(mut src: &[u8]) -> Option<usize> {
    let mut total = 0usize;
    while !src.is_empty() {
        if src.len() < 3 || src[0] != RUN_ZERO {
            return None;
        }
        let count = u16::from_le_bytes([src[1], src[2]]) as usize;
        if count == 0 {
            return None;
        }
        total = total.checked_add(count)?;
        src = &src[3..];
    }
    Some(total)
}

/// Decompresses a token stream into exactly `expect` bytes.
fn rle_decompress(mut src: &[u8], expect: usize, out: &mut Vec<u8>) -> Result<(), FlError> {
    out.clear();
    while !src.is_empty() {
        if src.len() < 3 {
            return Err(FlError::Codec("truncated RLE token".into()));
        }
        let count = u16::from_le_bytes([src[1], src[2]]) as usize;
        if count == 0 {
            return Err(FlError::Codec("empty RLE token".into()));
        }
        if out.len() + count > expect {
            return Err(FlError::Codec("RLE stream overflows the delta planes".into()));
        }
        match src[0] {
            RUN_ZERO => {
                out.resize(out.len() + count, 0);
                src = &src[3..];
            }
            RUN_LITERAL => {
                if src.len() < 3 + count {
                    return Err(FlError::Codec("truncated RLE literal".into()));
                }
                out.extend_from_slice(&src[3..3 + count]);
                src = &src[3 + count..];
            }
            other => return Err(FlError::Codec(format!("unknown RLE token kind {other}"))),
        }
    }
    if out.len() != expect {
        return Err(FlError::Codec(format!(
            "RLE stream yields {} bytes, delta planes need {expect}",
            out.len()
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// IEEE 754 binary16 conversion (no half-precision crate offline).
// ---------------------------------------------------------------------

/// Converts an `f32` to IEEE 754 binary16 bits, round-to-nearest-even.
/// Overflow saturates to ±∞; NaN stays NaN (a payload bit is forced so
/// a truncated-payload NaN cannot collapse into an infinity).
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp32 = ((bits >> 23) & 0xFF) as i32;
    let man = bits & 0x007F_FFFF;
    if exp32 == 0xFF {
        if man == 0 {
            return sign | 0x7C00; // ±inf
        }
        let payload = ((man >> 13) as u16) & 0x03FF;
        return sign | 0x7C00 | 0x0200 | payload; // NaN, quiet bit forced
    }
    let exp = exp32 - 127 + 15;
    if exp >= 0x1F {
        return sign | 0x7C00; // overflow → ±inf
    }
    if exp <= 0 {
        if exp < -10 {
            return sign; // underflow → ±0
        }
        // Subnormal half: shift the (implicit-1) mantissa into place.
        let man = man | 0x0080_0000;
        let shift = (14 - exp) as u32; // 14..=24
        let half = (man >> shift) as u16;
        let round_bit = 1u32 << (shift - 1);
        let rem = man & ((1u32 << shift) - 1);
        if rem > round_bit || (rem == round_bit && half & 1 == 1) {
            return sign | (half + 1); // may carry into the exponent: correct
        }
        return sign | half;
    }
    let mut half = ((exp as u16) << 10) | ((man >> 13) as u16);
    let rem = man & 0x1FFF;
    if rem > 0x1000 || (rem == 0x1000 && half & 1 == 1) {
        half += 1; // mantissa carry may roll into the exponent: correct
    }
    sign | half
}

/// Converts IEEE 754 binary16 bits to the exactly-representable `f32`.
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1F) as u32;
    let man = (h & 0x03FF) as u32;
    let bits = match exp {
        0 => {
            if man == 0 {
                sign // ±0
            } else {
                // Subnormal half = man · 2⁻²⁴, exact in f32.
                let magnitude = man as f32 * (1.0 / 16_777_216.0);
                sign | magnitude.to_bits()
            }
        }
        0x1F => sign | 0x7F80_0000 | (man << 13), // ±inf / NaN
        _ => sign | ((exp + 112) << 23) | (man << 13),
    };
    f32::from_bits(bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(codec: &mut PayloadCodec, peer: &mut PayloadCodec, params: &[f32]) -> Vec<f32> {
        let mut buf = BytesMut::new();
        codec.encode_global(0, params, &mut buf);
        let mut bytes = buf.freeze();
        let out = peer.decode_global(0, &mut bytes).unwrap();
        assert_eq!(bytes.remaining(), 0, "decode must consume the block exactly");
        out.to_vec()
    }

    fn pair(codec: ModelCodec) -> (PayloadCodec, PayloadCodec) {
        (PayloadCodec::new(codec, Role::Sender), PayloadCodec::new(codec, Role::Receiver))
    }

    fn hostile_f32s() -> Vec<f32> {
        vec![
            0.0,
            -0.0,
            1.0,
            -2.5,
            f32::NAN,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::MIN_POSITIVE,
            f32::from_bits(1),           // smallest subnormal
            f32::from_bits(0x807F_FFFF), // negative subnormal
            f32::from_bits(0x7FC0_1234), // NaN with payload
            f32::MAX,
        ]
    }

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn raw_and_delta_are_bit_exact_on_hostile_values() {
        for codec in [ModelCodec::Raw, ModelCodec::DeltaLossless] {
            let (mut tx, mut rx) = pair(codec);
            let params = hostile_f32s();
            // Twice: first pass establishes the delta reference
            // (inline), second exercises the XOR-delta path proper.
            assert_eq!(bits(&roundtrip(&mut tx, &mut rx, &params)), bits(&params), "{codec}");
            let shifted: Vec<f32> =
                params.iter().map(|x| f32::from_bits(x.to_bits() ^ 0x0000_0101)).collect();
            assert_eq!(bits(&roundtrip(&mut tx, &mut rx, &shifted)), bits(&shifted), "{codec}");
        }
    }

    #[test]
    fn identical_rebroadcast_collapses_to_a_few_bytes() {
        let (mut tx, _) = pair(ModelCodec::DeltaLossless);
        let params: Vec<f32> = (0..10_000).map(|i| (i as f32).sin()).collect();
        let mut first = BytesMut::new();
        tx.encode_global(0, &params, &mut first);
        let mut second = BytesMut::new();
        tx.encode_global(0, &params, &mut second);
        assert!(first.len() > 4 * params.len(), "first frame is inline-raw");
        assert!(
            second.len() < 64,
            "identical rebroadcast must RLE to almost nothing, got {} bytes",
            second.len()
        );
    }

    #[test]
    fn nearby_model_compresses_well() {
        let (mut tx, mut rx) = pair(ModelCodec::DeltaLossless);
        let params: Vec<f32> = (0..10_000).map(|i| (i as f32 * 0.01).sin()).collect();
        roundtrip(&mut tx, &mut rx, &params);
        // An SGD-sized nudge: same exponents, low-mantissa churn.
        let nudged: Vec<f32> = params.iter().map(|x| x * (1.0 + 1e-4)).collect();
        let mut buf = BytesMut::new();
        tx.encode_update(&nudged, &mut buf);
        assert!(
            buf.len() < 3 * params.len(),
            "small-exponent deltas must beat 4 B/param, got {} bytes for {} params",
            buf.len(),
            params.len()
        );
        let decoded = rx.decode_update(&mut buf.freeze()).unwrap();
        assert_eq!(bits(&decoded), bits(&nudged));
    }

    #[test]
    fn f16_halves_the_payload() {
        let (mut tx, mut rx) = pair(ModelCodec::F16);
        let params: Vec<f32> = (0..1000).map(|i| (i as f32 * 0.01).cos()).collect();
        let mut buf = BytesMut::new();
        tx.encode_update(&params, &mut buf);
        assert_eq!(buf.len(), 1 + 8 + 2 * params.len());
        let decoded = rx.decode_update(&mut buf.freeze()).unwrap();
        for (d, p) in decoded.iter().zip(&params) {
            assert!((d - p).abs() <= p.abs() * 1e-3 + 1e-6, "f16 {d} too far from {p}");
        }
    }

    #[test]
    fn codec_tag_mismatch_is_rejected_distinctly() {
        let (mut tx, _) = pair(ModelCodec::Raw);
        let mut buf = BytesMut::new();
        tx.encode_update(&[1.0, 2.0], &mut buf);
        let mut rx = PayloadCodec::new(ModelCodec::DeltaLossless, Role::Receiver);
        assert!(matches!(rx.decode_update(&mut buf.freeze()), Err(FlError::CodecMismatch(_))));
    }

    #[test]
    fn corrupt_codec_tag_is_rejected_distinctly() {
        let (mut tx, mut rx) = pair(ModelCodec::Raw);
        let mut buf = BytesMut::new();
        tx.encode_update(&[1.0], &mut buf);
        let mut bytes = buf.freeze().to_vec();
        bytes[0] = 0x7F;
        assert!(matches!(
            rx.decode_update(&mut Bytes::from(bytes)),
            Err(FlError::CodecMismatch(_))
        ));
    }

    #[test]
    fn delta_before_reference_is_rejected() {
        let (mut tx, _) = pair(ModelCodec::DeltaLossless);
        let params = [1.0f32, 2.0];
        tx.set_reference(0, &params); // sender has one, receiver does not
        let mut buf = BytesMut::new();
        tx.encode_update(&params, &mut buf);
        let mut rx = PayloadCodec::new(ModelCodec::DeltaLossless, Role::Receiver);
        assert!(matches!(rx.decode_update(&mut buf.freeze()), Err(FlError::Codec(_))));
    }

    #[test]
    fn corrupt_delta_streams_never_panic_or_decode() {
        let (mut tx, mut rx) = pair(ModelCodec::DeltaLossless);
        let params: Vec<f32> = (0..256).map(|i| i as f32 * 0.5).collect();
        roundtrip(&mut tx, &mut rx, &params);
        let mut buf = BytesMut::new();
        tx.encode_update(&params, &mut buf);
        let clean = buf.freeze().to_vec();
        // Unknown token kind, truncations at every prefix, oversized
        // comp_len: every corruption fails cleanly.
        let mut bad_kind = clean.clone();
        bad_kind[1 + 8 + 1 + 4] = 0xFF;
        assert!(rx.decode_update(&mut Bytes::from(bad_kind)).is_err());
        for cut in 0..clean.len() {
            assert!(
                rx.decode_update(&mut Bytes::from(clean[..cut].to_vec())).is_err(),
                "decoded from a {cut}-byte prefix"
            );
        }
        let mut bad_len = clean.clone();
        bad_len[1 + 8 + 1..1 + 8 + 1 + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(rx.decode_update(&mut Bytes::from(bad_len)).is_err());
        // And the clean stream still decodes after all that rejection.
        assert_eq!(bits(&rx.decode_update(&mut Bytes::from(clean)).unwrap()), bits(&params));
    }

    #[test]
    fn replayed_stale_global_does_not_regress_the_receiver_reference() {
        let (mut tx, mut rx) = pair(ModelCodec::DeltaLossless);
        let round0: Vec<f32> = vec![1.0; 64];
        let round1: Vec<f32> = vec![1.5; 64];
        let mut frame0 = BytesMut::new();
        tx.encode_global(0, &round0, &mut frame0);
        let frame0 = frame0.freeze();
        rx.decode_global(0, &mut frame0.clone()).unwrap();
        let mut frame1 = BytesMut::new();
        tx.encode_global(1, &round1, &mut frame1);
        rx.decode_global(1, &mut frame1.freeze()).unwrap();
        // Replay the (inline-raw, self-contained) round-0 frame.
        rx.decode_global(0, &mut frame0.clone()).unwrap();
        assert_eq!(rx.reference, round1, "stale replay moved the reference backwards");
        // The wire stays in sync: a round-2 delta still decodes.
        let round2: Vec<f32> = vec![1.25; 64];
        let mut frame2 = BytesMut::new();
        tx.encode_global(2, &round2, &mut frame2);
        let decoded = rx.decode_global(2, &mut frame2.freeze()).unwrap();
        assert_eq!(bits(&decoded), bits(&round2));
    }

    #[test]
    fn hostile_entropy_delta_falls_back_to_inline_within_the_reserve() {
        // A period-5 plane pattern (one literal byte, then a 4-byte
        // zero run) makes the RLE token stream ~1.4× the plane bytes;
        // the encoder must fall back to the inline image so no block
        // exceeds its reserve-ahead bound (and the scratch never
        // reallocates mid-encode).
        let (mut tx, mut rx) = pair(ModelCodec::DeltaLossless);
        let reference: Vec<f32> = vec![0.0; 4096];
        roundtrip(&mut tx, &mut rx, &reference);
        // Differ from the reference in exactly one byte plane, every
        // 5th parameter: plane bytes read x,0,0,0,0,x,0,0,0,0,…
        let hostile: Vec<f32> =
            (0..4096).map(|i| if i % 5 == 0 { f32::from_bits(0xFF) } else { 0.0 }).collect();
        let mut buf = BytesMut::new();
        tx.encode_update(&hostile, &mut buf);
        assert!(
            buf.len() <= ModelCodec::DeltaLossless.max_params_block_bytes(hostile.len()),
            "encoded block {} exceeds the reserve bound",
            buf.len()
        );
        assert!(
            buf.len() <= 1 + 8 + 1 + 4 * hostile.len(),
            "worst case must cap at the inline image, got {}",
            buf.len()
        );
        let decoded = rx.decode_update(&mut buf.freeze()).unwrap();
        assert_eq!(bits(&decoded), bits(&hostile));
    }

    #[test]
    fn wrong_length_inline_global_cannot_become_the_reference() {
        // The receiver pins the architecture size: a decoded global of
        // any other length (a forged or corrupt self-contained frame)
        // decodes but never commits, so live delta state survives.
        let (mut tx, mut rx) = pair(ModelCodec::DeltaLossless);
        rx.set_expected_len(8);
        let legit: Vec<f32> = vec![1.0; 8];
        assert_eq!(bits(&roundtrip(&mut tx, &mut rx, &legit)), bits(&legit));
        // Forge: fresh sender codec → inline mode, wrong length, a
        // round that would pin the replay guard forever.
        let mut forger = PayloadCodec::new(ModelCodec::DeltaLossless, Role::Sender);
        let mut buf = BytesMut::new();
        forger.encode_global(u64::MAX, &[9.0; 3], &mut buf);
        let decoded = rx.decode_global(u64::MAX, &mut buf.freeze()).unwrap();
        assert_eq!(decoded.len(), 3, "the frame itself still decodes");
        assert_eq!(rx.reference, legit, "the forged frame must not move the reference");
        // The wire stays live: the next legitimate delta still decodes
        // and still advances the reference.
        let next: Vec<f32> = vec![1.5; 8];
        let mut frame = BytesMut::new();
        tx.encode_global(1, &next, &mut frame);
        let got = rx.decode_global(1, &mut frame.freeze()).unwrap();
        assert_eq!(bits(&got), bits(&next));
        assert_eq!(rx.reference, next);
    }

    #[test]
    fn rle_roundtrips_edge_patterns() {
        for src in [
            vec![],
            vec![0u8; 5],
            vec![7u8; 5],
            vec![0, 1, 0, 1, 0, 1],
            [vec![0; 100], vec![9; 3], vec![0; 70_000], vec![1, 2, 3]].concat(),
            vec![0; RUN_CAP + 1],
            vec![5; RUN_CAP + 1],
        ] {
            let mut tokens = Vec::new();
            rle_compress(&src, &mut tokens);
            let mut out = Vec::new();
            rle_decompress(&tokens, src.len(), &mut out).unwrap();
            assert_eq!(out, src);
        }
    }

    #[test]
    fn f16_known_values() {
        assert_eq!(f32_to_f16_bits(0.0), 0x0000);
        assert_eq!(f32_to_f16_bits(-0.0), 0x8000);
        assert_eq!(f32_to_f16_bits(1.0), 0x3C00);
        assert_eq!(f32_to_f16_bits(-2.0), 0xC000);
        assert_eq!(f32_to_f16_bits(65504.0), 0x7BFF); // f16::MAX
        assert_eq!(f32_to_f16_bits(65536.0), 0x7C00); // overflow → inf
        assert_eq!(f32_to_f16_bits(f32::INFINITY), 0x7C00);
        assert_eq!(f32_to_f16_bits(f32::NEG_INFINITY), 0xFC00);
        assert_eq!(f32_to_f16_bits(5.96e-8), 0x0001); // smallest subnormal
        assert_eq!(f32_to_f16_bits(1e-10), 0x0000); // underflow → 0
        let nan = f32_to_f16_bits(f32::NAN);
        assert_eq!(nan & 0x7C00, 0x7C00);
        assert_ne!(nan & 0x03FF, 0, "NaN must stay NaN");
        assert!(f16_bits_to_f32(0x7E00).is_nan());
        assert_eq!(f16_bits_to_f32(0x3C00), 1.0);
        assert_eq!(f16_bits_to_f32(0x0001), 2.0f32.powi(-24));
        assert_eq!(f16_bits_to_f32(0x8000).to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn f16_roundtrip_is_identity_on_f16_grid() {
        // Every finite half value maps to an exactly-representable f32
        // and back to the same bits.
        for h in 0..=u16::MAX {
            if (h >> 10) & 0x1F == 0x1F {
                continue; // inf/NaN handled above
            }
            assert_eq!(f32_to_f16_bits(f16_bits_to_f32(h)), h, "h={h:#06x}");
        }
    }

    #[test]
    fn f16_rounds_to_nearest_even() {
        // 1.0 + 2⁻¹¹ is exactly between 1.0 and the next half (1.0 +
        // 2⁻¹⁰); even mantissa wins.
        assert_eq!(f32_to_f16_bits(1.0 + 0.000_488_281_25), 0x3C00);
        // Just above the midpoint rounds up.
        assert_eq!(f32_to_f16_bits(1.0 + 0.000_488_4), 0x3C01);
    }

    #[test]
    fn negotiation_pins_once_and_refuses_conflicts() {
        let mut map = CodecMap::new(Role::Receiver);
        assert_eq!(map.negotiate(7, ModelCodec::DeltaLossless), Negotiation::Established);
        assert_eq!(map.negotiate(7, ModelCodec::DeltaLossless), Negotiation::Match);
        assert_eq!(map.negotiate(7, ModelCodec::Raw), Negotiation::Conflict);
        assert_eq!(map.codec_of(7), Some(ModelCodec::DeltaLossless), "conflict must not repin");
        assert_eq!(map.codec_of(8), None);
        assert_eq!(map.for_job(8).codec(), ModelCodec::Raw, "unknown jobs fall back to raw");
    }

    #[test]
    fn codec_tags_roundtrip_and_unknown_tags_fail() {
        for codec in [ModelCodec::Raw, ModelCodec::DeltaLossless, ModelCodec::F16] {
            assert_eq!(ModelCodec::from_tag(codec.tag()), Some(codec));
        }
        assert_eq!(ModelCodec::from_tag(99), None);
    }
}
