//! Participant-side local training (Algorithm 1, lines 1–7).
//!
//! A [`Party`] owns a private local dataset and a model instance of the
//! job's agreed architecture. Each round it receives the global
//! parameters, runs τ epochs of mini-batch SGD (with FedProx's proximal
//! pull when configured), and returns its trained parameters with the
//! metadata the aggregator and selectors need.

use crate::config::LocalTrainingConfig;
use crate::latency::LatencyModel;
use flips_data::Dataset;
use flips_ml::loss::add_proximal_grad;
use flips_ml::model::{Model, ModelSpec, TrainWorkspace};
use flips_ml::optimizer::{Optimizer, Sgd};
use flips_ml::rng::{derive_seed, seeded};
use flips_ml::Matrix;
use flips_selection::PartyId;

/// The result of one party's local training for one round.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalUpdate {
    /// The trained parameters `x_i^(r,τ)`.
    pub params: Vec<f32>,
    /// Local sample count `n_i` (the aggregation weight).
    pub num_samples: usize,
    /// Mean training loss over all local steps this round.
    pub mean_loss: f64,
    /// Simulated training duration, seconds.
    pub duration: f64,
}

/// One FL participant.
///
/// Besides its dataset and model, a party owns the reusable training
/// buffers (workspace, minibatch views, parameter/epoch-order scratch):
/// after the first full-size minibatch of its first round, local training
/// performs no heap allocation.
pub struct Party {
    id: PartyId,
    data: Dataset,
    model: Box<dyn Model>,
    // Unused when the allocating `baseline` benchmark path is compiled in.
    #[cfg_attr(feature = "baseline", allow(dead_code))]
    ws: TrainWorkspace,
    batch_x: Matrix,
    batch_y: Vec<usize>,
    order: Vec<usize>,
    params: Vec<f32>,
}

impl std::fmt::Debug for Party {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Party")
            .field("id", &self.id)
            .field("samples", &self.data.len())
            .field("model_params", &self.model.num_params())
            .finish()
    }
}

impl Party {
    /// Creates a party with its private dataset, instantiating the agreed
    /// model architecture locally (weights are overwritten each round).
    pub fn new(id: PartyId, data: Dataset, spec: &ModelSpec, seed: u64) -> Self {
        let mut rng = seeded(derive_seed(seed, 0xBA57 ^ id as u64));
        Party {
            id,
            data,
            model: spec.build(&mut rng),
            ws: TrainWorkspace::new(),
            batch_x: Matrix::zeros(0, 0),
            batch_y: Vec::new(),
            order: Vec::new(),
            params: Vec::new(),
        }
    }

    /// This party's identifier.
    pub fn id(&self) -> PartyId {
        self.id
    }

    /// Local sample count `n_i`.
    pub fn num_samples(&self) -> usize {
        self.data.len()
    }

    /// Parameter count of the agreed architecture.
    pub fn num_params(&self) -> usize {
        self.model.num_params()
    }

    /// The party's label distribution — the secret it provisions to the
    /// FLIPS enclave (never to the aggregator).
    pub fn label_distribution(&self) -> flips_data::LabelDistribution {
        flips_data::LabelDistribution::from_dataset(&self.data)
    }

    /// Runs one round of local training from `global_params`.
    ///
    /// `proximal_mu > 0` enables the FedProx pull toward the global model.
    /// Deterministic in `(job seed, round, party id)`.
    ///
    /// # Panics
    ///
    /// Panics if `global_params` does not match the agreed architecture —
    /// a protocol violation, not a recoverable condition.
    pub fn train(
        &mut self,
        global_params: &[f32],
        round: usize,
        local: &LocalTrainingConfig,
        proximal_mu: f32,
        latency: &LatencyModel,
        seed: u64,
    ) -> LocalUpdate {
        self.model
            .set_params(global_params)
            .expect("global model must match the agreed architecture");
        let mut rng = seeded(derive_seed(seed, 0x7121 ^ (round as u64) << 24 ^ self.id as u64));
        let lr = local.lr_schedule.at(round);
        let mut opt: Sgd = if local.momentum > 0.0 {
            Sgd::with_momentum(lr, local.momentum)
        } else {
            Sgd::new(lr)
        };

        // Reusable epoch-order and parameter buffers (no per-round or
        // per-minibatch allocation after the first round's warm-up).
        self.params.clear();
        self.params.extend_from_slice(global_params);
        let mut total_loss = 0.0f64;
        let mut steps = 0usize;
        for _ in 0..local.epochs {
            self.order.clear();
            self.order.extend(0..self.data.len());
            flips_ml::rng::shuffle(&mut rng, &mut self.order);
            for start in (0..self.order.len()).step_by(local.batch_size) {
                let batch_idx =
                    &self.order[start..(start + local.batch_size).min(self.order.len())];
                self.data.x.select_rows_into(batch_idx, &mut self.batch_x);
                self.batch_y.clear();
                self.batch_y.extend(batch_idx.iter().map(|&i| self.data.y[i]));
                let loss = self.step_minibatch(global_params, proximal_mu, &mut opt);
                total_loss += loss as f64;
                steps += 1;
            }
        }

        LocalUpdate {
            params: self.params.clone(),
            num_samples: self.data.len(),
            mean_loss: if steps > 0 { total_loss / steps as f64 } else { 0.0 },
            duration: latency.duration(self.id, self.data.len(), local.epochs),
        }
    }

    /// One optimizer step on the current minibatch buffers.
    ///
    /// The default path runs through the model's workspace API (zero
    /// allocation); the `baseline` feature restores the seed's allocating
    /// `loss_and_grad` call for benchmark comparisons.
    fn step_minibatch(&mut self, global_params: &[f32], proximal_mu: f32, opt: &mut Sgd) -> f32 {
        #[cfg(not(feature = "baseline"))]
        let loss = {
            let loss = self.model.loss_and_grad_into(&self.batch_x, &self.batch_y, &mut self.ws);
            if proximal_mu > 0.0 {
                add_proximal_grad(self.ws.grad_mut(), &self.params, global_params, proximal_mu);
            }
            opt.step(&mut self.params, self.ws.grad());
            loss
        };
        #[cfg(feature = "baseline")]
        let loss = {
            let (loss, mut grad) = self.model.loss_and_grad(&self.batch_x, &self.batch_y);
            if proximal_mu > 0.0 {
                add_proximal_grad(&mut grad, &self.params, global_params, proximal_mu);
            }
            opt.step(&mut self.params, &grad);
            loss
        };
        self.model.set_params(&self.params).expect("param length is fixed");
        loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flips_data::dataset::generate_population;
    use flips_data::DatasetProfile;
    use flips_ml::matrix::l2_norm;

    fn party_with_data(n: usize) -> Party {
        let profile = DatasetProfile::femnist();
        let data = generate_population(&profile, n, 3);
        Party::new(0, data, &profile.model, 42)
    }

    fn spec() -> ModelSpec {
        DatasetProfile::femnist().model
    }

    fn global_params() -> Vec<f32> {
        spec().build(&mut seeded(0)).params()
    }

    #[test]
    fn training_reduces_local_loss() {
        let mut party = party_with_data(200);
        let global = global_params();
        let latency = LatencyModel::uniform(1);
        let cfg = LocalTrainingConfig { epochs: 10, ..Default::default() };
        let first = party.train(&global, 0, &cfg, 0.0, &latency, 1);
        // Train again *from the trained parameters* — loss must be lower
        // than the first round's mean.
        let second = party.train(&first.params, 1, &cfg, 0.0, &latency, 1);
        assert!(
            second.mean_loss < first.mean_loss,
            "loss {} -> {}",
            first.mean_loss,
            second.mean_loss
        );
    }

    #[test]
    fn update_reports_sample_count_and_duration() {
        let mut party = party_with_data(150);
        let latency = LatencyModel::uniform(1);
        let up =
            party.train(&global_params(), 0, &LocalTrainingConfig::default(), 0.0, &latency, 1);
        assert_eq!(up.num_samples, 150);
        assert!((up.duration - latency.duration(0, 150, 2)).abs() < 1e-12);
        assert!(up.mean_loss > 0.0);
    }

    #[test]
    fn training_is_deterministic() {
        let run = || {
            let mut party = party_with_data(100);
            party.train(
                &global_params(),
                3,
                &LocalTrainingConfig::default(),
                0.0,
                &LatencyModel::uniform(1),
                9,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn proximal_term_keeps_update_closer_to_global() {
        let global = global_params();
        let latency = LatencyModel::uniform(1);
        let cfg = LocalTrainingConfig { epochs: 8, ..Default::default() };
        let drift = |mu: f32| {
            let mut party = party_with_data(200);
            let up = party.train(&global, 0, &cfg, mu, &latency, 5);
            let diff: Vec<f32> = up.params.iter().zip(&global).map(|(a, b)| a - b).collect();
            l2_norm(&diff)
        };
        let free = drift(0.0);
        let anchored = drift(1.0);
        assert!(anchored < free, "µ=1 drift {anchored} must be below µ=0 drift {free}");
    }

    #[test]
    fn label_distribution_matches_data() {
        let party = party_with_data(120);
        assert_eq!(party.label_distribution().total(), 120);
    }

    #[test]
    #[should_panic(expected = "agreed architecture")]
    fn wrong_global_length_is_a_protocol_violation() {
        let mut party = party_with_data(50);
        let _ = party.train(
            &[0.0; 3],
            0,
            &LocalTrainingConfig::default(),
            0.0,
            &LatencyModel::uniform(1),
            1,
        );
    }

    use flips_ml::rng::seeded;
}
