//! The FL aggregator — round orchestration (paper §2, Figure 1).
//!
//! Each [`FlJob::step`] performs one synchronization round:
//!
//! 1. **select** participants through the pluggable policy;
//! 2. **dispatch** the global model (bytes accounted via the wire codec);
//! 3. **inject stragglers** per the configured rate — their updates never
//!    arrive, under-representing their data exactly as §2.3 describes;
//! 4. **train locally** on every completing party (optionally across
//!    threads — parties are independent);
//! 5. **aggregate** with the algorithm's server optimizer;
//! 6. **evaluate** balanced accuracy on the global test set held by the
//!    aggregator (§4.4);
//! 7. **feed back** losses, durations and update sketches to the selector.
//!
//! Every source of randomness derives from the single job seed, so runs
//! are bit-reproducible, selector included.

use crate::config::{FlAlgorithm, LocalTrainingConfig};
use crate::history::{History, RoundRecord};
use crate::latency::LatencyModel;
use crate::message::{global_model_bytes, local_update_bytes};
use crate::party::{LocalUpdate, Party};
use crate::server::ServerState;
use crate::straggler::{StragglerBias, StragglerInjector};
use crate::FlError;
use flips_data::Dataset;
use flips_ml::metrics::ConfusionMatrix;
use flips_ml::model::{Model, ModelSpec};
use flips_ml::rng::{derive_seed, seeded};
use flips_selection::gradclus::sketch_update;
use flips_selection::{ParticipantSelector, PartyId, RoundFeedback};
use std::collections::HashSet;

/// Configuration of one FL job.
#[derive(Debug, Clone)]
pub struct FlJobConfig {
    /// The agreed model architecture.
    pub model: ModelSpec,
    /// The FL algorithm.
    pub algorithm: FlAlgorithm,
    /// Round budget.
    pub rounds: usize,
    /// Parties per round (`Nr`; selectors may overprovision beyond it).
    pub parties_per_round: usize,
    /// Participant-side training hyper-parameters.
    pub local: LocalTrainingConfig,
    /// Fraction of each cohort dropped as stragglers (0, 0.10, 0.20 in
    /// the paper).
    pub straggler_rate: f64,
    /// How straggler victims are chosen.
    pub straggler_bias: StragglerBias,
    /// Log-normal sigma of the platform-heterogeneity model.
    pub latency_sigma: f64,
    /// Use this latency model instead of sampling one from
    /// `latency_sigma` (lets callers share the model with selectors that
    /// profile latencies, e.g. TiFL).
    pub latency_override: Option<LatencyModel>,
    /// Dimension of the update sketches reported to GradClus.
    pub sketch_dim: usize,
    /// Train completing parties across threads.
    pub parallel: bool,
    /// Master seed; every stream derives from it.
    pub seed: u64,
}

impl FlJobConfig {
    /// A reasonable default configuration for `model` (callers override
    /// fields as needed).
    pub fn new(model: ModelSpec) -> Self {
        FlJobConfig {
            model,
            algorithm: FlAlgorithm::fedyogi(),
            rounds: 100,
            parties_per_round: 10,
            local: LocalTrainingConfig::default(),
            straggler_rate: 0.0,
            straggler_bias: StragglerBias::Uniform,
            latency_sigma: 0.4,
            latency_override: None,
            sketch_dim: 32,
            parallel: false,
            seed: 0,
        }
    }
}

/// A running federated-learning job.
pub struct FlJob {
    config: FlJobConfig,
    parties: Vec<Party>,
    test_set: Dataset,
    selector: Box<dyn ParticipantSelector>,
    server: ServerState,
    global: Vec<f32>,
    eval_model: Box<dyn Model>,
    latency: LatencyModel,
    injector: StragglerInjector,
    history: History,
    round: usize,
    /// Reused per-update delta buffer for selector sketches.
    delta_buf: Vec<f32>,
}

impl std::fmt::Debug for FlJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlJob")
            .field("algorithm", &self.config.algorithm)
            .field("selector", &self.selector.name())
            .field("parties", &self.parties.len())
            .field("round", &self.round)
            .finish()
    }
}

impl FlJob {
    /// Creates a job from per-party datasets, a global test set, a config
    /// and a selection policy.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::InvalidConfig`] for inconsistent inputs (empty
    /// roster, round size exceeding the roster, class/dimension
    /// mismatches, selector sized for a different roster).
    pub fn new(
        party_datasets: Vec<Dataset>,
        test_set: Dataset,
        config: FlJobConfig,
        selector: Box<dyn ParticipantSelector>,
    ) -> Result<Self, FlError> {
        if party_datasets.is_empty() {
            return Err(FlError::InvalidConfig("no parties".into()));
        }
        if config.parties_per_round == 0 || config.parties_per_round > party_datasets.len() {
            return Err(FlError::InvalidConfig(format!(
                "parties_per_round {} must be in 1..={}",
                config.parties_per_round,
                party_datasets.len()
            )));
        }
        if config.rounds == 0 {
            return Err(FlError::InvalidConfig("zero rounds".into()));
        }
        if !(0.0..1.0).contains(&config.straggler_rate) {
            return Err(FlError::InvalidConfig("straggler_rate must be in [0, 1)".into()));
        }
        if config.sketch_dim == 0 {
            return Err(FlError::InvalidConfig("sketch_dim must be positive".into()));
        }
        config.local.validate()?;
        if selector.num_parties() != party_datasets.len() {
            return Err(FlError::InvalidConfig(format!(
                "selector sized for {} parties, roster has {}",
                selector.num_parties(),
                party_datasets.len()
            )));
        }
        let classes = config.model.num_classes();
        let dim = config.model.input_dim();
        if test_set.classes != classes || test_set.x.cols() != dim {
            return Err(FlError::InvalidConfig(
                "test set does not match the model architecture".into(),
            ));
        }
        for (i, ds) in party_datasets.iter().enumerate() {
            if ds.classes != classes || ds.x.cols() != dim {
                return Err(FlError::InvalidConfig(format!(
                    "party {i} dataset does not match the model architecture"
                )));
            }
            if ds.is_empty() {
                return Err(FlError::InvalidConfig(format!("party {i} has no data")));
            }
        }

        let seed = config.seed;
        let parties: Vec<Party> = party_datasets
            .into_iter()
            .enumerate()
            .map(|(id, ds)| Party::new(id, ds, &config.model, seed))
            .collect();
        // Global model initialization (paper §2: agreed at job start).
        let init_model = config.model.build(&mut seeded(derive_seed(seed, 0x6106A1)));
        let global = init_model.params();
        let latency = match &config.latency_override {
            Some(model) if model.num_parties() == parties.len() => model.clone(),
            Some(_) => {
                return Err(FlError::InvalidConfig(
                    "latency_override sized for a different roster".into(),
                ))
            }
            None => LatencyModel::sample(parties.len(), config.latency_sigma, seed),
        };
        let injector = StragglerInjector::new(config.straggler_rate, config.straggler_bias, seed);
        Ok(FlJob {
            server: ServerState::new(config.algorithm),
            eval_model: init_model,
            selector,
            parties,
            test_set,
            global,
            latency,
            injector,
            history: History::new(),
            round: 0,
            delta_buf: Vec::new(),
            config,
        })
    }

    /// The current round index (number of completed rounds).
    pub fn round(&self) -> usize {
        self.round
    }

    /// The current global model parameters.
    pub fn global_params(&self) -> &[f32] {
        &self.global
    }

    /// The job history so far.
    pub fn history(&self) -> &History {
        &self.history
    }

    /// The per-party latency model in effect.
    pub fn latency_model(&self) -> &LatencyModel {
        &self.latency
    }

    /// Per-party local sample counts (public job metadata).
    pub fn sample_counts(&self) -> Vec<usize> {
        self.parties.iter().map(Party::num_samples).collect()
    }

    /// Executes one synchronization round.
    ///
    /// # Errors
    ///
    /// Propagates selection and aggregation failures.
    pub fn step(&mut self) -> Result<&RoundRecord, FlError> {
        let round = self.round;
        let selected = self.selector.select(round, self.config.parties_per_round)?;
        let bytes_down = (selected.len() * global_model_bytes(self.global.len())) as u64;

        // Straggler injection.
        let victim_idx = self.injector.strike(&selected, &self.latency);
        let victim_set: HashSet<usize> = victim_idx.iter().copied().collect();
        let stragglers: Vec<PartyId> = victim_idx.iter().map(|&i| selected[i]).collect();
        let completing: Vec<PartyId> = selected
            .iter()
            .enumerate()
            .filter(|(i, _)| !victim_set.contains(i))
            .map(|(_, &p)| p)
            .collect();

        // Local training on completing parties.
        let mut updates = self.train_parties(&completing, round);
        updates.sort_by_key(|(p, _)| *p); // deterministic aggregation order

        let completed: Vec<PartyId> = updates.iter().map(|(p, _)| *p).collect();
        let bytes_up = (updates.len() * local_update_bytes(self.global.len())) as u64;

        // Aggregate and advance the global model (a fully-straggled round
        // leaves the model unchanged, as a real aggregator would resample).
        // Updates are aggregated by reference — no parameter-vector clones.
        let mean_train_loss = if updates.is_empty() {
            0.0
        } else {
            let locals: Vec<&LocalUpdate> = updates.iter().map(|(_, u)| u).collect();
            self.server.apply_round_refs(&mut self.global, &locals)?;
            locals.iter().map(|u| u.mean_loss).sum::<f64>() / locals.len() as f64
        };

        // Evaluate on the aggregator-held balanced test set.
        self.eval_model.set_params(&self.global)?;
        let predictions = flips_ml::model::predict(self.eval_model.as_ref(), &self.test_set.x);
        let cm = ConfusionMatrix::from_predictions(
            self.test_set.classes,
            &self.test_set.y,
            &predictions,
        );
        let accuracy = cm.balanced_accuracy();

        let round_duration = updates.iter().map(|(_, u)| u.duration).fold(0.0, f64::max);

        // Selector feedback.
        let mut feedback = RoundFeedback {
            round,
            selected: selected.clone(),
            completed: completed.clone(),
            stragglers: stragglers.clone(),
            global_accuracy: accuracy,
            ..Default::default()
        };
        for (p, u) in &updates {
            feedback.train_loss.insert(*p, u.mean_loss);
            feedback.duration.insert(*p, u.duration);
            // Reusable delta buffer — the sketch is the only per-party
            // allocation left, and it is handed to the selector.
            self.delta_buf.clear();
            self.delta_buf.extend(u.params.iter().zip(&self.global).map(|(x, g)| x - g));
            feedback
                .update_sketch
                .insert(*p, sketch_update(&self.delta_buf, self.config.sketch_dim));
        }
        self.selector.report(&feedback);

        self.history.push(RoundRecord {
            round,
            selected,
            completed,
            stragglers,
            accuracy,
            per_label_recall: cm.recalls(),
            mean_train_loss,
            bytes_down,
            bytes_up,
            round_duration,
        });
        self.round += 1;
        Ok(self.history.records().last().expect("just pushed"))
    }

    /// Runs the job to its round budget and returns the history.
    ///
    /// # Errors
    ///
    /// Propagates the first failing round.
    pub fn run(&mut self) -> Result<History, FlError> {
        while self.round < self.config.rounds {
            self.step()?;
        }
        Ok(self.history.clone())
    }

    /// Trains `completing` parties, in parallel when configured.
    fn train_parties(
        &mut self,
        completing: &[PartyId],
        round: usize,
    ) -> Vec<(PartyId, LocalUpdate)> {
        let global = &self.global;
        let local_cfg = &self.config.local;
        let mu = self.config.algorithm.proximal_mu();
        let latency = &self.latency;
        let seed = self.config.seed;

        let completing_set: HashSet<PartyId> = completing.iter().copied().collect();
        let mut selected_parties: Vec<&mut Party> =
            self.parties.iter_mut().filter(|p| completing_set.contains(&p.id())).collect();

        if !self.config.parallel || selected_parties.len() < 2 {
            return selected_parties
                .iter_mut()
                .map(|party| (party.id(), party.train(global, round, local_cfg, mu, latency, seed)))
                .collect();
        }

        let threads = std::thread::available_parallelism().map_or(4, |n| n.get()).min(8);
        let chunk = selected_parties.len().div_ceil(threads);
        let mut results: Vec<(PartyId, LocalUpdate)> = Vec::with_capacity(selected_parties.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = selected_parties
                .chunks_mut(chunk)
                .map(|parties| {
                    scope.spawn(move || {
                        parties
                            .iter_mut()
                            .map(|party| {
                                (
                                    party.id(),
                                    party.train(global, round, local_cfg, mu, latency, seed),
                                )
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                results.extend(h.join().expect("training thread panicked"));
            }
        });
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flips_data::dataset::{balanced_test_set, generate_population};
    use flips_data::{partition, DatasetProfile, PartitionStrategy};
    use flips_selection::RandomSelector;

    fn small_setup(parties: usize, alpha: f64) -> (Vec<Dataset>, Dataset, DatasetProfile) {
        let profile = DatasetProfile::femnist().scaled(parties, 30);
        let pop = generate_population(&profile, profile.default_total_samples, 11);
        let parts =
            partition(&pop, parties, PartitionStrategy::Dirichlet { alpha }, 5, 11).unwrap();
        let test = balanced_test_set(&profile, 20, 11);
        (parts.parties, test, profile)
    }

    fn job(parallel: bool, straggler_rate: f64) -> FlJob {
        let (datasets, test, profile) = small_setup(12, 0.5);
        let config = FlJobConfig {
            rounds: 6,
            parties_per_round: 4,
            straggler_rate,
            parallel,
            local: LocalTrainingConfig { epochs: 1, ..Default::default() },
            ..FlJobConfig::new(profile.model.clone())
        };
        let selector = Box::new(RandomSelector::new(datasets.len(), 5));
        FlJob::new(datasets, test, config, selector).unwrap()
    }

    #[test]
    fn runs_the_configured_number_of_rounds() {
        let mut j = job(false, 0.0);
        let history = j.run().unwrap();
        assert_eq!(history.len(), 6);
        assert_eq!(j.round(), 6);
        for (i, r) in history.records().iter().enumerate() {
            assert_eq!(r.round, i);
            assert_eq!(r.selected.len(), 4);
            assert_eq!(r.completed.len(), 4);
            assert!(r.stragglers.is_empty());
            assert!(r.bytes_down > 0 && r.bytes_up > 0);
        }
    }

    #[test]
    fn accuracy_improves_over_rounds() {
        let (datasets, test, profile) = small_setup(10, 2.0);
        let config = FlJobConfig {
            rounds: 25,
            parties_per_round: 5,
            local: LocalTrainingConfig { epochs: 2, ..Default::default() },
            ..FlJobConfig::new(profile.model.clone())
        };
        let selector = Box::new(RandomSelector::new(datasets.len(), 1));
        let mut j = FlJob::new(datasets, test, config, selector).unwrap();
        let history = j.run().unwrap();
        let first = history.records()[0].accuracy;
        let peak = history.peak_accuracy();
        assert!(peak > first + 0.2, "no learning: first {first}, peak {peak}");
        assert!(peak > 0.5, "peak {peak} too low for near-IID data");
    }

    #[test]
    fn straggler_injection_reduces_completions() {
        let mut j = job(false, 0.25);
        let history = j.run().unwrap();
        for r in history.records() {
            assert_eq!(r.stragglers.len(), 1, "25% of 4 selected");
            assert_eq!(r.completed.len(), 3);
        }
        assert_eq!(history.total_stragglers(), 6);
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let mut seq = job(false, 0.1);
        let mut par = job(true, 0.1);
        let hs = seq.run().unwrap();
        let hp = par.run().unwrap();
        assert_eq!(hs.accuracy_series(), hp.accuracy_series());
        assert_eq!(seq.global_params(), par.global_params());
    }

    #[test]
    fn runs_are_seed_reproducible() {
        let mut a = job(false, 0.2);
        let mut b = job(false, 0.2);
        assert_eq!(a.run().unwrap(), b.run().unwrap());
    }

    #[test]
    fn byte_accounting_matches_wire_sizes() {
        let mut j = job(false, 0.0);
        let p = j.global_params().len();
        let r = j.step().unwrap();
        assert_eq!(r.bytes_down, (4 * global_model_bytes(p)) as u64);
        assert_eq!(r.bytes_up, (4 * local_update_bytes(p)) as u64);
    }

    #[test]
    fn all_algorithms_run() {
        for algo in [
            FlAlgorithm::FedAvg,
            FlAlgorithm::fedprox(),
            FlAlgorithm::fedyogi(),
            FlAlgorithm::fedadam(),
            FlAlgorithm::fedadagrad(),
        ] {
            let (datasets, test, profile) = small_setup(8, 1.0);
            let config = FlJobConfig {
                algorithm: algo,
                rounds: 3,
                parties_per_round: 3,
                local: LocalTrainingConfig { epochs: 1, ..Default::default() },
                ..FlJobConfig::new(profile.model.clone())
            };
            let selector = Box::new(RandomSelector::new(datasets.len(), 2));
            let mut j = FlJob::new(datasets, test, config, selector).unwrap();
            let h = j.run().unwrap();
            assert_eq!(h.len(), 3, "{algo} failed to run");
        }
    }

    #[test]
    fn rejects_inconsistent_configs() {
        let (datasets, test, profile) = small_setup(6, 1.0);
        let base = FlJobConfig::new(profile.model.clone());

        // Round size exceeding roster.
        let cfg = FlJobConfig { parties_per_round: 7, ..base.clone() };
        let sel = Box::new(RandomSelector::new(6, 1));
        assert!(FlJob::new(datasets.clone(), test.clone(), cfg, sel).is_err());

        // Selector sized for the wrong roster.
        let cfg = FlJobConfig { parties_per_round: 2, ..base.clone() };
        let sel = Box::new(RandomSelector::new(99, 1));
        assert!(FlJob::new(datasets.clone(), test.clone(), cfg, sel).is_err());

        // Test set from a different schema.
        let other = balanced_test_set(&DatasetProfile::ecg(), 5, 1);
        let cfg = FlJobConfig { parties_per_round: 2, ..base.clone() };
        let sel = Box::new(RandomSelector::new(6, 1));
        assert!(FlJob::new(datasets.clone(), other, cfg, sel).is_err());

        // Zero rounds.
        let cfg = FlJobConfig { rounds: 0, parties_per_round: 2, ..base };
        let sel = Box::new(RandomSelector::new(6, 1));
        assert!(FlJob::new(datasets, test, cfg, sel).is_err());
    }

    #[test]
    fn feedback_reaches_the_selector() {
        // A probe selector that records the feedback it receives.
        struct Probe {
            n: usize,
            feedback_rounds: Vec<usize>,
            saw_losses: bool,
            saw_sketches: bool,
        }
        impl ParticipantSelector for Probe {
            fn name(&self) -> &'static str {
                "probe"
            }
            fn select(
                &mut self,
                _round: usize,
                target: usize,
            ) -> Result<Vec<PartyId>, flips_selection::SelectionError> {
                Ok((0..target).collect())
            }
            fn report(&mut self, fb: &RoundFeedback) {
                self.feedback_rounds.push(fb.round);
                self.saw_losses |= !fb.train_loss.is_empty();
                self.saw_sketches |= !fb.update_sketch.is_empty();
            }
            fn num_parties(&self) -> usize {
                self.n
            }
        }

        let (datasets, test, profile) = small_setup(6, 1.0);
        let config = FlJobConfig {
            rounds: 2,
            parties_per_round: 3,
            local: LocalTrainingConfig { epochs: 1, ..Default::default() },
            ..FlJobConfig::new(profile.model.clone())
        };
        let probe = Box::new(Probe {
            n: 6,
            feedback_rounds: vec![],
            saw_losses: false,
            saw_sketches: false,
        });
        let mut j = FlJob::new(datasets, test, config, probe).unwrap();
        j.run().unwrap();
        // The probe was moved into the job; verify via history instead:
        // feedback effects are internal, so assert rounds ran and records
        // carry the loss/sketch-bearing fields.
        let h = j.history();
        assert_eq!(h.len(), 2);
        assert!(h.records().iter().all(|r| r.mean_train_loss > 0.0));
    }
}
