//! The in-process FL driver — mechanism pumping the sans-IO protocol.
//!
//! After the coordinator redesign, [`FlJob`] is a thin *driver*: all round
//! policy (selection, duplicate rejection, deadline close, aggregation,
//! evaluation, selector feedback) lives in the pure
//! [`Coordinator`] state machine, and all participant behavior in
//! [`PartyEndpoint`].
//! The driver supplies the three things the state machines cannot:
//!
//! 1. **transport** — it moves [`WireMessage`]s between the coordinator's
//!    [`Effect::Send`]s and the endpoints (in-process, so messages travel
//!    as values; byte counts still come from the wire codec);
//! 2. **clocks** — it decides when the round deadline fires. The
//!    configured straggler rate picks the parties whose updates would
//!    miss that deadline (the paper's §5 emulation); the driver skips
//!    simulating work whose result never arrives and feeds
//!    [`Event::DeadlineExpired`] so the coordinator closes them out as
//!    stragglers;
//! 3. **scheduling** — local training runs sequentially or across scoped
//!    threads; either way updates reach the coordinator in deterministic
//!    order, and aggregation order is fixed by party id regardless.
//!
//! Every source of randomness derives from the single job seed, so runs
//! are bit-reproducible, selector included.

use crate::codec::ModelCodec;
use crate::config::{DeadlinePolicy, FlAlgorithm, LocalTrainingConfig};
use crate::coordinator::{Coordinator, CoordinatorConfig};
use crate::endpoint::PartyEndpoint;
use crate::events::{Effect, Event};
use crate::history::{History, RoundRecord};
use crate::latency::{LatencyModel, ObservedLatency};
use crate::message::WireMessage;
use crate::straggler::{Clock, StragglerBias, StragglerInjector};
use crate::FlError;
use flips_data::Dataset;
use flips_ml::model::ModelSpec;
use flips_ml::rng::derive_seed;
use flips_selection::{ParticipantSelector, PartyId};
use std::collections::HashSet;
use std::sync::Arc;

/// Configuration of one FL job.
#[derive(Debug, Clone)]
pub struct FlJobConfig {
    /// The agreed model architecture.
    pub model: ModelSpec,
    /// The FL algorithm.
    pub algorithm: FlAlgorithm,
    /// Round budget.
    pub rounds: usize,
    /// Parties per round (`Nr`; selectors may overprovision beyond it).
    pub parties_per_round: usize,
    /// Participant-side training hyper-parameters.
    pub local: LocalTrainingConfig,
    /// Fraction of each cohort whose updates miss the round deadline
    /// (0, 0.10, 0.20 in the paper). Only meaningful under
    /// [`DeadlinePolicy::Injected`].
    pub straggler_rate: f64,
    /// How straggler victims are chosen (injected path only).
    pub straggler_bias: StragglerBias,
    /// How each round's collection deadline is decided — the paper's
    /// synthetic victim injection, or a deadline derived from observed
    /// round-trip latency (see [`DeadlinePolicy`]). A latency-derived
    /// policy is mutually exclusive with a non-zero `straggler_rate`.
    pub deadline: DeadlinePolicy,
    /// Log-normal sigma of the platform-heterogeneity model.
    pub latency_sigma: f64,
    /// Use this latency model instead of sampling one from
    /// `latency_sigma` (lets callers share the model with selectors that
    /// profile latencies, e.g. TiFL).
    pub latency_override: Option<LatencyModel>,
    /// Dimension of the update sketches reported to GradClus.
    pub sketch_dim: usize,
    /// The model-payload wire codec (announced in selection notices,
    /// used by serialized drivers; `Raw` is the compatibility default
    /// and `F16` is lossy — opt-in only).
    pub codec: ModelCodec,
    /// Train completing parties across threads.
    pub parallel: bool,
    /// Master seed; every stream derives from it.
    pub seed: u64,
}

impl FlJobConfig {
    /// A reasonable default configuration for `model` (callers override
    /// fields as needed).
    pub fn new(model: ModelSpec) -> Self {
        FlJobConfig {
            model,
            algorithm: FlAlgorithm::fedyogi(),
            rounds: 100,
            parties_per_round: 10,
            local: LocalTrainingConfig::default(),
            straggler_rate: 0.0,
            straggler_bias: StragglerBias::Uniform,
            deadline: DeadlinePolicy::Injected,
            latency_sigma: 0.4,
            latency_override: None,
            sketch_dim: 32,
            codec: ModelCodec::Raw,
            parallel: false,
            seed: 0,
        }
    }
}

/// A running federated-learning job: the coordinator state machine, one
/// endpoint per party, and the in-process pump between them.
pub struct FlJob {
    coordinator: Coordinator,
    endpoints: Vec<PartyEndpoint>,
    latency: Arc<LatencyModel>,
    injector: StragglerInjector,
    deadline: DeadlinePolicy,
    observed: ObservedLatency,
    parallel: bool,
    rounds: usize,
}

impl std::fmt::Debug for FlJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlJob")
            .field("coordinator", &self.coordinator)
            .field("parties", &self.endpoints.len())
            .field("round", &self.coordinator.round())
            .finish()
    }
}

impl FlJob {
    /// Creates a job from per-party datasets, a global test set, a config
    /// and a selection policy.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::InvalidConfig`] for inconsistent inputs (empty
    /// roster, round size exceeding the roster, class/dimension
    /// mismatches, selector sized for a different roster).
    pub fn new(
        party_datasets: Vec<Dataset>,
        test_set: Dataset,
        config: FlJobConfig,
        selector: Box<dyn ParticipantSelector>,
    ) -> Result<Self, FlError> {
        // Round/cohort/sketch bounds are validated once, by
        // `Coordinator::new` below; this driver only checks what the
        // coordinator cannot see — datasets, training hyper-parameters
        // and the simulation knobs.
        if party_datasets.is_empty() {
            return Err(FlError::InvalidConfig("no parties".into()));
        }
        if !(0.0..1.0).contains(&config.straggler_rate) {
            return Err(FlError::InvalidConfig("straggler_rate must be in [0, 1)".into()));
        }
        config.deadline.validate()?;
        if config.deadline.is_latency_derived() && config.straggler_rate > 0.0 {
            return Err(FlError::InvalidConfig(
                "straggler_rate injection and a latency-derived deadline are mutually \
                 exclusive: pick one straggler model"
                    .into(),
            ));
        }
        config.local.validate()?;
        let classes = config.model.num_classes();
        let dim = config.model.input_dim();
        for (i, ds) in party_datasets.iter().enumerate() {
            if ds.classes != classes || ds.x.cols() != dim {
                return Err(FlError::InvalidConfig(format!(
                    "party {i} dataset does not match the model architecture"
                )));
            }
            if ds.is_empty() {
                return Err(FlError::InvalidConfig(format!("party {i} has no data")));
            }
        }

        let seed = config.seed;
        let num_parties = party_datasets.len();
        let latency = match &config.latency_override {
            Some(model) if model.num_parties() == num_parties => model.clone(),
            Some(_) => {
                return Err(FlError::InvalidConfig(
                    "latency_override sized for a different roster".into(),
                ))
            }
            None => LatencyModel::sample(num_parties, config.latency_sigma, seed),
        };
        let latency = Arc::new(latency);

        let job_id = derive_seed(seed, 0x4A0B_F11F);
        let coordinator = Coordinator::new(
            CoordinatorConfig {
                job_id,
                model: config.model.clone(),
                algorithm: config.algorithm,
                rounds: config.rounds,
                parties_per_round: config.parties_per_round,
                sketch_dim: config.sketch_dim,
                codec: config.codec,
                seed,
            },
            num_parties,
            test_set,
            selector,
        )?;

        let proximal_mu = config.algorithm.proximal_mu();
        let endpoints: Vec<PartyEndpoint> = party_datasets
            .into_iter()
            .enumerate()
            .map(|(id, ds)| {
                PartyEndpoint::new(
                    id,
                    ds,
                    &config.model,
                    job_id,
                    config.local,
                    proximal_mu,
                    Arc::clone(&latency),
                    seed,
                )
            })
            .collect();

        let injector = StragglerInjector::new(config.straggler_rate, config.straggler_bias, seed);
        Ok(FlJob {
            coordinator,
            endpoints,
            latency,
            injector,
            deadline: config.deadline,
            observed: ObservedLatency::new(),
            parallel: config.parallel,
            rounds: config.rounds,
        })
    }

    /// The current round index (number of completed rounds).
    pub fn round(&self) -> usize {
        self.coordinator.round()
    }

    /// The current global model parameters.
    pub fn global_params(&self) -> &[f32] {
        self.coordinator.global_params()
    }

    /// The job history so far.
    pub fn history(&self) -> &History {
        self.coordinator.history()
    }

    /// The protocol state machine this driver pumps.
    pub fn coordinator(&self) -> &Coordinator {
        &self.coordinator
    }

    /// The per-party latency model in effect.
    pub fn latency_model(&self) -> &LatencyModel {
        &self.latency
    }

    /// Per-party local sample counts (public job metadata).
    pub fn sample_counts(&self) -> Vec<usize> {
        self.endpoints.iter().map(PartyEndpoint::num_samples).collect()
    }

    /// Executes one synchronization round: opens it on the coordinator,
    /// delivers the outbound messages, trains the parties whose updates
    /// make the deadline, pumps the replies back and fires the deadline.
    ///
    /// # Errors
    ///
    /// Propagates selection and aggregation failures.
    pub fn step(&mut self) -> Result<&RoundRecord, FlError> {
        // Open: selection notices + global-model broadcasts.
        let effects = self.coordinator.open_round()?;
        let mut notices: Vec<WireMessage> = Vec::new();
        let mut broadcasts: Vec<(PartyId, WireMessage)> = Vec::new();
        let mut selected: Vec<PartyId> = Vec::new();
        for effect in effects {
            let Effect::Send { to, msg } = effect else { continue };
            match msg {
                WireMessage::SelectionNotice { .. } => {
                    selected.push(to);
                    notices.push(msg);
                }
                _ => broadcasts.push((to, msg)),
            }
        }

        // The round clock. Injected path: the injector (through the
        // shared `Clock` contract, the same one the timer-wheel driver
        // consults) picks the parties whose updates will miss the
        // deadline; their training is never simulated — the result
        // would be discarded. Observed path: everyone trains, and the
        // deadline derived from previously observed round trips decides
        // post hoc whose reply was too slow.
        let (victim_set, deadline) = if self.deadline.is_latency_derived() {
            (HashSet::new(), self.deadline.deadline_secs(&mut self.observed))
        } else {
            let victim_idx = Clock::missed_deadline(&mut self.injector, &selected, &self.latency);
            (victim_idx.iter().map(|&i| selected[i]).collect::<HashSet<PartyId>>(), None)
        };

        // Selection notices reach everyone; heartbeat acks flow back.
        let mut inbound: Vec<WireMessage> = Vec::with_capacity(2 * selected.len());
        for (to, notice) in selected.iter().zip(&notices) {
            inbound.extend(self.endpoints[*to].handle(notice)?);
        }

        // Local training on the parties that make the deadline (all of
        // them, on the observed path).
        let deliveries: Vec<(PartyId, WireMessage)> =
            broadcasts.into_iter().filter(|(to, _)| !victim_set.contains(to)).collect();
        for reply in self.train_endpoints(&deliveries)? {
            // Latency-derived deadline check, mirroring the serialized
            // driver: every reply's simulated duration is a sample, and
            // a reply slower than this round's deadline is withheld —
            // the deadline close below turns its sender into a
            // straggler.
            if self.deadline.is_latency_derived() {
                if let WireMessage::LocalUpdate { duration, .. } = &reply {
                    self.observed.record(*duration);
                    if deadline.is_some_and(|d| *duration > d) {
                        continue;
                    }
                }
            }
            inbound.push(reply);
        }

        // Pump replies; the cohort completing early closes the round,
        // otherwise the deadline does.
        let mut close_effects: Vec<Effect> = Vec::new();
        for msg in inbound {
            close_effects.extend(self.coordinator.handle(Event::UpdateReceived(msg))?);
        }
        if self.coordinator.open_cohort().is_some() {
            close_effects.extend(self.coordinator.handle(Event::DeadlineExpired)?);
        }
        // Deliver the coordinator's straggler aborts.
        for effect in close_effects {
            if let Effect::Send { to, msg } = effect {
                self.endpoints[to].handle(&msg)?;
            }
        }
        Ok(self.coordinator.history().records().last().expect("round just closed"))
    }

    /// Runs the job to its round budget and returns the history.
    ///
    /// # Errors
    ///
    /// Propagates the first failing round.
    pub fn run(&mut self) -> Result<History, FlError> {
        while self.coordinator.round() < self.rounds {
            self.step()?;
        }
        Ok(self.coordinator.history().clone())
    }

    /// Decomposes the job into the pieces a different driver can own.
    ///
    /// The in-process `FlJob` and the serialized-transport
    /// [`crate::driver::MultiJobDriver`] run the *same* coordinator,
    /// endpoints and deadline clock; splitting a built job (rather than
    /// re-deriving its parts) guarantees both drivers start from
    /// bit-identical seeded state — which is how the transport
    /// equivalence suite pins them to each other.
    pub fn into_parts(self) -> JobParts {
        JobParts {
            coordinator: self.coordinator,
            endpoints: self.endpoints,
            clock: self.injector,
            latency: self.latency,
            deadline: self.deadline,
        }
    }

    /// The round-trip durations observed so far (latency-derived
    /// deadline path; empty under [`DeadlinePolicy::Injected`]).
    pub fn observed_latency(&self) -> &ObservedLatency {
        &self.observed
    }

    /// Delivers `GlobalModel` messages to their endpoints (in parallel
    /// when configured) and collects the `LocalUpdate` replies.
    fn train_endpoints(
        &mut self,
        deliveries: &[(PartyId, WireMessage)],
    ) -> Result<Vec<WireMessage>, FlError> {
        let by_party: std::collections::HashMap<PartyId, &WireMessage> =
            deliveries.iter().map(|(p, m)| (*p, m)).collect();
        // Roster order, as the pre-protocol trainer used; training is
        // seed-deterministic per (round, party), so order only needs to
        // be stable, not specific.
        let mut jobs: Vec<(&mut PartyEndpoint, &WireMessage)> = self
            .endpoints
            .iter_mut()
            .filter_map(|ep| by_party.get(&ep.id()).map(|msg| (ep, *msg)))
            .collect();

        if !self.parallel || jobs.len() < 2 {
            let mut replies = Vec::with_capacity(jobs.len());
            for (ep, msg) in &mut jobs {
                replies.extend(ep.handle(msg)?);
            }
            return Ok(replies);
        }

        let threads = std::thread::available_parallelism().map_or(4, |n| n.get()).min(8);
        let chunk = jobs.len().div_ceil(threads);
        let mut replies: Vec<WireMessage> = Vec::with_capacity(jobs.len());
        let mut first_err: Option<FlError> = None;
        std::thread::scope(|scope| {
            let handles: Vec<_> = jobs
                .chunks_mut(chunk)
                .map(|chunk_jobs| {
                    scope.spawn(move || {
                        let mut out = Vec::with_capacity(chunk_jobs.len());
                        for (ep, msg) in chunk_jobs {
                            out.push(ep.handle(msg));
                        }
                        out
                    })
                })
                .collect();
            for h in handles {
                for result in h.join().expect("training thread panicked") {
                    match result {
                        Ok(msgs) => replies.extend(msgs),
                        Err(e) => first_err = first_err.take().or(Some(e)),
                    }
                }
            }
        });
        match first_err {
            Some(e) => Err(e),
            None => Ok(replies),
        }
    }
}

/// A job split into driver-agnostic pieces (see [`FlJob::into_parts`]):
/// the protocol state machines plus the simulation's deadline clock.
pub struct JobParts {
    /// The aggregator-side protocol state machine.
    pub coordinator: Coordinator,
    /// One endpoint per party, roster order.
    pub endpoints: Vec<PartyEndpoint>,
    /// The deadline clock (the configured straggler injector; consulted
    /// only under [`DeadlinePolicy::Injected`]).
    pub clock: StragglerInjector,
    /// The platform-heterogeneity model the clock consults.
    pub latency: Arc<LatencyModel>,
    /// The configured deadline policy — drivers route on it (see
    /// [`crate::driver::MultiJobDriver::add_parts`]).
    pub deadline: DeadlinePolicy,
}

impl std::fmt::Debug for JobParts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobParts")
            .field("job_id", &self.coordinator.job_id())
            .field("parties", &self.endpoints.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{
        global_model_bytes, heartbeat_bytes, local_update_bytes, selection_notice_bytes,
    };
    use flips_data::dataset::{balanced_test_set, generate_population};
    use flips_data::{partition, DatasetProfile, PartitionStrategy};
    use flips_selection::{RandomSelector, RoundFeedback, SelectionError};

    fn small_setup(parties: usize, alpha: f64) -> (Vec<Dataset>, Dataset, DatasetProfile) {
        let profile = DatasetProfile::femnist().scaled(parties, 30);
        let pop = generate_population(&profile, profile.default_total_samples, 11);
        let parts =
            partition(&pop, parties, PartitionStrategy::Dirichlet { alpha }, 5, 11).unwrap();
        let test = balanced_test_set(&profile, 20, 11);
        (parts.parties, test, profile)
    }

    fn job(parallel: bool, straggler_rate: f64) -> FlJob {
        let (datasets, test, profile) = small_setup(12, 0.5);
        let config = FlJobConfig {
            rounds: 6,
            parties_per_round: 4,
            straggler_rate,
            parallel,
            local: LocalTrainingConfig { epochs: 1, ..Default::default() },
            ..FlJobConfig::new(profile.model.clone())
        };
        let selector = Box::new(RandomSelector::new(datasets.len(), 5));
        FlJob::new(datasets, test, config, selector).unwrap()
    }

    #[test]
    fn runs_the_configured_number_of_rounds() {
        let mut j = job(false, 0.0);
        let history = j.run().unwrap();
        assert_eq!(history.len(), 6);
        assert_eq!(j.round(), 6);
        for (i, r) in history.records().iter().enumerate() {
            assert_eq!(r.round, i);
            assert_eq!(r.selected.len(), 4);
            assert_eq!(r.completed.len(), 4);
            assert!(r.stragglers.is_empty());
            assert!(r.bytes_down > 0 && r.bytes_up > 0);
        }
    }

    #[test]
    fn accuracy_improves_over_rounds() {
        let (datasets, test, profile) = small_setup(10, 2.0);
        let config = FlJobConfig {
            rounds: 25,
            parties_per_round: 5,
            local: LocalTrainingConfig { epochs: 2, ..Default::default() },
            ..FlJobConfig::new(profile.model.clone())
        };
        let selector = Box::new(RandomSelector::new(datasets.len(), 1));
        let mut j = FlJob::new(datasets, test, config, selector).unwrap();
        let history = j.run().unwrap();
        let first = history.records()[0].accuracy;
        let peak = history.peak_accuracy();
        assert!(peak > first + 0.2, "no learning: first {first}, peak {peak}");
        assert!(peak > 0.5, "peak {peak} too low for near-IID data");
    }

    #[test]
    fn straggler_injection_reduces_completions() {
        let mut j = job(false, 0.25);
        let history = j.run().unwrap();
        for r in history.records() {
            assert_eq!(r.stragglers.len(), 1, "25% of 4 selected");
            assert_eq!(r.completed.len(), 3);
        }
        assert_eq!(history.total_stragglers(), 6);
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let mut seq = job(false, 0.1);
        let mut par = job(true, 0.1);
        let hs = seq.run().unwrap();
        let hp = par.run().unwrap();
        assert_eq!(hs.accuracy_series(), hp.accuracy_series());
        assert_eq!(seq.global_params(), par.global_params());
    }

    #[test]
    fn runs_are_seed_reproducible() {
        let mut a = job(false, 0.2);
        let mut b = job(false, 0.2);
        assert_eq!(a.run().unwrap(), b.run().unwrap());
    }

    #[test]
    fn byte_accounting_matches_wire_sizes() {
        // Down: one selection notice + one model broadcast per selected
        // party. Up: one heartbeat ack + one trained update per party
        // (no stragglers at rate 0).
        let mut j = job(false, 0.0);
        let p = j.global_params().len();
        let r = j.step().unwrap();
        assert_eq!(r.bytes_down, (4 * (selection_notice_bytes() + global_model_bytes(p))) as u64);
        assert_eq!(r.bytes_up, (4 * (heartbeat_bytes() + local_update_bytes(p))) as u64);
    }

    #[test]
    fn straggled_rounds_account_for_abort_messages() {
        let mut j = job(false, 0.25);
        let p = j.global_params().len();
        let r = j.step().unwrap();
        assert_eq!(r.stragglers.len(), 1);
        // Down: 4 notices + 4 models + 1 abort; the abort's exact size
        // depends on its reason string, so check bounds.
        let base = (4 * (selection_notice_bytes() + global_model_bytes(p))) as u64;
        assert!(r.bytes_down > base, "abort bytes missing");
        assert_eq!(r.bytes_up, (4 * heartbeat_bytes() + 3 * local_update_bytes(p)) as u64);
    }

    #[test]
    fn all_algorithms_run() {
        for algo in [
            FlAlgorithm::FedAvg,
            FlAlgorithm::fedprox(),
            FlAlgorithm::fedyogi(),
            FlAlgorithm::fedadam(),
            FlAlgorithm::fedadagrad(),
        ] {
            let (datasets, test, profile) = small_setup(8, 1.0);
            let config = FlJobConfig {
                algorithm: algo,
                rounds: 3,
                parties_per_round: 3,
                local: LocalTrainingConfig { epochs: 1, ..Default::default() },
                ..FlJobConfig::new(profile.model.clone())
            };
            let selector = Box::new(RandomSelector::new(datasets.len(), 2));
            let mut j = FlJob::new(datasets, test, config, selector).unwrap();
            let h = j.run().unwrap();
            assert_eq!(h.len(), 3, "{algo} failed to run");
        }
    }

    #[test]
    fn rejects_inconsistent_configs() {
        let (datasets, test, profile) = small_setup(6, 1.0);
        let base = FlJobConfig::new(profile.model.clone());

        // Round size exceeding roster.
        let cfg = FlJobConfig { parties_per_round: 7, ..base.clone() };
        let sel = Box::new(RandomSelector::new(6, 1));
        assert!(FlJob::new(datasets.clone(), test.clone(), cfg, sel).is_err());

        // Selector sized for the wrong roster.
        let cfg = FlJobConfig { parties_per_round: 2, ..base.clone() };
        let sel = Box::new(RandomSelector::new(99, 1));
        assert!(FlJob::new(datasets.clone(), test.clone(), cfg, sel).is_err());

        // Test set from a different schema.
        let other = balanced_test_set(&DatasetProfile::ecg(), 5, 1);
        let cfg = FlJobConfig { parties_per_round: 2, ..base.clone() };
        let sel = Box::new(RandomSelector::new(6, 1));
        assert!(FlJob::new(datasets.clone(), other, cfg, sel).is_err());

        // Zero rounds.
        let cfg = FlJobConfig { rounds: 0, parties_per_round: 2, ..base };
        let sel = Box::new(RandomSelector::new(6, 1));
        assert!(FlJob::new(datasets, test, cfg, sel).is_err());
    }

    /// A selector returning whatever cohort it was constructed with.
    struct Scripted {
        n: usize,
        cohort: Vec<PartyId>,
    }
    impl ParticipantSelector for Scripted {
        fn name(&self) -> &'static str {
            "scripted"
        }
        fn select(
            &mut self,
            _round: usize,
            _target: usize,
        ) -> Result<Vec<PartyId>, SelectionError> {
            Ok(self.cohort.clone())
        }
        fn report(&mut self, _fb: &RoundFeedback) {}
        fn num_parties(&self) -> usize {
            self.n
        }
    }

    #[test]
    fn duplicate_selections_are_deduplicated() {
        // Regression: a buggy policy returning the same party twice must
        // not double-train or double-aggregate it.
        let (datasets, test, profile) = small_setup(6, 1.0);
        let config = FlJobConfig {
            rounds: 1,
            parties_per_round: 3,
            local: LocalTrainingConfig { epochs: 1, ..Default::default() },
            ..FlJobConfig::new(profile.model.clone())
        };
        let sel = Box::new(Scripted { n: 6, cohort: vec![2, 4, 2, 4, 1] });
        let mut j = FlJob::new(datasets, test, config, sel).unwrap();
        let r = j.step().unwrap();
        assert_eq!(r.selected, vec![2, 4, 1], "dedup keeps first occurrence, in order");
        assert_eq!(r.completed, vec![1, 2, 4]);
    }

    #[test]
    fn out_of_range_selection_is_rejected() {
        let (datasets, test, profile) = small_setup(6, 1.0);
        let config = FlJobConfig {
            rounds: 1,
            parties_per_round: 3,
            local: LocalTrainingConfig { epochs: 1, ..Default::default() },
            ..FlJobConfig::new(profile.model.clone())
        };
        let sel = Box::new(Scripted { n: 6, cohort: vec![1, 99] });
        let mut j = FlJob::new(datasets, test, config, sel).unwrap();
        match j.step() {
            Err(FlError::InvalidConfig(m)) => assert!(m.contains("99"), "{m}"),
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn feedback_reaches_the_selector() {
        // A probe selector that records the feedback it receives.
        struct Probe {
            n: usize,
            feedback_rounds: Vec<usize>,
            saw_losses: bool,
            saw_sketches: bool,
        }
        impl ParticipantSelector for Probe {
            fn name(&self) -> &'static str {
                "probe"
            }
            fn select(
                &mut self,
                _round: usize,
                target: usize,
            ) -> Result<Vec<PartyId>, SelectionError> {
                Ok((0..target).collect())
            }
            fn report(&mut self, fb: &RoundFeedback) {
                self.feedback_rounds.push(fb.round);
                self.saw_losses |= !fb.train_loss.is_empty();
                self.saw_sketches |= !fb.update_sketch.is_empty();
            }
            fn num_parties(&self) -> usize {
                self.n
            }
        }

        let (datasets, test, profile) = small_setup(6, 1.0);
        let config = FlJobConfig {
            rounds: 2,
            parties_per_round: 3,
            local: LocalTrainingConfig { epochs: 1, ..Default::default() },
            ..FlJobConfig::new(profile.model.clone())
        };
        let probe = Box::new(Probe {
            n: 6,
            feedback_rounds: vec![],
            saw_losses: false,
            saw_sketches: false,
        });
        let mut j = FlJob::new(datasets, test, config, probe).unwrap();
        j.run().unwrap();
        // The probe was moved into the job; verify via history instead:
        // feedback effects are internal, so assert rounds ran and records
        // carry the loss/sketch-bearing fields.
        let h = j.history();
        assert_eq!(h.len(), 2);
        assert!(h.records().iter().all(|r| r.mean_train_loss > 0.0));
    }
}
