//! Exact hierarchical aggregation: the fixed-point weighted-sum fold
//! behind the aggregation tree.
//!
//! FedAvg's weighted mean `x̄ = Σ nᵢ·xᵢ / Σ nᵢ` is not associative in
//! floating point: folding shard-level partial sums and folding the flat
//! update list round differently, so a naive aggregation tree could
//! never be pinned bit-identical to a flat run. This module removes the
//! rounding instead of fighting it: every product `nᵢ·xᵢ` (an integer
//! weight times an `f32`-originated value) is representable *exactly* in
//! a 256-bit fixed-point integer, and integer addition is associative
//! and commutative — so any partition of the updates into shard
//! partials, merged in any order, produces the same 256-bit sum, and the
//! single rounding step happens once, at [`ExactWeightedSum::finish_into`].
//!
//! That partition-independence is what lets [`crate::PartyPool`] inner
//! nodes fold their own endpoints' updates into one
//! [`crate::WireMessage::PartialUpdate`] frame per round without any
//! cross-shard coordination: the coordinator merges partials in arrival
//! order and still matches the flat fold bit-for-bit
//! (`crates/flips-fl/tests/aggregation_props.rs` pins this for
//! arbitrary partitions).
//!
//! Domain bounds (asserted, and generous for FL updates): parameters
//! must be finite `f32` with `|x| < 2³¹`, weights below `2³²`, and at
//! most `2²⁰` folded terms per sum — the scaled magnitudes then top out
//! near `2²³⁵`, well inside the signed 256-bit range.

use crate::FlError;

/// Fixed-point scale: values are stored as `round_exact(x · 2¹⁵²)`.
/// `2⁻¹⁵²` sits below the smallest `f32`-subnormal times the largest
/// supported weight's shift, so every admissible product is exact.
const SCALE_BITS: i32 = 152;

/// Largest admissible per-update weight (exclusive).
const MAX_WEIGHT: u64 = 1 << 32;

/// Largest admissible parameter magnitude (exclusive).
const MAX_PARAM: f32 = 2_147_483_648.0; // 2^31

/// Whether `x` lies inside the exact fold's parameter domain (finite,
/// `|x| < 2³¹`) — what [`ExactWeightedSum::fold`] will accept.
pub fn param_in_domain(x: f32) -> bool {
    x.is_finite() && x.abs() < MAX_PARAM
}

/// A signed 256-bit accumulator per parameter: little-endian `u64`
/// limbs, two's-complement, wrapping add (exact within the documented
/// domain bounds).
type Limbs = [u64; 4];

fn add256(acc: &mut Limbs, v: &Limbs) {
    let mut carry = 0u64;
    for (a, &b) in acc.iter_mut().zip(v) {
        let (s1, c1) = a.overflowing_add(b);
        let (s2, c2) = s1.overflowing_add(carry);
        *a = s2;
        carry = u64::from(c1) + u64::from(c2);
    }
}

fn neg256(v: &mut Limbs) {
    for limb in v.iter_mut() {
        *limb = !*limb;
    }
    add256(v, &[1, 0, 0, 0]);
}

/// Adds `p · w · 2¹⁵²` (exact) into `acc`.
fn add_scaled(acc: &mut Limbs, p: f32, w: u64) {
    if p == 0.0 || w == 0 {
        return;
    }
    let q = f64::from(p); // exact widening
    let bits = q.to_bits();
    let negative = bits >> 63 == 1;
    // f32 → f64 never produces an f64 subnormal, so the implicit bit is
    // always set.
    let mantissa = (bits & ((1u64 << 52) - 1)) | (1u64 << 52);
    let e = ((bits >> 52) & 0x7FF) as i32 - 1023 - 52;
    let mut value = u128::from(mantissa) * u128::from(w); // ≤ 2^85 · 2^32
    let mut shift = e + SCALE_BITS;
    if shift < 0 {
        // Exact: an f32's lowest set bit is ≥ 2⁻¹⁴⁹, so the value has at
        // least 152 − 149 = 3 trailing zero bits at this point.
        debug_assert!(value.trailing_zeros() >= shift.unsigned_abs());
        value >>= shift.unsigned_abs();
        shift = 0;
    }
    let idx = (shift / 64) as usize;
    let off = (shift % 64) as u32;
    let lo = value as u64;
    let hi = (value >> 64) as u64;
    let (w0, w1, w2) = if off == 0 {
        (lo, hi, 0u64)
    } else {
        (lo << off, (hi << off) | (lo >> (64 - off)), hi >> (64 - off))
    };
    let mut addend = [0u64; 4];
    addend[idx] = w0;
    if w1 != 0 {
        addend[idx + 1] = w1;
    }
    if w2 != 0 {
        addend[idx + 2] = w2;
    }
    if negative {
        neg256(&mut addend);
    }
    add256(acc, &addend);
}

/// Converts a signed 256-bit fixed-point value back to the nearest
/// `f64` (round-to-nearest-even), the single rounding step of the fold.
fn to_f64(limbs: &Limbs) -> f64 {
    let negative = limbs[3] >> 63 == 1;
    let mut mag = *limbs;
    if negative {
        neg256(&mut mag);
    }
    let high = match mag.iter().rposition(|&l| l != 0) {
        Some(i) => i,
        None => return 0.0,
    };
    let top_bit = high as u32 * 64 + (63 - mag[high].leading_zeros());
    let (mut m, exp) = if top_bit <= 52 {
        // Fits 53 bits: exact (limbs above `high` are zero here).
        (u128::from(mag[1]) << 64 | u128::from(mag[0]), -SCALE_BITS)
    } else {
        let shift = top_bit - 52;
        let mut m: u128 = 0;
        for i in (0..4).rev() {
            let base = i as u32 * 64;
            if base >= shift {
                m |= u128::from(mag[i]) << (base - shift);
            } else if base + 64 > shift {
                m |= u128::from(mag[i] >> (shift - base));
            }
        }
        // Round half to even on the dropped bits.
        let guard_pos = shift - 1;
        let guard = mag[(guard_pos / 64) as usize] >> (guard_pos % 64) & 1 == 1;
        let sticky = (0..guard_pos).any(|b| mag[(b / 64) as usize] >> (b % 64) & 1 == 1);
        if guard && (sticky || m & 1 == 1) {
            m += 1; // may carry to 2^53 — still exactly representable
        }
        (m, shift as i32 - SCALE_BITS)
    };
    if m == 0 {
        return 0.0;
    }
    // Normalize a rounding carry so the scalbn below stays exact.
    let mut exp = exp;
    if m == 1u128 << 53 {
        m >>= 1;
        exp += 1;
    }
    let out = (m as f64) * f64::powi(2.0, exp);
    if negative {
        -out
    } else {
        out
    }
}

/// The exact sample-weighted sum `Σ nᵢ·xᵢ` of a set of parameter
/// vectors, with its weight total — the unit of work an aggregation-tree
/// inner node computes and the coordinator merges.
///
/// # Example
///
/// Any partition of the updates folds to the same bits:
///
/// ```
/// use flips_fl::aggtree::ExactWeightedSum;
///
/// let updates: [(&[f32], u64); 3] = [(&[1.5, -2.0], 10), (&[0.25, 4.0], 3), (&[-9.0, 0.5], 7)];
/// let mut flat = ExactWeightedSum::new(2);
/// for (p, w) in updates {
///     flat.fold(p, w).unwrap();
/// }
/// let mut left = ExactWeightedSum::new(2);
/// left.fold(updates[2].0, updates[2].1).unwrap();
/// let mut right = ExactWeightedSum::new(2);
/// right.fold(updates[0].0, updates[0].1).unwrap();
/// right.fold(updates[1].0, updates[1].1).unwrap();
/// left.merge(&right).unwrap();
/// let mut a = Vec::new();
/// let mut b = Vec::new();
/// flat.finish_into(&mut a).unwrap();
/// left.finish_into(&mut b).unwrap();
/// assert_eq!(a, b, "bit-exact under re-partition");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExactWeightedSum {
    limbs: Vec<Limbs>,
    total_weight: u64,
    terms: u64,
}

/// Maximum folded/merged terms per sum (keeps the accumulator inside
/// the signed 256-bit range with headroom).
const MAX_TERMS: u64 = 1 << 20;

impl ExactWeightedSum {
    /// An empty sum over `dim` parameters.
    pub fn new(dim: usize) -> Self {
        ExactWeightedSum { limbs: vec![[0u64; 4]; dim], total_weight: 0, terms: 0 }
    }

    /// The parameter dimension.
    pub fn dim(&self) -> usize {
        self.limbs.len()
    }

    /// The summed weight `Σ nᵢ`.
    pub fn total_weight(&self) -> u64 {
        self.total_weight
    }

    /// Whether nothing was folded in yet.
    pub fn is_empty(&self) -> bool {
        self.terms == 0
    }

    /// Folds one update in: `self += weight · params`, exactly.
    ///
    /// # Errors
    ///
    /// [`FlError::InvalidConfig`] on a dimension mismatch, a
    /// non-finite or out-of-range parameter, a weight of zero or
    /// ≥ 2³², or a sum that already folded 2²⁰ terms.
    pub fn fold(&mut self, params: &[f32], weight: u64) -> Result<(), FlError> {
        if params.len() != self.limbs.len() {
            return Err(FlError::InvalidConfig(format!(
                "update has {} params, sum is over {}",
                params.len(),
                self.limbs.len()
            )));
        }
        if weight == 0 || weight >= MAX_WEIGHT {
            return Err(FlError::InvalidConfig(format!(
                "aggregation weight {weight} outside 1..2^32"
            )));
        }
        if self.terms >= MAX_TERMS {
            return Err(FlError::InvalidConfig("exact fold exceeded 2^20 terms".into()));
        }
        if let Some(bad) = params.iter().find(|x| !param_in_domain(**x)) {
            return Err(FlError::InvalidConfig(format!(
                "parameter {bad} is outside the exact-fold domain (finite, |x| < 2^31)"
            )));
        }
        for (acc, &p) in self.limbs.iter_mut().zip(params) {
            add_scaled(acc, p, weight);
        }
        self.total_weight += weight;
        self.terms += 1;
        Ok(())
    }

    /// Merges another partial sum in: `self += other`, exactly. This is
    /// the coordinator's combine step — associative and commutative, so
    /// shard partials may arrive in any order and any grouping.
    ///
    /// # Errors
    ///
    /// [`FlError::InvalidConfig`] on a dimension mismatch or a term
    /// count overflowing the 2²⁰ bound.
    pub fn merge(&mut self, other: &ExactWeightedSum) -> Result<(), FlError> {
        if other.limbs.len() != self.limbs.len() {
            return Err(FlError::InvalidConfig(format!(
                "cannot merge a {}-dim partial into a {}-dim sum",
                other.limbs.len(),
                self.limbs.len()
            )));
        }
        if self.terms + other.terms > MAX_TERMS {
            return Err(FlError::InvalidConfig("exact merge exceeded 2^20 terms".into()));
        }
        for (acc, v) in self.limbs.iter_mut().zip(&other.limbs) {
            add256(acc, v);
        }
        self.total_weight += other.total_weight;
        self.terms += other.terms;
        Ok(())
    }

    /// Resolves the weighted mean `x̄ = Σ nᵢ·xᵢ / Σ nᵢ` into `accum` —
    /// the fold's one rounding step (per parameter: one
    /// nearest-even conversion of the 256-bit sum, one `f64` division).
    ///
    /// # Errors
    ///
    /// [`FlError::InvalidConfig`] when nothing was folded in (a weight
    /// total of zero has no mean).
    pub fn finish_into(&self, accum: &mut Vec<f64>) -> Result<(), FlError> {
        if self.total_weight == 0 {
            return Err(FlError::InvalidConfig("no updates to aggregate".into()));
        }
        let total = self.total_weight as f64;
        accum.clear();
        accum.extend(self.limbs.iter().map(|l| to_f64(l) / total));
        Ok(())
    }

    /// Serializes the accumulator limbs for the wire, little-endian
    /// limb order per parameter (`4 · dim` words).
    pub fn raw_limbs(&self) -> Vec<u64> {
        self.limbs.iter().flatten().copied().collect()
    }

    /// Rebuilds a partial from wire words produced by
    /// [`ExactWeightedSum::raw_limbs`]. `terms` is the number of updates
    /// folded into it (bounds the merge budget).
    ///
    /// # Errors
    ///
    /// [`FlError::InvalidConfig`] when the word count is not a multiple
    /// of 4 or the term count is outside `1..=2²⁰`.
    pub fn from_raw(words: &[u64], total_weight: u64, terms: u64) -> Result<Self, FlError> {
        if !words.len().is_multiple_of(4) {
            return Err(FlError::InvalidConfig(format!(
                "{} limb words is not a whole number of parameters",
                words.len()
            )));
        }
        if terms == 0 || terms > MAX_TERMS {
            return Err(FlError::InvalidConfig(format!(
                "partial term count {terms} outside 1..=2^20"
            )));
        }
        let limbs = words.chunks_exact(4).map(|c| [c[0], c[1], c[2], c[3]]).collect();
        Ok(ExactWeightedSum { limbs, total_weight, terms })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flips_ml::rng::seeded;
    use rand::Rng;

    fn finish(sum: &ExactWeightedSum) -> Vec<f64> {
        let mut out = Vec::new();
        sum.finish_into(&mut out).unwrap();
        out
    }

    #[test]
    fn single_update_is_identity() {
        let mut sum = ExactWeightedSum::new(3);
        sum.fold(&[1.25, -0.5, 3.0], 7).unwrap();
        assert_eq!(finish(&sum), vec![1.25, -0.5, 3.0]);
    }

    #[test]
    fn matches_rational_arithmetic_on_dyadic_inputs() {
        // 10·0.5 + 6·(−0.25) = 3.5; mean = 3.5/16 = 0.21875, exact.
        let mut sum = ExactWeightedSum::new(1);
        sum.fold(&[0.5], 10).unwrap();
        sum.fold(&[-0.25], 6).unwrap();
        assert_eq!(finish(&sum), vec![0.21875]);
    }

    #[test]
    fn partition_independent_bit_exact() {
        let mut rng = seeded(0xA6_17EE);
        let dim = 33;
        let updates: Vec<(Vec<f32>, u64)> = (0..64)
            .map(|_| {
                let params: Vec<f32> =
                    (0..dim).map(|_| (rng.random::<f32>() - 0.5) * 2000.0).collect();
                (params, rng.random_range(1..5000))
            })
            .collect();
        let mut flat = ExactWeightedSum::new(dim);
        for (p, w) in &updates {
            flat.fold(p, *w).unwrap();
        }
        // Shard by residue, merge shards in descending order.
        for shards in [2usize, 3, 7] {
            let mut partials: Vec<ExactWeightedSum> =
                (0..shards).map(|_| ExactWeightedSum::new(dim)).collect();
            for (i, (p, w)) in updates.iter().enumerate() {
                partials[i % shards].fold(p, *w).unwrap();
            }
            let mut merged = ExactWeightedSum::new(dim);
            for part in partials.iter().rev() {
                merged.merge(part).unwrap();
            }
            assert_eq!(merged, flat, "{shards} shards");
            assert_eq!(finish(&merged), finish(&flat));
        }
    }

    #[test]
    fn tiny_and_huge_magnitudes_cancel_exactly() {
        let mut sum = ExactWeightedSum::new(1);
        let tiny = f32::from_bits(1); // smallest subnormal, 2^-149
        sum.fold(&[1.0e9], 1).unwrap();
        sum.fold(&[tiny], 1).unwrap();
        sum.fold(&[-1.0e9], 1).unwrap();
        sum.fold(&[-tiny], 1).unwrap();
        assert_eq!(finish(&sum), vec![0.0]);
    }

    #[test]
    fn wire_round_trip_preserves_bits() {
        let mut rng = seeded(9);
        let mut sum = ExactWeightedSum::new(5);
        for _ in 0..10 {
            let p: Vec<f32> = (0..5).map(|_| rng.random::<f32>() - 0.5).collect();
            sum.fold(&p, rng.random_range(1..100)).unwrap();
        }
        let wire = sum.raw_limbs();
        let back = ExactWeightedSum::from_raw(&wire, sum.total_weight(), 10).unwrap();
        assert_eq!(back, sum);
    }

    #[test]
    fn matches_f64_mean_within_half_ulp_envelope() {
        // Sanity: the exact mean should sit inside the spread of naive
        // f64 left-folds (it *is* the correctly rounded sum).
        let mut rng = seeded(31);
        let updates: Vec<(f32, u64)> =
            (0..100).map(|_| (rng.random::<f32>() * 10.0 - 5.0, rng.random_range(1..50))).collect();
        let mut sum = ExactWeightedSum::new(1);
        let mut naive = 0.0f64;
        let mut total = 0.0f64;
        for &(p, w) in &updates {
            sum.fold(&[p], w).unwrap();
            naive += w as f64 * f64::from(p);
            total += w as f64;
        }
        let exact = finish(&sum)[0];
        assert!((exact - naive / total).abs() <= 1e-9 * naive.abs().max(1.0));
    }

    #[test]
    fn rejects_domain_violations() {
        let mut sum = ExactWeightedSum::new(1);
        assert!(sum.fold(&[f32::NAN], 1).is_err());
        assert!(sum.fold(&[f32::INFINITY], 1).is_err());
        assert!(sum.fold(&[3.0e9], 1).is_err());
        assert!(sum.fold(&[1.0], 0).is_err());
        assert!(sum.fold(&[1.0], 1 << 32).is_err());
        assert!(sum.fold(&[1.0, 2.0], 1).is_err());
        let other = ExactWeightedSum::new(2);
        assert!(sum.merge(&other).is_err());
        let mut out = Vec::new();
        assert!(sum.finish_into(&mut out).is_err(), "empty sum has no mean");
    }

    #[test]
    fn from_raw_validates_shape() {
        assert!(ExactWeightedSum::from_raw(&[1, 2, 3], 1, 1).is_err());
        assert!(ExactWeightedSum::from_raw(&[1, 2, 3, 4], 1, 0).is_err());
        assert!(ExactWeightedSum::from_raw(&[1, 2, 3, 4], 1, MAX_TERMS + 1).is_err());
    }
}
