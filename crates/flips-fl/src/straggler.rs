//! Straggler fault injection — the simulation driver's deadline model.
//!
//! The paper emulates platform heterogeneity "by dropping 10% or 20% of
//! participants involved in an FL round" (§5). The injector reproduces
//! that: given the selected cohort it designates `round(rate · |cohort|)`
//! victims whose updates miss the round deadline. Victims are drawn
//! uniformly by default, or biased toward slow parties (probability ∝
//! speed factor) for a more physical failure mode.
//!
//! Note this is *driver* machinery, not protocol: the coordinator knows
//! nothing about injection — it just closes the round when the driver's
//! deadline fires, and whoever has not delivered an update is a
//! straggler.

use crate::latency::LatencyModel;
use flips_data::dist::categorical;
use flips_ml::rng::{derive_seed, seeded};
use flips_selection::PartyId;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// The round-deadline clock every FL driver consults.
///
/// Both drivers — the in-process [`crate::FlJob`] and the
/// timer-wheel-based [`crate::driver::MultiJobDriver`] — share the same
/// deadline semantics through this trait, so they cannot drift:
///
/// - [`Clock::missed_deadline`] answers **who** — which members of the
///   round's cohort will not deliver an update before the collection
///   window closes. The driver never simulates work whose result is
///   destined for the floor; those parties close as stragglers when the
///   deadline fires.
/// - [`Clock::deadline_ticks`] answers **when** — how many virtual ticks
///   the window stays open on the timer wheel. The in-process driver has
///   no wheel (it fires the deadline as soon as every surviving update
///   is pumped), which is exactly the wheel schedule with every
///   completion inside the window, so histories agree bit-for-bit.
pub trait Clock: Send {
    /// Indices into `cohort` of the parties whose updates miss this
    /// round's deadline, sorted ascending. Called exactly once per round
    /// open, in round order — implementations may hold RNG state.
    fn missed_deadline(&mut self, cohort: &[PartyId], latency: &LatencyModel) -> Vec<usize>;

    /// Virtual ticks from round open to deadline on the timer wheel.
    /// Must be at least 1; defaults to 1 (deadline on the next quiet
    /// tick).
    fn deadline_ticks(&self) -> u64 {
        1
    }
}

impl Clock for StragglerInjector {
    fn missed_deadline(&mut self, cohort: &[PartyId], latency: &LatencyModel) -> Vec<usize> {
        self.strike(cohort, latency)
    }
}

/// A clock replaying an explicit per-round victim script: round `r`'s
/// victims are exactly `rounds[r] ∩ cohort` (rounds past the script's
/// end strike nobody).
///
/// This is the reference implementation the guard plane's **ejection
/// equivalence** is pinned against: a breaker-ejected party is treated
/// exactly like an injected victim (model withheld, closes as a
/// straggler), so a guarded run with a hostile party must be
/// bit-identical to an unguarded run scripting that party as the victim
/// in the same rounds — see `tests/guard_plane.rs`.
#[derive(Debug, Clone)]
pub struct ScriptedClock {
    rounds: Vec<Vec<PartyId>>,
    cursor: usize,
    ticks: u64,
}

impl ScriptedClock {
    /// A clock striking `rounds[r]` at the r-th round open.
    pub fn new(rounds: Vec<Vec<PartyId>>) -> Self {
        ScriptedClock { rounds, cursor: 0, ticks: 1 }
    }

    /// Sets the deadline window in virtual ticks (clamped to ≥ 1).
    #[must_use]
    pub fn with_ticks(mut self, ticks: u64) -> Self {
        self.ticks = ticks.max(1);
        self
    }
}

impl Clock for ScriptedClock {
    fn missed_deadline(&mut self, cohort: &[PartyId], _latency: &LatencyModel) -> Vec<usize> {
        let script = self.rounds.get(self.cursor);
        self.cursor += 1;
        let Some(victims) = script else { return Vec::new() };
        cohort.iter().enumerate().filter(|(_, p)| victims.contains(p)).map(|(i, _)| i).collect()
    }

    fn deadline_ticks(&self) -> u64 {
        self.ticks
    }
}

/// How straggler victims are chosen within a round's cohort.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StragglerBias {
    /// Uniformly at random (the paper's emulation).
    Uniform,
    /// Probability proportional to the party's latency speed factor.
    SlowBiased,
}

/// Drops a fixed fraction of each round's participants.
#[derive(Debug)]
pub struct StragglerInjector {
    rate: f64,
    bias: StragglerBias,
    rng: StdRng,
}

impl StragglerInjector {
    /// Creates an injector dropping `rate` of each cohort (0 disables).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1)`.
    pub fn new(rate: f64, bias: StragglerBias, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&rate), "straggler rate must be in [0, 1), got {rate}");
        StragglerInjector { rate, bias, rng: seeded(derive_seed(seed, 0x57A6)) }
    }

    /// The configured drop rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Chooses this round's stragglers from the selected cohort.
    ///
    /// Returns the *indices into `selected`* of the victims, sorted
    /// ascending.
    pub fn strike(&mut self, selected: &[PartyId], latency: &LatencyModel) -> Vec<usize> {
        let count = (self.rate * selected.len() as f64).round() as usize;
        if count == 0 || selected.is_empty() {
            return Vec::new();
        }
        let count = count.min(selected.len());
        let mut victims: Vec<usize> = match self.bias {
            StragglerBias::Uniform => {
                flips_ml::rng::sample_without_replacement(&mut self.rng, selected.len(), count)
            }
            StragglerBias::SlowBiased => {
                let mut weights: Vec<f64> =
                    selected.iter().map(|&p| latency.speed_factor(p)).collect();
                let mut picked = Vec::with_capacity(count);
                for _ in 0..count {
                    let idx = categorical(&mut self.rng, &weights);
                    weights[idx] = 0.0;
                    picked.push(idx);
                }
                picked
            }
        };
        victims.sort_unstable();
        victims
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drops_the_configured_fraction() {
        let mut inj = StragglerInjector::new(0.2, StragglerBias::Uniform, 1);
        let selected: Vec<PartyId> = (0..40).collect();
        let latency = LatencyModel::uniform(40);
        let victims = inj.strike(&selected, &latency);
        assert_eq!(victims.len(), 8);
        assert!(victims.windows(2).all(|w| w[0] < w[1]), "sorted, distinct");
        assert!(victims.iter().all(|&v| v < 40));
    }

    #[test]
    fn zero_rate_never_strikes() {
        let mut inj = StragglerInjector::new(0.0, StragglerBias::Uniform, 2);
        let selected: Vec<PartyId> = (0..10).collect();
        assert!(inj.strike(&selected, &LatencyModel::uniform(10)).is_empty());
    }

    #[test]
    fn rounds_small_cohorts_sensibly() {
        // 10% of 4 parties rounds to 0; 10% of 6 rounds to 1.
        let mut inj = StragglerInjector::new(0.1, StragglerBias::Uniform, 3);
        let latency = LatencyModel::uniform(10);
        assert!(inj.strike(&[0, 1, 2, 3], &latency).is_empty());
        assert_eq!(inj.strike(&[0, 1, 2, 3, 4, 5], &latency).len(), 1);
    }

    #[test]
    fn slow_bias_prefers_slow_parties() {
        // Parties 0..5 fast, 5..10 drastically slow.
        let speeds: Vec<f64> = (0..10).map(|p| if p < 5 { 0.01 } else { 100.0 }).collect();
        let latency = LatencyModel::with_speeds(speeds);
        let mut inj = StragglerInjector::new(0.3, StragglerBias::SlowBiased, 4);
        let selected: Vec<PartyId> = (0..10).collect();
        let mut slow_hits = 0;
        let mut total = 0;
        for _ in 0..50 {
            for v in inj.strike(&selected, &latency) {
                total += 1;
                if selected[v] >= 5 {
                    slow_hits += 1;
                }
            }
        }
        assert!(slow_hits as f64 / total as f64 > 0.9, "slow parties hit only {slow_hits}/{total}");
    }

    #[test]
    #[should_panic(expected = "straggler rate")]
    fn rejects_rate_of_one() {
        let _ = StragglerInjector::new(1.0, StragglerBias::Uniform, 5);
    }

    #[test]
    fn scripted_clock_replays_its_script_then_goes_quiet() {
        let mut clock = ScriptedClock::new(vec![vec![3, 7], vec![], vec![5]]).with_ticks(4);
        let latency = LatencyModel::uniform(10);
        assert_eq!(clock.deadline_ticks(), 4);
        // Victims resolve to cohort indices; absent parties are ignored.
        assert_eq!(clock.missed_deadline(&[1, 3, 5, 7], &latency), vec![1, 3]);
        assert_eq!(clock.missed_deadline(&[1, 3, 5, 7], &latency), Vec::<usize>::new());
        assert_eq!(clock.missed_deadline(&[5, 6], &latency), vec![0]);
        assert_eq!(
            clock.missed_deadline(&[5, 6], &latency),
            Vec::<usize>::new(),
            "past the script's end nobody is struck"
        );
    }

    #[test]
    fn scripted_clock_clamps_zero_ticks_forward() {
        assert_eq!(ScriptedClock::new(vec![]).with_ticks(0).deadline_ticks(), 1);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut inj = StragglerInjector::new(0.25, StragglerBias::Uniform, seed);
            let selected: Vec<PartyId> = (0..20).collect();
            let latency = LatencyModel::uniform(20);
            (0..5).map(|_| inj.strike(&selected, &latency)).collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}
