//! The FL wire protocol, with exact byte accounting.
//!
//! The paper's headline cost metric is communication: rounds saved
//! translate directly into model-update bytes not sent. This module
//! defines the two messages of a round — the aggregator's global-model
//! broadcast and each party's local update — with a compact little-endian
//! binary codec so byte counts are exact and stable.
//!
//! (Only the `serde` *traits* are permitted in this workspace — no format
//! crate — so the codec is hand-rolled on `bytes`.)

use crate::FlError;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

/// Protocol magic, guards against decoding foreign buffers.
const MAGIC: u32 = 0xF11F_5001;

const TAG_GLOBAL: u8 = 1;
const TAG_UPDATE: u8 = 2;

/// A message on the aggregator ↔ party wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WireMessage {
    /// Aggregator → party: the round's global model.
    GlobalModel {
        /// Round number.
        round: u64,
        /// Flat global-model parameters.
        params: Vec<f32>,
    },
    /// Party → aggregator: a trained local update.
    LocalUpdate {
        /// Round number.
        round: u64,
        /// Sender party.
        party: u64,
        /// Local sample count `n_i` (the FedAvg weight).
        num_samples: u64,
        /// Mean local training loss (Oort's utility signal).
        mean_loss: f32,
        /// Simulated training duration, seconds.
        duration: f32,
        /// Flat trained parameters `x_i^(r,τ)`.
        params: Vec<f32>,
    },
}

impl WireMessage {
    /// Encodes to the binary wire format.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.wire_size());
        buf.put_u32_le(MAGIC);
        match self {
            WireMessage::GlobalModel { round, params } => {
                buf.put_u8(TAG_GLOBAL);
                buf.put_u64_le(*round);
                buf.put_u64_le(params.len() as u64);
                for &p in params {
                    buf.put_f32_le(p);
                }
            }
            WireMessage::LocalUpdate { round, party, num_samples, mean_loss, duration, params } => {
                buf.put_u8(TAG_UPDATE);
                buf.put_u64_le(*round);
                buf.put_u64_le(*party);
                buf.put_u64_le(*num_samples);
                buf.put_f32_le(*mean_loss);
                buf.put_f32_le(*duration);
                buf.put_u64_le(params.len() as u64);
                for &p in params {
                    buf.put_f32_le(p);
                }
            }
        }
        buf.freeze()
    }

    /// Decodes from the binary wire format.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::Codec`] on bad magic, unknown tags or truncation.
    pub fn decode(mut buf: Bytes) -> Result<Self, FlError> {
        let need = |buf: &Bytes, n: usize| -> Result<(), FlError> {
            if buf.remaining() < n {
                Err(FlError::Codec(format!("truncated: need {n}, have {}", buf.remaining())))
            } else {
                Ok(())
            }
        };
        need(&buf, 5)?;
        let magic = buf.get_u32_le();
        if magic != MAGIC {
            return Err(FlError::Codec(format!("bad magic {magic:#x}")));
        }
        let tag = buf.get_u8();
        match tag {
            TAG_GLOBAL => {
                need(&buf, 16)?;
                let round = buf.get_u64_le();
                let len = buf.get_u64_le() as usize;
                need(&buf, len * 4)?;
                let params = (0..len).map(|_| buf.get_f32_le()).collect();
                Ok(WireMessage::GlobalModel { round, params })
            }
            TAG_UPDATE => {
                need(&buf, 8 * 3 + 4 * 2 + 8)?;
                let round = buf.get_u64_le();
                let party = buf.get_u64_le();
                let num_samples = buf.get_u64_le();
                let mean_loss = buf.get_f32_le();
                let duration = buf.get_f32_le();
                let len = buf.get_u64_le() as usize;
                need(&buf, len * 4)?;
                let params = (0..len).map(|_| buf.get_f32_le()).collect();
                Ok(WireMessage::LocalUpdate {
                    round,
                    party,
                    num_samples,
                    mean_loss,
                    duration,
                    params,
                })
            }
            other => Err(FlError::Codec(format!("unknown tag {other}"))),
        }
    }

    /// Exact encoded size in bytes.
    pub fn wire_size(&self) -> usize {
        match self {
            WireMessage::GlobalModel { params, .. } => 4 + 1 + 8 + 8 + params.len() * 4,
            WireMessage::LocalUpdate { params, .. } => 4 + 1 + 8 * 3 + 4 * 2 + 8 + params.len() * 4,
        }
    }
}

/// Wire size of one global-model broadcast for a model of `num_params`
/// parameters (for communication accounting without building messages).
pub fn global_model_bytes(num_params: usize) -> usize {
    4 + 1 + 8 + 8 + num_params * 4
}

/// Wire size of one local update for a model of `num_params` parameters.
pub fn local_update_bytes(num_params: usize) -> usize {
    4 + 1 + 8 * 3 + 4 * 2 + 8 + num_params * 4
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_update() -> WireMessage {
        WireMessage::LocalUpdate {
            round: 12,
            party: 7,
            num_samples: 250,
            mean_loss: 0.42,
            duration: 1.5,
            params: vec![1.0, -2.5, 3.25, 0.0],
        }
    }

    #[test]
    fn global_model_round_trips() {
        let msg = WireMessage::GlobalModel { round: 3, params: vec![0.5; 10] };
        let decoded = WireMessage::decode(msg.encode()).unwrap();
        assert_eq!(decoded, msg);
    }

    #[test]
    fn local_update_round_trips() {
        let msg = sample_update();
        assert_eq!(WireMessage::decode(msg.encode()).unwrap(), msg);
    }

    #[test]
    fn wire_size_matches_encoding() {
        for msg in [
            WireMessage::GlobalModel { round: 0, params: vec![1.0; 33] },
            sample_update(),
            WireMessage::GlobalModel { round: 9, params: vec![] },
        ] {
            assert_eq!(msg.encode().len(), msg.wire_size());
        }
    }

    #[test]
    fn size_helpers_match_messages() {
        let msg = WireMessage::GlobalModel { round: 0, params: vec![0.0; 17] };
        assert_eq!(global_model_bytes(17), msg.wire_size());
        let msg = sample_update();
        assert_eq!(local_update_bytes(4), msg.wire_size());
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = sample_update().encode().to_vec();
        bytes[0] ^= 0xFF;
        assert!(matches!(WireMessage::decode(Bytes::from(bytes)), Err(FlError::Codec(_))));
    }

    #[test]
    fn rejects_unknown_tag() {
        let mut bytes = sample_update().encode().to_vec();
        bytes[4] = 99;
        assert!(WireMessage::decode(Bytes::from(bytes)).is_err());
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        let bytes = sample_update().encode();
        for cut in 0..bytes.len() {
            let truncated = bytes.slice(0..cut);
            assert!(
                WireMessage::decode(truncated).is_err(),
                "decode succeeded on {cut}-byte prefix"
            );
        }
    }

    #[test]
    fn empty_params_are_legal() {
        let msg = WireMessage::GlobalModel { round: 1, params: vec![] };
        assert_eq!(WireMessage::decode(msg.encode()).unwrap(), msg);
    }
}
