//! The FL wire protocol, with exact byte accounting.
//!
//! The paper's headline cost metric is communication: rounds saved
//! translate directly into model-update bytes not sent. This module
//! defines the messages of a synchronization round with a compact
//! little-endian binary codec so byte counts are exact and stable.
//!
//! A round exchanges five message kinds:
//!
//! - [`WireMessage::SelectionNotice`] — aggregator → party: "you are in
//!   round `round` of job `job`";
//! - [`WireMessage::GlobalModel`] — aggregator → party: the round's
//!   global parameters;
//! - [`WireMessage::LocalUpdate`] — party → aggregator: the trained
//!   local update;
//! - [`WireMessage::Heartbeat`] — party → aggregator: liveness ack;
//! - [`WireMessage::Abort`] — either direction: abandon the round/job.
//!
//! Every message carries the `(job, round)` pair so a transport can
//! multiplex concurrent jobs and the coordinator can reject stale or
//! foreign traffic. Update statistics (`mean_loss`, `duration`) travel as
//! `f64` so an in-process round trip through the protocol is bit-exact.
//!
//! (Only the `serde` *traits* are permitted in this workspace — no format
//! crate — so the codec is hand-rolled on `bytes`.)

use crate::FlError;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

/// Protocol magic, guards against decoding foreign buffers.
const MAGIC: u32 = 0xF11F_5002;

const TAG_GLOBAL: u8 = 1;
const TAG_UPDATE: u8 = 2;
const TAG_NOTICE: u8 = 3;
const TAG_HEARTBEAT: u8 = 4;
const TAG_ABORT: u8 = 5;

/// magic + tag.
const HEADER: usize = 4 + 1;

/// A message on the aggregator ↔ party wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WireMessage {
    /// Aggregator → party: selection announcement for a round.
    SelectionNotice {
        /// Job identifier.
        job: u64,
        /// Round number.
        round: u64,
        /// The selected party.
        party: u64,
    },
    /// Aggregator → party: the round's global model.
    GlobalModel {
        /// Job identifier.
        job: u64,
        /// Round number.
        round: u64,
        /// Flat global-model parameters.
        params: Vec<f32>,
    },
    /// Party → aggregator: a trained local update.
    LocalUpdate {
        /// Job identifier.
        job: u64,
        /// Round number.
        round: u64,
        /// Sender party.
        party: u64,
        /// Local sample count `n_i` (the FedAvg weight).
        num_samples: u64,
        /// Mean local training loss (Oort's utility signal).
        mean_loss: f64,
        /// Simulated training duration, seconds.
        duration: f64,
        /// Flat trained parameters `x_i^(r,τ)`.
        params: Vec<f32>,
    },
    /// Party → aggregator: liveness ack for an open round.
    Heartbeat {
        /// Job identifier.
        job: u64,
        /// Round number.
        round: u64,
        /// Sender party.
        party: u64,
    },
    /// Either direction: abandon the round (aggregator → party) or
    /// withdraw from it (party → aggregator).
    Abort {
        /// Job identifier.
        job: u64,
        /// Round number.
        round: u64,
        /// The party the abort concerns (sender when party-originated,
        /// addressee otherwise).
        party: u64,
        /// Human-readable cause.
        reason: String,
    },
}

impl WireMessage {
    /// The job identifier every message carries.
    pub fn job(&self) -> u64 {
        match self {
            WireMessage::SelectionNotice { job, .. }
            | WireMessage::GlobalModel { job, .. }
            | WireMessage::LocalUpdate { job, .. }
            | WireMessage::Heartbeat { job, .. }
            | WireMessage::Abort { job, .. } => *job,
        }
    }

    /// The round number every message carries.
    pub fn round(&self) -> u64 {
        match self {
            WireMessage::SelectionNotice { round, .. }
            | WireMessage::GlobalModel { round, .. }
            | WireMessage::LocalUpdate { round, .. }
            | WireMessage::Heartbeat { round, .. }
            | WireMessage::Abort { round, .. } => *round,
        }
    }

    /// Encodes to the binary wire format.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.wire_size());
        buf.put_u32_le(MAGIC);
        match self {
            WireMessage::SelectionNotice { job, round, party } => {
                buf.put_u8(TAG_NOTICE);
                buf.put_u64_le(*job);
                buf.put_u64_le(*round);
                buf.put_u64_le(*party);
            }
            WireMessage::GlobalModel { job, round, params } => {
                buf.put_u8(TAG_GLOBAL);
                buf.put_u64_le(*job);
                buf.put_u64_le(*round);
                buf.put_u64_le(params.len() as u64);
                for &p in params {
                    buf.put_f32_le(p);
                }
            }
            WireMessage::LocalUpdate {
                job,
                round,
                party,
                num_samples,
                mean_loss,
                duration,
                params,
            } => {
                buf.put_u8(TAG_UPDATE);
                buf.put_u64_le(*job);
                buf.put_u64_le(*round);
                buf.put_u64_le(*party);
                buf.put_u64_le(*num_samples);
                buf.put_f64_le(*mean_loss);
                buf.put_f64_le(*duration);
                buf.put_u64_le(params.len() as u64);
                for &p in params {
                    buf.put_f32_le(p);
                }
            }
            WireMessage::Heartbeat { job, round, party } => {
                buf.put_u8(TAG_HEARTBEAT);
                buf.put_u64_le(*job);
                buf.put_u64_le(*round);
                buf.put_u64_le(*party);
            }
            WireMessage::Abort { job, round, party, reason } => {
                buf.put_u8(TAG_ABORT);
                buf.put_u64_le(*job);
                buf.put_u64_le(*round);
                buf.put_u64_le(*party);
                buf.put_u32_le(reason.len() as u32);
                buf.put_slice(reason.as_bytes());
            }
        }
        buf.freeze()
    }

    /// Decodes from the binary wire format.
    ///
    /// Decoding never panics: bad magic, unknown tags, truncation,
    /// overlong length prefixes and invalid UTF-8 all surface as
    /// [`FlError::Codec`].
    ///
    /// # Errors
    ///
    /// Returns [`FlError::Codec`] on any malformed buffer.
    pub fn decode(mut buf: Bytes) -> Result<Self, FlError> {
        let need = |buf: &Bytes, n: usize| -> Result<(), FlError> {
            if buf.remaining() < n {
                Err(FlError::Codec(format!("truncated: need {n}, have {}", buf.remaining())))
            } else {
                Ok(())
            }
        };
        // A length prefix is only plausible if that many payload bytes
        // are actually present — checked with overflow-safe arithmetic so
        // a hostile prefix cannot trigger a huge allocation or a panic.
        let need_elems = |buf: &Bytes, len: u64, elem: usize| -> Result<usize, FlError> {
            let len =
                usize::try_from(len).ok().and_then(|l| l.checked_mul(elem).map(|bytes| (l, bytes)));
            match len {
                Some((l, bytes)) if buf.remaining() >= bytes => Ok(l),
                _ => Err(FlError::Codec("length prefix exceeds buffer".into())),
            }
        };
        need(&buf, HEADER)?;
        let magic = buf.get_u32_le();
        if magic != MAGIC {
            return Err(FlError::Codec(format!("bad magic {magic:#x}")));
        }
        let tag = buf.get_u8();
        let msg = match tag {
            TAG_NOTICE => {
                need(&buf, 8 * 3)?;
                let job = buf.get_u64_le();
                let round = buf.get_u64_le();
                let party = buf.get_u64_le();
                Ok(WireMessage::SelectionNotice { job, round, party })
            }
            TAG_GLOBAL => {
                need(&buf, 8 * 3)?;
                let job = buf.get_u64_le();
                let round = buf.get_u64_le();
                let raw_len = buf.get_u64_le();
                let len = need_elems(&buf, raw_len, 4)?;
                let params = (0..len).map(|_| buf.get_f32_le()).collect();
                Ok(WireMessage::GlobalModel { job, round, params })
            }
            TAG_UPDATE => {
                need(&buf, 8 * 7)?;
                let job = buf.get_u64_le();
                let round = buf.get_u64_le();
                let party = buf.get_u64_le();
                let num_samples = buf.get_u64_le();
                let mean_loss = buf.get_f64_le();
                let duration = buf.get_f64_le();
                let raw_len = buf.get_u64_le();
                let len = need_elems(&buf, raw_len, 4)?;
                let params = (0..len).map(|_| buf.get_f32_le()).collect();
                Ok(WireMessage::LocalUpdate {
                    job,
                    round,
                    party,
                    num_samples,
                    mean_loss,
                    duration,
                    params,
                })
            }
            TAG_HEARTBEAT => {
                need(&buf, 8 * 3)?;
                let job = buf.get_u64_le();
                let round = buf.get_u64_le();
                let party = buf.get_u64_le();
                Ok(WireMessage::Heartbeat { job, round, party })
            }
            TAG_ABORT => {
                need(&buf, 8 * 3 + 4)?;
                let job = buf.get_u64_le();
                let round = buf.get_u64_le();
                let party = buf.get_u64_le();
                let raw_len = u64::from(buf.get_u32_le());
                let len = need_elems(&buf, raw_len, 1)?;
                let reason = String::from_utf8(buf.copy_take(len))
                    .map_err(|_| FlError::Codec("abort reason is not UTF-8".into()))?;
                Ok(WireMessage::Abort { job, round, party, reason })
            }
            other => Err(FlError::Codec(format!("unknown tag {other}"))),
        }?;
        // A message is exactly one frame: trailing bytes mean the tag and
        // payload disagree (e.g. a corrupted tag re-parsing a longer
        // variant's prefix) and must not decode silently.
        if buf.remaining() != 0 {
            return Err(FlError::Codec(format!(
                "{} trailing bytes after message",
                buf.remaining()
            )));
        }
        Ok(msg)
    }

    /// Exact encoded size in bytes.
    pub fn wire_size(&self) -> usize {
        match self {
            WireMessage::SelectionNotice { .. } => selection_notice_bytes(),
            WireMessage::GlobalModel { params, .. } => global_model_bytes(params.len()),
            WireMessage::LocalUpdate { params, .. } => local_update_bytes(params.len()),
            WireMessage::Heartbeat { .. } => heartbeat_bytes(),
            WireMessage::Abort { reason, .. } => HEADER + 8 * 3 + 4 + reason.len(),
        }
    }
}

/// Frame destination of aggregator-bound (uplink) traffic.
///
/// Downlink frames carry the destination party id; party ids live in
/// `0..roster`, so the all-ones sentinel can never collide with one.
pub const AGGREGATOR_DEST: u64 = u64::MAX;

/// Bytes a frame adds in front of the encoded message (the destination).
pub const FRAME_HEADER: usize = 8;

/// Wraps an encoded message into a transport frame: an 8-byte
/// little-endian destination followed by the [`WireMessage::encode`]
/// bytes. The destination is a party id on the downlink and
/// [`AGGREGATOR_DEST`] on the uplink; the *source* needs no header field
/// because every uplink message kind already carries its sender.
pub fn frame(dest: u64, msg: &WireMessage) -> Bytes {
    let mut buf = BytesMut::with_capacity(FRAME_HEADER + msg.wire_size());
    buf.put_u64_le(dest);
    buf.put_slice(msg.encode().as_slice());
    buf.freeze()
}

/// Splits a transport frame into its destination and decoded message.
///
/// # Errors
///
/// Returns [`FlError::Codec`] on a frame too short for its header or on
/// any payload the message decoder rejects.
pub fn deframe(mut frame: Bytes) -> Result<(u64, WireMessage), FlError> {
    if frame.remaining() < FRAME_HEADER {
        return Err(FlError::Codec(format!(
            "frame of {} bytes is shorter than its header",
            frame.remaining()
        )));
    }
    let dest = frame.get_u64_le();
    Ok((dest, WireMessage::decode(frame)?))
}

/// Wire size of one selection notice.
pub fn selection_notice_bytes() -> usize {
    HEADER + 8 * 3
}

/// Wire size of one global-model broadcast for a model of `num_params`
/// parameters (for communication accounting without building messages).
pub fn global_model_bytes(num_params: usize) -> usize {
    HEADER + 8 * 3 + num_params * 4
}

/// Wire size of one local update for a model of `num_params` parameters.
pub fn local_update_bytes(num_params: usize) -> usize {
    HEADER + 8 * 7 + num_params * 4
}

/// Wire size of one heartbeat.
pub fn heartbeat_bytes() -> usize {
    HEADER + 8 * 3
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_update() -> WireMessage {
        WireMessage::LocalUpdate {
            job: 99,
            round: 12,
            party: 7,
            num_samples: 250,
            mean_loss: 0.42,
            duration: 1.5,
            params: vec![1.0, -2.5, 3.25, 0.0],
        }
    }

    fn one_of_each() -> [WireMessage; 5] {
        [
            WireMessage::SelectionNotice { job: 1, round: 2, party: 3 },
            WireMessage::GlobalModel { job: 1, round: 2, params: vec![0.5; 10] },
            sample_update(),
            WireMessage::Heartbeat { job: 1, round: 2, party: 3 },
            WireMessage::Abort { job: 1, round: 2, party: 3, reason: "deadline".into() },
        ]
    }

    #[test]
    fn every_variant_round_trips() {
        for msg in one_of_each() {
            assert_eq!(WireMessage::decode(msg.encode()).unwrap(), msg, "{msg:?}");
        }
    }

    #[test]
    fn wire_size_matches_encoding() {
        let mut msgs = one_of_each().to_vec();
        msgs.push(WireMessage::GlobalModel { job: 0, round: 9, params: vec![] });
        msgs.push(WireMessage::Abort { job: 0, round: 0, party: 0, reason: String::new() });
        for msg in msgs {
            assert_eq!(msg.encode().len(), msg.wire_size(), "{msg:?}");
        }
    }

    #[test]
    fn size_helpers_match_messages() {
        let msg = WireMessage::GlobalModel { job: 4, round: 0, params: vec![0.0; 17] };
        assert_eq!(global_model_bytes(17), msg.wire_size());
        assert_eq!(local_update_bytes(4), sample_update().wire_size());
        let msg = WireMessage::SelectionNotice { job: 1, round: 1, party: 1 };
        assert_eq!(selection_notice_bytes(), msg.wire_size());
        let msg = WireMessage::Heartbeat { job: 1, round: 1, party: 1 };
        assert_eq!(heartbeat_bytes(), msg.wire_size());
    }

    #[test]
    fn job_and_round_accessors_cover_every_variant() {
        for msg in one_of_each() {
            assert_eq!(msg.job(), msg.clone().job());
            assert!(msg.round() <= 12);
        }
        assert_eq!(sample_update().job(), 99);
        assert_eq!(sample_update().round(), 12);
    }

    #[test]
    fn update_statistics_survive_exactly() {
        // f64 on the wire: the coordinator's aggregation sees bit-exact
        // loss/duration, so an in-process protocol round trip cannot
        // perturb the job history.
        let loss = 0.1f64 + 0.2;
        let duration = 1.0 / 3.0;
        let msg = WireMessage::LocalUpdate {
            job: 1,
            round: 1,
            party: 1,
            num_samples: 10,
            mean_loss: loss,
            duration,
            params: vec![],
        };
        match WireMessage::decode(msg.encode()).unwrap() {
            WireMessage::LocalUpdate { mean_loss, duration: d, .. } => {
                assert_eq!(mean_loss.to_bits(), loss.to_bits());
                assert_eq!(d.to_bits(), duration.to_bits());
            }
            other => panic!("wrong variant {other:?}"),
        }
    }

    #[test]
    fn tag_corruption_cannot_reparse_payload_bearing_messages() {
        // The decoder rejects trailing bytes, so a flipped tag cannot
        // silently re-parse a params-carrying message as a shorter
        // fixed-size variant (e.g. LocalUpdate → SelectionNotice).
        let payload_bearing =
            [sample_update(), WireMessage::GlobalModel { job: 1, round: 2, params: vec![1.0; 8] }];
        for msg in payload_bearing {
            let bytes = msg.encode().to_vec();
            for bit in 0..8 {
                let mut corrupted = bytes.clone();
                corrupted[4] ^= 1 << bit;
                assert!(
                    WireMessage::decode(Bytes::from(corrupted)).is_err(),
                    "{msg:?} decoded with tag bit {bit} flipped"
                );
            }
        }
    }

    #[test]
    fn rejects_trailing_bytes() {
        for msg in one_of_each() {
            let mut bytes = msg.encode().to_vec();
            bytes.push(0);
            assert!(
                WireMessage::decode(Bytes::from(bytes)).is_err(),
                "{msg:?} decoded with a trailing byte"
            );
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = sample_update().encode().to_vec();
        bytes[0] ^= 0xFF;
        assert!(matches!(WireMessage::decode(Bytes::from(bytes)), Err(FlError::Codec(_))));
    }

    #[test]
    fn rejects_unknown_tag() {
        let mut bytes = sample_update().encode().to_vec();
        bytes[4] = 99;
        assert!(WireMessage::decode(Bytes::from(bytes)).is_err());
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        for msg in one_of_each() {
            let bytes = msg.encode();
            for cut in 0..bytes.len() {
                let truncated = bytes.slice(0..cut);
                assert!(
                    WireMessage::decode(truncated).is_err(),
                    "decode succeeded on {cut}-byte prefix of {msg:?}"
                );
            }
        }
    }

    #[test]
    fn rejects_hostile_length_prefix_without_allocation() {
        // A params count of u64::MAX must fail cleanly (no overflow, no
        // attempted 64 EiB allocation).
        let mut bytes =
            WireMessage::GlobalModel { job: 1, round: 1, params: vec![] }.encode().to_vec();
        let len_off = bytes.len() - 8;
        bytes[len_off..].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(WireMessage::decode(Bytes::from(bytes)).is_err());
    }

    #[test]
    fn rejects_non_utf8_abort_reason() {
        let mut bytes = WireMessage::Abort { job: 1, round: 1, party: 1, reason: "xx".into() }
            .encode()
            .to_vec();
        let n = bytes.len();
        bytes[n - 1] = 0xFF;
        bytes[n - 2] = 0xFE;
        assert!(WireMessage::decode(Bytes::from(bytes)).is_err());
    }

    #[test]
    fn empty_params_are_legal() {
        let msg = WireMessage::GlobalModel { job: 0, round: 1, params: vec![] };
        assert_eq!(WireMessage::decode(msg.encode()).unwrap(), msg);
    }
}
